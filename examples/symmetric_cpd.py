#!/usr/bin/env python3
"""Symmetric tensor factorization via MTTKRP (the paper's Section 5.2.6).

The CP decomposition of a *symmetric* tensor uses the same factor matrix
for every mode, so each ALS sweep is a single MTTKRP — no transposes needed
because all transpositions of the tensor are equal (Kofidis & Regalia).
This example fits a rank-r symmetric CP model to a random symmetric sparse
3-tensor with SySTeC's symmetry-optimized MTTKRP (reads 1/6 of the tensor,
half the flops) and reports the fit after each sweep.

Run:  python examples/symmetric_cpd.py
"""

import numpy as np

from repro.bench.harness import time_compiled_kernel
from repro.data.random_tensors import erdos_renyi_symmetric
from repro.kernels.library import get_kernel


def cp_reconstruct(B: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Dense reconstruction sum_r w_r * b_r (x) b_r (x) b_r."""
    return np.einsum("r,ir,kr,lr->ikl", weights, B, B, B)


def main():
    n, rank, sweeps = 30, 6, 12
    A = erdos_renyi_symmetric(n, 3, density=0.15, seed=1)
    dense_A = A.to_dense()
    norm_A = np.linalg.norm(dense_A)

    spec = get_kernel("mttkrp3d")
    mttkrp = spec.compile()

    rng = np.random.default_rng(0)
    B = rng.standard_normal((n, rank))

    print("symmetric CP-ALS, n=%d rank=%d nnz(canonical)=%d" % (n, rank, A.nnz))
    for sweep in range(sweeps):
        # M[i, r] = sum_{k,l} A[i,k,l] B[k,r] B[l,r]   (one symmetric MTTKRP)
        M = mttkrp(A=A, B=B)
        # ALS update for the symmetric model (same factor in every mode)
        gram = (B.T @ B) ** 2
        B_new = M @ np.linalg.pinv(gram)
        # column-normalize; weights absorb the scale
        scales = np.linalg.norm(B_new, axis=0)
        scales[scales == 0] = 1.0
        B = B_new / scales
        weights = scales
        fit = 1.0 - np.linalg.norm(
            cp_reconstruct(B, weights) - dense_A
        ) / norm_A
        print("  sweep %2d   fit %.4f" % (sweep + 1, fit))

    naive = spec.compile(naive=True)
    t_naive = time_compiled_kernel(naive, A=A, B=B)
    t_systec = time_compiled_kernel(mttkrp, A=A, B=B)
    print(
        "per-sweep MTTKRP: naive %.4fs, systec %.4fs -> %.2fx "
        "(paper expects 2x for 3-D, observes up to 3.38x)"
        % (t_naive, t_systec, t_naive / t_systec)
    )


if __name__ == "__main__":
    main()
