#!/usr/bin/env python3
"""Statistics workload: Gram/covariance matrices and quadratic forms.

The paper's intro motivates symmetry with statistics: covariance matrices
are symmetric by construction.  This example builds a sparse-data Gram
matrix with the SSYRK kernel (visible output symmetry: half the products,
half the writes, replication fills the rest) and then evaluates variance
quadratic forms w' C w with SYPRD (invisible output symmetry: one 2x-scaled
update per off-diagonal).

Run:  python examples/covariance_statistics.py
"""

import numpy as np

from repro import Tensor, compile_kernel
from repro.bench.harness import time_compiled_kernel
from repro.kernels.library import get_kernel


def main():
    rng = np.random.default_rng(3)
    n_features, n_samples = 120, 200
    # sparse centered data matrix (features x samples)
    X = rng.standard_normal((n_features, n_samples))
    X[rng.random((n_features, n_samples)) < 0.9] = 0.0
    data = Tensor.from_dense(X)

    # -- Gram matrix C = X X^T with SSYRK ------------------------------
    ssyrk = get_kernel("ssyrk")
    kernel = ssyrk.compile()
    C = kernel(A=data) / (n_samples - 1)
    expected = (X @ X.T) / (n_samples - 1)
    print("SSYRK covariance: max |err| =", np.abs(C - expected).max())
    print("covariance is symmetric:", np.allclose(C, C.T))

    t_naive = time_compiled_kernel(ssyrk.compile(naive=True), A=data)
    t_systec = time_compiled_kernel(kernel, A=data)
    print(
        "SSYRK: naive %.4fs, systec %.4fs -> %.2fx (paper: 2.20x)"
        % (t_naive, t_systec, t_naive / t_systec)
    )

    # -- variance of portfolios w' C w with SYPRD ----------------------
    cov = Tensor.from_dense(np.where(np.abs(expected) > 1e-3, expected, 0.0),
                            symmetric_modes=((0, 1),))
    syprd = get_kernel("syprd").compile()
    w = rng.random(n_features)
    w /= w.sum()
    variance = float(syprd(A=cov, x=w))
    print(
        "SYPRD quadratic form: %.6f (numpy: %.6f)"
        % (variance, w @ cov.to_dense() @ w)
    )


if __name__ == "__main__":
    main()
