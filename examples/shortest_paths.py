#!/usr/bin/env python3
"""Single-source shortest paths on an undirected graph (Bellman-Ford).

The paper's intro motivates symmetric sparse tensors with graph theory:
adjacency matrices of undirected graphs are symmetric, and algorithms like
single-source shortest path run over them.  This example iterates the
symmetric Bellman-Ford *update* kernel of Section 5.2.2 —

    y[i] min= A[i, j] + d[j]

— to convergence, using SySTeC's min-plus symmetrization (repeated updates
fold idempotently, reads restricted to one triangle), and cross-checks the
distances with a plain Dijkstra implementation.

Run:  python examples/shortest_paths.py
"""

import heapq

import numpy as np

from repro import compile_kernel
from repro.data.random_tensors import symmetric_matrix


def dijkstra(adj_dense: np.ndarray, source: int) -> np.ndarray:
    n = adj_dense.shape[0]
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v in np.nonzero(adj_dense[u])[0]:
            nd = d + adj_dense[u, v]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def main():
    n, source = 300, 0
    graph = symmetric_matrix(n, density=0.04, seed=7)  # edge weights > 0

    step = compile_kernel(
        "y[i] min= A[i, j] + d[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
    )
    print("generated min-plus kernel:")
    print(step.source)

    prepared, shape = step.prepare(A=graph, d=np.zeros(n))
    # iterate: d_{k+1}[i] = min(d_k[i], min_j A[i,j] + d_k[j])
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    for iteration in range(n):
        # rebind the frontier vector (cheap: d is dense, no packing)
        prepared = dict(prepared)
        prepared["d"] = dist
        relaxed = step.finalize(step.run(prepared, shape))
        new_dist = np.minimum(dist, relaxed)
        if np.array_equal(new_dist, dist):
            print("converged after %d relaxations" % iteration)
            break
        dist = new_dist

    expected = dijkstra(graph.to_dense(), source)
    reachable = np.isfinite(expected)
    err = np.abs(dist[reachable] - expected[reachable]).max()
    print("reachable vertices: %d / %d" % (reachable.sum(), n))
    print("max |error| vs Dijkstra:", err)
    assert err < 1e-9


if __name__ == "__main__":
    main()
