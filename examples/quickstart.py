#!/usr/bin/env python3
"""Quickstart: compile and run a symmetric sparse kernel.

Walks the full SySTeC flow on SSYMV (Figure 2 of the paper):

1. write the kernel as a plain einsum — no symmetry logic in sight;
2. declare which inputs are symmetric;
3. inspect the symmetrized + optimized plan and the generated code;
4. run it on a packed symmetric matrix and check against numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compile_kernel
from repro.data.random_tensors import symmetric_matrix


def main():
    n = 500
    A = symmetric_matrix(n, density=0.05, seed=42)  # stored canonically
    x = np.random.default_rng(0).random(n)

    # -- compile ------------------------------------------------------
    ssymv = compile_kernel(
        "y[i] += A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
    )

    print("=== optimized plan (Section 4 of the paper) ===")
    print(ssymv.plan.describe())
    print()
    print("=== generated Python kernel ===")
    print(ssymv.source)

    # -- run ----------------------------------------------------------
    y = ssymv(A=A, x=x)
    expected = A.to_dense() @ x
    print("max |error| vs numpy:", np.abs(y - expected).max())

    # -- compare against the naive (non-symmetric) kernel -------------
    naive = compile_kernel(
        "y[i] += A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        naive=True,
    )
    y2 = naive(A=A, x=x)
    print("naive agrees:", np.allclose(y, y2))

    from repro.bench.harness import time_compiled_kernel

    t_naive = time_compiled_kernel(naive, A=A, x=x)
    t_systec = time_compiled_kernel(ssymv, A=A, x=x)
    print(
        "naive %.4fs   systec %.4fs   speedup %.2fx (paper: ~1.45x, <= 2x)"
        % (t_naive, t_systec, t_naive / t_systec)
    )


if __name__ == "__main__":
    main()
