#!/usr/bin/env python3
"""Graph analytics: triangle counting on an undirected graph.

The adjacency matrix of an undirected graph is symmetric (the paper's
graph-theory motivation), and the triangle count is the einsum

    y[] += A[i, j] * A[j, k] * A[i, k]

Declaring A symmetric lets SySTeC restrict iteration to *one orientation*
of each wedge (i <= j <= k, the canonical triangle of the chain) and scale
by 3! via distributive grouping — the classic "count each triangle once"
optimization, derived mechanically.  The generated kernel intersects two
sorted neighbor fibers with a merge loop (two sparse iterators at once —
the capability Table 1 credits to SySTeC but not to Cyclops).

Run:  python examples/triangle_counting.py
"""

import numpy as np

from repro.bench.harness import time_compiled_kernel
from repro.kernels.extensions import get_extension


def random_graph(n: int, p: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    A = (rng.random((n, n)) < p).astype(float)
    A = np.triu(A, 1)
    return A + A.T


def main():
    n, p = 400, 0.03
    A = random_graph(n, p)
    spec = get_extension("trianglecount")
    kernel = spec.compile()

    print("plan:")
    print(kernel.plan.describe())

    got = float(kernel(A=A)) / 6.0  # einsum counts each triangle 6 times
    expected = np.trace(np.linalg.matrix_power(A, 3)) / 6.0
    print("graph: n=%d, edges=%d" % (n, int(A.sum() / 2)))
    print("triangles: %d (trace(A^3)/6 = %d)" % (int(got), int(expected)))
    assert got == expected

    naive = spec.compile(naive=True)
    t_naive = time_compiled_kernel(naive, A=A)
    t_systec = time_compiled_kernel(kernel, A=A)
    print(
        "naive %.4fs   systec %.4fs   speedup %.2fx "
        "(one wedge orientation instead of six)"
        % (t_naive, t_systec, t_naive / t_systec)
    )


if __name__ == "__main__":
    main()
