#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation (Section 5.2).

Equivalent of the artifact's ``run_benchmarks.sh`` + ``plot_results.py``:
runs each experiment driver, prints the per-workload speedup tables
(normalized to the naive kernel, the paper's red line; the expected-speedup
column is the purple line) and writes JSON results next to this script.

Run:  python examples/reproduce_figures.py [--scale 0.03] [--full]

``--full`` sweeps all 30 Table 2 matrices instead of the default subset
(slower; the shapes are identical).
"""

import argparse
import os
import time

from repro.bench import figures
from repro.bench.harness import dump_json, format_table, summarize_speedups


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03,
                        help="Table 2 matrix scale factor (default 0.03)")
    parser.add_argument("--full", action="store_true",
                        help="run all 30 matrices instead of the subset")
    parser.add_argument("--out", default=os.path.dirname(os.path.abspath(__file__)),
                        help="directory for JSON results")
    args = parser.parse_args()

    names = None if args.full else figures.DEFAULT_MATRICES

    experiments = [
        ("fig06_ssymv", lambda: figures.run_fig06_ssymv(scale=args.scale, names=names)),
        ("fig07_bellmanford", lambda: figures.run_fig07_bellmanford(scale=args.scale, names=names)),
        ("fig08_syprd", lambda: figures.run_fig08_syprd(scale=args.scale, names=names)),
        ("fig09_ssyrk", lambda: figures.run_fig09_ssyrk()),
        ("fig10_ttm", lambda: figures.run_fig10_ttm()),
        ("fig11_mttkrp", lambda: figures.run_fig11_mttkrp()),
    ]

    for label, runner in experiments:
        start = time.time()
        results = runner()
        elapsed = time.time() - start
        print()
        print(format_table(results, title="=== %s (%.1fs) ===" % (label, elapsed)))
        print("geomean SySTeC speedup over naive: %.2fx"
              % summarize_speedups(results))
        dump_json(results, os.path.join(args.out, "%s_results.json" % label))

    print()
    print("=== Table 2 (matrix collection) ===")
    rows = figures.run_table2(scale=args.scale)
    print("%-10s %10s %10s %10s %10s  %s" % (
        "name", "paper n", "paper nnz", "gen n", "gen nnz", "profile"))
    for row in rows:
        print("%-10s %10d %10d %10d %10d  %s" % (
            row["name"], row["paper_dimension"], row["paper_nnz"],
            row["generated_dimension"], row["generated_nnz"], row["profile"]))


if __name__ == "__main__":
    main()
