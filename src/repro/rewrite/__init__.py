"""A small term-rewriting engine in the spirit of RewriteTools.jl.

SySTeC "uses term rewriting to optimize redundancies, and is easily
extensible to general operators beyond + and *" (contribution 3); its
implementation defines simplification rules over Finch IR with
RewriteTools.  This package provides the same machinery over our einsum
expressions: patterns with variables and segment variables, rules, and the
standard strategies (prewalk / postwalk / chain / fixpoint).

The expression-level simplifications the compiler applies — operand
sorting, literal folding, multiplication by 1, annihilation by 0,
flattening of nested combines — are stated as rules in
:mod:`repro.rewrite.simplify` and applied through these strategies.
"""

from repro.rewrite.terms import Term, Var, Segment, is_term
from repro.rewrite.engine import (
    Chain,
    Fixpoint,
    PostWalk,
    PreWalk,
    Rule,
    rewrite,
)
from repro.rewrite.simplify import simplify_expression, SIMPLIFY_RULES

__all__ = [
    "Chain",
    "Fixpoint",
    "PostWalk",
    "PreWalk",
    "Rule",
    "Segment",
    "SIMPLIFY_RULES",
    "Term",
    "Var",
    "is_term",
    "rewrite",
    "simplify_expression",
]
