"""Expression simplification rules over einsum right-hand sides.

The compiler's scale factors and literal operands flow through these rules
before emission: products are flattened, literals folded, identities
dropped, zeros annihilate, and operands are sorted into the deterministic
normal-form order — each a :class:`~repro.rewrite.engine.Rule`, applied
bottom-up to fixpoint, exactly how SySTeC phrases its transforms over
RewriteTools.

Expressions are :class:`~repro.rewrite.terms.Term` trees with heads ``"*"``
/ ``"+"`` / ``"min"`` / ``"max"`` and leaves that are numbers or
:class:`~repro.frontend.einsum.Access` objects.
"""

from __future__ import annotations

from numbers import Number
from typing import Any, Optional

from repro.frontend.einsum import Access
from repro.rewrite.engine import Chain, Fixpoint, PostWalk, Rule, rewrite
from repro.rewrite.terms import Segment, Term, Var


def _is_number(x: Any) -> bool:
    return isinstance(x, Number)


def _flatten(bindings) -> Optional[Term]:
    head = bindings["op"]
    before, inner, after = bindings["a"], bindings["x"], bindings["b"]
    return Term(head, tuple(before) + inner.args + tuple(after))


def _make_flatten_rule(op: str) -> Rule:
    return Rule(
        pattern=Term(op, (Segment("a"), Var("x", lambda t: isinstance(t, Term) and t.head == op), Segment("b"))),
        builder=lambda b: Term(op, tuple(b["a"]) + b["x"].args + tuple(b["b"])),
        name="flatten-%s" % op,
    )


def _fold_literals(op: str, identity: float) -> Rule:
    def build(b) -> Optional[Term]:
        args = tuple(b["a"]) + tuple(b["b"]) + tuple(b["c"])
        x, y = b["x"], b["y"]
        folded = x * y if op == "*" else (
            x + y if op == "+" else (min(x, y) if op == "min" else max(x, y))
        )
        return Term(op, (folded,) + args)

    return Rule(
        pattern=Term(
            op,
            (
                Segment("a"),
                Var("x", _is_number),
                Segment("b"),
                Var("y", _is_number),
                Segment("c"),
            ),
        ),
        builder=build,
        name="fold-%s" % op,
    )


def _drop_identity(op: str, identity: float) -> Rule:
    def build(b) -> Optional[Any]:
        args = tuple(b["a"]) + tuple(b["b"])
        if not args:
            return None  # keep `op(identity)`; unary-collapse handles it
        return Term(op, args)

    return Rule(
        pattern=Term(op, (Segment("a"), Var("x", lambda v: _is_number(v) and v == identity), Segment("b"))),
        builder=build,
        name="identity-%s" % op,
    )


_ANNIHILATE_MUL = Rule(
    pattern=Term("*", (Segment("a"), Var("x", lambda v: _is_number(v) and v == 0), Segment("b"))),
    builder=lambda b: 0.0,
    name="annihilate-*",
)

_UNARY_COLLAPSE = Rule(
    pattern=Var("t", lambda t: isinstance(t, Term) and t.head in ("*", "+", "min", "max") and len(t.args) == 1),
    builder=lambda b: b["t"].args[0],
    name="unary-collapse",
)


def _sort_key(x: Any):
    if _is_number(x):
        return (0, "", (), float(x))
    if isinstance(x, Access):
        return (1, x.tensor, x.indices, 0.0)
    return (2, str(x), (), 0.0)


def _sort_operands(subject: Any) -> Optional[Term]:
    if not (isinstance(subject, Term) and subject.head in ("*", "+", "min", "max")):
        return None
    ordered = tuple(sorted(subject.args, key=_sort_key))
    if ordered == subject.args:
        return None
    return Term(subject.head, ordered)


SIMPLIFY_RULES = Chain(
    [
        _make_flatten_rule("*"),
        _make_flatten_rule("+"),
        _fold_literals("*", 1.0),
        _fold_literals("+", 0.0),
        _ANNIHILATE_MUL,
        _drop_identity("*", 1.0),
        _drop_identity("+", 0.0),
        _UNARY_COLLAPSE,
        _sort_operands,
    ]
)

_SIMPLIFIER = Fixpoint(PostWalk(SIMPLIFY_RULES))


def simplify_expression(expr: Any) -> Any:
    """Simplify an expression term to its normal form."""
    return rewrite(_SIMPLIFIER, expr)


def assignment_rhs_term(assignment) -> Any:
    """The RHS of an einsum assignment as a rewrite term."""
    ops = []
    for op in assignment.operands:
        if hasattr(op, "value"):
            ops.append(float(op.value))
        else:
            ops.append(op)
    if len(ops) == 1:
        return ops[0]
    return Term(assignment.combine_op, tuple(ops))
