"""Rules and rewriting strategies (the RewriteTools combinators).

A :class:`Rule` pairs a pattern with a builder: on match, the builder
receives the bindings and returns the replacement (or ``None`` to decline —
useful for side conditions that are easier to test in Python than to encode
in the pattern).  Strategies compose rules over terms:

* :class:`Chain` — try each rewriter in order, apply the first that fires;
* :class:`PreWalk` / :class:`PostWalk` — apply a rewriter at every node,
  top-down / bottom-up;
* :class:`Fixpoint` — iterate a rewriter until it stops changing the term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.rewrite.terms import Bindings, Term, is_term, match, substitute

Rewriter = Callable[[Any], Optional[Any]]


@dataclass
class Rule:
    """``pattern -> builder(bindings)``; builder may be a template term."""

    pattern: Any
    builder: Union[Any, Callable[[Bindings], Optional[Any]]]
    name: str = ""

    def __call__(self, subject: Any) -> Optional[Any]:
        for bindings in match(self.pattern, subject):
            if callable(self.builder):
                result = self.builder(bindings)
            else:
                result = substitute(self.builder, bindings)
            if result is not None:
                return result
        return None

    def __repr__(self) -> str:
        return "Rule(%s)" % (self.name or self.pattern)


@dataclass
class Chain:
    """Apply the first rewriter that fires; None if none do."""

    rewriters: Sequence[Rewriter]

    def __call__(self, subject: Any) -> Optional[Any]:
        for rw in self.rewriters:
            result = rw(subject)
            if result is not None:
                return result
        return None


@dataclass
class PostWalk:
    """Rewrite bottom-up: children first, then the node itself.

    Returns the rewritten term, or ``None`` when nothing fired anywhere
    (matching RewriteTools' convention so walks compose with Chain).
    """

    rewriter: Rewriter

    def __call__(self, subject: Any) -> Optional[Any]:
        changed = False
        if is_term(subject):
            new_args = []
            for arg in subject.args:
                result = self(arg)
                if result is not None:
                    changed = True
                    new_args.append(result)
                else:
                    new_args.append(arg)
            if changed:
                subject = Term(subject.head, tuple(new_args))
        result = self.rewriter(subject)
        if result is not None:
            return result
        return subject if changed else None


@dataclass
class PreWalk:
    """Rewrite top-down: the node first, then its children."""

    rewriter: Rewriter

    def __call__(self, subject: Any) -> Optional[Any]:
        changed = False
        result = self.rewriter(subject)
        if result is not None:
            subject = result
            changed = True
        if is_term(subject):
            new_args = []
            args_changed = False
            for arg in subject.args:
                r = self(arg)
                if r is not None:
                    args_changed = True
                    new_args.append(r)
                else:
                    new_args.append(arg)
            if args_changed:
                subject = Term(subject.head, tuple(new_args))
                changed = True
        return subject if changed else None


@dataclass
class Fixpoint:
    """Iterate a rewriter until no rule fires (with a safety bound)."""

    rewriter: Rewriter
    max_steps: int = 1000

    def __call__(self, subject: Any) -> Optional[Any]:
        changed = False
        for _ in range(self.max_steps):
            result = self.rewriter(subject)
            if result is None or result == subject:
                break
            subject = result
            changed = True
        else:
            raise RuntimeError("rewriting did not terminate")
        return subject if changed else None


def rewrite(rewriter: Rewriter, subject: Any) -> Any:
    """Apply a rewriter, returning the (possibly unchanged) term.

    This is the engine's single entry point, so it doubles as the
    observability choke point: each call records a ``rewrite`` span
    (with whether it fired) and bumps the ``rewrite.calls`` /
    ``rewrite.applied`` counters.  Strategies recursing into themselves
    do not re-enter here, so the cost stays one check per top-level
    rewrite, not per node.
    """
    if not (obs_trace.enabled() or obs_metrics.enabled()):
        result = rewriter(subject)
        return subject if result is None else result
    with obs_trace.span("rewrite", strategy=type(rewriter).__name__) as sp:
        result = rewriter(subject)
        applied = result is not None
        sp.add(applied=applied)
    obs_metrics.inc("rewrite.calls")
    if applied:
        obs_metrics.inc("rewrite.applied")
    return subject if result is None else result
