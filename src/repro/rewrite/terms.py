"""Terms, pattern variables and matching.

A *term* is ``Term(head, args)`` — an operator applied to subterms; leaves
are arbitrary hashable Python values (numbers, strings, einsum
:class:`~repro.frontend.einsum.Access` objects...).  Patterns are terms
containing :class:`Var` (matches one subterm) and :class:`Segment`
(matches any run of consecutive arguments — essential for rules over
variadic ``*`` / ``+`` nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple


@dataclass(frozen=True)
class Term:
    """An operator applied to arguments: ``Term("*", (a, b, c))``."""

    head: Any
    args: Tuple[Any, ...]

    def __post_init__(self):
        object.__setattr__(self, "args", tuple(self.args))

    def __str__(self) -> str:
        return "%s(%s)" % (self.head, ", ".join(str(a) for a in self.args))


@dataclass(frozen=True)
class Var:
    """A pattern variable; optionally constrained by a predicate."""

    name: str
    guard: Optional[Callable[[Any], bool]] = None

    def admits(self, value: Any) -> bool:
        return self.guard is None or bool(self.guard(value))

    def __str__(self) -> str:
        return "~%s" % self.name


@dataclass(frozen=True)
class Segment:
    """A segment variable: matches zero or more consecutive arguments."""

    name: str

    def __str__(self) -> str:
        return "~~%s" % self.name


def is_term(x: Any) -> bool:
    return isinstance(x, Term)


Bindings = Dict[str, Any]


def match(pattern: Any, subject: Any, bindings: Optional[Bindings] = None) -> Iterator[Bindings]:
    """Yield every binding of pattern variables that makes *pattern* equal
    *subject*.  Segment variables introduce backtracking, hence a generator.
    """
    if bindings is None:
        bindings = {}
    if isinstance(pattern, Var):
        if pattern.name in bindings:
            if bindings[pattern.name] == subject:
                yield bindings
            return
        if pattern.admits(subject):
            new = dict(bindings)
            new[pattern.name] = subject
            yield new
        return
    if isinstance(pattern, Segment):
        raise ValueError("segment variable %s outside argument list" % pattern)
    if isinstance(pattern, Term):
        if not isinstance(subject, Term) or pattern.head != subject.head:
            return
        yield from _match_args(pattern.args, subject.args, bindings)
        return
    if pattern == subject:
        yield bindings


def _match_args(pats: Tuple, subs: Tuple, bindings: Bindings) -> Iterator[Bindings]:
    if not pats:
        if not subs:
            yield bindings
        return
    head, rest = pats[0], pats[1:]
    if isinstance(head, Segment):
        if head.name in bindings:
            bound = bindings[head.name]
            k = len(bound)
            if tuple(subs[:k]) == tuple(bound):
                yield from _match_args(rest, subs[k:], bindings)
            return
        # try every split, shortest first
        for k in range(len(subs) + 1):
            new = dict(bindings)
            new[head.name] = tuple(subs[:k])
            yield from _match_args(rest, subs[k:], new)
        return
    for b in match(head, subs[0] if subs else _NO_ARG, bindings):
        yield from _match_args(rest, subs[1:], b)


class _NoArg:
    """Sentinel that matches nothing (argument list exhausted)."""

    def __eq__(self, other):
        return False


_NO_ARG = _NoArg()


def substitute(template: Any, bindings: Bindings) -> Any:
    """Instantiate a pattern/template with bound variables."""
    if isinstance(template, Var):
        if template.name not in bindings:
            raise KeyError("unbound variable %s" % template)
        return bindings[template.name]
    if isinstance(template, Segment):
        raise ValueError("segment variable %s outside argument list" % template)
    if isinstance(template, Term):
        args = []
        for a in template.args:
            if isinstance(a, Segment):
                args.extend(bindings.get(a.name, ()))
            else:
                args.append(substitute(a, bindings))
        return Term(template.head, tuple(args))
    return template
