"""Command-line interface — the artifact's ``run_SySTeC.jl`` equivalent.

::

    python -m repro compile "y[i] += A[i, j] * x[j]" --symmetric A \\
        --loop-order j,i            # print plan + generated kernel
    python -m repro kernels          # list the kernel library
    python -m repro bench fig06 --scale 0.02 --names saylr4,sherman5
    python -m repro table2           # print the matrix collection
    python -m repro serve-warmup --dir .repro-cache   # persist the library
    python -m repro cache --dir .repro-cache          # inspect the store
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_compile(args: argparse.Namespace) -> int:
    import os

    from repro import obs
    from repro.codegen.backends import BackendError
    from repro.core.compiler import compile_kernel
    from repro.core.config import DEFAULT
    from repro.core.analysis import describe_cost
    from repro.core.printer import finch_syntax

    if args.passes is not None:
        # the pass pipeline is configured through the environment (the
        # same channel the service cache keys), so an explicit --passes
        # simply pins REPRO_PASSES for this process
        os.environ["REPRO_PASSES"] = args.passes
    symmetric = {name: True for name in args.symmetric}
    loop_order = tuple(args.loop_order.split(",")) if args.loop_order else None
    options = DEFAULT
    if args.backend is not None:
        options = options.but(backend=args.backend)
    if args.dtype is not None:
        options = options.but(dtype=args.dtype)
    try:
        with obs.tracing() as recorder:
            kernel = compile_kernel(
                args.einsum,
                symmetric=symmetric,
                loop_order=loop_order,
                options=options,
                naive=args.naive,
            )
    except BackendError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.trace:
        print("=== trace ===")
        print(obs.format_tree(recorder))
        print()
    print("=== options ===")
    print(kernel.options.describe())
    print()
    print("=== plan ===")
    print(kernel.plan.describe())
    print()
    print("=== finch-style listing ===")
    print(finch_syntax(kernel.plan))
    print()
    print("=== cost model ===")
    print(describe_cost(kernel.plan))
    print()
    print("=== generated kernel (backend: %s) ===" % kernel.backend)
    print(kernel.source)
    if kernel.backend == "c":
        print("=== generated C ===")
        print(kernel.backend_source)
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.kernels.extensions import EXTENSIONS
    from repro.kernels.library import KERNELS

    print("evaluation kernels (Section 5.2):")
    for name, spec in sorted(KERNELS.items()):
        print("  %-12s %-14s %s" % (name, spec.paper_figure, spec.einsum))
    print("extension kernels:")
    for name, spec in sorted(EXTENSIONS.items()):
        print("  %-16s %s" % (name, spec.einsum))
    return 0


_FIGURES = {
    "fig06": "run_fig06_ssymv",
    "fig07": "run_fig07_bellmanford",
    "fig08": "run_fig08_syprd",
    "fig09": "run_fig09_ssyrk",
    "fig10": "run_fig10_ttm",
    "fig11": "run_fig11_mttkrp",
}


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import figures
    from repro.bench.harness import (
        format_table,
        record,
        summarize_speedups,
        trajectory_entries,
    )
    from repro.codegen.backends import BackendError
    from repro.core.config import resolve_threads

    runner = getattr(figures, _FIGURES[args.figure])
    kwargs = {"backend": args.backend, "dtype": args.dtype}
    if args.threads is not None:
        kwargs["threads"] = args.threads
    if args.plan:
        kwargs["use_plan"] = True
    if args.figure in ("fig06", "fig07", "fig08", "fig09"):
        kwargs["scale"] = args.scale
        if args.names:
            kwargs["names"] = tuple(args.names.split(","))
    try:
        results = runner(**kwargs)
    except BackendError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(format_table(results, title=args.figure))
    print("geomean SySTeC speedup: %.2fx" % summarize_speedups(results))
    if args.json is not None:
        from repro.core.config import default_threads

        # label entries with the thread count the kernels actually ran
        # with: --threads when given, else the REPRO_THREADS default
        resolved = resolve_threads(
            kwargs["threads"] if "threads" in kwargs else default_threads()
        )
        record(
            args.json,
            trajectory_entries(results, threads=resolved, dtype=args.dtype),
        )
        print("updated trajectory %s" % args.json)
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.data.matrices import table

    print("%-10s %10s %12s  %s" % ("name", "dimension", "nonzeros", "profile"))
    for info in table():
        print(
            "%-10s %10d %12d  %s"
            % (info.name, info.dimension, info.nnz, info.profile)
        )
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    import os

    from repro.codegen.backends import (
        BACKEND_NAMES,
        get_backend,
        resolve_backend_name,
    )
    from repro.codegen.backends.ctoolchain import probe
    from repro.core.config import (
        cpu_count,
        default_backend,
        default_dtype,
        default_threads,
        resolve_threads,
    )

    for name in BACKEND_NAMES:
        backend = get_backend(name)
        status = "available" if backend.is_available() else "unavailable"
        print("%-8s %-12s %s" % (name, status, backend.describe()))
    print("%-8s %-12s resolves to %r on this machine" % (
        "auto", "-", resolve_backend_name("auto")))
    print()
    tc = probe()
    if tc is None:
        print("openmp: unavailable (no working compiler)")
    elif tc.openmp:
        print("openmp: available (%s)" % " ".join(tc.openmp_flags))
    else:
        print("openmp: unavailable (compiler lacks -fopenmp support)")
    setting = default_threads()
    print(
        "default threads: %d of %d cpus (REPRO_THREADS=%s)"
        % (
            resolve_threads(setting),
            cpu_count(),
            os.environ.get("REPRO_THREADS", "<unset>"),
        )
    )
    print("process default (REPRO_BACKEND): %s" % default_backend())
    print("default dtype (REPRO_DTYPE): %s" % default_dtype())
    print()
    from repro.codegen.backends.cpasses import active_pass_config, describe_passes

    config = active_pass_config()
    print("C renderer passes (REPRO_PASSES=%s):" % (
        os.environ.get("REPRO_PASSES", "<unset>")))
    for name, enabled, description in describe_passes(config):
        print("  %-10s %-4s %s" % (name, "on" if enabled else "off", description))
    print("active pass signature: %s" % config.signature())
    return 0


def _cmd_serve_warmup(args: argparse.Namespace) -> int:
    from repro.service import KernelService

    try:
        service = KernelService(capacity=args.capacity, store=args.dir)
    except NotADirectoryError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    names = tuple(args.kernels.split(",")) if args.kernels else None
    try:
        reports = service.warmup(names=names, include_extensions=args.extensions)
    except KeyError as exc:
        print("error: %s" % exc.args[0], file=sys.stderr)
        return 2
    print("warmed %d kernels%s:" % (len(reports), (" into %s" % args.dir) if args.dir else ""))
    for report in reports:
        print(
            "  %-16s %-8s %8.2f ms  %s"
            % (report.name, report.source, report.seconds * 1e3, report.key[:12])
        )
    print()
    print(service.stats().describe())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the kernel-service daemon until drained (SIGTERM/SIGINT or a
    ``shutdown`` request)."""
    import asyncio

    from repro.serve import client as serve_client
    from repro.serve.daemon import KernelServer
    from repro.service import KernelService

    # belt and braces on top of the per-service use_remote=False: a
    # daemon process whose environment carries REPRO_SERVICE (its own
    # socket, say) must never become anyone's client
    serve_client.disable_in_process()
    try:
        service = KernelService(capacity=args.capacity, store=args.dir)
    except NotADirectoryError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    server = KernelServer(
        args.socket,
        service,
        queue_limit=args.queue,
        workers=args.workers,
        deadline=args.deadline,
        plan_pool_size=args.plans,
    )

    def ready() -> None:
        print(
            "serving on unix:%s (store: %s, queue %d, %d workers%s)"
            % (
                args.socket,
                args.dir or "memory-only",
                server.queue_limit,
                server.workers,
                ", warmed %d" % server.warmed if args.warm else "",
            ),
            flush=True,
        )

    try:
        asyncio.run(server.run(warm=args.warm, on_ready=ready))
    except RuntimeError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    print(
        "drained: %d requests, %d shed, %d coalesced, %d errors"
        % (server.requests, server.shed, server.coalesced, server.errors),
        flush=True,
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.service import DiskStore

    try:
        store = DiskStore(args.dir)
    except NotADirectoryError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.action == "gc":
        limit = args.max_bytes if args.max_bytes is not None else store.max_bytes
        if limit is None:
            print(
                "error: no size bound — pass --max-bytes or set "
                "$REPRO_STORE_MAX_BYTES",
                file=sys.stderr,
            )
            return 2
        before = store.size_bytes()
        removed, freed = store.gc(limit)
        doc = {
            "dir": str(args.dir),
            "max_bytes": limit,
            "before_bytes": before,
            "after_bytes": before - freed,
            "removed": removed,
            "freed_bytes": freed,
        }
        if args.json:
            print(json.dumps(doc, indent=1, sort_keys=True))
        else:
            print(
                "gc %s: removed %d entries, freed %d bytes (%d -> %d, bound %d)"
                % (args.dir, removed, freed, before, before - freed, limit)
            )
        return 0
    entries = store.entries()
    if args.json:
        doc = {
            "dir": str(args.dir),
            "count": len(entries),
            "entries": [
                {
                    "key": entry.key,
                    "einsum": entry.einsum,
                    "options": entry.options_line,
                    "naive": entry.naive,
                    "size_bytes": entry.size_bytes,
                }
                for entry in entries
            ],
        }
        if args.clear:
            doc["cleared"] = store.clear()
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0
    if not entries:
        print("cache %s is empty" % args.dir)
        return 0
    print("cache %s: %d kernels" % (args.dir, len(entries)))
    for entry in entries:
        print("  %s  %s" % (entry.key[:12], entry.einsum))
        print("    %s  (%d bytes)" % (entry.options_line, entry.size_bytes))
    if args.clear:
        removed = store.clear()
        print("cleared %d entries" % removed)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.service import KernelService

    try:
        service = KernelService(capacity=args.capacity, store=args.dir)
    except NotADirectoryError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.warmup:
        service.warmup()
    stats = service.stats()
    if args.json:
        print(json.dumps(stats.to_dict(), indent=1, sort_keys=True))
    else:
        print(stats.describe())
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import json

    from repro import tune
    from repro.bench.backend_bench import _inputs_for
    from repro.codegen.backends import BackendError, get_backend
    from repro.kernels.extensions import EXTENSIONS
    from repro.kernels.library import KERNELS
    from repro.tune.search import parse_budget

    if not get_backend("c").is_available():
        print(
            "error: tuning needs a working C toolchain (only the C "
            "backend has tunable variants)",
            file=sys.stderr,
        )
        return 2
    specs = dict(KERNELS)
    specs.update(EXTENSIONS)
    if args.kernel not in specs:
        print(
            "error: unknown kernel %r (choices: %s)"
            % (args.kernel, ", ".join(sorted(specs))),
            file=sys.stderr,
        )
        return 2
    budget_spec = (
        args.budget if args.budget is not None else tune.default_budget()
    )
    try:
        budget_s = parse_budget(budget_spec)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    # dense rows are where the tile pass pays; ssyrk's acceptance shape
    # uses them, the other kernels keep the figure suite's density
    nnz_per_row = args.nnz_per_row
    if nnz_per_row is None:
        nnz_per_row = 64.0 if args.kernel == "ssyrk" else 12.0
    from repro.tune.measure import tune_kernel

    try:
        inputs = _inputs_for(args.kernel, args.n, nnz_per_row)
        report = tune_kernel(
            specs[args.kernel],
            inputs,
            budget_s=budget_s,
            dtype=args.dtype,
            db_path=args.db,
            name=args.kernel,
            params={"n": args.n, "nnz_per_row": nnz_per_row},
        )
    except (BackendError, TimeoutError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.describe())
    return 0 if report.result.best is not None else 1


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Probe toolchain / store / OpenMP health and report the active
    degradation ladder.  Exit 0 when fully healthy, 1 when degraded."""
    import json as _json
    import os

    from repro import faults
    from repro.codegen.backends import health
    from repro.codegen.backends import ctoolchain
    from repro.core.config import cc_retries, cc_timeout, lock_timeout

    report = {"healthy": True, "checks": {}}

    tc = ctoolchain.probe()
    if tc is None:
        report["checks"]["toolchain"] = {
            "ok": False,
            "detail": "no working C compiler (set $REPRO_CC, or unset "
            "$REPRO_NO_CC); kernels run interpreted",
        }
    else:
        report["checks"]["toolchain"] = {"ok": True, "detail": tc.describe()}
        report["checks"]["openmp"] = {
            "ok": tc.openmp,
            "detail": "-fopenmp probe %s"
            % ("succeeded" if tc.openmp else "failed; kernels run serial"),
        }
    timeout = cc_timeout()
    report["checks"]["limits"] = {
        "ok": True,
        "detail": "cc timeout %s, %d retries, lock timeout %.0fs"
        % (
            "disabled" if timeout is None else "%.0fs" % timeout,
            cc_retries(),
            lock_timeout(),
        ),
    }
    from repro.codegen.backends.cpasses import active_pass_config

    report["checks"]["passes"] = {
        "ok": True,
        "detail": "active C pass set: %s (REPRO_PASSES=%s)"
        % (
            active_pass_config().signature(),
            os.environ.get("REPRO_PASSES", "<unset>"),
        ),
    }

    if args.dir is not None:
        probe_path = None
        try:
            from repro.service.store import DiskStore

            store = DiskStore(args.dir)
            entries = sum(1 for _ in store.keys())
            probe_path = store.path / ".doctor-probe.tmp"
            probe_path.write_bytes(b"ok")
            probe_path.unlink()
            report["checks"]["store"] = {
                "ok": True,
                "detail": "%s: %d entries, writable" % (store.path, entries),
            }
        except OSError as exc:
            report["checks"]["store"] = {
                "ok": False,
                "detail": "%s: %s" % (args.dir, exc),
            }
            if probe_path is not None:
                try:
                    probe_path.unlink()
                except OSError:
                    pass

    socket_path = args.socket
    if socket_path is None and os.environ.get("REPRO_SERVICE"):
        from repro.serve.client import parse_endpoint

        try:
            socket_path = parse_endpoint(os.environ["REPRO_SERVICE"])
        except ValueError:
            socket_path = None
            report["checks"]["daemon"] = {
                "ok": False,
                "detail": "malformed $REPRO_SERVICE value %r"
                % os.environ["REPRO_SERVICE"],
            }
    if socket_path is not None:
        from repro.serve.client import RemoteError, ServiceClient

        client = ServiceClient(socket_path, timeout=2.0, retries=0)
        try:
            reply = client.health()
            report["checks"]["daemon"] = {
                "ok": True,
                "detail": "unix:%s %s (pid %s, protocol %s, up %.0fs)"
                % (
                    socket_path,
                    reply.get("status", "?"),
                    reply.get("pid", "?"),
                    reply.get("protocol", "?"),
                    reply.get("uptime_s", 0.0),
                ),
            }
        except (RemoteError, OSError) as exc:
            report["checks"]["daemon"] = {
                "ok": False,
                "detail": "unix:%s unreachable (%s); clients fall back "
                "in-process" % (socket_path, exc),
            }
        finally:
            client.close()

    snapshot = health.snapshot()
    report["health"] = snapshot
    report["ladder"] = snapshot["ladder"]
    if faults.enabled():
        report["faults"] = {"spec": faults.spec_text(), "fired": faults.fired()}
    if os.environ.get("REPRO_NO_DEGRADE"):
        report["degradation"] = "disabled (REPRO_NO_DEGRADE)"
    report["healthy"] = all(
        check["ok"] for check in report["checks"].values()
    ) and not snapshot["degraded"]

    if args.json:
        print(_json.dumps(report, indent=1, sort_keys=True))
    else:
        for name, check in sorted(report["checks"].items()):
            print("%-10s %s  %s" % (name, "ok" if check["ok"] else "FAIL", check["detail"]))
        print("%-10s %s" % ("ladder", " -> ".join(report["ladder"])))
        if snapshot["degraded"]:
            for tier, info in snapshot["tiers"].items():
                if info["failures"]:
                    print(
                        "%-10s %s failed %d time(s): %s"
                        % ("", tier, info["failures"], (info["errors"] or ["?"])[0])
                    )
        if "faults" in report:
            print("%-10s %s" % ("faults", report["faults"]["spec"]))
    return 0 if report["healthy"] else 1


def _synth_inputs(kernel, size: int):
    """Synthetic input tensors for *kernel*, honoring declared symmetry.

    Each input is dense random data in the kernel's element dtype; tensors
    with symmetric mode groups are symmetrized by taking the elementwise
    maximum over the orbit of axis permutations within each group (max is
    idempotent, so composing groups preserves earlier symmetrization).
    """
    from itertools import permutations

    import numpy as np

    rng = np.random.default_rng(0)
    dtype = np.dtype(kernel.options.dtype)
    assignment = kernel.plan.original
    symmetric_modes = kernel.plan.symmetric_modes
    tensors = {}
    for acc in assignment.accesses:
        name = acc.tensor
        if name in tensors:
            continue
        ndim = len(acc.indices)
        arr = rng.random((size,) * ndim)
        for part in symmetric_modes.get(name, ()):
            if len(part) < 2:
                continue
            orbit = arr
            for perm in permutations(part):
                axes = list(range(ndim))
                for mode, image in zip(part, perm):
                    axes[mode] = image
                orbit = np.maximum(orbit, np.transpose(arr, axes))
            arr = orbit
        tensors[name] = np.ascontiguousarray(arr, dtype=dtype)
    return tensors


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.codegen.backends import BackendError
    from repro.core.config import DEFAULT
    from repro.kernels.extensions import EXTENSIONS
    from repro.kernels.library import KERNELS
    from repro.service import KernelService

    specs = dict(KERNELS)
    specs.update(EXTENSIONS)
    if args.einsum in specs:
        spec = specs[args.einsum]
        request = dict(
            symmetric=dict(spec.symmetric),
            loop_order=spec.loop_order,
            formats=dict(spec.formats),
        )
        einsum = spec.einsum
    else:
        request = dict(
            symmetric={name: True for name in args.symmetric},
            loop_order=(
                tuple(args.loop_order.split(",")) if args.loop_order else None
            ),
        )
        einsum = args.einsum
    options = DEFAULT
    if args.backend is not None:
        options = options.but(backend=args.backend)
    if args.dtype is not None:
        options = options.but(dtype=args.dtype)
    service = KernelService()
    try:
        with obs.tracing() as recorder:
            # cold: full compile pipeline; warm: in-memory cache hit
            kernel = service.get_or_compile(einsum, options=options, **request)
            service.get_or_compile(einsum, options=options, **request)
            tensors = _synth_inputs(kernel, args.size)
            plan = kernel.execution_plan(**tensors)
            for _ in range(max(1, args.calls)):
                plan()
    except BackendError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    spans = obs.write_chrome_trace(args.out, recorder)
    print(
        "wrote %d spans to %s (chrome://tracing or https://ui.perfetto.dev)"
        % (spans, args.out)
    )
    if args.tree:
        print()
        print(obs.format_tree(recorder))
    return 0


def _threads_arg(value: str):
    """argparse type for thread counts: ``auto`` or a positive integer."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
        if count < 1:
            raise ValueError(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected 'auto' or a positive integer, got %r" % value
        )
    return count


_ENV_EPILOG = """\
environment:
  REPRO_BACKEND        default execution backend (python | c | auto)
  REPRO_THREADS        default C-backend thread count (N | auto)
  REPRO_DTYPE          default element dtype (float64 | float32)
  REPRO_OMP_STRATEGY   OpenMP emission mode (auto | serial | atomic)
  REPRO_PASSES         C loop-optimization pass selection: comma tokens
                       over {denormals, fission, fuse, tile, simd} with
                       optional +/-/! prefixes, or none/all/default
                       (default: 'fuse,simd'; keyed into the cache)
  REPRO_TILE           row-block size for the tile pass (0 = auto ~1MiB
                       of output rows per block)
  REPRO_TUNED          tuning database (TUNED.json) consulted at
                       plan-bind time: measured thread counts and pass
                       sets per (kernel, shape class, machine class),
                       falling back to the cost model on any miss
                       (populate with `repro tune`)
  REPRO_TUNE_BUDGET    default `repro tune` search budget, e.g. 5s / 2m
                       (default 30s)
  REPRO_NO_TUNE=1      ignore REPRO_TUNED entirely — cost-model-only
                       thread resolution and default pass selection
  REPRO_TRACE=1        record spans over compile/service/execution
                       (export with `repro trace` / `repro compile --trace`)
  REPRO_METRICS=1      process-wide counters + latency histograms
                       (read back with `repro stats --json`)
  REPRO_PROFILE=1      compile per-nest wall-time instrumentation into C
                       kernels (cached under a separate key, so profiled
                       builds never alias production artifacts)
  REPRO_CC_TIMEOUT     seconds before a hung cc invocation is killed and
                       retried (default 60; 0 disables the bound)
  REPRO_CC_RETRIES     retries for transient cc failures — timeouts and
                       signal kills, with exponential backoff (default 2)
  REPRO_CC_BACKOFF     initial retry backoff in seconds (default 0.25;
                       doubled per attempt, with jitter)
  REPRO_LOCK_TIMEOUT   seconds to wait on another process's compile lock
                       before building privately (default 120)
  REPRO_NO_DEGRADE=1   disable the backend degradation ladder
                       (c@omp -> c -> python); failures propagate raw
  REPRO_FAULTS         deterministic fault injection, e.g.
                       'cc=timeout@2*1,dlopen=fail*1' (see repro.faults)
  REPRO_SERVICE        kernel-service daemon endpoint (unix:/path.sock);
                       clients try it for cold keys, retry transient
                       errors, then fall back in-process bit-identically
  REPRO_SERVICE_RETRIES  client retries before falling back (default 2)
  REPRO_SERVICE_BACKOFF  initial client retry backoff seconds (default
                       0.05; doubled per attempt, capped at 1s)
  REPRO_SERVICE_TIMEOUT  client socket timeout seconds (default 30)
  REPRO_SERVE_QUEUE    daemon admission bound; excess requests are shed
                       with a structured 'overloaded' reply (default 32)
  REPRO_SERVE_WORKERS  daemon compile/execute threads (default 4)
  REPRO_SERVE_DEADLINE daemon per-request deadline seconds (default 30;
                       0 disables)
  REPRO_SERVE_READ_TIMEOUT  seconds a started frame may dribble before
                       the connection is dropped (slowloris bound;
                       default 30, 0 disables)
  REPRO_SERVE_DRAIN    seconds SIGTERM waits for in-flight requests
                       before exiting anyway (default 10)
  REPRO_SERVE_MAX_FRAME  wire frame size bound in bytes (default 64MiB)
  REPRO_SERVE_PLANS    daemon warm execution-plan pool size (default 32)
  REPRO_STORE_MAX_BYTES  disk-store size bound; every put triggers
                       LRU-by-atime eviction, `repro cache gc` applies
                       it manually (default: unbounded)
"""


def build_parser() -> argparse.ArgumentParser:
    from repro.core.config import BACKEND_CHOICES, DTYPE_CHOICES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SySTeC symmetric sparse tensor compiler",
        epilog=_ENV_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile an einsum and show the result")
    p.add_argument("einsum")
    p.add_argument(
        "--symmetric",
        action="append",
        default=[],
        metavar="TENSOR",
        help="declare a fully symmetric tensor (repeatable)",
    )
    p.add_argument("--loop-order", default=None, help="comma-separated, outermost first")
    p.add_argument("--naive", action="store_true", help="build the naive baseline")
    p.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default=None,
        help="execution backend (default: $REPRO_BACKEND or python)",
    )
    p.add_argument(
        "--dtype",
        choices=DTYPE_CHOICES,
        default=None,
        help="element dtype (default: $REPRO_DTYPE or float64)",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the compile pipeline's span tree before the listing",
    )
    p.add_argument(
        "--passes",
        default=None,
        metavar="SPEC",
        help="C optimization-pass selection (sets REPRO_PASSES; e.g. "
        "'all', 'none', 'default,+tile', 'fission,tile')",
    )
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("kernels", help="list the kernel library")
    p.set_defaults(fn=_cmd_kernels)

    p = sub.add_parser("bench", help="run one figure's experiment")
    p.add_argument("figure", choices=sorted(_FIGURES))
    p.add_argument("--scale", type=float, default=0.02)
    p.add_argument("--names", default=None, help="comma-separated matrix names")
    p.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="python",
        help="execution backend both methods run on (default: python)",
    )
    p.add_argument(
        "--threads",
        default=None,
        type=_threads_arg,
        metavar="N|auto",
        help="C-backend thread count both methods run with (default: 1)",
    )
    p.add_argument(
        "--dtype",
        choices=DTYPE_CHOICES,
        default="float64",
        help="element dtype both methods run in (default: float64)",
    )
    p.add_argument(
        "--plan",
        action="store_true",
        help="time through reusable execution plans (the repeat-execution "
        "fast path) instead of per-call run dispatch",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        const="BENCH_backends.json",
        nargs="?",
        help="merge results into a perf-trajectory JSON "
        "(default path: BENCH_backends.json)",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "backends", help="show execution backends and toolchain status"
    )
    p.set_defaults(fn=_cmd_backends)

    p = sub.add_parser(
        "tune",
        help="autotune a library kernel and record the winner",
        description=(
            "Search the C backend's variant space (threads, OpenMP "
            "strategy, loop-pass set, tile size) for one kernel with "
            "budgeted timed runs.  Every candidate must be bit-identical "
            "to the untuned baseline before it is timed; the winner is "
            "merged into the tuning database, which REPRO_TUNED-enabled "
            "processes consult at plan-bind time (falling back to the "
            "cost model on any miss)."
        ),
    )
    p.add_argument("kernel", help="library kernel name (see `repro kernels`)")
    p.add_argument(
        "--budget",
        default=None,
        help="search budget, e.g. 5s or 2m (default: $REPRO_TUNE_BUDGET "
        "or 30s)",
    )
    p.add_argument(
        "--n", type=int, default=2000, help="problem size (default 2000)"
    )
    p.add_argument(
        "--nnz-per-row",
        type=float,
        default=None,
        help="sparse row density (default: 64 for ssyrk, else 12)",
    )
    p.add_argument(
        "--dtype",
        default="float64",
        choices=("float64", "float32"),
        help="element dtype to tune for",
    )
    p.add_argument(
        "--db",
        default="TUNED.json",
        help="tuning database to merge the result into (default: "
        "TUNED.json in the current directory)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("table2", help="print the Table 2 matrix collection")
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser(
        "serve-warmup",
        help="pre-compile the kernel library into a kernel-service cache",
    )
    p.add_argument(
        "--dir",
        default=None,
        help="disk-store directory (omit for a memory-only dry run)",
    )
    p.add_argument("--kernels", default=None, help="comma-separated subset")
    p.add_argument(
        "--extensions", action="store_true", help="include extension kernels"
    )
    p.add_argument("--capacity", type=int, default=128, help="LRU capacity")
    p.set_defaults(fn=_cmd_serve_warmup)

    p = sub.add_parser(
        "cache", help="inspect, clear, or garbage-collect an on-disk kernel cache"
    )
    p.add_argument(
        "action",
        nargs="?",
        choices=("list", "gc"),
        default="list",
        help="list entries (default) or evict LRU entries down to the bound",
    )
    p.add_argument("--dir", required=True, help="disk-store directory")
    p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="gc size bound in bytes (default: $REPRO_STORE_MAX_BYTES)",
    )
    p.add_argument(
        "--clear", action="store_true", help="remove every entry after listing"
    )
    p.add_argument(
        "--json", action="store_true", help="emit the listing as JSON"
    )
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the kernel-service daemon on a unix socket",
        description=(
            "Serve compile/execute requests over a unix socket: one "
            "long-lived process owns the kernel cache, the disk store and "
            "a pool of warm execution plans.  Clients set "
            "REPRO_SERVICE=unix:SOCKET and transparently fall back to "
            "in-process compilation when the daemon is unreachable.  "
            "SIGTERM drains gracefully; a killed daemon's socket and lock "
            "are reclaimed on the next start."
        ),
    )
    p.add_argument("--socket", required=True, help="unix socket path to serve on")
    p.add_argument(
        "--dir",
        default=None,
        help="disk-store directory (omit for a memory-only daemon)",
    )
    p.add_argument("--capacity", type=int, default=128, help="LRU capacity")
    p.add_argument(
        "--queue",
        type=int,
        default=None,
        help="admission bound; excess requests shed with 'overloaded' "
        "(default: $REPRO_SERVE_QUEUE)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="compile/execute worker threads (default: $REPRO_SERVE_WORKERS)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request deadline seconds (default: $REPRO_SERVE_DEADLINE)",
    )
    p.add_argument(
        "--plans",
        type=int,
        default=None,
        help="warm execution-plan pool size (default: $REPRO_SERVE_PLANS)",
    )
    p.add_argument(
        "--warm",
        action="store_true",
        help="rehydrate every disk-store entry into the LRU before serving",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "trace",
        help="trace one kernel end to end and export Chrome trace JSON",
        description=(
            "Compile an einsum (or a named library kernel) cold, hit the "
            "service cache warm, then execute a reusable plan on synthetic "
            "inputs — all under the span recorder — and export the result "
            "as Chrome trace_event JSON (load in chrome://tracing or "
            "https://ui.perfetto.dev)."
        ),
    )
    p.add_argument("einsum", help="einsum string or library kernel name")
    p.add_argument(
        "--symmetric",
        action="append",
        default=[],
        metavar="TENSOR",
        help="declare a fully symmetric tensor (repeatable)",
    )
    p.add_argument("--loop-order", default=None, help="comma-separated, outermost first")
    p.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default=None,
        help="execution backend (default: $REPRO_BACKEND or python)",
    )
    p.add_argument(
        "--dtype",
        choices=DTYPE_CHOICES,
        default=None,
        help="element dtype (default: $REPRO_DTYPE or float64)",
    )
    p.add_argument(
        "--size", type=int, default=32, help="synthetic input extent per mode"
    )
    p.add_argument(
        "--calls", type=int, default=3, help="plan executions to record"
    )
    p.add_argument(
        "--out", default="trace.json", metavar="PATH", help="output JSON path"
    )
    p.add_argument(
        "--tree", action="store_true", help="also print the human span tree"
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "stats", help="show kernel-service statistics (optionally as JSON)"
    )
    p.add_argument(
        "--dir",
        default=None,
        help="disk-store directory to count entries in (omit for memory-only)",
    )
    p.add_argument(
        "--warmup",
        action="store_true",
        help="warm the kernel library first so the counters have content",
    )
    p.add_argument("--capacity", type=int, default=128, help="LRU capacity")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit JSON (includes the metrics registry when REPRO_METRICS=1)",
    )
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "doctor",
        help="probe toolchain/store/OpenMP health and the degradation ladder",
    )
    p.add_argument(
        "--dir",
        default=None,
        help="disk-store directory to check for readability/writability",
    )
    p.add_argument(
        "--socket",
        default=None,
        help="kernel-service daemon socket to probe for reachability "
        "(default: $REPRO_SERVICE when set)",
    )
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(fn=_cmd_doctor)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
