"""Parser for the textual einsum language.

Grammar (whitespace-insensitive)::

    assignment := access UPDATE rhs
    UPDATE     := "+=" | "min=" | "max=" | "="
    rhs        := operand (COMBINE operand)*
    COMBINE    := "*" | "+"
    operand    := NUMBER | access | NAME          # bare NAME is a scalar
    access     := NAME "[" (NAME ("," NAME)*)? "]"

All combine operators in one assignment must agree (the RHS is a flat
product or a flat sum, matching the pointwise-einsum input language of the
paper).  ``a = b`` is accepted as sugar for ``a += b`` over a zeroed output.

Note on sparse semantics: when an operand tensor is stored sparse, kernels
iterate its stored entries, so the combine operator's annihilator must be
the fill value — ``*`` pairs with ``+=`` (0 annihilates a product) and
``+`` pairs with ``min=``/``max=`` (the implicit ±inf of a missing edge
annihilates a sum), exactly the semiring pairs the paper evaluates.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.frontend.einsum import Access, Assignment, Literal, Operand


class ParseError(ValueError):
    """Raised when an einsum string cannot be parsed."""


_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d*|\.\d+|\d+)"
    r"|(?P<update>\+=|min=|max=|=)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<punct>[\[\],*+])"
    r")"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError("unexpected character at %r" % remainder[:10])
        pos = match.end()
        kind = match.lastgroup
        tokens.append((kind, match.group(kind)))
    return tokens


class _Cursor:
    def __init__(self, tokens: List[Tuple[str, str]], text: str):
        self.tokens = tokens
        self.pos = 0
        self.text = text

    def peek(self) -> Tuple[str, str]:
        if self.pos >= len(self.tokens):
            return ("eof", "")
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, kind: str, value: str = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            raise ParseError(
                "expected %s%s, got %r in %r"
                % (kind, " %r" % value if value else "", got_value, self.text)
            )
        return got_value


def _parse_access(cur: _Cursor) -> Access:
    name = cur.expect("name")
    indices: List[str] = []
    kind, value = cur.peek()
    if kind == "punct" and value == "[":
        cur.next()
        while True:
            kind, value = cur.peek()
            if kind == "punct" and value == "]":
                cur.next()
                break
            indices.append(cur.expect("name"))
            kind, value = cur.peek()
            if kind == "punct" and value == ",":
                cur.next()
            elif kind == "punct" and value == "]":
                cur.next()
                break
            else:
                raise ParseError("expected ',' or ']' in access, got %r" % (value,))
    return Access(name, tuple(indices))


def _parse_operand(cur: _Cursor) -> Operand:
    kind, value = cur.peek()
    if kind == "number":
        cur.next()
        return Literal(float(value))
    if kind == "name":
        return _parse_access(cur)
    raise ParseError("expected operand, got %r" % (value,))


def parse_assignment(text: str) -> Assignment:
    """Parse an einsum assignment string into an :class:`Assignment`.

    >>> str(parse_assignment("y[i] += A[i, j] * x[j]"))
    'y[i] += A[i, j] * x[j]'
    >>> parse_assignment("y[i] min= A[i, j] + d[j]").reduce_op
    'min'
    """
    cur = _Cursor(_tokenize(text), text)
    lhs = _parse_access(cur)
    kind, update = cur.next()
    if kind != "update":
        raise ParseError("expected update operator after %s in %r" % (lhs, text))
    reduce_op = {"+=": "+", "min=": "min", "max=": "max", "=": "+"}[update]

    operands: List[Operand] = [_parse_operand(cur)]
    combine_op = None
    while True:
        kind, value = cur.peek()
        if kind == "eof":
            break
        if kind != "punct" or value not in ("*", "+"):
            raise ParseError("expected '*' or '+', got %r in %r" % (value, text))
        cur.next()
        if combine_op is None:
            combine_op = value
        elif combine_op != value:
            raise ParseError(
                "mixed combine operators %r and %r; the rhs must be a flat "
                "product or a flat sum" % (combine_op, value)
            )
        operands.append(_parse_operand(cur))
    if combine_op is None:
        combine_op = "*"
    return Assignment(lhs=lhs, reduce_op=reduce_op, operands=tuple(operands), combine_op=combine_op)
