"""Static and runtime validation of einsum assignments.

Catches the mistakes a user can make before they turn into wrong answers
deep inside a generated loop nest: an index used with two different
extents, a symmetry declared across modes of different sizes, a symmetric
tensor whose payload is not actually symmetric, or a semiring pairing whose
combine operator is not annihilated by the sparse fill value.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.frontend.einsum import Assignment

ModeParts = Mapping[str, Tuple[Tuple[int, ...], ...]]


class ValidationError(ValueError):
    """A malformed assignment / declaration / input."""


def validate_assignment(
    assignment: Assignment, symmetric_modes: Optional[ModeParts] = None
) -> None:
    """Structural checks that need no runtime data."""
    symmetric_modes = dict(symmetric_modes or {})

    ndims: Dict[str, int] = {}
    for acc in assignment.accesses + (assignment.lhs,):
        prev = ndims.setdefault(acc.tensor, acc.ndim)
        if prev != acc.ndim:
            raise ValidationError(
                "tensor %r is used with both %d and %d modes"
                % (acc.tensor, prev, acc.ndim)
            )

    if len(set(assignment.lhs.indices)) != len(assignment.lhs.indices):
        raise ValidationError(
            "output access %s repeats an index" % (assignment.lhs,)
        )

    out_only = set(assignment.lhs.indices) - {
        i for acc in assignment.accesses for i in acc.indices
    }
    if out_only:
        raise ValidationError(
            "output indices %s are bound by no input" % sorted(out_only)
        )

    for name, parts in symmetric_modes.items():
        if name not in ndims:
            raise ValidationError("symmetric tensor %r is not used" % name)
        for part in parts:
            for m in part:
                if not 0 <= m < ndims[name]:
                    raise ValidationError(
                        "symmetry of %r mentions mode %d outside range(%d)"
                        % (name, m, ndims[name])
                    )


def validate_semiring(
    assignment: Assignment, sparse_tensors: Sequence[str]
) -> None:
    """The combine operator's annihilator must equal the sparse fill.

    ``*`` with ``+=`` (fill 0 annihilates products) and ``+`` with
    ``min=``/``max=`` (the implicit infinite fill annihilates sums) are the
    valid pairs; anything else silently drops contributions from implicit
    zeros, so reject it loudly.
    """
    touches_sparse = any(
        acc.tensor in sparse_tensors for acc in assignment.accesses
    )
    if not touches_sparse:
        return
    valid = {("+", "*"), ("min", "+"), ("max", "+")}
    pair = (assignment.reduce_op, assignment.combine_op)
    if pair not in valid:
        raise ValidationError(
            "reduce %r with combine %r cannot iterate a sparse operand: "
            "the fill value does not annihilate the combine operator"
            % pair
        )


def validate_inputs(
    assignment: Assignment,
    symmetric_modes: ModeParts,
    tensors: Mapping[str, np.ndarray],
    check_symmetry: bool = False,
) -> Dict[str, int]:
    """Runtime checks: consistent extents (and, optionally, that declared
    symmetric inputs really are symmetric).  Returns index extents.
    """
    extents: Dict[str, int] = {}
    for acc in assignment.accesses:
        if acc.tensor not in tensors:
            raise ValidationError("missing input tensor %r" % acc.tensor)
        arr = tensors[acc.tensor]
        kind = getattr(getattr(arr, "dtype", None), "kind", None)
        if kind is not None and kind not in "fiub":
            # complex / object / string payloads would fail deep inside a
            # generated loop (or worse, inside a ctypes call) — reject at
            # the door; real dtypes are cast to the kernel dtype at bind
            raise ValidationError(
                "tensor %r has non-real dtype %s (supported: float32/"
                "float64, plus int/bool inputs promoted at binding)"
                % (acc.tensor, arr.dtype)
            )
        if np.ndim(arr) != acc.ndim:
            raise ValidationError(
                "tensor %r has %d modes, access %s expects %d"
                % (acc.tensor, np.ndim(arr), acc, acc.ndim)
            )
        for mode, idx in enumerate(acc.indices):
            extent = int(np.shape(arr)[mode])
            prev = extents.setdefault(idx, extent)
            if prev != extent:
                raise ValidationError(
                    "index %r has extent %d in %s but %d elsewhere"
                    % (idx, extent, acc, prev)
                )

    for name, parts in symmetric_modes.items():
        arr = tensors.get(name)
        if arr is None:
            continue
        shape = np.shape(arr)
        for part in parts:
            sizes = {shape[m] for m in part}
            if len(sizes) > 1:
                raise ValidationError(
                    "symmetric modes %s of %r have unequal sizes %s"
                    % (part, name, sorted(sizes))
                )
        if check_symmetry and isinstance(arr, np.ndarray):
            for part in parts:
                if len(part) < 2:
                    continue
                perm = list(range(np.ndim(arr)))
                perm[part[0]], perm[part[1]] = perm[part[1]], perm[part[0]]
                if not np.allclose(arr, np.transpose(arr, perm)):
                    raise ValidationError(
                        "tensor %r is declared symmetric across modes %s "
                        "but its values are not" % (name, part)
                    )
    return extents
