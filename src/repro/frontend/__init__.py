"""Einsum frontend: the assignment AST and the textual parser.

The frontend mirrors the input language of SySTeC (CGO 2025): a single
pointwise einsum assignment such as ``C[i, j] += A[i, k, l] * B[k, j] *
B[l, j]`` together with a declaration of which input tensors are symmetric.
"""

from repro.frontend.einsum import (
    Access,
    Assignment,
    Literal,
    Operand,
    REDUCE_IDENTITY,
    REDUCE_IDEMPOTENT,
)
from repro.frontend.parser import ParseError, parse_assignment

__all__ = [
    "Access",
    "Assignment",
    "Literal",
    "Operand",
    "ParseError",
    "REDUCE_IDENTITY",
    "REDUCE_IDEMPOTENT",
    "parse_assignment",
]
