"""The einsum assignment AST.

An :class:`Assignment` is the unit of compilation: a reduction update of a
single output tensor from a combination (usually a product) of input tensor
accesses, e.g. ``C[i, j] += A[i, k, l] * B[k, j] * B[l, j]``.

The AST is deliberately first order and flat: the right-hand side is a tuple
of operands joined by one commutative, associative *combine* operator, and
the update uses one commutative, associative *reduce* operator.  This is the
same restriction SySTeC places on its input (pointwise einsums), and it is
what makes the symmetrization algebra in :mod:`repro.core.symmetrize`
mechanical: applying an index permutation and re-sorting operands is a
complete normal form.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

#: identity element of each supported reduction operator.
REDUCE_IDENTITY = {
    "+": 0.0,
    "min": float("inf"),
    "max": float("-inf"),
}

#: reductions for which repeated identical updates collapse to one update
#: (``min(x, v, v) == min(x, v)``).  Distributive assignment grouping uses
#: this to fold multiplicities.
REDUCE_IDEMPOTENT = frozenset({"min", "max"})

#: supported combine operators (the pointwise operator joining operands).
COMBINE_OPS = frozenset({"*", "+"})


@dataclass(frozen=True, order=True)
class Literal:
    """A scalar constant appearing as an operand."""

    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True, order=True)
class Access:
    """A tensor access ``name[i1, ..., in]`` (``name[]`` for scalars)."""

    tensor: str
    indices: Tuple[str, ...]

    def __str__(self) -> str:
        return "%s[%s]" % (self.tensor, ", ".join(self.indices))

    @property
    def ndim(self) -> int:
        return len(self.indices)

    def substitute(self, mapping: Mapping[str, str]) -> "Access":
        """Rename indices according to *mapping* (missing keys unchanged)."""
        return Access(self.tensor, tuple(mapping.get(i, i) for i in self.indices))

    def sort_modes(self, parts: Iterable[Iterable[int]], rank: Mapping[str, int]) -> "Access":
        """Sort the index names occupying each symmetric group of modes.

        *parts* is a partition of mode positions (0-based); within each part
        the index names are reordered by ``rank`` (typically the loop-order
        rank).  This is legal exactly when the underlying tensor is
        symmetric across those modes, and it is the access-level half of the
        paper's *normalization* step (Section 4.1, step 4).
        """
        indices = list(self.indices)
        for part in parts:
            slots = sorted(part)
            names = sorted((indices[s] for s in slots), key=lambda n: rank.get(n, 0))
            for slot, name in zip(slots, names):
                indices[slot] = name
        return Access(self.tensor, tuple(indices))


Operand = Union[Access, Literal]


def _operand_key(op: Operand, rank: Mapping[str, int]):
    """Deterministic sort key placing literals first, then accesses by
    tensor name and loop-order rank of their indices."""
    if isinstance(op, Literal):
        return (0, "", (), op.value)
    return (1, op.tensor, tuple(rank.get(i, 0) for i in op.indices), 0.0)


@dataclass(frozen=True)
class Assignment:
    """A single reduction update ``lhs reduce_op= combine(operands) [xcount]``.

    ``count`` is a multiplicity: the update is logically performed ``count``
    times.  Symmetrization introduces counts > 1 when several permutations
    normalize to the same assignment; *distributive assignment grouping*
    later turns the count into a ``count *`` scale factor (or drops it for
    idempotent reductions such as ``min``).
    """

    lhs: Access
    reduce_op: str
    operands: Tuple[Operand, ...]
    combine_op: str = "*"
    count: int = 1

    def __post_init__(self) -> None:
        if self.reduce_op not in REDUCE_IDENTITY:
            raise ValueError("unsupported reduce op: %r" % (self.reduce_op,))
        if self.combine_op not in COMBINE_OPS:
            raise ValueError("unsupported combine op: %r" % (self.combine_op,))
        if self.count < 1:
            raise ValueError("count must be >= 1")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> Tuple[Access, ...]:
        """All tensor accesses on the right-hand side."""
        return tuple(op for op in self.operands if isinstance(op, Access))

    @property
    def tensors(self) -> Tuple[str, ...]:
        """Names of every tensor involved (output first, no duplicates)."""
        names = [self.lhs.tensor]
        for acc in self.accesses:
            if acc.tensor not in names:
                names.append(acc.tensor)
        return tuple(names)

    @property
    def output_indices(self) -> Tuple[str, ...]:
        return self.lhs.indices

    @property
    def free_indices(self) -> Tuple[str, ...]:
        """Every distinct index name, in first-appearance order (lhs first)."""
        seen = []
        for idx in self.lhs.indices:
            if idx not in seen:
                seen.append(idx)
        for acc in self.accesses:
            for idx in acc.indices:
                if idx not in seen:
                    seen.append(idx)
        return tuple(seen)

    @property
    def reduction_indices(self) -> Tuple[str, ...]:
        """Indices summed over (present on the rhs, absent from the lhs)."""
        out = set(self.lhs.indices)
        return tuple(i for i in self.free_indices if i not in out)

    def index_dims(self) -> Dict[str, Tuple[str, int]]:
        """Map each index name to one ``(tensor, mode)`` that binds it.

        Used at lowering time to resolve dense loop extents from runtime
        shapes.  Prefers input tensors over the output (outputs may be
        freshly allocated).
        """
        dims: Dict[str, Tuple[str, int]] = {}
        for acc in tuple(self.accesses) + (self.lhs,):
            for mode, idx in enumerate(acc.indices):
                dims.setdefault(idx, (acc.tensor, mode))
        return dims

    # ------------------------------------------------------------------
    # rewriting
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[str, str]) -> "Assignment":
        """Rename indices everywhere (lhs and rhs)."""
        operands = tuple(
            op.substitute(mapping) if isinstance(op, Access) else op
            for op in self.operands
        )
        return replace(self, lhs=self.lhs.substitute(mapping), operands=operands)

    def normalized(
        self,
        symmetric_modes: Mapping[str, Tuple[Tuple[int, ...], ...]],
        rank: Mapping[str, int],
        lhs_symmetric_modes: Optional[Tuple[Tuple[int, ...], ...]] = None,
    ) -> "Assignment":
        """Normal form per Section 4.1 step 4.

        1. indices within each symmetric group of modes of each symmetric
           input are sorted by loop-order *rank*;
        2. rhs operands are sorted by a deterministic key.

        ``symmetric_modes`` maps tensor name -> partition of its modes
        (only parts of size >= 2 matter).  If *lhs_symmetric_modes* is
        given, the output access is normalized too (used once visible
        output symmetry has been established).
        """
        new_ops = []
        for op in self.operands:
            if isinstance(op, Access) and op.tensor in symmetric_modes:
                op = op.sort_modes(symmetric_modes[op.tensor], rank)
            new_ops.append(op)
        new_ops.sort(key=lambda op: _operand_key(op, rank))
        lhs = self.lhs
        if lhs_symmetric_modes is not None:
            lhs = lhs.sort_modes(lhs_symmetric_modes, rank)
        return replace(self, lhs=lhs, operands=tuple(new_ops))

    def key(self) -> Tuple:
        """Hashable identity ignoring the multiplicity ``count``."""
        return (self.lhs, self.reduce_op, self.combine_op, self.operands)

    def with_count(self, count: int) -> "Assignment":
        return replace(self, count=count)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        rhs = (" %s " % self.combine_op).join(str(op) for op in self.operands)
        op = "+=" if self.reduce_op == "+" else "%s=" % self.reduce_op
        prefix = "" if self.count == 1 else "%d x " % self.count
        return "%s%s %s %s" % (prefix, self.lhs, op, rhs)


def merge_duplicates(assignments: Iterable[Assignment]) -> Tuple[Assignment, ...]:
    """Sum the counts of assignments with identical :meth:`Assignment.key`.

    Order of first appearance is preserved.  This is the bookkeeping half of
    *distributive assignment grouping* (Section 4.2.7).
    """
    order = []
    counts: Dict[Tuple, int] = {}
    by_key: Dict[Tuple, Assignment] = {}
    for a in assignments:
        k = a.key()
        if k not in counts:
            order.append(k)
            counts[k] = 0
            by_key[k] = a
        counts[k] += a.count
    return tuple(by_key[k].with_count(counts[k]) for k in order)
