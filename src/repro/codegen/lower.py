"""Lowering: optimized kernel plan -> Python source over fibertree arrays.

This is the stage Finch performs for SySTeC (Finch IR -> Julia); we lower to
Python.  The three loop-level transforms of Section 4.2 happen here:

* **concordization (4.2.3)** — every access is realized through a view whose
  storage order matches the loop order (sparse tensors get permuted
  fibertree views; dense tensors get transposed contiguous copies), so all
  sparse iteration is a concordant walk of ``pos``/``idx`` arrays;
* **common tensor access elimination (4.2.1)** — each distinct access is
  read once into a local, hoisted to the loop level where its indices are
  bound (loop-invariant code motion included);
* **workspace transformation (4.2.8)** — updates whose output coordinates
  are fixed by an outer loop accumulate into a scalar/vector workspace and
  are flushed when that loop advances.

Canonical-triangle restriction is *free* when a symmetric input is iterated:
its packed view only stores canonical coordinates.  When the chain is not
carried by a packed view (e.g. SSYRK, whose input is asymmetric), the
triangle is enforced with loop bounds: a dense inner loop runs to the outer
index, and two sparse iterators over the *same fiber* co-iterate with the
inner position bounded by the outer one — the paper's triangle iteration.

The innermost loop index may be vectorized: if it is dense, not permutable,
and innermost, the loop disappears and accesses binding it become numpy row
slices (dense views place it last).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import CompilerOptions
from repro.core.kernel_plan import (
    Block,
    FILTER_ALL,
    FILTER_DIAGONAL,
    FILTER_STRICT,
    KernelPlan,
    LoopNest,
)
from repro.frontend.einsum import Access, Assignment, Literal, REDUCE_IDENTITY
from repro.tensor.tensor import default_levels


class LoweringError(NotImplementedError):
    """Raised when a plan needs an unsupported lowering feature."""


def _py_const(value: float) -> str:
    """A Python-source rendering of a float (handles infinities)."""
    if value == float("inf"):
        return 'float("inf")'
    if value == float("-inf"):
        return 'float("-inf")'
    return repr(value)


# ----------------------------------------------------------------------
# requirements the executor must satisfy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SparseViewReq:
    """A fibertree realization of a sparse tensor the kernel iterates."""

    name: str
    tensor: str
    mode_order: Tuple[int, ...]
    levels: Tuple[str, ...]
    tensor_filter: str  # full | all | strict | diagonal


@dataclass(frozen=True)
class DenseViewReq:
    """A (possibly transposed) contiguous dense array."""

    name: str
    tensor: str
    perm: Tuple[int, ...]


@dataclass(frozen=True)
class DimReq:
    """An integer extent, resolved from some tensor's shape."""

    name: str
    tensor: str
    mode: int


@dataclass(frozen=True)
class OutputSpec:
    """How the output buffer is laid out and finalized."""

    tensor: str
    ndim: int
    layout: Tuple[int, ...]  # out_v axis t = logical mode layout[t]
    reduce_op: str
    replication_parts: Tuple[Tuple[int, ...], ...]
    index_names: Tuple[str, ...]  # original lhs indices (logical order)


@dataclass
class LoweredKernel:
    """Source plus everything needed to bind and run it.

    The whole structure is intentionally plain data (strings, ints, tuples)
    so it can round-trip through JSON: :meth:`to_dict` / :meth:`from_dict`
    are what the service layer's disk store persists, letting a
    :class:`~repro.core.compiler.CompiledKernel` be rehydrated without
    re-running the symmetrize/optimize/lower pipeline.
    """

    source: str
    arg_names: Tuple[str, ...]
    sparse_views: Tuple[SparseViewReq, ...]
    dense_views: Tuple[DenseViewReq, ...]
    dims: Tuple[DimReq, ...]
    output: OutputSpec
    vector_index: Optional[str]
    #: element dtype the kernel computes in ("float64" | "float32") —
    #: fixed at lowering time from :attr:`CompilerOptions.dtype`, it
    #: drives workspace/output allocation and the C value type.
    dtype: str = "float64"

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the lowered kernel."""
        return {
            "source": self.source,
            "dtype": self.dtype,
            "arg_names": list(self.arg_names),
            "sparse_views": [
                {
                    "name": v.name,
                    "tensor": v.tensor,
                    "mode_order": list(v.mode_order),
                    "levels": list(v.levels),
                    "tensor_filter": v.tensor_filter,
                }
                for v in self.sparse_views
            ],
            "dense_views": [
                {"name": v.name, "tensor": v.tensor, "perm": list(v.perm)}
                for v in self.dense_views
            ],
            "dims": [
                {"name": d.name, "tensor": d.tensor, "mode": d.mode}
                for d in self.dims
            ],
            "output": {
                "tensor": self.output.tensor,
                "ndim": self.output.ndim,
                "layout": list(self.output.layout),
                "reduce_op": self.output.reduce_op,
                "replication_parts": [
                    list(p) for p in self.output.replication_parts
                ],
                "index_names": list(self.output.index_names),
            },
            "vector_index": self.vector_index,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LoweredKernel":
        """Rebuild a lowered kernel from :meth:`to_dict` output."""
        out = data["output"]
        return cls(
            source=data["source"],
            dtype=data.get("dtype", "float64"),
            arg_names=tuple(data["arg_names"]),
            sparse_views=tuple(
                SparseViewReq(
                    name=v["name"],
                    tensor=v["tensor"],
                    mode_order=tuple(v["mode_order"]),
                    levels=tuple(v["levels"]),
                    tensor_filter=v["tensor_filter"],
                )
                for v in data["sparse_views"]
            ),
            dense_views=tuple(
                DenseViewReq(
                    name=v["name"], tensor=v["tensor"], perm=tuple(v["perm"])
                )
                for v in data["dense_views"]
            ),
            dims=tuple(
                DimReq(name=d["name"], tensor=d["tensor"], mode=d["mode"])
                for d in data["dims"]
            ),
            output=OutputSpec(
                tensor=out["tensor"],
                ndim=out["ndim"],
                layout=tuple(out["layout"]),
                reduce_op=out["reduce_op"],
                replication_parts=tuple(
                    tuple(p) for p in out["replication_parts"]
                ),
                index_names=tuple(out["index_names"]),
            ),
            vector_index=data["vector_index"],
        )


# ----------------------------------------------------------------------
# internal structures
# ----------------------------------------------------------------------
@dataclass
class _Chain:
    """One concordant iteration of a sparse view (an access's iterator)."""

    view: SparseViewReq
    indices: Tuple[str, ...]  # storage-order index names
    levels: Tuple[str, ...]
    chain_id: int
    q_vars: Dict[int, str] = field(default_factory=dict)

    def q_var(self, level: int) -> str:
        return self.q_vars.setdefault(
            level, "q%d_%d" % (self.chain_id, level)
        )

    @property
    def dense_prefix(self) -> int:
        d = 0
        while d < len(self.levels) and self.levels[d] == "dense":
            d += 1
        return d

    def slot_expr(self, dims: Mapping[str, str]) -> str:
        """Flattened dense-prefix slot feeding the first sparse level."""
        d = self.dense_prefix
        if d == 0:
            return "0"
        expr = self.indices[0]
        for t in range(1, d):
            expr = "(%s) * %s + %s" % (expr, dims[self.indices[t]], self.indices[t])
        return expr

    def parent_expr(self, level: int, dims: Mapping[str, str]) -> str:
        if level == self.dense_prefix:
            return self.slot_expr(dims)
        return self.q_var(level - 1)

    def value_expr(self) -> str:
        return "%s_vals[%s]" % (self.view.name, self.q_var(len(self.levels) - 1))


@dataclass
class _Body:
    """Per-loop-depth code regions: pre (decls/temps), post (flushes)."""

    pre: List[str] = field(default_factory=list)
    post: List[str] = field(default_factory=list)


class Lowerer:
    """Lowers one plan + format map + options into Python source."""

    def __init__(
        self,
        plan: KernelPlan,
        formats: Mapping[str, str],
        options: CompilerOptions,
        sparse_levels: Optional[Mapping[str, Sequence[str]]] = None,
    ):
        self.plan = plan
        self.formats = dict(formats)
        self.options = options
        self.sparse_levels = dict(sparse_levels or {})
        self.rank = dict(plan.rank)
        self.original = plan.original

        self.sparse_views: Dict[str, SparseViewReq] = {}
        self.dense_views: Dict[str, DenseViewReq] = {}
        self.dims: Dict[str, DimReq] = {}
        self.lines: List[str] = []
        self.temp_counter = 0
        self.ws_counter = 0
        self.lut_counter = 0
        self.preamble: List[str] = []

        self.vector_index = self._choose_vector_index()
        self.output = self._output_spec()

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def _choose_vector_index(self) -> Optional[str]:
        if not self.options.vectorize_innermost:
            return None
        v = self.plan.loop_order[-1]
        if v in self.plan.permutable:
            return None
        # v must never be bound by a sparse access
        for acc in self._all_accesses():
            if self.formats.get(acc.tensor) == "sparse" and v in acc.indices:
                return None
        if v not in self.original.free_indices:
            return None
        return v

    def _all_accesses(self) -> List[Access]:
        seen = []
        for block in self.plan.blocks:
            for a in block.assignments:
                for acc in a.accesses:
                    if acc not in seen:
                        seen.append(acc)
        return seen

    def _dim_name(self, index: str) -> str:
        name = "n_%s" % index
        if name not in self.dims:
            binder = self.original.index_dims().get(index)
            if binder is None:
                raise LoweringError("cannot resolve extent of index %r" % index)
            tensor, mode = binder
            self.dims[name] = DimReq(name=name, tensor=tensor, mode=mode)
        return name

    def _output_spec(self) -> OutputSpec:
        lhs = self.original.lhs
        ndim = len(lhs.indices)
        v = self.vector_index
        if v is not None and v in lhs.indices:
            vmode = lhs.indices.index(v)
            layout = tuple([m for m in range(ndim) if m != vmode] + [vmode])
        else:
            layout = tuple(range(ndim))
        repl = (
            self.plan.replication.mode_parts if self.plan.replication else ()
        )
        return OutputSpec(
            tensor=lhs.tensor,
            ndim=ndim,
            layout=layout,
            reduce_op=self.original.reduce_op,
            replication_parts=repl,
            index_names=lhs.indices,
        )

    # ------------------------------------------------------------------
    # view construction
    # ------------------------------------------------------------------
    def _sparse_view(self, acc: Access, tensor_filter: str) -> SparseViewReq:
        order = tuple(
            sorted(range(len(acc.indices)), key=lambda m: self.rank[acc.indices[m]])
        )
        if len(set(acc.indices)) != len(acc.indices):
            raise LoweringError("repeated index in sparse access %s" % acc)
        is_symmetric = bool(self.plan.symmetric_modes.get(acc.tensor))
        if not is_symmetric:
            tensor_filter = "full"
        name = "%s__%s" % (acc.tensor, tensor_filter)
        if order != tuple(range(len(order))):
            name += "_p" + "".join(str(m) for m in order)
        levels = tuple(
            self.sparse_levels.get(acc.tensor, default_levels(len(acc.indices)))
        )
        req = SparseViewReq(
            name=name,
            tensor=acc.tensor,
            mode_order=order,
            levels=levels,
            tensor_filter=tensor_filter,
        )
        self.sparse_views[name] = req
        return req

    def _dense_view(self, acc: Access) -> Tuple[str, Tuple[str, ...]]:
        """Register a dense view; returns (name, storage-ordered indices)."""
        if not self.options.concordize:
            perm = tuple(range(len(acc.indices)))
        else:
            v = self.vector_index
            keyed = sorted(
                range(len(acc.indices)),
                key=lambda m: (
                    acc.indices[m] == v,  # vector index last
                    self.rank[acc.indices[m]],
                ),
            )
            perm = tuple(keyed)
        name = acc.tensor
        if perm != tuple(range(len(perm))):
            name += "__p" + "".join(str(m) for m in perm)
        self.dense_views[name] = DenseViewReq(name=name, tensor=acc.tensor, perm=perm)
        return name, tuple(acc.indices[m] for m in perm)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def lower(self) -> LoweredKernel:
        body_lines: List[str] = []
        for nest in self.plan.nests:
            body_lines.extend(self._emit_nest(nest))
        dims_needed = sorted(self.dims)
        args = (
            sorted(self._array_args())
            + dims_needed
        )
        src = ["def kernel(out, %s):" % ", ".join(args)]
        for line in self.preamble:
            src.append("    " + line)
        for line in body_lines:
            src.append("    " + line)
        if len(src) == 1:
            src.append("    pass")
        source = "\n".join(src) + "\n"
        return LoweredKernel(
            source=source,
            arg_names=tuple(args),
            sparse_views=tuple(self.sparse_views.values()),
            dense_views=tuple(self.dense_views.values()),
            dims=tuple(self.dims.values()),
            output=self.output,
            vector_index=self.vector_index,
            dtype=self.options.dtype,
        )

    def _array_args(self) -> List[str]:
        names: List[str] = []
        for view in self.sparse_views.values():
            d = 0
            while d < len(view.levels) and view.levels[d] == "dense":
                d += 1
            for level in range(d, len(view.levels)):
                names.append("%s_pos%d" % (view.name, level))
                names.append("%s_idx%d" % (view.name, level))
            names.append("%s_vals" % view.name)
        names.extend(self.dense_views)
        return names

    # -- nest ----------------------------------------------------------
    def _emit_nest(self, nest: LoopNest) -> List[str]:
        chains: Dict[Tuple, _Chain] = {}
        access_chain: Dict[Access, _Chain] = {}
        access_dense: Dict[Access, Tuple[str, Tuple[str, ...]]] = {}
        chain_counter = [0]

        def chain_for(acc: Access) -> _Chain:
            view = self._sparse_view(acc, nest.tensor_filter)
            storage_indices = tuple(acc.indices[m] for m in view.mode_order)
            key = (view.name, storage_indices)
            if key not in chains:
                chains[key] = _Chain(
                    view=view,
                    indices=storage_indices,
                    levels=view.levels,
                    chain_id=chain_counter[0],
                )
                chain_counter[0] += 1
            return chains[key]

        accesses: List[Access] = []
        for block in nest.blocks:
            for a in block.assignments:
                for acc in a.accesses:
                    if acc not in accesses:
                        accesses.append(acc)
        for acc in accesses:
            if self.formats.get(acc.tensor) == "sparse":
                access_chain[acc] = chain_for(acc)
            else:
                access_dense[acc] = self._dense_view(acc)

        loop_indices = [
            i for i in self.plan.loop_order if i != self.vector_index
        ]
        depth_of = {idx: d for d, idx in enumerate(loop_indices)}

        # sources per loop index
        sources: Dict[str, Tuple] = {}
        for idx in loop_indices:
            binders = []
            for chain in chains.values():
                for level, (kind, name) in enumerate(zip(chain.levels, chain.indices)):
                    if name == idx and kind == "sparse":
                        binders.append((chain, level))
            if len(binders) > 1:
                # the same index drives several distinct sparse fibers: the
                # loop is the sorted-merge *intersection* of those fibers
                # (this is what lets the compiler handle more than one
                # sparse argument at a time — Cyclops cannot, Table 1).
                sources[idx] = ("intersect", binders, None)
            elif binders:
                sources[idx] = ("sparse",) + binders[0]
            else:
                sources[idx] = ("dense", None, None)

        # chain (triangle) enforcement pairs: (inner, outer)
        enforce: Dict[str, Tuple[str, str]] = {}
        pairs = list(zip(self.plan.permutable, self.plan.permutable[1:]))
        for inner, outer in pairs:
            if self._implicit_pair(inner, outer, access_chain, nest):
                continue
            enforce[inner] = ("le", outer)

        dims_alias = {i: self._dim_name(i) for i in self.original.free_indices}

        # reads (CSE / LICM): distinct access -> (temp name, expr, depth)
        reads: Dict[Access, Tuple[str, int]] = {}
        pre_by_depth: Dict[int, List[str]] = {}
        post_by_depth: Dict[int, List[str]] = {}

        def read_expr(acc: Access) -> Tuple[str, int]:
            """Expression for an access + depth at which it becomes valid."""
            if acc in access_chain:
                chain = access_chain[acc]
                expr = chain.value_expr()
                depth = max(depth_of[i] for i in chain.indices)
            else:
                name, storage_indices = access_dense[acc]
                coords = [i for i in storage_indices if i != self.vector_index]
                expr = name if not storage_indices else (
                    "%s[%s]" % (name, ", ".join(coords)) if coords else name
                )
                depth = max([depth_of[i] for i in coords], default=-1)
            return expr, depth

        def operand_code(acc_or_lit) -> str:
            if isinstance(acc_or_lit, Literal):
                return repr(acc_or_lit.value)
            if self.options.cse:
                if acc_or_lit not in reads:
                    expr, depth = read_expr(acc_or_lit)
                    temp = "t%d" % self.temp_counter
                    self.temp_counter += 1
                    pre_by_depth.setdefault(depth, []).append(
                        "%s = %s" % (temp, expr)
                    )
                    reads[acc_or_lit] = (temp, depth)
                return reads[acc_or_lit][0]
            return read_expr(acc_or_lit)[0]

        # workspaces: lhs key -> (ws var, depth, is_vector)
        workspaces: Dict[Tuple, Tuple[str, int, bool]] = {}
        innermost_depth = len(loop_indices) - 1

        def lhs_depth(a: Assignment) -> int:
            coords = [i for i in a.lhs.indices if i != self.vector_index]
            return max([depth_of[i] for i in coords], default=-1)

        def workspace_for(a: Assignment) -> Optional[Tuple[str, bool]]:
            if not self.options.workspace:
                return None
            d = lhs_depth(a)
            if d >= innermost_depth:
                return None
            key = (a.lhs.tensor, a.lhs.indices)
            if key not in workspaces:
                is_vector = (
                    self.vector_index is not None
                    and self.vector_index in a.lhs.indices
                )
                ws = "ws%d" % self.ws_counter
                self.ws_counter += 1
                ident = _py_const(REDUCE_IDENTITY[a.reduce_op])
                if is_vector:
                    # the workspace must accumulate in the kernel dtype:
                    # float64 keeps the historical bare np.empty (stable
                    # sources, stable content addresses), float32 says so
                    if self.options.dtype == "float32":
                        alloc = "np.empty(%s, dtype=np.float32)" % (
                            self._dim_name(self.vector_index)
                        )
                    else:
                        alloc = "np.empty(%s)" % self._dim_name(self.vector_index)
                    self.preamble.append("%s = %s" % (ws, alloc))
                    pre_by_depth.setdefault(d, []).append(
                        "%s.fill(%s)" % (ws, ident)
                    )
                else:
                    pre_by_depth.setdefault(d, []).append("%s = %s" % (ws, ident))
                post_by_depth.setdefault(d, []).append(
                    self._reduce_stmt(
                        self._out_target(a.lhs), a.reduce_op, ws, is_vector
                    )
                )
                workspaces[key] = (ws, d, is_vector)
            return workspaces[key][0], workspaces[key][2]

        # assemble statement lists for the innermost body
        innermost: List[str] = []
        for block in nest.blocks:
            stmts: List[str] = []
            factor_prefix = None
            if block.factor_table is not None:
                lut_name, code_expr = self._emit_lut(block)
                stmts.append("_code = %s" % code_expr)
                stmts.append("_f = %s[_code]" % lut_name)
                factor_prefix = "_f"
            for a in block.assignments:
                expr = self._combine(
                    [operand_code(op) for op in a.operands], a.combine_op
                )
                scale = []
                if a.count != 1:
                    if a.reduce_op != "+":
                        raise LoweringError(
                            "multiplicity %d under %r reduction" % (a.count, a.reduce_op)
                        )
                    scale.append(repr(float(a.count)))
                if factor_prefix:
                    scale.append(factor_prefix)
                if scale:
                    expr = "%s * (%s)" % (" * ".join(scale), expr)
                ws = workspace_for(a)
                is_vector = (
                    self.vector_index is not None
                    and self.vector_index in a.lhs.indices
                )
                if ws is not None:
                    stmts.append(self._reduce_stmt(ws[0], a.reduce_op, expr, ws[1], var=True))
                else:
                    stmts.append(
                        self._reduce_stmt(
                            self._out_target(a.lhs), a.reduce_op, expr, is_vector
                        )
                    )
            filter_realized = any(
                chain.view.tensor_filter == nest.tensor_filter
                for chain in chains.values()
            )
            cond = self._condition(block, nest, filter_realized)
            if cond is None:
                innermost.extend(stmts)
            else:
                innermost.append("if %s:" % cond)
                innermost.extend("    " + s for s in stmts)

        # emit loops
        lines: List[str] = []
        indent = 0

        def put(line: str) -> None:
            lines.append("    " * indent + line)

        def emit_depth(depth: int) -> None:
            nonlocal indent
            if depth == len(loop_indices):
                for line in innermost:
                    put(line)
                return
            idx = loop_indices[depth]
            kind, chain, level = sources[idx]
            guard = None
            if kind == "dense":
                end = dims_alias[idx]
                if idx in enforce:
                    end = "%s + 1" % enforce[idx][1]
                put("for %s in range(%s):" % (idx, end))
                indent += 1
            elif kind == "intersect":
                # sorted-merge intersection of several sparse fibers: each
                # binder keeps its own position pointer; all advance past
                # non-shared coordinates, and the body runs only where
                # every fiber holds the coordinate.
                binders = chain
                qs = []
                for bchain, blevel in binders:
                    parent = bchain.parent_expr(blevel, dims_alias)
                    q = bchain.q_var(blevel)
                    qs.append((bchain, blevel, q))
                    put(
                        "%s = %s_pos%d[%s]"
                        % (q, bchain.view.name, blevel, parent)
                    )
                    put(
                        "%s_end = %s_pos%d[%s + 1]"
                        % (q, bchain.view.name, blevel, parent)
                    )
                cond = " and ".join("%s < %s_end" % (q, q) for (_, _, q) in qs)
                put("while %s:" % cond)
                indent += 1
                vals = []
                for bchain, blevel, q in qs:
                    v = "%s_v" % q
                    vals.append(v)
                    put("%s = %s_idx%d[%s]" % (v, bchain.view.name, blevel, q))
                m = "_m%d" % depth
                put("%s = %s" % (m, vals[0]))
                for v in vals[1:]:
                    put("if %s > %s: %s = %s" % (v, m, m, v))
                put("_adv%d = 0" % depth)
                for (_, _, q), v in zip(qs, vals):
                    put("if %s < %s:" % (v, m))
                    put("    %s += 1" % q)
                    put("    _adv%d = 1" % depth)
                put("if _adv%d:" % depth)
                put("    continue")
                put("%s = %s" % (idx, m))
                if idx in enforce:
                    put("if %s > %s: break" % (idx, enforce[idx][1]))
                for line in pre_by_depth.get(depth, []):
                    put(line)
                emit_depth(depth + 1)
                for line in post_by_depth.get(depth, []):
                    put(line)
                for (_, _, q) in qs:
                    put("%s += 1" % q)
                indent -= 1
                return
            else:
                parent = chain.parent_expr(level, dims_alias)
                q = chain.q_var(level)
                start = "%s_pos%d[%s]" % (chain.view.name, level, parent)
                end = "%s_pos%d[%s + 1]" % (chain.view.name, level, parent)
                if idx in enforce:
                    outer = enforce[idx][1]
                    partner = self._same_fiber_partner(
                        idx, outer, sources, chain, level
                    )
                    if partner is not None:
                        end = "%s + 1" % partner
                    else:
                        guard = "if %s > %s: break" % (idx, outer)
                put("for %s in range(%s, %s):" % (q, start, end))
                indent += 1
                put("%s = %s_idx%d[%s]" % (idx, chain.view.name, level, q))
                if guard is not None:
                    put(guard)
            for line in pre_by_depth.get(depth, []):
                put(line)
            emit_depth(depth + 1)
            for line in post_by_depth.get(depth, []):
                put(line)
            indent -= 1

        # depth -1 regions (scalar output workspaces, constant reads)
        for line in pre_by_depth.get(-1, []):
            lines.append(line)
        body_start = len(lines)
        emit_depth(0)
        for line in post_by_depth.get(-1, []):
            lines.append(line)
        return lines

    # ------------------------------------------------------------------
    def _implicit_pair(self, inner, outer, access_chain, nest) -> bool:
        """Is the chain constraint inner <= outer already guaranteed by a
        packed symmetric view whose access binds both indices in the same
        symmetric part?"""
        if nest.tensor_filter == "full":
            return False
        for acc, chain in access_chain.items():
            parts = self.plan.symmetric_modes.get(acc.tensor)
            if not parts:
                continue
            if inner in acc.indices and outer in acc.indices:
                m_in = acc.indices.index(inner)
                m_out = acc.indices.index(outer)
                for part in parts:
                    if m_in in part and m_out in part:
                        return True
        return False

    def _same_fiber_partner(self, inner, outer, sources, chain, level) -> Optional[str]:
        """If *outer* iterates the same fiber (view, level, parent) as
        *inner*, return its position variable for a co-iteration bound."""
        kind, ochain, olevel = sources[outer]
        if kind != "sparse":
            return None
        if (
            ochain.view.name == chain.view.name
            and olevel == level
            and ochain.indices[:level] == chain.indices[:level]
        ):
            return ochain.q_var(olevel)
        return None

    def _out_target(self, lhs: Access) -> str:
        coords = [
            lhs.indices[m]
            for m in self.output.layout
            if lhs.indices[m] != self.vector_index
        ]
        if not lhs.indices:
            return "out[()]"
        if coords:
            return "out[%s]" % ", ".join(coords)
        return "out[:]" if self.vector_index in lhs.indices else "out[()]"

    def _reduce_stmt(
        self, target: str, reduce_op: str, expr: str, is_vector: bool, var: bool = False
    ) -> str:
        if reduce_op == "+":
            return "%s += %s" % (target, expr)
        fn = {"min": "minimum", "max": "maximum"}[reduce_op]
        if is_vector and not var:
            return "np.%s(%s, %s, out=%s)" % (fn, target, expr, target)
        if is_vector and var:
            return "np.%s(%s, %s, out=%s)" % (fn, target, expr, target)
        py = {"min": "min", "max": "max"}[reduce_op]
        return "%s = %s(%s, %s)" % (target, py, target, expr)

    def _combine(self, parts: List[str], combine_op: str) -> str:
        if not parts:
            return "0.0"
        return (" %s " % combine_op).join(parts)

    def _condition(
        self, block: Block, nest: LoopNest, filter_realized: bool = True
    ) -> Optional[str]:
        """Render the block's pattern disjunction, pruning patterns that the
        nest filter makes unreachable and dropping the test entirely when
        the remaining patterns cover everything the filter admits.

        ``filter_realized`` is False when no packed sparse view actually
        restricts this nest's coordinates (e.g. a *dense* symmetric input):
        the strict/diagonal distinction must then be tested explicitly.
        """
        if block.factor_table is not None:
            return None
        if not self.plan.permutable or len(self.plan.permutable) < 2:
            return None
        if not filter_realized and nest.tensor_filter in (
            FILTER_STRICT,
            FILTER_DIAGONAL,
        ):
            kept = [
                p
                for p in block.patterns
                if (p.is_strict if nest.tensor_filter == FILTER_STRICT else not p.is_strict)
            ]
            if not kept:
                return "False"
            terms = []
            for pattern in kept:
                comps = [
                    "%s %s %s" % (a, rel, b)
                    for (a, rel, b) in pattern.conditions()
                ]
                terms.append(" and ".join(comps) if comps else "True")
            if len(terms) == 1:
                return terms[0]
            return " or ".join("(%s)" % t for t in terms)
        if nest.tensor_filter == FILTER_STRICT:
            kept = [p for p in block.patterns if p.is_strict]
            if kept:
                return None  # the strict view admits exactly this pattern
            return "False"
        if nest.tensor_filter == FILTER_DIAGONAL:
            kept = [p for p in block.patterns if not p.is_strict]
            total = 2 ** (len(self.plan.permutable) - 1) - 1
            if len({p.relations for p in kept}) >= total:
                return None
        else:
            kept = list(block.patterns)
            if len({p.relations for p in kept}) >= 2 ** (len(self.plan.permutable) - 1):
                return None
        if not kept:
            return "False"
        terms = []
        for pattern in kept:
            comps = [
                "%s %s %s" % (a, rel, b) for (a, rel, b) in pattern.conditions()
            ]
            terms.append(" and ".join(comps) if comps else "True")
        if len(terms) == 1:
            return terms[0]
        return " or ".join("(%s)" % t for t in terms)

    def _emit_lut(self, block: Block) -> Tuple[str, str]:
        n = len(self.plan.permutable)
        size = 2 ** (n - 1)
        table = [0.0] * size
        for bitmask, frac in block.factor_table:
            table[bitmask] = float(Fraction(frac))
        name = "_lut%d" % self.lut_counter
        self.lut_counter += 1
        if self.options.dtype == "float32":
            # a float32 kernel must read float32 factors: a plain Python
            # list would hand back float64 scalars and promote the whole
            # product chain (numpy's weak-scalar rules only round *one*
            # python-float operand per operation)
            self.preamble.append(
                "%s = np.array(%r, dtype=np.float32)" % (name, table)
            )
        else:
            self.preamble.append("%s = %r" % (name, table))
        bits = []
        for t, (a, b) in enumerate(zip(self.plan.permutable, self.plan.permutable[1:])):
            if t == 0:
                bits.append("(%s == %s)" % (a, b))
            else:
                bits.append("((%s == %s) << %d)" % (a, b, t))
        return name, " | ".join(bits)


def lower_plan(
    plan: KernelPlan,
    formats: Mapping[str, str],
    options: CompilerOptions,
    sparse_levels: Optional[Mapping[str, Sequence[str]]] = None,
) -> LoweredKernel:
    """Convenience wrapper around :class:`Lowerer`."""
    return Lowerer(plan, formats, options, sparse_levels).lower()
