"""Lowering and execution.

* :mod:`repro.codegen.reference` — a slow, obviously-correct dense
  interpreter for kernel plans and raw einsums; the oracle for every test;
* :mod:`repro.codegen.runtime` — output allocation, replication post-pass;
* :mod:`repro.codegen.lower` — lowers an optimized plan to Python source
  iterating fibertree ``pos``/``idx``/``vals`` arrays (the Finch-to-Julia
  step of the paper, retargeted at Python), applying the three loop-level
  transforms: common tensor access elimination (4.2.1), concordization
  (4.2.3) and the workspace transformation (4.2.8);
* :mod:`repro.codegen.executor` — compiles the source and binds the tensor
  views it needs.
"""

from repro.codegen.reference import reference_einsum, execute_plan_dense
from repro.codegen.runtime import make_output, replicate_output

__all__ = [
    "execute_plan_dense",
    "make_output",
    "reference_einsum",
    "replicate_output",
]
