"""Locating and driving the system C toolchain.

The probe runs once per process: find a compiler (``$REPRO_CC``, else
``cc``/``gcc``/``clang``), build and dlopen a trivial shared object, and
settle the optimization flags (``-march=native`` is dropped when the
compiler rejects it).  ``$REPRO_NO_CC`` forcibly disables the probe — the
CI leg that exercises the no-compiler degradation path sets it.

OpenMP capability is probed in the same pass: a second trivial object is
built with ``-fopenmp`` and must load and answer through the OpenMP
runtime before the flag is adopted.  ``$REPRO_NO_OPENMP`` skips that step
(kernels then compile without the flag and their parallel regions
degrade to the serial branch).  :func:`reset_probe_cache` forgets both —
a test that flips the env between probes gets a fresh answer for the
compiler *and* for OpenMP.

Compiled objects are content-addressed by a hash of their C source *and*
the toolchain configuration (compiler + flags, ``-fopenmp`` included) in
a per-process build directory (``$REPRO_C_CACHE`` overrides with a
persistent one), so recompiling the same kernel in one process is free
and a persistent cache never serves an object built under a different
flag set.
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import os
import random
import shutil
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import faults
from repro.core.config import cc_backoff, cc_retries, cc_timeout, lock_timeout
from repro.core.flock import InterProcessLock
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


class ToolchainError(RuntimeError):
    """The compiler was found but a compilation failed."""


class ToolchainTimeout(ToolchainError):
    """A ``cc`` invocation exceeded ``$REPRO_CC_TIMEOUT`` (transient —
    the retry loop re-attempts it with backoff)."""


class ToolchainInterrupted(ToolchainError):
    """``cc`` was killed by a signal (OOM killer, operator) — transient,
    retried like a timeout."""


#: flags every build uses.  ``-ffp-contract=off`` keeps per-operation IEEE
#: semantics (no FMA fusion) so C results match the Python backend's
#: numpy arithmetic bit-for-bit on the same accumulation order.
BASE_FLAGS = ("-O3", "-shared", "-fPIC", "-fno-math-errno", "-ffp-contract=off")

_TRIVIAL = "int repro_probe(void) { return 42; }\n"

#: the OpenMP probe goes through the runtime library, not just the
#: pragma parser — a compiler that accepts ``-fopenmp`` but cannot link
#: libgomp/libomp fails here and is treated as OpenMP-less.
_TRIVIAL_OMP = (
    "#include <omp.h>\n"
    "int repro_probe(void) { return omp_get_max_threads() >= 1 ? 42 : 0; }\n"
)


@dataclass(frozen=True)
class Toolchain:
    """A probed, known-working compiler configuration."""

    cc: str
    flags: tuple
    #: ``("-fopenmp",)`` when the OpenMP probe succeeded, else ``()``.
    openmp_flags: tuple = ()

    @property
    def openmp(self) -> bool:
        """Can this toolchain build OpenMP-parallel kernels?"""
        return bool(self.openmp_flags)

    def all_flags(self) -> tuple:
        """Every flag a kernel build actually uses."""
        return self.flags + self.openmp_flags

    def describe(self) -> str:
        return "%s %s" % (self.cc, " ".join(self.all_flags()))


_lock = threading.Lock()
_probe_ran = False
_probe_result: Optional[Toolchain] = None
_build_dir: Optional[str] = None


def _candidates() -> List[str]:
    env = os.environ.get("REPRO_CC")
    if env:
        return [env]
    return ["cc", "gcc", "clang"]


def build_dir() -> str:
    """The directory compiled objects land in (created lazily)."""
    global _build_dir
    with _lock:
        if _build_dir is None:
            override = os.environ.get("REPRO_C_CACHE")
            if override:
                os.makedirs(override, exist_ok=True)
                _build_dir = override
            else:
                _build_dir = tempfile.mkdtemp(prefix="repro-ckernels-")
                atexit.register(shutil.rmtree, _build_dir, True)
        return _build_dir


def _inject_cc_fault(cmd: List[str], timeout: Optional[float]) -> None:
    """The ``cc`` injection point: forge the failure the armed action
    describes *before* the subprocess runs (deterministic and fast)."""
    fault = faults.poll("cc")
    if fault is None:
        return
    if fault.action == "timeout":
        raise ToolchainTimeout(
            "injected: %s timed out after %.1fs" % (cmd[0], timeout or 0.0)
        )
    if fault.action == "crash":
        raise ToolchainInterrupted("injected: %s killed by signal 9" % cmd[0])
    if fault.action == "slow":
        time.sleep(fault.arg_float(0.1))
        return
    raise ToolchainError("injected: %s failed (1)" % cmd[0])


def _run_cc(
    cc: str, flags: tuple, src: str, out: str, timeout: Optional[float] = None
) -> None:
    """One bounded compiler invocation.

    ``timeout`` (seconds, ``None`` = unbounded) is enforced by
    ``subprocess.run`` — a hung ``cc`` is killed and surfaces as
    :class:`ToolchainTimeout` instead of stalling the caller forever.
    A ``cc`` killed by a signal raises :class:`ToolchainInterrupted`;
    both are transient.  A nonzero exit is deterministic for fixed
    source and raises plain :class:`ToolchainError` (permanent).
    """
    cmd = [cc] + list(flags) + ["-o", out, src]
    _inject_cc_fault(cmd, timeout)
    try:
        proc = subprocess.run(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            timeout=timeout,
        )
    except subprocess.TimeoutExpired:
        obs_metrics.inc("toolchain.cc_timeouts")
        raise ToolchainTimeout(
            "%s timed out after %.1fs (REPRO_CC_TIMEOUT)"
            % (" ".join(cmd), timeout or 0.0)
        )
    if proc.returncode != 0:
        if proc.returncode < 0:
            raise ToolchainInterrupted(
                "%s killed by signal %d" % (" ".join(cmd), -proc.returncode)
            )
        raise ToolchainError(
            "%s failed (%d):\n%s" % (" ".join(cmd), proc.returncode, proc.stderr[-2000:])
        )


def _write_file_atomic(directory: str, target: str, text: str) -> None:
    """Write *text* to *target* via a unique temp + fsync + rename, so a
    concurrent reader never sees a truncated file and a crash between
    write and rename cannot publish an empty-but-renamed one."""
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".src.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _probe_build_runs(
    cc_path: str, flags: tuple, source: str, scratch: List[str], directory: str
) -> bool:
    """Build *source* with *flags*, dlopen it and call ``repro_probe``."""
    fd, src = tempfile.mkstemp(dir=directory, prefix=".probe.", suffix=".c")
    with os.fdopen(fd, "w") as handle:
        handle.write(source)
    scratch.append(src)
    fd, out = tempfile.mkstemp(dir=directory, prefix=".probe.", suffix=".so")
    os.close(fd)
    scratch.append(out)
    try:
        _run_cc(cc_path, flags, src, out, timeout=cc_timeout())
        lib = ctypes.CDLL(out)
        return int(lib.repro_probe()) == 42
    except (ToolchainError, OSError, AttributeError):
        return False


def _try_probe(cc_path: str) -> Optional[Toolchain]:
    """Build + load + call trivial shared objects with *cc_path*.

    Settles the optimization flags first, then checks whether the same
    configuration also builds and runs OpenMP code (``$REPRO_NO_OPENMP``
    skips that step).  Probe files are process-unique (the build dir may
    be a shared ``$REPRO_C_CACHE``) and removed afterwards.
    """
    directory = build_dir()
    scratch: List[str] = []
    try:
        for extra in (("-march=native",), ()):
            flags = BASE_FLAGS + extra
            if not _probe_build_runs(cc_path, flags, _TRIVIAL, scratch, directory):
                continue
            openmp_flags: tuple = ()
            if not os.environ.get("REPRO_NO_OPENMP"):
                if _probe_build_runs(
                    cc_path, flags + ("-fopenmp",), _TRIVIAL_OMP, scratch, directory
                ):
                    openmp_flags = ("-fopenmp",)
            return Toolchain(cc=cc_path, flags=flags, openmp_flags=openmp_flags)
        return None
    finally:
        for path in scratch:
            try:
                os.unlink(path)
            except OSError:
                pass


def probe() -> Optional[Toolchain]:
    """The working toolchain, or ``None`` (cached after the first call)."""
    global _probe_ran, _probe_result
    with _lock:
        if _probe_ran:
            return _probe_result
    result: Optional[Toolchain] = None
    if not os.environ.get("REPRO_NO_CC"):
        for cand in _candidates():
            path = shutil.which(cand)
            if path is None:
                continue
            result = _try_probe(path)
            if result is not None:
                break
    with _lock:
        _probe_ran = True
        _probe_result = result
        return _probe_result


def reset_probe_cache() -> None:
    """Forget the cached probe (tests flip env vars between probes).

    The OpenMP capability lives on the cached :class:`Toolchain`, so
    dropping it here invalidates the compiler *and* the OpenMP answer in
    one step — a subsequent :func:`probe` re-examines both.  The
    permanent-failure memo is dropped too (its digests cover the
    toolchain identity, which may be about to change).
    """
    global _probe_ran, _probe_result, _ftz_ran, _ftz_result
    with _lock:
        _probe_ran = False
        _probe_result = None
        _ftz_ran = False
        _ftz_result = False
        _failed.clear()


#: MXCSR flush-to-zero probe source: sets and restores FTZ|DAZ through
#: the same intrinsics the denormals pass generates.
_FTZ_SOURCE = """
#include <xmmintrin.h>
int repro_probe(void) {
    unsigned int csr = _mm_getcsr();
    _mm_setcsr(csr | 0x8040u);
    _mm_setcsr(csr);
    return 42;
}
"""

_ftz_ran = False
_ftz_result = False


def probe_ftz() -> bool:
    """Whether this toolchain can set flush-to-zero via MXCSR.

    Gates the ``denormals`` codegen pass: on targets without SSE
    intrinsics the pass would render to a no-op prologue, so it is
    dropped from the *active* configuration (and therefore from cache
    keys) instead.  Cached after the first call; reset together with the
    toolchain probe.
    """
    global _ftz_ran, _ftz_result
    with _lock:
        if _ftz_ran:
            return _ftz_result
    tc = probe()
    result = False
    if tc is not None:
        scratch: List[str] = []
        try:
            result = _probe_build_runs(
                tc.cc, tc.flags, _FTZ_SOURCE, scratch, build_dir()
            )
        finally:
            for path in scratch:
                try:
                    os.unlink(path)
                except OSError:
                    pass
    with _lock:
        _ftz_ran = True
        _ftz_result = result
        return _ftz_result


#: digests whose build failed *permanently* (cc exited nonzero) — the
#: source is deterministic for a fixed toolchain, so re-running cc would
#: fail identically; remember the verdict instead of paying it again.
_failed: Dict[str, str] = {}


def reset_failure_memo() -> None:
    """Forget memoized permanent build failures (tests)."""
    with _lock:
        _failed.clear()


def _build_with_retry(tc: Toolchain, c_path: str, so_path: str, name: str) -> None:
    """Run cc into a private temp and publish it at *so_path*.

    Transient failures (:class:`ToolchainTimeout`, signal kills) are
    retried ``$REPRO_CC_RETRIES`` times with exponential backoff and
    jitter; a nonzero exit is permanent and propagates immediately.
    """
    directory = os.path.dirname(so_path)
    attempts = 1 + cc_retries()
    delay = cc_backoff()
    timeout = cc_timeout()
    for attempt in range(1, attempts + 1):
        # unique temp per build: concurrent builders of the same source
        # each write their own object, and os.replace picks a winner
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".%s." % name, suffix=".tmp.so"
        )
        os.close(fd)
        try:
            with obs_trace.span("cc", stem=name, cc=tc.cc, attempt=attempt):
                _run_cc(tc.cc, tc.all_flags(), c_path, tmp, timeout=timeout)
            os.replace(tmp, so_path)
            return
        except ToolchainError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            transient = isinstance(exc, (ToolchainTimeout, ToolchainInterrupted))
            if not transient or attempt == attempts:
                raise
            obs_metrics.inc("toolchain.retries")
            time.sleep(delay * (1.0 + random.random()))
            delay *= 2.0
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def compile_shared(source: str, stem: Optional[str] = None, force: bool = False) -> str:
    """Compile C *source* into a content-addressed ``.so``; return its path.

    An existing object for identical source is reused unless ``force`` is
    set (callers pass it after a cached object failed to load — e.g. a
    persistent ``$REPRO_C_CACHE`` carrying objects from another
    architecture).  Raises :class:`ToolchainError` when no toolchain is
    available or the build fails.

    Robustness properties:

    * each cc run is bounded by ``$REPRO_CC_TIMEOUT`` and transient
      failures (timeout, signal kill) are retried with backoff;
    * a *permanent* failure (cc rejects the source) is memoized per
      content digest — later requests for the same object fail fast
      instead of re-running a compile known to be deterministic-bad;
    * processes sharing a persistent ``$REPRO_C_CACHE`` elect a single
      builder per object via an advisory lock file next to the artifact
      (waiters poll for the published ``.so``; past ``$REPRO_LOCK_TIMEOUT``
      they stop waiting and build privately — wasteful, never wrong,
      since ``os.replace`` publication is atomic either way).
    """
    tc = probe()
    if tc is None:
        raise ToolchainError(
            "no working C compiler (set $REPRO_CC, or unset $REPRO_NO_CC)"
        )
    # the object's identity covers the toolchain configuration too: the
    # rendered source is deliberately identical with and without OpenMP
    # (preprocessor-guarded), so a persistent $REPRO_C_CACHE must not keep
    # serving a serial-only object after the environment gains -fopenmp
    # (or a parallel one after $REPRO_NO_OPENMP is set)
    identity = "%s\x00%s\x00%s" % (tc.cc, " ".join(tc.all_flags()), source)
    digest = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]
    with _lock:
        memo = _failed.get(digest)
    if memo is not None and not force:
        raise ToolchainError(
            "build of %s previously failed permanently "
            "(reset_failure_memo() to retry):\n%s" % (digest, memo)
        )
    name = "ck_%s" % digest if stem is None else "ck_%s_%s" % (stem, digest)
    directory = build_dir()
    so_path = os.path.join(directory, name + ".so")
    if os.path.exists(so_path) and not force:
        return so_path
    c_path = os.path.join(directory, name + ".c")
    _write_file_atomic(directory, c_path, source)
    lock = InterProcessLock(so_path + ".lock")
    acquired = False
    deadline = time.monotonic() + lock_timeout()
    try:
        while True:
            if lock.try_acquire():
                acquired = True
                break
            # another process is building this exact object: wait for
            # its publication rather than burning a duplicate cc run
            if os.path.exists(so_path) and not force:
                return so_path
            if time.monotonic() >= deadline:
                obs_metrics.inc("toolchain.lock_timeouts")
                break  # stop waiting; build privately (correct, not cheap)
            time.sleep(0.02)
        if acquired and os.path.exists(so_path) and not force:
            return so_path  # the previous holder published while we waited
        try:
            _build_with_retry(tc, c_path, so_path, name)
        except ToolchainError as exc:
            if not isinstance(exc, (ToolchainTimeout, ToolchainInterrupted)):
                obs_metrics.inc("toolchain.permanent_failures")
                with _lock:
                    _failed[digest] = str(exc)[:2000]
            raise
    finally:
        if acquired:
            lock.release()
    return so_path
