"""The Python execution backend: ``exec`` the generated source.

This is the original execution path, refactored behind the
:class:`~repro.codegen.backends.base.Backend` interface.  It is always
available and is what ``backend="auto"`` degrades to when no C toolchain
can be found.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.codegen.backends.base import Backend, Executable
from repro.codegen.lower import LoweredKernel


def exec_kernel_source(lowered: LoweredKernel, label: Optional[str] = None):
    """Exec the generated module and return the kernel function.

    ``label`` distinguishes kernels in tracebacks — the service layer
    passes a cache-key prefix so a failure inside one of many resident
    kernels names the kernel that produced it.
    """
    filename = "<systec-kernel>" if label is None else "<systec-kernel %s>" % label
    namespace: Dict[str, object] = {"np": np}
    code = compile(lowered.source, filename, "exec")
    exec(code, namespace)
    return namespace["kernel"]


class PythonExecutable(Executable):
    """Wraps the exec'd ``kernel`` function."""

    def __init__(self, lowered: LoweredKernel, label: Optional[str] = None):
        self.fn = exec_kernel_source(lowered, label)
        self.source = lowered.source

    def __call__(self, out: np.ndarray, threads: int = 1, **arrays) -> None:
        # the interpreted loops are inherently single-threaded; the
        # thread count is accepted (and ignored) so callers can drive
        # every backend through one signature
        self.fn(out, **arrays)

    def bind(
        self, out: np.ndarray, arrays: Mapping[str, object]
    ) -> Callable[[int], None]:
        """The keyword set is merged once; repeat calls skip the dict walk."""
        call = functools.partial(self.fn, out, **arrays)

        def run(threads: int) -> None:
            call()

        return run

    def describe(self) -> str:
        return "python (interpreted numpy loops)"


class PythonBackend(Backend):
    name = "python"

    def is_available(self) -> bool:
        return True

    def compile(
        self,
        lowered: LoweredKernel,
        label: Optional[str] = None,
        artifact: Optional[str] = None,
        einsum: Optional[str] = None,
    ) -> PythonExecutable:
        return PythonExecutable(lowered, label)

    def describe(self) -> str:
        return "python: interpreted numpy loops (always available)"
