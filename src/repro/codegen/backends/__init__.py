"""Pluggable execution backends.

Lowering fixes the loop structure of a kernel; a *backend* decides how
those loops execute:

* ``python`` — ``exec`` the generated source (always available);
* ``c`` — render the same loop structure to C, compile it with the system
  toolchain and bind it through ctypes (orders of magnitude faster);
* ``auto`` — ``c`` when a working compiler is found, else ``python``.

``CompilerOptions.backend`` selects one; the ``$REPRO_BACKEND``
environment variable sets the process-wide default.
"""

from __future__ import annotations

from typing import Dict

from repro.codegen.backends.base import (
    Backend,
    BackendError,
    BackendUnavailableError,
    Executable,
)
from repro.codegen.backends.c import CBackend, CRenderError, render_c
from repro.codegen.backends.python import PythonBackend
from repro.core.config import BACKEND_CHOICES

_REGISTRY: Dict[str, Backend] = {
    "python": PythonBackend(),
    "c": CBackend(),
}

#: concrete backend names (``auto`` — accepted by ``CompilerOptions`` and
#: resolved by :func:`resolve_backend_name` — is not a registry entry).
BACKEND_NAMES = tuple(_REGISTRY)

# the option validator (core.config, which cannot import this package at
# module level) and the registry must name the same backends
assert set(BACKEND_CHOICES) == set(BACKEND_NAMES) | {"auto"}


def get_backend(name: str) -> Backend:
    """The backend singleton registered under *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown backend %r (have: %s)" % (name, ", ".join(BACKEND_NAMES))
        )


def resolve_backend_name(name: str) -> str:
    """Collapse ``auto`` onto a concrete backend (probing the toolchain
    once per process); validate everything else."""
    if name == "auto":
        return "c" if get_backend("c").is_available() else "python"
    if name not in _REGISTRY:
        raise ValueError(
            "unknown backend %r (have: %s)"
            % (name, ", ".join(BACKEND_CHOICES))
        )
    return name


__all__ = [
    "BACKEND_CHOICES",
    "BACKEND_NAMES",
    "Backend",
    "BackendError",
    "BackendUnavailableError",
    "CBackend",
    "CRenderError",
    "Executable",
    "PythonBackend",
    "get_backend",
    "render_c",
    "resolve_backend_name",
]
