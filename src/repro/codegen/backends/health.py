"""Per-process backend health: the degradation ladder.

The execution tiers, fastest first::

    c@omp   — the C backend's OpenMP-parallel bodies (threads > 1)
    c       — the same compiled kernels, serial branch
    python  — the interpreted backend (always works)

A *runtime* failure in a tier — the OpenMP runtime breaking mid-session,
a shared object that stops dlopening, the toolchain disappearing — marks
that tier unhealthy for the rest of the process: the error is recorded,
the ``backend.degraded`` / ``service.errors.<tier>`` metrics counters are
bumped, and callers transparently re-serve work from the next tier down.
Results stay bit-identical by construction (every tier runs the same
lowered loop structure; see the differential fuzzer).

Health is deliberately per-process and sticky (until :func:`reset`): a
tier that failed once mid-session is assumed broken — flapping between a
broken tier and its fallback would pay the failure cost on every call.
Per-kernel *compile* errors (a source that never builds) are not tier
failures; those are memoized by the toolchain's permanent-failure memo.

``REPRO_NO_DEGRADE=1`` disables degradation at the call sites (failures
then propagate raw); this module still records what failed.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.obs import metrics as obs_metrics

#: ladder order, fastest tier first.  ``python`` is the floor and is
#: never marked unhealthy.
TIERS = ("c@omp", "c", "python")

#: the kernel-service daemon as a pseudo-tier *above* the in-process
#: ladder: a client configured with ``REPRO_SERVICE`` serves cold keys
#: from the daemon first, and a daemon that stops answering (after the
#: client's bounded retries) is marked unhealthy here — sticky, like the
#: backend tiers — so every later request falls back to the in-process
#: ladder without paying connect/retry latency again.  Deliberately not
#: part of :data:`TIERS`: the in-process ladder and its ordering are
#: unchanged, remote is tracked alongside it.
REMOTE = "remote"

#: recorded errors kept per tier (the first failure matters most).
_MAX_ERRORS = 8

#: a tier cannot be healthier than what it runs on: the OpenMP tier
#: executes the same compiled object the serial C tier does.
_DEPENDS = {"c@omp": ("c",)}


class BackendHealth:
    """Thread-safe per-tier failure record."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._errors: Dict[str, List[str]] = {}
        self._counts: Dict[str, int] = {}
        self._since: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def ok(self, tier: str) -> bool:
        """Is *tier* still healthy (itself and every tier it rides on)?"""
        if tier in self._counts:
            return False
        return all(dep not in self._counts for dep in _DEPENDS.get(tier, ()))

    def mark(self, tier: str, error: BaseException) -> bool:
        """Record a runtime failure in *tier*; returns True on the first
        failure of that tier (the moment the ladder actually degrades)."""
        if (tier not in TIERS and tier != REMOTE) or tier == "python":
            raise ValueError("cannot mark tier %r" % (tier,))
        message = "%s: %s" % (type(error).__name__, error)
        with self._lock:
            first = tier not in self._counts
            self._counts[tier] = self._counts.get(tier, 0) + 1
            if first:
                self._since[tier] = time.time()
            errors = self._errors.setdefault(tier, [])
            if len(errors) < _MAX_ERRORS:
                errors.append(message[:500])
        obs_metrics.inc("service.errors.%s" % tier)
        if first:
            obs_metrics.inc("backend.degraded")
        return first

    def active_ladder(self) -> List[str]:
        """The tiers still in service, fastest first."""
        return [t for t in TIERS if self.ok(t)]

    def degraded(self) -> bool:
        return bool(self._counts)

    def first_error(self, tier: str) -> Optional[str]:
        errors = self._errors.get(tier)
        return errors[0] if errors else None

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready health state (``ServiceStats.to_dict`` / doctor)."""
        with self._lock:
            return {
                "degraded": bool(self._counts),
                "ladder": [t for t in TIERS if self.ok(t)],
                "tiers": {
                    tier: {
                        "healthy": self.ok(tier),
                        "failures": self._counts.get(tier, 0),
                        "errors": list(self._errors.get(tier, ())),
                    }
                    for tier in TIERS
                },
                "remote": {
                    "healthy": self.ok(REMOTE),
                    "failures": self._counts.get(REMOTE, 0),
                    "errors": list(self._errors.get(REMOTE, ())),
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._errors.clear()
            self._counts.clear()
            self._since.clear()

    def reset_remote(self) -> None:
        """Forget remote failures only (a restarted daemon is reachable
        again; the in-process ladder's stickiness is unaffected)."""
        with self._lock:
            self._errors.pop(REMOTE, None)
            self._counts.pop(REMOTE, None)
            self._since.pop(REMOTE, None)


#: the process-wide health record.
HEALTH = BackendHealth()


def ok(tier: str) -> bool:
    return HEALTH.ok(tier)


def mark(tier: str, error: BaseException) -> bool:
    return HEALTH.mark(tier, error)


def active_ladder() -> List[str]:
    return HEALTH.active_ladder()


def degraded() -> bool:
    return HEALTH.degraded()


def first_error(tier: str) -> Optional[str]:
    return HEALTH.first_error(tier)


def snapshot() -> dict:
    return HEALTH.snapshot()


def reset() -> None:
    HEALTH.reset()


def mark_remote(error: BaseException) -> bool:
    """Record a kernel-service daemon failure (sticky remote fallback)."""
    return HEALTH.mark(REMOTE, error)


def remote_ok() -> bool:
    """Is the remote daemon still considered reachable?"""
    return HEALTH.ok(REMOTE)


def reset_remote() -> None:
    HEALTH.reset_remote()
