"""The execution-backend interface.

A *backend* turns a :class:`~repro.codegen.lower.LoweredKernel` into an
:class:`Executable` — something callable as ``executable(out, **arrays)``
on exactly the argument set :meth:`BoundKernel.prepare` produces.  The
loop structure is fixed by lowering; backends only decide how those loops
run (interpreted Python vs. a compiled shared object).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import numpy as np

from repro.codegen.lower import LoweredKernel


class BackendError(RuntimeError):
    """A backend failed to build or load an executable."""


class BackendUnavailableError(BackendError):
    """The requested backend cannot run on this machine (e.g. the C
    backend without a working compiler).  ``backend="auto"`` degrades to
    the Python backend instead of raising this."""


class Executable:
    """A runnable realization of one lowered kernel.

    ``threads`` is the runtime thread count for backends that can run a
    kernel's loops on several cores (the C backend's OpenMP bodies);
    backends without intra-kernel parallelism accept and ignore it.
    ``"threads"`` is therefore a reserved argument name — no tensor
    argument may use it.
    """

    #: the source text this executable runs (Python or C).
    source: str

    def __call__(self, out: np.ndarray, threads: int = 1, **arrays) -> None:
        raise NotImplementedError

    def bind(
        self, out: np.ndarray, arrays: Mapping[str, object]
    ) -> Callable[[int], None]:
        """Pre-marshal one complete argument set for repeat execution.

        Returns ``call(threads)``, a callable that runs the kernel's loops
        on exactly the bound arguments — the hot half of an
        :class:`~repro.codegen.executor.ExecutionPlan`.  Backends override
        this to move their per-call argument processing (dtype coercion,
        ctypes packing) to bind time; the bound callable must keep every
        coerced buffer alive for as long as it exists.  The default
        implementation simply forwards to :meth:`__call__`.
        """

        def call(threads: int) -> None:
            self(out, threads=threads, **arrays)

        return call

    def parallel_work(
        self, arrays: Mapping[str, object]
    ) -> Optional[float]:
        """Estimated scalar updates of this kernel's parallelizable nests.

        ``None`` means the executable has no parallel bodies (the Python
        backend, serial-only C kernels) and a thread team could never help;
        otherwise the estimate feeds the ``threads="auto"`` cost model
        (:func:`repro.core.config.auto_thread_count`).  ``arrays`` is the
        prepared argument mapping a run would receive.
        """
        return None

    # ------------------------------------------------------------------
    # per-nest profiling (repro.obs.profile) — only builds made with
    # REPRO_PROFILE=1 on backends that support it carry instrumentation;
    # everything else reports "not profiled" through these defaults.
    #: whether this build carries per-nest wall-time instrumentation.
    profiled: bool = False

    def nest_profile(self):
        """Accumulated per-nest times as a
        :class:`~repro.obs.profile.NestProfile`, or ``None`` when this
        build is not profiled."""
        return None

    def profile_reset(self) -> None:
        """Zero the per-nest accumulators (no-op when not profiled)."""

    def describe(self) -> str:
        raise NotImplementedError


class Backend:
    """Builds executables for lowered kernels."""

    #: registry name ("python", "c").
    name: str

    def is_available(self) -> bool:
        """Can this backend build and run kernels on this machine?"""
        raise NotImplementedError

    def compile(
        self,
        lowered: LoweredKernel,
        label: Optional[str] = None,
        artifact: Optional[str] = None,
        einsum: Optional[str] = None,
    ) -> Executable:
        """Build an executable.

        ``label`` names the kernel in diagnostics; ``artifact`` is an
        optional path to a previously-built binary (the disk store's
        ``<key>.so``) the backend may reuse instead of recompiling — a
        stale or corrupt artifact must fall back to a fresh build.
        ``einsum`` is the kernel's semantic identity for tuned compile
        overrides (:func:`repro.tune.compile_overrides`); backends
        without tunable codegen ignore it.
        """
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError
