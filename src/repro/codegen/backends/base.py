"""The execution-backend interface.

A *backend* turns a :class:`~repro.codegen.lower.LoweredKernel` into an
:class:`Executable` — something callable as ``executable(out, **arrays)``
on exactly the argument set :meth:`BoundKernel.prepare` produces.  The
loop structure is fixed by lowering; backends only decide how those loops
run (interpreted Python vs. a compiled shared object).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.codegen.lower import LoweredKernel


class BackendError(RuntimeError):
    """A backend failed to build or load an executable."""


class BackendUnavailableError(BackendError):
    """The requested backend cannot run on this machine (e.g. the C
    backend without a working compiler).  ``backend="auto"`` degrades to
    the Python backend instead of raising this."""


class Executable:
    """A runnable realization of one lowered kernel."""

    #: the source text this executable runs (Python or C).
    source: str

    def __call__(self, out: np.ndarray, **arrays) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class Backend:
    """Builds executables for lowered kernels."""

    #: registry name ("python", "c").
    name: str

    def is_available(self) -> bool:
        """Can this backend build and run kernels on this machine?"""
        raise NotImplementedError

    def compile(
        self,
        lowered: LoweredKernel,
        label: Optional[str] = None,
        artifact: Optional[str] = None,
    ) -> Executable:
        """Build an executable.

        ``label`` names the kernel in diagnostics; ``artifact`` is an
        optional path to a previously-built binary (the disk store's
        ``<key>.so``) the backend may reuse instead of recompiling — a
        stale or corrupt artifact must fall back to a fresh build.
        """
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError
