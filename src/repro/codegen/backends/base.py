"""The execution-backend interface.

A *backend* turns a :class:`~repro.codegen.lower.LoweredKernel` into an
:class:`Executable` — something callable as ``executable(out, **arrays)``
on exactly the argument set :meth:`BoundKernel.prepare` produces.  The
loop structure is fixed by lowering; backends only decide how those loops
run (interpreted Python vs. a compiled shared object).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.codegen.lower import LoweredKernel


class BackendError(RuntimeError):
    """A backend failed to build or load an executable."""


class BackendUnavailableError(BackendError):
    """The requested backend cannot run on this machine (e.g. the C
    backend without a working compiler).  ``backend="auto"`` degrades to
    the Python backend instead of raising this."""


class Executable:
    """A runnable realization of one lowered kernel.

    ``threads`` is the runtime thread count for backends that can run a
    kernel's loops on several cores (the C backend's OpenMP bodies);
    backends without intra-kernel parallelism accept and ignore it.
    ``"threads"`` is therefore a reserved argument name — no tensor
    argument may use it.
    """

    #: the source text this executable runs (Python or C).
    source: str

    def __call__(self, out: np.ndarray, threads: int = 1, **arrays) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class Backend:
    """Builds executables for lowered kernels."""

    #: registry name ("python", "c").
    name: str

    def is_available(self) -> bool:
        """Can this backend build and run kernels on this machine?"""
        raise NotImplementedError

    def compile(
        self,
        lowered: LoweredKernel,
        label: Optional[str] = None,
        artifact: Optional[str] = None,
    ) -> Executable:
        """Build an executable.

        ``label`` names the kernel in diagnostics; ``artifact`` is an
        optional path to a previously-built binary (the disk store's
        ``<key>.so``) the backend may reuse instead of recompiling — a
        stale or corrupt artifact must fall back to a fresh build.
        """
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError
