"""Denormal avoidance: flush-to-zero / denormals-are-zero for the kernel.

Denormal operands put the FPU on a microcode assist path that can cost
two orders of magnitude per operation; iterative kernels whose values
decay toward zero (graph relaxations, repeated rank-k accumulation)
hit it hard.  The usual cure, ``-ffast-math``, is off the table here —
it licenses reassociation and breaks the bit-identity contract — so this
pass instead sets the FTZ and DAZ bits in the SSE control register
(MXCSR) for the duration of the kernel and restores the caller's state
afterwards, per thread inside OpenMP regions (MXCSR is thread state).

The pass is **off by default** and excluded from the bit-exact set:
whenever a denormal actually occurs, flushing it to zero changes the
result relative to the Python backend by definition.  It participates in
the pipeline, the cache key and the trace spans like every other pass;
the generated code is ``__SSE2__``-guarded and the env-driven
configuration drops the pass when :func:`ctoolchain.probe_ftz` fails.
"""

from __future__ import annotations

from repro.codegen.backends.cpasses.base import Pass, PassConfig
from repro.codegen.backends.cpasses.ir import LoopIR


class DenormalsPass(Pass):
    name = "denormals"
    default_on = False
    #: flushing denormals changes results when denormals occur.
    bit_exact = False

    def describe(self) -> str:
        return (
            "flush denormals to zero via MXCSR (FTZ|DAZ), saved/restored "
            "around the kernel and per OpenMP thread; not bit-exact"
        )

    def run(self, ir: LoopIR, config: PassConfig) -> LoopIR:
        ir.ftz = True
        ir.notes.append("ftz prologue armed")
        return ir
