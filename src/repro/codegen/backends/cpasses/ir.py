"""The structured loop-IR the C pass pipeline transforms.

The lowered kernel source is a tiny, fixed Python statement vocabulary
(``for``/``while`` sparse walks, scalar temps, vectorized row updates),
so the IR stays close to the ``ast`` tree: :class:`LoopIR` wraps the
kernel function's top-level statement list plus the render facts a
transformation needs (output rank, vector axis, which argument names are
structure arrays / extents / dense inputs, which locals are workspace
vectors).  Passes rewrite ``body`` in place — splitting nests, grouping
runs of vector statements into :class:`FusedVector` nodes, attaching
:class:`TileSpec` annotations — and the renderer in
:mod:`repro.codegen.backends.c` emits C from the transformed tree.

:func:`scan_nest` also lives here: the per-nest write-pattern facts the
parallel-strategy planner consumes.  Passes reuse it (the fission and
tile matchers need the same "every write leads with X, no reads of the
output" proofs the planner needs), so the scan is defined once, on the
IR, instead of privately inside the renderer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

# type tags for kernel locals (shared with the renderer's inference).
INT = "int"
DBL = "double"
VEC = "vec"  # borrowed const elem* (a dense row slice)
WS = "ws"  # owned elem* (np.empty workspace)
LUT = "lut"  # const elem[] lookup table


class FusedVector(ast.stmt):
    """A run of adjacent vectorized ``+=`` statements fused into one
    element loop.

    Each member statement individually renders as
    ``for (_v = 0; _v < vlen; ++_v) { elt += expr; }``; the fused node
    renders them all inside one loop.  Bit-identical to the unfused
    sequence because every vector access in the element context touches
    index ``_v`` only: for any element ``v``, the fused schedule runs the
    member statements in original order, and a member reading a vector a
    previous member wrote sees exactly the value the unfused schedule
    would have published at index ``v``.

    Subclassing :class:`ast.stmt` with ``_fields`` keeps ``ast.walk`` /
    ``ast.iter_child_nodes`` (and everything built on them — assigned-name
    collection, nest scans, work models) transparent to fusion.
    """

    _fields = ("stmts",)

    def __init__(self, stmts: List[ast.stmt]):
        super().__init__()
        self.stmts = stmts


@dataclass
class TileSpec:
    """Row-blocking annotation for one triangle-bounded scatter nest.

    ``lead`` is the output-row coordinate read off a sorted fiber inside
    ``bind_for`` (its first body statement); the renderer wraps the nest
    in a block loop over output rows and injects
    ``if (lead >= hi) break; / if (lead < lo) continue;`` right after the
    coordinate read.  ``break`` is valid because ``bind_for`` walks a
    single fiber whose ``idx`` run is sorted ascending.  ``rows == 0``
    means size the block at run time from the output's row width.
    """

    lead: str
    bind_for: ast.For
    rows: int = 0


@dataclass
class LoopIR:
    """One kernel's top-level statements plus the facts passes match on."""

    body: List[ast.stmt]
    out_ndim: int
    vector_index: Optional[str]
    #: C name of the vector extent argument (``n_<vector_index>``).
    vlen: Optional[str]
    int_arrays: Set[str]
    dim_args: Set[str]
    dense: Dict[str, int]
    #: locals holding np.empty workspace vectors (from type inference).
    ws_names: Set[str]
    reduce_op: str
    elem_size: int
    # pipeline-output flags the emitter reads back
    ftz: bool = False
    simd: bool = False
    #: human-readable per-pass notes (surfaced through trace spans).
    notes: List[str] = field(default_factory=list)


@dataclass
class NestScan:
    """Raw facts about one nest body the strategy choice is made from."""

    ok: bool = True
    out_writes: List[Tuple[str, bool, object]] = field(default_factory=list)
    #: name -> "add" | "minmax" for scalar/vector accumulator updates
    updates: Dict[str, str] = field(default_factory=dict)
    #: names initialized inside the nest (plain assign or .fill)
    inits: Set[str] = field(default_factory=set)
    assigned: Set[str] = field(default_factory=set)
    out_loads: int = 0
    expected_out_loads: int = 0


def sub_name(node: ast.Subscript) -> Optional[str]:
    return node.value.id if isinstance(node.value, ast.Name) else None


def coords(node: ast.Subscript):
    """Coordinate expressions of a subscript; None for ``[:]``."""
    sl = node.slice
    if isinstance(sl, ast.Slice):
        return None
    if isinstance(sl, ast.Tuple):
        return list(sl.elts)
    return [sl]


def is_np_empty(node) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "np"
        and node.func.attr == "empty"
    )


def min_max_args(node):
    """Arguments of a two-argument ``min``/``max`` call, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("min", "max")
        and len(node.args) == 2
    ):
        return node.args
    return None


def collect_assigned(stmts) -> Set[str]:
    """Every local name a statement list assigns (recursively)."""
    names: Set[str] = set()
    for node in stmts:
        for sub in ast.walk(node):
            if isinstance(sub, ast.For) and isinstance(sub.target, ast.Name):
                names.add(sub.target.id)
            elif isinstance(sub, ast.Assign):
                target = sub.targets[0]
                if isinstance(target, ast.Name):
                    names.add(target.id)
            elif isinstance(sub, ast.AugAssign):
                if isinstance(sub.target, ast.Name):
                    names.add(sub.target.id)
    return names


def _record_out_write(
    target: ast.Subscript,
    kind: str,
    scan: NestScan,
    out_ndim: int,
    vector_index: Optional[str],
) -> None:
    cs = coords(target)
    if cs is None:  # out[:]
        scan.out_writes.append((kind, True, None))
        return
    if len(cs) == out_ndim:
        lead = cs[0].id if cs and isinstance(cs[0], ast.Name) else None
        scan.out_writes.append((kind, False, lead))
        return
    if len(cs) == out_ndim - 1 and vector_index is not None:
        lead = cs[0].id if cs and isinstance(cs[0], ast.Name) else None
        scan.out_writes.append((kind, True, lead))
        return
    scan.ok = False


def _scan_assign(
    st: ast.Assign, scan: NestScan, out_ndim: int, vector_index: Optional[str]
) -> None:
    target, value = st.targets[0], st.value
    if isinstance(target, ast.Name):
        name = target.id
        scan.assigned.add(name)
        mm = min_max_args(value)
        if (
            mm is not None
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id == name
        ):
            # x = min(x, e): a min/max accumulator update
            if scan.updates.setdefault(name, "minmax") != "minmax":
                scan.ok = False
        elif is_np_empty(value):
            scan.ok = False  # allocation inside a nest: not generated
        else:
            scan.inits.add(name)
        return
    if isinstance(target, ast.Subscript) and sub_name(target) == "out":
        if min_max_args(value) is None:
            scan.ok = False
            return
        _record_out_write(target, "minmax", scan, out_ndim, vector_index)
        scan.expected_out_loads += 1  # the read inside min(out[...], e)
        return
    scan.ok = False


def _scan_aug(
    st: ast.AugAssign, scan: NestScan, out_ndim: int, vector_index: Optional[str]
) -> None:
    if not isinstance(st.op, ast.Add):
        scan.ok = False
        return
    target = st.target
    if isinstance(target, ast.Name):
        scan.assigned.add(target.id)
        if scan.updates.setdefault(target.id, "add") != "add":
            scan.ok = False
        return
    if isinstance(target, ast.Subscript) and sub_name(target) == "out":
        _record_out_write(target, "add", scan, out_ndim, vector_index)
        return
    scan.ok = False


def _scan_expr_stmt(
    node, scan: NestScan, out_ndim: int, vector_index: Optional[str]
) -> None:
    if not isinstance(node, ast.Call):
        scan.ok = False
        return
    fn = node.func
    if isinstance(fn, ast.Attribute) and fn.attr == "fill":
        if isinstance(fn.value, ast.Name):
            scan.assigned.add(fn.value.id)
            scan.inits.add(fn.value.id)
        else:
            scan.ok = False
        return
    if (
        isinstance(fn, ast.Attribute)
        and isinstance(fn.value, ast.Name)
        and fn.value.id == "np"
        and fn.attr in ("minimum", "maximum")
    ):
        tgt = node.args[0]
        if isinstance(tgt, ast.Name):
            scan.assigned.add(tgt.id)
            if scan.updates.setdefault(tgt.id, "minmax") != "minmax":
                scan.ok = False
        elif isinstance(tgt, ast.Subscript) and sub_name(tgt) == "out":
            _record_out_write(tgt, "minmax", scan, out_ndim, vector_index)
            scan.expected_out_loads += 2  # arg 0 and the out= keyword
        else:
            scan.ok = False
        return
    scan.ok = False


def scan_nest(
    outer: ast.For, out_ndim: int, vector_index: Optional[str]
) -> NestScan:
    """Write-pattern facts of one top-level nest (planner + pass matchers)."""
    scan = NestScan()

    def visit(stmts, loop_depth: int) -> None:
        for st in stmts:
            if isinstance(st, ast.For):
                if isinstance(st.target, ast.Name):
                    scan.assigned.add(st.target.id)
                    scan.inits.add(st.target.id)
                visit(st.body, loop_depth + 1)
            elif isinstance(st, ast.While):
                visit(st.body, loop_depth + 1)
            elif isinstance(st, ast.If):
                visit(st.body, loop_depth)
                visit(st.orelse, loop_depth)
            elif isinstance(st, FusedVector):
                # fused members are ordinary vector statements; the run
                # groups them without changing what the nest writes
                visit(st.stmts, loop_depth)
            elif isinstance(st, (ast.Break, ast.Continue)):
                if loop_depth == 0:
                    scan.ok = False  # would escape the omp for loop
            elif isinstance(st, ast.Assign):
                _scan_assign(st, scan, out_ndim, vector_index)
            elif isinstance(st, ast.AugAssign):
                _scan_aug(st, scan, out_ndim, vector_index)
            elif isinstance(st, ast.Expr):
                _scan_expr_stmt(st.value, scan, out_ndim, vector_index)
            elif isinstance(st, ast.Pass):
                pass
            else:
                scan.ok = False

    visit(outer.body, 0)
    for sub in ast.walk(outer):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "out"
            and isinstance(sub.ctx, ast.Load)
        ):
            scan.out_loads += 1
    return scan


def reads_out(node) -> bool:
    """Does any expression under *node* load from the output array?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "out"
            and isinstance(sub.ctx, ast.Load)
        ):
            return True
    return False


def loaded_names(stmts) -> Set[str]:
    """Every name a statement list reads (Load context, recursively)."""
    names: Set[str] = set()
    for node in stmts:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                names.add(sub.id)
    return names
