"""Cache blocking (row tiling) of triangle-bounded scatter nests.

The SSYRK-shape nest walks the whole sparse structure once and scatters
``out[j, i] += ...`` with ``j`` read off a sorted fiber; for outputs
larger than cache, successive ``j`` values touch rows far apart and
every write misses.  This pass wraps the nest in a block loop over
output rows: each pass over the structure handles only the rows in
``[lo, hi)``, skipping foreign entries with a guard injected right after
the fiber coordinate read —

.. code-block:: c

    for (rp_tb = 0; rp_tb < out_dims[0]; rp_tb += rp_tile) {
        /* original nest, with inside the fiber loop: */
        j = idx[q];
        if (j >= rp_thi) { break; }
        if (j < rp_tb)   { continue; }

``break`` (not ``continue``) is sound because the fiber's ``idx`` run is
sorted ascending — once ``j`` leaves the block no later entry of that
fiber can belong to it — which makes the re-walk cheap: each fiber scan
stops at the block's upper row.  A block of output rows stays
cache-resident across one full structure walk (measured 1.3–2.8x on
dense-row SSYRK at n in the thousands).

Bit-identity argument.  Every write to one output element carries the
same blocked coordinate ``j``, so all of an element's writes land in
exactly one block; within that block's pass, iteration order is the
serial order restricted to a subset.  Per-element accumulation order is
therefore exactly the serial order — bit-identical results.

The block size defaults to keeping roughly 1 MiB of output rows resident
(``$REPRO_TILE`` pins an explicit row count).  The annotation applies to
serial emission only; OpenMP bodies replay in untiled serial order and
stay bit-identical by the existing replay argument.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.codegen.backends.cpasses.base import Pass, PassConfig
from repro.codegen.backends.cpasses.fission import _fiber_pos_name, _is_range
from repro.codegen.backends.cpasses.ir import (
    LoopIR,
    TileSpec,
    coords,
    reads_out,
    scan_nest,
)


class TilePass(Pass):
    name = "tile"
    default_on = False
    bit_exact = True

    def describe(self) -> str:
        return (
            "row-block triangle-bounded scatter nests (SSYRK shape) so a "
            "block of output rows stays cache-resident per structure walk; "
            "bit-exact (per-element write order preserved); "
            "REPRO_TILE sets the row count (0 = auto ~1MiB)"
        )

    def run(self, ir: LoopIR, config: PassConfig) -> LoopIR:
        if ir.out_ndim != 2:
            return ir
        tiled = 0
        for stmt in ir.body:
            if not isinstance(stmt, ast.For):
                continue
            spec = self._match(stmt, ir, config)
            if spec is not None:
                stmt._rp_tile = spec
                tiled += 1
        if tiled:
            ir.notes.append(
                "tiled %d nest(s) (rows=%s)"
                % (tiled, config.tile_rows if config.tile_rows > 0 else "auto")
            )
        return ir

    # ------------------------------------------------------------------
    def _match(
        self, node: ast.For, ir: LoopIR, config: PassConfig
    ) -> Optional[TileSpec]:
        if not isinstance(node.target, ast.Name) or not _is_range(node.iter):
            return None
        if len(node.body) != 1 or not isinstance(node.body[0], ast.For):
            return None
        bind = node.body[0]
        if not isinstance(bind.target, ast.Name):
            return None
        # the guarded loop must walk exactly one fiber, whose idx run is
        # sorted — that is what licenses the break (vs continue) guard
        pos_name = _fiber_pos_name(bind.iter, node.target.id)
        if pos_name is None or pos_name not in ir.int_arrays:
            return None
        if not bind.body or not isinstance(bind.body[0], ast.Assign):
            return None
        first = bind.body[0]
        lead_t, lead_v = first.targets[0], first.value
        if not (
            isinstance(lead_t, ast.Name)
            and isinstance(lead_v, ast.Subscript)
            and isinstance(lead_v.value, ast.Name)
            and lead_v.value.id in ir.int_arrays
            and "_idx" in lead_v.value.id
        ):
            return None
        cs = coords(lead_v)
        if not (
            cs is not None
            and len(cs) == 1
            and isinstance(cs[0], ast.Name)
            and cs[0].id == bind.target.id
        ):
            return None
        lead = lead_t.id
        # structured fors only (the injected break must bind to the
        # fiber loop), and no reads of the output
        for sub in ast.walk(node):
            if isinstance(sub, ast.While):
                return None
        if reads_out(node):
            return None
        scan = scan_nest(node, ir.out_ndim, ir.vector_index)
        if not scan.ok or scan.out_loads or scan.expected_out_loads:
            return None
        if not scan.out_writes:
            return None
        # every write must lead with the blocked coordinate — that is the
        # whole bit-identity argument
        for kind, row, write_lead in scan.out_writes:
            if kind != "add" or row or write_lead != lead:
                return None
        # the lead must be bound exactly once (the fiber coordinate read)
        bindings = 0
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                if isinstance(sub.targets[0], ast.Name) and sub.targets[0].id == lead:
                    bindings += 1
            elif isinstance(sub, ast.AugAssign):
                if isinstance(sub.target, ast.Name) and sub.target.id == lead:
                    return None
            elif isinstance(sub, ast.For):
                if isinstance(sub.target, ast.Name) and sub.target.id == lead:
                    return None
        if bindings != 1:
            return None
        return TileSpec(lead=lead, bind_for=bind, rows=config.tile_rows)
