"""Fusion of adjacent vectorized statements into one element loop.

The lowered vocabulary renders every numpy row-slice update
(``ws0 += ...``, ``out[i] += ...`` over the trailing vector axis) as its
own ``for (_v = 0; _v < vlen; ++_v)`` loop.  Runs of two or more such
statements walk the same index space back to back; fusing them into a
single element loop reads each shared operand once per element and
halves the loop overhead.

Bit-identity argument.  In the element context every vector access —
read or write — is at index ``_v`` exactly (workspace elements
``ws[_v]``, output rows ``out[base + _v]``, dense rows ``x[row + _v]``).
For any element ``v``, the fused schedule executes the member statements
in original order, and a member that reads a vector an earlier member
wrote sees precisely the value the unfused schedule would have published
at index ``v``; elements never interact.  So the fused loop performs the
identical arithmetic per element in the identical order — bit-equal
results.

The renderer falls back to per-statement emission inside ordered-replay
and atomic parallel bodies, where shared row writes are rerouted through
the scatter log / pragma machinery statement by statement.
"""

from __future__ import annotations

import ast
from typing import List

from repro.codegen.backends.cpasses.base import Pass, PassConfig
from repro.codegen.backends.cpasses.ir import FusedVector, LoopIR, coords, sub_name


class FusePass(Pass):
    name = "fuse"
    default_on = True
    bit_exact = True

    def describe(self) -> str:
        return (
            "fuse runs of adjacent vectorized += statements into one "
            "element loop; bit-exact (all vector accesses are at the "
            "element index)"
        )

    def run(self, ir: LoopIR, config: PassConfig) -> LoopIR:
        if ir.vector_index is None:
            return ir
        fused = self._rewrite(ir.body, ir)
        if fused:
            ir.notes.append("fused %d run(s)" % fused)
        return ir

    def _rewrite(self, body: List[ast.stmt], ir: LoopIR) -> int:
        count = 0
        for st in body:
            if isinstance(st, (ast.For, ast.While)):
                count += self._rewrite(st.body, ir)
            elif isinstance(st, ast.If):
                count += self._rewrite(st.body, ir)
                count += self._rewrite(st.orelse, ir)
        out: List[ast.stmt] = []
        run: List[ast.stmt] = []

        def flush() -> None:
            nonlocal count
            if len(run) >= 2:
                out.append(FusedVector(list(run)))
                count += 1
            else:
                out.extend(run)
            run.clear()

        for st in body:
            if self._fusable(st, ir):
                run.append(st)
            else:
                flush()
                out.append(st)
        flush()
        body[:] = out
        return count

    @staticmethod
    def _fusable(st: ast.stmt, ir: LoopIR) -> bool:
        if not (isinstance(st, ast.AugAssign) and isinstance(st.op, ast.Add)):
            return False
        target = st.target
        if isinstance(target, ast.Name):
            return target.id in ir.ws_names
        if isinstance(target, ast.Subscript) and sub_name(target) == "out":
            cs = coords(target)
            return cs is not None and len(cs) == ir.out_ndim - 1
        return False
