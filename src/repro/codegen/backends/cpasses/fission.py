"""Loop fission of symmetric-scatter nests (the SSYMV shape).

The canonical-triangle walk of a symmetric operand fuses two logical
updates into one nest: a *scatter* half that mirrors each strict-triangle
entry to the other triangle (``out[i] += A[q] * x[j]`` with ``i`` read
off the fiber), and an *own-row* half accumulated into a scalar and
written at the outer coordinate (``out[j] += ws0``).  Mixed write leads
force the whole nest onto the ordered-replay parallel strategy; split
apart, the own-row half has provably disjoint writes and runs as a plain
``parallel for``, and each half traverses with a simpler inner body.

Bit-identity argument.  Strict canonical coordinates are strictly
*decreasing* in mode order — the outer loop carries the larger index, so
every scatter write targets ``out[i]`` with ``i < j``.  For any output
element ``x``, the serial schedule therefore performs the own-row write
(at iteration ``j == x``) first and the scatter writes (at iterations
``j > x``, in ascending ``(j, q)`` order) after it.  Emitting the
own-row nest first and the scatter nest second reproduces exactly that
per-element accumulation order, and floating-point addition only cares
about per-element order — so the fissioned kernel is bit-identical to
the fused one (and to the Python backend) at any thread count.

The matcher is deliberately narrow: one inner fiber loop over a
``__strict`` view, straight-line scalar assigns, ``+=`` writes only, no
reads of the output.  Both copies recompute the cheap shared scalar
loads (``t1 = x[j]``); dead-code elimination then strips whatever each
half no longer needs.
"""

from __future__ import annotations

import ast
import copy
from typing import List, Optional

from repro.codegen.backends.cpasses.base import Pass, PassConfig
from repro.codegen.backends.cpasses.ir import (
    LoopIR,
    coords,
    reads_out,
    scan_nest,
    sub_name,
)


def _is_range(node) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    )


def _fiber_pos_name(it, outer: str) -> Optional[str]:
    """The pos-array name of a single-fiber ``range(pos[j], pos[j+1])``."""
    if not (_is_range(it) and len(it.args) == 2):
        return None
    lo, hi = it.args
    if not (
        isinstance(lo, ast.Subscript)
        and isinstance(lo.value, ast.Name)
        and isinstance(hi, ast.Subscript)
        and isinstance(hi.value, ast.Name)
        and lo.value.id == hi.value.id
    ):
        return None
    lo_c, hi_c = coords(lo), coords(hi)
    if not (lo_c and len(lo_c) == 1 and hi_c and len(hi_c) == 1):
        return None
    if not (isinstance(lo_c[0], ast.Name) and lo_c[0].id == outer):
        return None
    hx = hi_c[0]
    if not (
        isinstance(hx, ast.BinOp)
        and isinstance(hx.op, ast.Add)
        and isinstance(hx.left, ast.Name)
        and hx.left.id == outer
        and isinstance(hx.right, ast.Constant)
        and hx.right.value == 1
    ):
        return None
    return lo.value.id


def _out_lead(st) -> Optional[str]:
    """Leading coordinate name of an ``out[...] += `` statement."""
    if not (
        isinstance(st, ast.AugAssign)
        and isinstance(st.op, ast.Add)
        and isinstance(st.target, ast.Subscript)
        and sub_name(st.target) == "out"
    ):
        return None
    cs = coords(st.target)
    if cs and isinstance(cs[0], ast.Name):
        return cs[0].id
    return None


def _dce(outer: ast.For) -> None:
    """Fixpoint-remove local assignments nothing in the nest reads."""
    while True:
        reads = {
            sub.id
            for sub in ast.walk(outer)
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
        }
        removed = False

        def prune(body: List[ast.stmt]) -> None:
            nonlocal removed
            kept = []
            for st in body:
                if isinstance(st, ast.For):
                    prune(st.body)
                    if not st.body:
                        st.body = [ast.Pass()]
                    kept.append(st)
                elif (
                    isinstance(st, ast.Assign)
                    and isinstance(st.targets[0], ast.Name)
                    and st.targets[0].id not in reads
                ) or (
                    isinstance(st, ast.AugAssign)
                    and isinstance(st.target, ast.Name)
                    and st.target.id not in reads
                ):
                    removed = True
                else:
                    kept.append(st)
            body[:] = kept

        prune(outer.body)
        if not removed:
            return


class FissionPass(Pass):
    name = "fission"
    default_on = False
    bit_exact = True

    def describe(self) -> str:
        return (
            "split symmetric-scatter nests (strict-triangle mirror + "
            "own-row write) into a disjoint-write nest and a scatter nest; "
            "bit-exact (per-element write order preserved)"
        )

    def run(self, ir: LoopIR, config: PassConfig) -> LoopIR:
        body: List[ast.stmt] = []
        split = 0
        for stmt in ir.body:
            pieces = (
                self._try_split(stmt, ir) if isinstance(stmt, ast.For) else None
            )
            if pieces is None:
                body.append(stmt)
            else:
                body.extend(pieces)
                split += 1
        ir.body = body
        if split:
            ir.notes.append("split %d nest(s)" % split)
        return ir

    # ------------------------------------------------------------------
    def _try_split(self, node: ast.For, ir: LoopIR) -> Optional[List[ast.For]]:
        if not isinstance(node.target, ast.Name) or not _is_range(node.iter):
            return None
        outer = node.target.id
        if reads_out(node):
            return None
        scan = scan_nest(node, ir.out_ndim, ir.vector_index)
        if not scan.ok or scan.out_loads or scan.expected_out_loads:
            return None
        # scalar += writes only
        if not scan.out_writes or any(
            kind != "add" or row for kind, row, _ in scan.out_writes
        ):
            return None

        bind: Optional[ast.For] = None
        own_writes = 0
        for st in node.body:
            if isinstance(st, ast.For):
                if bind is not None:
                    return None  # one fiber loop only
                bind = st
            elif isinstance(st, ast.Assign) and isinstance(
                st.targets[0], ast.Name
            ):
                continue
            elif _out_lead(st) == outer:
                own_writes += 1
            else:
                return None
        if bind is None or not isinstance(bind.target, ast.Name):
            return None
        pos_name = _fiber_pos_name(bind.iter, outer)
        if pos_name is None or pos_name not in ir.int_arrays:
            return None
        # strict canonical triangle: scatter lead strictly below the
        # outer coordinate, which the bit-identity argument requires
        if "__strict" not in pos_name:
            return None
        if not bind.body or not isinstance(bind.body[0], ast.Assign):
            return None
        first = bind.body[0]
        lead_t, lead_v = first.targets[0], first.value
        if not (
            isinstance(lead_t, ast.Name)
            and isinstance(lead_v, ast.Subscript)
            and isinstance(lead_v.value, ast.Name)
            and lead_v.value.id in ir.int_arrays
            and "_idx" in lead_v.value.id
            and "__strict" in lead_v.value.id
        ):
            return None
        lead = lead_t.id
        scatter_writes = 0
        for st in bind.body[1:]:
            if isinstance(st, ast.Assign) and isinstance(st.targets[0], ast.Name):
                continue
            if isinstance(st, ast.AugAssign) and isinstance(st.target, ast.Name):
                continue  # local accumulator (own-row half)
            if _out_lead(st) == lead:
                scatter_writes += 1
                continue
            return None
        if not scatter_writes or not own_writes:
            return None

        # own-row copy: drop the scatter writes, keep accumulators and
        # the outer-lead writes.  Emitted FIRST (see module docstring).
        own = copy.deepcopy(node)
        own_bind = next(s for s in own.body if isinstance(s, ast.For))
        own_bind.body = [s for s in own_bind.body if _out_lead(s) != lead]
        _dce(own)

        # scatter copy: drop local accumulators and outer-lead writes.
        scatter = copy.deepcopy(node)
        sc_bind = next(s for s in scatter.body if isinstance(s, ast.For))
        sc_bind.body = [
            s
            for s in sc_bind.body
            if not (isinstance(s, ast.AugAssign) and isinstance(s.target, ast.Name))
        ]
        scatter.body = [s for s in scatter.body if _out_lead(s) != outer]
        _dce(scatter)
        return [own, scatter]
