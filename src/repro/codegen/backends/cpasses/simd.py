"""Explicit SIMD hints on provably element-disjoint vector loops.

The element loops the renderer emits for vectorized statements (and the
fused loops :mod:`~repro.codegen.backends.cpasses.fuse` builds) touch
index ``_v`` only, through ``restrict``-qualified pointers — iterations
are independent by construction.  ``cc -O3`` usually proves that itself;
the ``#pragma omp simd`` hint makes the promise explicit so the
vectorizer stops re-deriving it (and keeps vectorizing when the
surrounding parallel region complicates its alias analysis).

Bit-identity: the hint is only placed on loops with no loop-carried
scalar reduction — each iteration computes and stores its own element,
so lane order cannot change any arithmetic.  The pragma is emitted under
``#if defined(_OPENMP)`` so the rendered source (and its content
address) stays identical whether or not the toolchain has OpenMP.
"""

from __future__ import annotations

from repro.codegen.backends.cpasses.base import Pass, PassConfig
from repro.codegen.backends.cpasses.ir import LoopIR


class SimdPass(Pass):
    name = "simd"
    default_on = True
    bit_exact = True

    def describe(self) -> str:
        return (
            "#pragma omp simd on element-disjoint vector loops; bit-exact "
            "(no loop-carried reductions are hinted)"
        )

    def run(self, ir: LoopIR, config: PassConfig) -> LoopIR:
        ir.simd = True
        ir.notes.append("simd hints armed")
        return ir
