"""The ``Pass`` interface, pass-set configuration and pipeline driver.

``$REPRO_PASSES`` selects which loop passes run, as a comma list of
tokens: a bare name (or ``+name``) enables a pass, ``-name`` / ``!name``
disables one, and the words ``none`` / ``all`` / ``default`` reset the
working set.  Tokens apply left to right, so ``none,tile`` means "only
tiling" and ``all,-denormals`` means "everything bit-exact".  Unknown
tokens warn once per process and are ignored.  ``$REPRO_TILE`` fixes the
tile-pass row-block size (``0`` = size it at run time from the output
row width).

The *resolved* pass set is part of a C kernel's identity: the service
cache key captures :meth:`PassConfig.signature` (see
:mod:`repro.service.keys`), so two differently-transformed builds of one
einsum never alias in cache or store.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.codegen.backends.cpasses.ir import LoopIR
from repro.core import config as core_config
from repro.obs import trace as obs_trace

#: pipeline order (Devito's DLE stage order: denormal avoidance, then
#: the loop restructurings, then vectorization hints).
PASS_ORDER = ("denormals", "fission", "fuse", "tile", "simd")

#: passes on by default — only those whose transformation is bit-exact
#: *and* never a regression.  fission/tile reshape iteration and are
#: opt-in; denormals changes results whenever a denormal occurs.
DEFAULT_ON = ("fuse", "simd")


@dataclass(frozen=True)
class PassConfig:
    """The resolved pass selection one render runs under."""

    enabled: Tuple[str, ...]
    #: tile-pass row-block size; 0 sizes the block at run time.
    tile_rows: int = 0

    def is_on(self, name: str) -> bool:
        return name in self.enabled

    def signature(self) -> str:
        """Canonical cache-key text of this selection (``none``,
        ``fuse+simd``, ``fission+tile@64`` ...)."""
        parts = []
        for name in PASS_ORDER:
            if name not in self.enabled:
                continue
            if name == "tile":
                parts.append(
                    "tile@%s" % (self.tile_rows if self.tile_rows > 0 else "auto")
                )
            else:
                parts.append(name)
        return "+".join(parts) if parts else "none"


class Pass:
    """One loop transformation: takes a :class:`LoopIR`, returns it.

    Subclasses set ``name`` (the ``$REPRO_PASSES`` token), ``default_on``
    and ``bit_exact`` (whether the transformed kernel is bit-identical to
    the Python backend — the differential fuzzer enforces this for every
    pass claiming it), and implement :meth:`run`.
    """

    name = "?"
    default_on = False
    bit_exact = True

    def describe(self) -> str:
        """One line for ``repro backends`` / trace spans."""
        raise NotImplementedError

    def enabled(self, config: PassConfig) -> bool:
        return config.is_on(self.name)

    def run(self, ir: LoopIR, config: PassConfig) -> LoopIR:
        raise NotImplementedError


def parse_passes(text: str, default: Tuple[str, ...] = DEFAULT_ON) -> Tuple[str, ...]:
    """Resolve a ``$REPRO_PASSES`` comma list into an enabled-name tuple."""
    enabled = {n for n in default if n in PASS_ORDER}
    for raw in text.split(","):
        token = raw.strip().lower()
        if not token:
            continue
        if token == "none":
            enabled.clear()
            continue
        if token == "all":
            enabled.update(PASS_ORDER)
            continue
        if token == "default":
            enabled = {n for n in default if n in PASS_ORDER}
            continue
        negate = token[0] in "-!"
        name = token[1:] if token[0] in "+-!" else token
        if name not in PASS_ORDER:
            core_config._warn_env_once(
                "REPRO_PASSES",
                token,
                "tokens from %s (optionally +/-/! prefixed), "
                "or none/all/default" % (", ".join(PASS_ORDER)),
                "the remaining tokens",
            )
            continue
        if negate:
            enabled.discard(name)
        else:
            enabled.add(name)
    return tuple(n for n in PASS_ORDER if n in enabled)


def default_pass_config() -> PassConfig:
    """The pass selection ``$REPRO_PASSES`` / ``$REPRO_TILE`` spell.

    This is the *requested* configuration; :func:`active_pass_config`
    additionally drops passes the probed toolchain cannot honor.
    """
    text = os.environ.get("REPRO_PASSES", "")
    enabled = parse_passes(text)
    tile_rows = core_config.env_int("REPRO_TILE", 0, minimum=0)
    return PassConfig(enabled=enabled, tile_rows=tile_rows)


def active_pass_config() -> PassConfig:
    """The pass selection a render (and its cache key) actually uses.

    The toolchain gate lives here rather than inside the passes so an
    explicit :class:`PassConfig` handed to the renderer is honored
    verbatim (golden-snapshot tests are machine-independent), while
    env-driven renders — and the cache keys computed for them — agree on
    what actually runs: ``denormals`` needs the MXCSR probe to pass.
    """
    config = default_pass_config()
    if "denormals" in config.enabled:
        from repro.codegen.backends import ctoolchain

        if not ctoolchain.probe_ftz():
            config = replace(
                config,
                enabled=tuple(n for n in config.enabled if n != "denormals"),
            )
    return config


def run_pipeline(
    ir: LoopIR, config: PassConfig, label: Optional[str] = None
) -> LoopIR:
    """Run every enabled pass, in :data:`PASS_ORDER`, under trace spans."""
    for p in PIPELINE:
        if not p.enabled(config):
            continue
        before = len(ir.notes)
        with obs_trace.span("cpass:%s" % p.name, label=label) as sp:
            ir = p.run(ir, config)
            if len(ir.notes) > before:
                sp.add(note="; ".join(ir.notes[before:]))
    return ir


def describe_passes(config: Optional[PassConfig] = None) -> List[Tuple[str, bool, str]]:
    """``(name, enabled, description)`` per pass, in pipeline order."""
    if config is None:
        config = active_pass_config()
    return [(p.name, p.enabled(config), p.describe()) for p in PIPELINE]


# importing the pass modules at the bottom sidesteps the base<->pass
# circularity; PIPELINE is the one place pass order is spelled out.
from repro.codegen.backends.cpasses.denormals import DenormalsPass  # noqa: E402
from repro.codegen.backends.cpasses.fission import FissionPass  # noqa: E402
from repro.codegen.backends.cpasses.fuse import FusePass  # noqa: E402
from repro.codegen.backends.cpasses.simd import SimdPass  # noqa: E402
from repro.codegen.backends.cpasses.tile import TilePass  # noqa: E402

PIPELINE: Tuple[Pass, ...] = (
    DenormalsPass(),
    FissionPass(),
    FusePass(),
    TilePass(),
    SimdPass(),
)

assert tuple(p.name for p in PIPELINE) == PASS_ORDER
