"""The C renderer's composable loop-pass pipeline.

The monolithic ``_Renderer`` walk in :mod:`repro.codegen.backends.c` is
split the way Devito's DLE rewriter stages loop transformations and
Parakeet chains ``Phase`` objects: the lowered kernel AST is wrapped in a
small structured :class:`~repro.codegen.backends.cpasses.ir.LoopIR`
(top-level nests plus the scan facts strategy selection already used),
an ordered list of :class:`~repro.codegen.backends.cpasses.base.Pass`
objects each takes and returns that IR, and the final emission step in
``c.py`` renders C from the transformed IR.

Passes (pipeline order — mirroring Devito's
``_avoid_denormals -> _loop_fission -> _loop_blocking -> _simdize``):

``denormals``
    flush-to-zero / denormals-are-zero via MXCSR (SSE2 guarded), saved
    and restored around the kernel body.  Off by default: FTZ changes
    results whenever a denormal appears, which breaks the bit-identity
    contract with the Python backend.
``fission``
    splits a symmetric-scatter nest (the SSYMV shape: a strict-triangle
    scatter plus an outer-coordinate write) into two nests — the scatter
    half replays, the outer half becomes an embarrassingly-parallel
    ``for`` nest.  Bit-identical because every strict-scatter write to an
    element precedes that element's outer write in both schedules.
``fuse``
    merges runs of adjacent vectorized statements (numpy row-slice
    updates) into one element loop.  Bit-identical because every fused
    statement only touches vector element ``_v`` in iteration ``_v``.
``tile``
    row-blocks the triangle-bounded scatter nests (the SSYRK shape) so a
    block of output rows stays cache-resident across the whole structure
    walk.  Bit-identical because all writes to one output element share
    the same blocked coordinate, so per-element write order is the serial
    order.
``simd``
    ``#pragma omp simd`` on the provably element-disjoint vector loops.

Every pass preserves bit-identity with the Python backend (``denormals``
excepted, hence default-off); the cross-backend differential fuzzer
sweeps pass subsets to enforce this per pass.  The resolved pass set
keys the service cache (see :mod:`repro.service.keys`) so differently
transformed kernels never alias.
"""

from repro.codegen.backends.cpasses.base import (  # noqa: F401
    DEFAULT_ON,
    PASS_ORDER,
    PIPELINE,
    Pass,
    PassConfig,
    active_pass_config,
    default_pass_config,
    describe_passes,
    parse_passes,
    run_pipeline,
)
from repro.codegen.backends.cpasses.ir import (  # noqa: F401
    FusedVector,
    LoopIR,
    NestScan,
    TileSpec,
    scan_nest,
)
