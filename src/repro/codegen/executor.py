"""Bind tensor arguments and execute through a pluggable backend.

The :class:`BoundKernel` separates *preparation* (building fibertree views,
transposed dense copies, dimension resolution — the data rearrangement the
paper excludes from its timings) from *execution* (the generated loops) and
*finalization* (transposing the output view back and replicating the
canonical triangle — likewise excluded from the paper's timings).

Execution is delegated to an execution backend
(:mod:`repro.codegen.backends`): the Python backend ``exec``'s the lowered
source, the C backend runs the same loop structure as a compiled shared
object.

Degradation ladder
------------------
Every tier executes the same lowered loop structure, so results are
bit-identical by construction across ``c@omp`` (compiled, threads > 1),
``c`` (compiled, serial) and ``python`` (interpreted).  A *runtime*
failure in a compiled tier — the shared object breaking mid-session, an
OpenMP-tier crash, an injected fault — marks that tier unhealthy for the
process (:mod:`repro.codegen.backends.health`), refills the output buffer
with the reduction identity (a failed attempt may have partially written
it) and transparently re-serves the call from the next tier down.  A
*compile-time* failure of the C backend (other than
:class:`BackendUnavailableError`, which callers asked for explicitly)
falls back to the interpreted backend the same way.
``REPRO_NO_DEGRADE=1`` turns all of this off — failures propagate raw.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro import faults
from repro import tune
from repro.codegen.backends import get_backend
from repro.codegen.backends import health
from repro.codegen.backends.base import BackendError, BackendUnavailableError
from repro.codegen.lower import LoweredKernel
from repro.codegen.runtime import (
    REDUCE_IDENTITY,
    make_output,
    np_dtype,
    replicate_output,
)
from repro.core.config import auto_thread_count, degrade_enabled, resolve_threads
from repro.faults.spec import FaultError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.tensor.coo import COO
from repro.tensor.tensor import Tensor

#: distinguishes "no work estimate supplied" from "the estimate is None".
_UNSET = object()

#: failures the degradation ladder absorbs.  Anything else (a dtype
#: mismatch, a bad argument set) is a caller error in every tier and
#: propagates untouched.  :class:`BackendUnavailableError` is excluded at
#: the handling sites, not here — compile fallback re-raises it first.
_RECOVERABLE = (BackendError, FaultError, OSError)


def _raise_exec_faults(count: int) -> None:
    """The ``exec.omp`` / ``exec.c`` / ``exec.alloc`` injection points
    (C-family tiers only; sites gate on the backend and on
    :func:`faults.enabled`)."""
    if count > 1:
        fault = faults.poll("exec.omp")
        if fault is not None:
            raise FaultError(fault)
    # exec.alloc forges the kernel's nonzero OOM status (a failed
    # per-thread workspace or scatter-log allocation), which surfaces as
    # the same BackendError the real path raises — proving the health
    # ladder re-serves such calls serially
    fault = faults.poll("exec.alloc")
    if fault is not None:
        raise BackendError(
            "injected: kernel workspace allocation failed (exec.alloc)"
        )
    faults.raise_if("exec.c")


def compile_source(lowered: LoweredKernel, label: Optional[str] = None):
    """Exec the generated module and return the kernel function.

    Kept as the Python backend's public face (the backend subsystem is
    the general entry point): ``label`` distinguishes kernels in
    tracebacks — the service layer passes a cache-key prefix so a failure
    inside one of many resident kernels names the kernel that produced it.
    """
    from repro.codegen.backends.python import exec_kernel_source

    return exec_kernel_source(lowered, label)


def _as_tensor(name: str, value, symmetric_modes, dtype=np.float64) -> Tensor:
    """Wrap *value* as a :class:`Tensor` in the kernel's element dtype.

    A tensor already in the requested dtype is passed through untouched
    (keeping its warm view caches); anything else is cast once here, so
    every array the kernel reads — sparse payloads and dense views alike —
    carries exactly the dtype the generated code computes in.
    """
    dtype = np.dtype(dtype)
    if isinstance(value, Tensor):
        return value.astype(dtype)
    if isinstance(value, COO):
        return Tensor(value.astype(dtype), symmetric_modes.get(name, ()))
    arr = np.asarray(value)
    if arr.dtype != dtype:
        arr = arr.astype(dtype)
    return Tensor.from_dense(arr, symmetric_modes.get(name, ()))


def plan_identity(tensors: Mapping[str, object]) -> Tuple:
    """Fingerprint of an argument set for plan-reuse decisions.

    Object identity alone is not enough: an ``id()`` can be recycled after
    its owner is collected, and a recast twin (``t.astype(np.float32)``)
    could then masquerade as the original.  Each tensor therefore also
    contributes its dtype and shape, so a plan built for one argument set
    can never be replayed against a recast or reshaped replacement.
    Content is deliberately *not* hashed — same objects means same
    binding, equal-but-distinct arrays are conservatively distinct.
    """
    items = []
    for name in sorted(tensors):
        value = tensors[name]
        dtype = getattr(value, "dtype", None)
        shape = getattr(value, "shape", None)
        items.append(
            (
                name,
                id(value),
                str(dtype) if dtype is not None else None,
                tuple(shape) if shape is not None else None,
            )
        )
    return tuple(items)


class ExecutionPlan:
    """A prepared-once, run-many realization of one kernel + argument set.

    Built by :meth:`BoundKernel.plan` (or :meth:`CompiledKernel.plan`):
    preparation, validation, dtype checks, backend argument marshaling and
    output allocation all happen exactly once, here.  Each subsequent
    ``plan()`` call only resets the output buffer to the reduction
    identity and invokes the pre-bound executable — no dict walks, no
    numpy wrapping, no ctypes re-marshaling — and returns the buffer (the
    timed region of :meth:`CompiledKernel.run`, i.e. *before*
    :meth:`~CompiledKernel.finalize`).

    The returned array is the plan's internal buffer (or the caller-owned
    ``out``): its contents are valid until the next call.  Snapshots of
    sparse inputs are taken at prepare time exactly as with
    :meth:`BoundKernel.prepare` — replacing an input tensor's payload does
    **not** flow into an existing plan; use :meth:`matches` to detect a
    changed argument set and build a fresh plan.  Plans are not
    thread-safe: concurrent callers must use one plan each.

    Observability state is sampled at plan-build time: a plan built while
    tracing/metrics are off runs the bare dispatch body forever (one slot
    load + branch of overhead — the disabled path the perf-smoke CI leg
    bounds at 5%), and enabling tracing later does not retrofit existing
    plans.  A plan built while either facility is on records a
    ``plan:execute`` span / ``plan.dispatch_seconds`` sample per call.
    """

    __slots__ = (
        "kernel",
        "prepared",
        "output_shape",
        "out",
        "threads",
        "work",
        "_call",
        "_fill",
        "_fill_value",
        "_cap",
        "_identity",
        "_sources",
        "_observed",
        "_faulted",
    )

    def __init__(
        self,
        kernel: "BoundKernel",
        prepared: Mapping[str, object],
        output_shape: Tuple[int, ...],
        threads=None,
        thread_cap: Optional[int] = None,
        out: Optional[np.ndarray] = None,
        identity: Optional[Tuple] = None,
        sources: Optional[Mapping[str, object]] = None,
    ):
        if "threads" in prepared:
            raise ValueError(
                "'threads' is a reserved argument name and cannot be a tensor"
            )
        self.kernel = kernel
        self.prepared = dict(prepared)
        self.output_shape = tuple(int(s) for s in output_shape)
        layout = kernel.lowered.output.layout
        if out is None:
            out = kernel.make_output_buffer(self.output_shape)
        else:
            expected = tuple(self.output_shape[m] for m in layout)
            if tuple(out.shape) != expected:
                raise ValueError(
                    "caller-owned output buffer has shape %s, kernel layout "
                    "needs %s" % (tuple(out.shape), expected)
                )
            if out.dtype != kernel.dtype:
                raise ValueError(
                    "caller-owned output buffer is %s, kernel computes in %s"
                    % (out.dtype, kernel.dtype)
                )
            if not out.flags.c_contiguous or not out.flags.writeable:
                raise ValueError(
                    "caller-owned output buffer must be C-contiguous and "
                    "writeable"
                )
        #: the reusable output buffer every call writes into.
        self.out = out
        self._fill = out.fill
        self._fill_value = REDUCE_IDENTITY[kernel.lowered.output.reduce_op]
        self._identity = identity
        # strong references to the original argument objects: prepare()
        # repacks inputs into new arrays, so without these the originals
        # could be collected and a same-dtype/same-shape replacement could
        # land on a recycled id() and falsely satisfy matches()
        self._sources = dict(sources) if sources is not None else None
        self._cap = thread_cap
        #: the executable's work estimate for this argument set (None when
        #: the kernel has no parallel bodies).
        with obs_trace.span("plan:bind") as sp:
            self.work = kernel.executable.parallel_work(self.prepared)
            setting = threads if threads is not None else kernel.threads
            #: the thread count calls run with (resolved once, at plan time).
            self.threads = kernel.resolve_run_threads(
                setting, prepared=self.prepared, work=self.work, cap=thread_cap
            )
            self._call = kernel.executable.bind(out, self.prepared)
            sp.add(threads=self.threads, work=self.work)
        # sampled once, here: the disabled per-call cost is this slot's
        # load + branch, nothing else (see the class docstring).  Fault
        # polling is sampled the same way — arm faults (or REPRO_FAULTS)
        # *before* building a plan for the exec.* points to fire in it.
        self._observed = obs_trace.enabled() or obs_metrics.enabled()
        self._faulted = faults.enabled() and kernel.backend_name != "python"

    def __call__(self, threads=None) -> np.ndarray:
        """Run the kernel's loops; returns the (reused) output buffer."""
        if self._observed:
            return self._observed_call(threads)
        self._fill(self._fill_value)
        if threads is None:
            count = self.threads
        else:
            count = self.kernel.resolve_run_threads(
                threads, prepared=self.prepared, work=self.work, cap=self._cap
            )
        try:
            if self._faulted:
                _raise_exec_faults(count)
            self._call(count)
        except _RECOVERABLE as exc:
            self._recover(count, exc)
        return self.out

    def _observed_call(self, threads) -> np.ndarray:
        """The dispatch body with span + dispatch-latency instrumentation
        (only ever reached by plans built while tracing/metrics were on)."""
        if threads is None:
            count = self.threads
        else:
            count = self.kernel.resolve_run_threads(
                threads, prepared=self.prepared, work=self.work, cap=self._cap
            )
        start = perf_counter()
        with obs_trace.span("plan:execute", threads=count, work=self.work):
            self._fill(self._fill_value)
            try:
                if self._faulted:
                    _raise_exec_faults(count)
                self._call(count)
            except _RECOVERABLE as exc:
                self._recover(count, exc)
        obs_metrics.observe("plan.dispatch_seconds", perf_counter() - start)
        return self.out

    def _recover(self, count: int, exc: BaseException) -> None:
        """Re-serve a failed call from the next ladder tier.

        The output buffer is refilled with the reduction identity first —
        the failed attempt may have partially written it — so the degraded
        result is bit-identical to a clean run of the surviving tier.
        """
        kernel = self.kernel
        if kernel.backend_name == "python" or not degrade_enabled():
            raise exc
        if count > 1:
            health.mark("c@omp", exc)
            self.threads = 1  # future calls skip the dead tier outright
            self._fill(self._fill_value)
            try:
                if self._faulted:
                    _raise_exec_faults(1)
                self._call(1)
                return
            except _RECOVERABLE as serial_exc:
                exc = serial_exc
        health.mark("c", exc)
        kernel.degrade_to_python()
        with obs_trace.span("plan:rebind", backend="python"):
            self._call = kernel.executable.bind(self.out, self.prepared)
        self.threads = 1
        self._faulted = False  # exec.* points are C-tier-only
        self._fill(self._fill_value)
        self._call(1)

    def matches(self, tensors: Mapping[str, object]) -> bool:
        """Would :meth:`BoundKernel.plan` on *tensors* bind the same set?

        False whenever any argument object (or its dtype/shape) differs
        from what this plan was built on — the signal to rebuild instead
        of replaying stale bindings.  The plan pins its original argument
        objects, so the identity comparison cannot be spoofed by a
        replacement landing on a recycled ``id()``.
        """
        return (
            self._identity is not None
            and plan_identity(tensors) == self._identity
        )

    def finalized(self) -> np.ndarray:
        """Run once and finalize (layout transpose-back + replication).

        Convenience for callers that want end-to-end results; note the
        result may alias the plan's buffer when no transform is needed —
        copy it before the next call if it must outlive one.
        """
        return self.kernel.finalize(self())


class BoundKernel:
    """A compiled kernel plus its argument-binding logic."""

    def __init__(
        self,
        lowered: LoweredKernel,
        symmetric_modes: Mapping,
        label: Optional[str] = None,
        backend: str = "python",
        artifact: Optional[str] = None,
        threads=None,
        einsum: Optional[str] = None,
    ):
        self.lowered = lowered
        self.symmetric_modes = dict(symmetric_modes)
        self.backend_name = backend
        self._label = label
        #: the kernel's semantic identity (einsum text) — the tuning
        #: database key; ``None`` for ad-hoc kernels, which simply never
        #: match a tuned entry
        self.einsum = einsum
        #: the element dtype every bound array (and the output buffer)
        #: carries — fixed by lowering, not by what the caller passes in
        self.dtype = np_dtype(lowered.dtype)
        #: default runtime thread count (``None``/``"auto"``/int); the
        #: concrete number is resolved per run, so one bound kernel can
        #: serve any thread count
        self.threads = threads
        if backend != "python" and degrade_enabled() and not health.ok("c"):
            # the C tier already failed this process (sticky): serve from
            # the floor instead of paying the failure again per kernel
            backend, artifact = "python", None
            self.backend_name = "python"
        with obs_trace.span("backend:compile", backend=backend, label=label):
            try:
                self.executable = get_backend(backend).compile(
                    lowered, label=label, artifact=artifact, einsum=einsum
                )
            except BackendUnavailableError:
                raise  # the caller named a backend this machine lacks
            except _RECOVERABLE as exc:
                if backend == "python" or not degrade_enabled():
                    raise
                health.mark("c", exc)
                self.backend_name = "python"
                self.executable = get_backend("python").compile(
                    lowered, label=label
                )
        self.fn = self.executable  # callable as fn(out, **prepared)

    # ------------------------------------------------------------------
    def prepare(self, **tensors) -> Dict[str, object]:
        """Build every array argument the kernel needs (untimed setup).

        Identical inputs are wrapped, densified and realized once per
        call: when the same tensor object backs several argument names
        (or several view requirements), the fibertree views and
        transposed dense copies are memoized instead of rebuilt.
        """
        with obs_trace.span("prepare", tensors=len(tensors)):
            return self._prepare(tensors)

    def _prepare(self, tensors: Mapping[str, object]) -> Dict[str, object]:
        args: Dict[str, object] = {}
        wrapped: Dict[str, Tensor] = {}
        by_identity: Dict[Tuple, Tensor] = {}
        for name, value in tensors.items():
            sym = tuple(tuple(p) for p in self.symmetric_modes.get(name, ()))
            key = (id(value), sym)
            if key not in by_identity:
                by_identity[key] = _as_tensor(
                    name, value, self.symmetric_modes, dtype=self.dtype
                )
            wrapped[name] = by_identity[key]

        # sparse views: Tensor.view memoizes per (mode_order, levels,
        # filter) on the wrapped tensor, so shared tensors share realizations
        for view in self.lowered.sparse_views:
            tensor = wrapped[view.tensor]
            fiber = tensor.view(view.mode_order, view.levels, view.tensor_filter)
            for arr_name, arr in fiber.arrays().items():
                args["%s_%s" % (view.name, arr_name)] = arr

        dense_base: Dict[int, np.ndarray] = {}
        dense_perm: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        for view in self.lowered.dense_views:
            tensor = wrapped[view.tensor]
            tkey = id(tensor)
            if tkey not in dense_base:
                dense_base[tkey] = (
                    tensor.to_dense()
                    if isinstance(tensor, Tensor)
                    else np.asarray(tensor)
                )
            pkey = (tkey, view.perm)
            if pkey not in dense_perm:
                arr = dense_base[tkey]
                if view.perm != tuple(range(arr.ndim)):
                    arr = np.ascontiguousarray(np.transpose(arr, view.perm))
                dense_perm[pkey] = arr
            args[view.name] = dense_perm[pkey]

        for dim in self.lowered.dims:
            args[dim.name] = int(wrapped[dim.tensor].shape[dim.mode])
        missing = set(self.lowered.arg_names) - set(args)
        if missing:
            raise ValueError("unbound kernel arguments: %s" % sorted(missing))
        return {name: args[name] for name in self.lowered.arg_names}

    # ------------------------------------------------------------------
    def make_output_buffer(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Output buffer in the kernel's (vector-last) layout and dtype."""
        layout = self.lowered.output.layout
        permuted = tuple(shape[m] for m in layout)
        return make_output(permuted, self.lowered.output.reduce_op, self.dtype)

    def resolve_run_threads(
        self,
        setting,
        prepared: Optional[Mapping[str, object]] = None,
        work=_UNSET,
        cap: Optional[int] = None,
    ) -> int:
        """Collapse a ``threads`` setting onto a concrete count for one run.

        Explicit integers always win (``REPRO_THREADS=4`` means 4).
        ``"auto"`` consults the tuning oracle first when one is active
        (:func:`repro.tune.active`): a measured thread count recorded for
        this kernel at this shape class beats any estimate.  On a miss —
        or with tuning off, the common case — the cost model decides: the
        executable's per-run work estimate (from *prepared* arguments, or
        pre-computed *work*) against
        :func:`repro.core.config.auto_thread_count`, so small problems
        stay serial instead of paying the parallel-region and scatter-log
        overhead.  Executables without parallel bodies (the Python
        backend, serial-only C kernels) resolve to 1 — a team could never
        help them.  ``cap`` bounds the result (the batch engine divides
        the machine across its worker pool).
        """
        if setting is None:
            count = 1
        elif setting == "auto":
            cpu = resolve_threads("auto")
            count = self._tuned_threads(prepared, work, cpu)
            if count is None:
                if cpu <= 1:
                    count = 1
                else:
                    if work is _UNSET:
                        work = self.executable.parallel_work(prepared or {})
                    count = (
                        1 if work is None else auto_thread_count(work, cpu)
                    )
        else:
            count = resolve_threads(setting)
        if cap is not None:
            count = min(count, max(1, int(cap)))
        if count > 1 and self.backend_name != "python" and not health.ok("c@omp"):
            return 1  # the OpenMP tier is marked dead: stay serial
        return max(1, count)

    def _tuned_threads(
        self, prepared: Optional[Mapping[str, object]], work, cpu: int
    ) -> Optional[int]:
        """A measured thread count from the active tuning oracle, or
        ``None`` (= fall back to the cost model).

        When tuning is off (no ``REPRO_TUNED`` database, the default)
        this is one is-None check; with a database active the oracle is
        consulted even on single-cpu machines, so every ``"auto"``
        resolution shows up as a ``tune:lookup`` span with its origin.
        """
        if self.einsum is None or self.backend_name == "python":
            return None
        oracle = tune.active()
        if oracle is None:
            return None
        if work is _UNSET:
            work = self.executable.parallel_work(prepared or {})
        source = prepared or {}
        extents = [
            int(source[dim.name])
            for dim in self.lowered.dims
            if dim.name in source
        ]
        return oracle.threads_for(
            self.einsum, str(self.lowered.dtype), extents, work, max(1, cpu)
        )

    def run(
        self,
        out: np.ndarray,
        prepared: Mapping[str, object],
        threads=None,
        thread_cap: Optional[int] = None,
    ) -> None:
        """Execute the generated loops only (this is what gets timed).

        ``threads`` overrides the bound default for this run (int or
        ``"auto"``); when neither is set the kernel runs single-threaded.
        ``"auto"`` resolves per run through :meth:`resolve_run_threads` —
        the work-estimate cost model, not a blind CPU count.
        """
        setting = threads if threads is not None else self.threads
        count = self.resolve_run_threads(setting, prepared, cap=thread_cap)
        if "threads" in prepared:
            raise ValueError(
                "'threads' is a reserved argument name and cannot be a tensor"
            )
        if obs_trace.enabled():
            with obs_trace.span("kernel:run", threads=count):
                self._execute(out, prepared, count)
        else:
            self._execute(out, prepared, count)

    def _execute(
        self, out: np.ndarray, prepared: Mapping[str, object], count: int
    ) -> None:
        """One execution, degradation-laddered (see the module docstring)."""
        compiled = self.backend_name != "python"
        try:
            if compiled and faults.enabled():
                _raise_exec_faults(count)
            self.executable(out, threads=count, **prepared)
            return
        except _RECOVERABLE as exc:
            if not compiled or not degrade_enabled():
                raise
            fill = REDUCE_IDENTITY[self.lowered.output.reduce_op]
            if count > 1:
                health.mark("c@omp", exc)
                out.fill(fill)  # discard the failed attempt's partials
                try:
                    if faults.enabled():
                        _raise_exec_faults(1)
                    self.executable(out, threads=1, **prepared)
                    return
                except _RECOVERABLE as serial_exc:
                    exc = serial_exc
            health.mark("c", exc)
            self.degrade_to_python()
            out.fill(fill)
            self.executable(out, threads=1, **prepared)

    def degrade_to_python(self) -> None:
        """Swap in the interpreted executable (the ladder's floor).

        Called after a C-tier runtime failure: subsequent calls through
        this kernel run the same lowered loops interpreted — bit-identical
        results, no per-call exception cost.
        """
        if self.backend_name == "python":
            return
        with obs_trace.span("backend:degrade", label=self._label):
            self.executable = get_backend("python").compile(
                self.lowered, label=self._label
            )
        self.fn = self.executable
        self.backend_name = "python"

    # ------------------------------------------------------------------
    def plan(
        self,
        tensors: Mapping[str, object],
        output_shape: Tuple[int, ...],
        threads=None,
        thread_cap: Optional[int] = None,
        out: Optional[np.ndarray] = None,
    ) -> ExecutionPlan:
        """Prepare/bind/validate once; repeat execution via the plan.

        ``tensors`` is the same argument set :meth:`prepare` takes (as a
        mapping); ``output_shape`` the logical output shape;  ``out``
        optionally supplies a caller-owned output buffer (kernel layout
        and dtype, validated here once).  See :class:`ExecutionPlan`.
        """
        prepared = self.prepare(**tensors)
        return ExecutionPlan(
            self,
            prepared,
            output_shape,
            threads=threads,
            thread_cap=thread_cap,
            out=out,
            identity=plan_identity(tensors),
            sources=tensors,
        )

    def plan_prepared(
        self,
        prepared: Mapping[str, object],
        output_shape: Tuple[int, ...],
        threads=None,
        thread_cap: Optional[int] = None,
        out: Optional[np.ndarray] = None,
        identity: Optional[Tuple] = None,
        sources: Optional[Mapping[str, object]] = None,
    ) -> ExecutionPlan:
        """:meth:`plan` over an argument set that is already prepared.

        ``identity``/``sources`` (the original argument mapping the
        identity was computed from) enable :meth:`ExecutionPlan.matches`;
        without them the plan conservatively matches nothing.
        """
        return ExecutionPlan(
            self,
            prepared,
            output_shape,
            threads=threads,
            thread_cap=thread_cap,
            out=out,
            identity=identity,
            sources=sources,
        )

    def finalize(self, out: np.ndarray) -> np.ndarray:
        """Undo the output layout permutation and replicate triangles."""
        layout = self.lowered.output.layout
        if layout != tuple(range(len(layout))):
            out = np.transpose(out, np.argsort(layout))
        if self.lowered.output.replication_parts:
            out = replicate_output(out, self.lowered.output.replication_parts)
        if out.ndim == 0:
            return out
        return np.ascontiguousarray(out)
