"""Bind tensor arguments and execute through a pluggable backend.

The :class:`BoundKernel` separates *preparation* (building fibertree views,
transposed dense copies, dimension resolution — the data rearrangement the
paper excludes from its timings) from *execution* (the generated loops) and
*finalization* (transposing the output view back and replicating the
canonical triangle — likewise excluded from the paper's timings).

Execution is delegated to an execution backend
(:mod:`repro.codegen.backends`): the Python backend ``exec``'s the lowered
source, the C backend runs the same loop structure as a compiled shared
object.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.codegen.backends import get_backend
from repro.codegen.lower import LoweredKernel
from repro.codegen.runtime import make_output, np_dtype, replicate_output
from repro.core.config import resolve_threads
from repro.tensor.coo import COO
from repro.tensor.tensor import Tensor


def compile_source(lowered: LoweredKernel, label: Optional[str] = None):
    """Exec the generated module and return the kernel function.

    Kept as the Python backend's public face (the backend subsystem is
    the general entry point): ``label`` distinguishes kernels in
    tracebacks — the service layer passes a cache-key prefix so a failure
    inside one of many resident kernels names the kernel that produced it.
    """
    from repro.codegen.backends.python import exec_kernel_source

    return exec_kernel_source(lowered, label)


def _as_tensor(name: str, value, symmetric_modes, dtype=np.float64) -> Tensor:
    """Wrap *value* as a :class:`Tensor` in the kernel's element dtype.

    A tensor already in the requested dtype is passed through untouched
    (keeping its warm view caches); anything else is cast once here, so
    every array the kernel reads — sparse payloads and dense views alike —
    carries exactly the dtype the generated code computes in.
    """
    dtype = np.dtype(dtype)
    if isinstance(value, Tensor):
        return value.astype(dtype)
    if isinstance(value, COO):
        return Tensor(value.astype(dtype), symmetric_modes.get(name, ()))
    arr = np.asarray(value)
    if arr.dtype != dtype:
        arr = arr.astype(dtype)
    return Tensor.from_dense(arr, symmetric_modes.get(name, ()))


class BoundKernel:
    """A compiled kernel plus its argument-binding logic."""

    def __init__(
        self,
        lowered: LoweredKernel,
        symmetric_modes: Mapping,
        label: Optional[str] = None,
        backend: str = "python",
        artifact: Optional[str] = None,
        threads=None,
    ):
        self.lowered = lowered
        self.symmetric_modes = dict(symmetric_modes)
        self.backend_name = backend
        #: the element dtype every bound array (and the output buffer)
        #: carries — fixed by lowering, not by what the caller passes in
        self.dtype = np_dtype(lowered.dtype)
        #: default runtime thread count (``None``/``"auto"``/int); the
        #: concrete number is resolved per run, so one bound kernel can
        #: serve any thread count
        self.threads = threads
        self.executable = get_backend(backend).compile(
            lowered, label=label, artifact=artifact
        )
        self.fn = self.executable  # callable as fn(out, **prepared)

    # ------------------------------------------------------------------
    def prepare(self, **tensors) -> Dict[str, object]:
        """Build every array argument the kernel needs (untimed setup).

        Identical inputs are wrapped, densified and realized once per
        call: when the same tensor object backs several argument names
        (or several view requirements), the fibertree views and
        transposed dense copies are memoized instead of rebuilt.
        """
        args: Dict[str, object] = {}
        wrapped: Dict[str, Tensor] = {}
        by_identity: Dict[Tuple, Tensor] = {}
        for name, value in tensors.items():
            sym = tuple(tuple(p) for p in self.symmetric_modes.get(name, ()))
            key = (id(value), sym)
            if key not in by_identity:
                by_identity[key] = _as_tensor(
                    name, value, self.symmetric_modes, dtype=self.dtype
                )
            wrapped[name] = by_identity[key]

        # sparse views: Tensor.view memoizes per (mode_order, levels,
        # filter) on the wrapped tensor, so shared tensors share realizations
        for view in self.lowered.sparse_views:
            tensor = wrapped[view.tensor]
            fiber = tensor.view(view.mode_order, view.levels, view.tensor_filter)
            for arr_name, arr in fiber.arrays().items():
                args["%s_%s" % (view.name, arr_name)] = arr

        dense_base: Dict[int, np.ndarray] = {}
        dense_perm: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        for view in self.lowered.dense_views:
            tensor = wrapped[view.tensor]
            tkey = id(tensor)
            if tkey not in dense_base:
                dense_base[tkey] = (
                    tensor.to_dense()
                    if isinstance(tensor, Tensor)
                    else np.asarray(tensor)
                )
            pkey = (tkey, view.perm)
            if pkey not in dense_perm:
                arr = dense_base[tkey]
                if view.perm != tuple(range(arr.ndim)):
                    arr = np.ascontiguousarray(np.transpose(arr, view.perm))
                dense_perm[pkey] = arr
            args[view.name] = dense_perm[pkey]

        for dim in self.lowered.dims:
            args[dim.name] = int(wrapped[dim.tensor].shape[dim.mode])
        missing = set(self.lowered.arg_names) - set(args)
        if missing:
            raise ValueError("unbound kernel arguments: %s" % sorted(missing))
        return {name: args[name] for name in self.lowered.arg_names}

    # ------------------------------------------------------------------
    def make_output_buffer(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Output buffer in the kernel's (vector-last) layout and dtype."""
        layout = self.lowered.output.layout
        permuted = tuple(shape[m] for m in layout)
        return make_output(permuted, self.lowered.output.reduce_op, self.dtype)

    def run(
        self,
        out: np.ndarray,
        prepared: Mapping[str, object],
        threads=None,
    ) -> None:
        """Execute the generated loops only (this is what gets timed).

        ``threads`` overrides the bound default for this run (int or
        ``"auto"``); when neither is set the kernel runs single-threaded.
        """
        setting = threads if threads is not None else self.threads
        count = 1 if setting is None else resolve_threads(setting)
        if "threads" in prepared:
            raise ValueError(
                "'threads' is a reserved argument name and cannot be a tensor"
            )
        self.executable(out, threads=count, **prepared)

    def finalize(self, out: np.ndarray) -> np.ndarray:
        """Undo the output layout permutation and replicate triangles."""
        layout = self.lowered.output.layout
        if layout != tuple(range(len(layout))):
            out = np.transpose(out, np.argsort(layout))
        if self.lowered.output.replication_parts:
            out = replicate_output(out, self.lowered.output.replication_parts)
        if out.ndim == 0:
            return out
        return np.ascontiguousarray(out)
