"""Dense reference interpreters — the correctness oracle.

:func:`reference_einsum` executes the *original* assignment over full dense
inputs by brute force; :func:`execute_plan_dense` interprets a (partially)
optimized :class:`KernelPlan` the same way, respecting canonical-triangle
restriction, nest filters, block patterns, multiplicities, factor tables and
output replication.  Agreement between the two validates every compiler
stage independently of the sparse code generator.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.codegen.runtime import apply_reduce, make_output, replicate_output
from repro.core.kernel_plan import (
    FILTER_ALL,
    FILTER_DIAGONAL,
    FILTER_STRICT,
    KernelPlan,
)
from repro.frontend.einsum import Access, Assignment, Literal


def _index_extents(
    assignment: Assignment, inputs: Mapping[str, np.ndarray], output_shape: Sequence[int]
) -> Dict[str, int]:
    extents: Dict[str, int] = {}
    for acc in assignment.accesses:
        arr = inputs[acc.tensor]
        for mode, idx in enumerate(acc.indices):
            extents.setdefault(idx, int(arr.shape[mode]))
    for mode, idx in enumerate(assignment.lhs.indices):
        if mode < len(output_shape):
            extents.setdefault(idx, int(output_shape[mode]))
    return extents


def _eval_rhs(assignment: Assignment, env: Mapping[str, int], inputs) -> float:
    value = None
    for op in assignment.operands:
        if isinstance(op, Literal):
            term = op.value
        else:
            arr = inputs[op.tensor]
            term = float(arr[tuple(env[i] for i in op.indices)]) if op.indices else float(arr)
        if value is None:
            value = term
        elif assignment.combine_op == "*":
            value *= term
        else:
            value += term
    return value if value is not None else 0.0


def _apply(assignment: Assignment, env, inputs, out: np.ndarray, times: int = 1) -> None:
    value = _eval_rhs(assignment, env, inputs)
    key = tuple(env[i] for i in assignment.lhs.indices)
    if not key:
        key = ()
    total = assignment.count * times
    if assignment.reduce_op == "+":
        out[key] += total * value
    else:
        for _ in range(1):  # idempotent: one application suffices
            apply_reduce(assignment.reduce_op, out, key, value)


def reference_einsum(
    assignment: Assignment,
    inputs: Mapping[str, np.ndarray],
    output_shape: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Brute-force execution of the raw einsum over dense inputs."""
    if output_shape is None:
        extents = _index_extents(assignment, inputs, ())
        output_shape = tuple(extents[i] for i in assignment.lhs.indices)
    extents = _index_extents(assignment, inputs, output_shape)
    out = make_output(output_shape, assignment.reduce_op)
    names = assignment.free_indices
    for values in product(*(range(extents[i]) for i in names)):
        env = dict(zip(names, values))
        _apply(assignment, env, inputs, out)
    return out


def execute_plan_dense(
    plan: KernelPlan,
    inputs: Mapping[str, np.ndarray],
    output_shape: Optional[Sequence[int]] = None,
    *,
    replicate: bool = True,
) -> np.ndarray:
    """Interpret a kernel plan over full dense inputs.

    The symmetric inputs are taken at face value (they must actually be
    symmetric for the plan to be meaningful, as in the paper).
    """
    original = plan.original
    if output_shape is None:
        extents = _index_extents(original, inputs, ())
        output_shape = tuple(extents[i] for i in original.lhs.indices)
    extents = _index_extents(original, inputs, output_shape)
    out = make_output(output_shape, original.reduce_op)
    names = plan.loop_order
    chain = plan.permutable

    for values in product(*(range(extents[i]) for i in names)):
        env = dict(zip(names, values))
        chain_vals = [env[p] for p in chain]
        if any(a > b for a, b in zip(chain_vals, chain_vals[1:])):
            continue
        is_strict = all(a < b for a, b in zip(chain_vals, chain_vals[1:]))
        for nest in plan.nests:
            if nest.tensor_filter == FILTER_STRICT and not is_strict:
                continue
            if nest.tensor_filter == FILTER_DIAGONAL and is_strict:
                continue
            for block in nest.blocks:
                if block.factor_table is not None:
                    bitmask = 0
                    for t, (a, b) in enumerate(zip(chain_vals, chain_vals[1:])):
                        if a == b:
                            bitmask |= 1 << t
                    factor = None
                    for mask, frac in block.factor_table:
                        if mask == bitmask:
                            factor = Fraction(frac)
                            break
                    if factor is None:
                        continue
                    for a in block.assignments:
                        value = _eval_rhs(a, env, inputs) * a.count * factor
                        key = tuple(env[i] for i in a.lhs.indices)
                        out[key] += float(value)
                    continue
                if not any(p.matches(chain_vals) for p in block.patterns):
                    continue
                for a in block.assignments:
                    _apply(a, env, inputs, out)
    if replicate and plan.replication is not None:
        out = replicate_output(out, plan.replication.mode_parts)
    return out
