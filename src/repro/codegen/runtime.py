"""Runtime support shared by generated kernels, baselines and tests."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.frontend.einsum import REDUCE_IDENTITY

#: numpy ufunc implementing each reduction operator.
REDUCE_UFUNC = {
    "+": np.add,
    "min": np.minimum,
    "max": np.maximum,
}

#: pipeline dtype name (see :data:`repro.core.config.DTYPE_CHOICES`) ->
#: concrete numpy dtype.
_NP_DTYPES = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
}


def np_dtype(name: str) -> np.dtype:
    """The numpy dtype for a pipeline dtype name (``float64``/``float32``)."""
    try:
        return _NP_DTYPES[name]
    except KeyError:
        raise ValueError(
            "unknown dtype %r (choices: %s)" % (name, ", ".join(_NP_DTYPES))
        )


def make_output(
    shape: Sequence[int], reduce_op: str, dtype=np.float64
) -> np.ndarray:
    """Allocate an output tensor filled with the reduction identity.

    The repeat-execution fast path (:class:`~repro.codegen.executor.
    ExecutionPlan`) allocates through this once and then resets the buffer
    to :data:`REDUCE_IDENTITY` in place per call.
    """
    return np.full(tuple(shape), REDUCE_IDENTITY[reduce_op], dtype=dtype)


def apply_reduce(reduce_op: str, target: np.ndarray, key, value) -> None:
    """``target[key] reduce_op= value`` for scalars or slices."""
    if reduce_op == "+":
        target[key] += value
    elif reduce_op == "min":
        target[key] = np.minimum(target[key], value)
    elif reduce_op == "max":
        target[key] = np.maximum(target[key], value)
    else:
        raise ValueError("unknown reduce op %r" % (reduce_op,))


def replicate_output(
    arr: np.ndarray, mode_parts: Sequence[Sequence[int]]
) -> np.ndarray:
    """Copy the canonical triangle of *arr* to the non-canonical triangles.

    The generated kernels write the entries whose coordinates are
    non-increasing within each symmetric mode group; this post-pass (4.2.2,
    run in a separate loop nest exactly as the paper prescribes) gathers
    every entry from its canonical source.  Returns a new array.
    """
    nontrivial = [sorted(p) for p in mode_parts if len(p) >= 2]
    if not nontrivial:
        return arr
    index = list(np.indices(arr.shape))
    for group in nontrivial:
        stacked = np.stack([index[m] for m in group])
        stacked = -np.sort(-stacked, axis=0)  # descending == canonical
        for t, m in enumerate(group):
            index[m] = stacked[t]
    return arr[tuple(index)]
