"""The ``REPRO_FAULTS`` spec grammar and its deterministic firing plan.

A spec is a comma-separated list of clauses, each arming one *injection
point* with an *action*::

    spec     ::= clause ("," clause)*
    clause   ::= point ["=" action [":" arg]] modifier*
    modifier ::= "@" N     skip the first N matches of this point
               | "*" N     then fire on at most N matches

Examples::

    cc=timeout*1                  first cc invocation hangs (times out)
    cc=timeout@2*1                skip the two probe builds, hang the
                                  first kernel build
    dlopen=fail*2                 first two dlopens raise OSError
    store.get=corrupt*1           scribble the first entry read
    store.put=enospc              every put fails with ENOSPC
    exec.omp=fail*1,exec.c=fail*1 drive the full degradation ladder

Firing is deterministic: rules match in spec order, every match of a
point advances every rule armed on it, and the first eligible rule fires.
Thread-safe — concurrent pollers observe a single global schedule.

Point and action names are validated at parse time (a typo'd spec fails
loudly instead of silently injecting nothing).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec that does not parse or names an unknown
    injection point/action."""


class FaultError(RuntimeError):
    """An injected failure, raised by sites with no native exception to
    forge (e.g. a simulated kernel-execution crash)."""

    def __init__(self, fault: "Fault"):
        super().__init__(
            "injected fault: %s=%s%s"
            % (fault.point, fault.action, ":%s" % fault.arg if fault.arg else "")
        )
        self.fault = fault


#: every injection point and the actions it accepts; the first action is
#: the default when a clause omits ``=action``.
POINT_ACTIONS: Dict[str, tuple] = {
    # the cc subprocess inside the toolchain
    "cc": ("fail", "timeout", "crash", "slow"),
    # ctypes.CDLL of a compiled kernel
    "dlopen": ("fail",),
    # a C kernel execution (any thread count)
    "exec.c": ("fail",),
    # a C kernel execution with threads > 1 only (the OpenMP tier)
    "exec.omp": ("fail",),
    # a C kernel runtime allocation failure (forges the nonzero status
    # the kernel returns when a per-thread workspace or scatter-log
    # allocation fails; surfaces as BackendError)
    "exec.alloc": ("fail",),
    # disk-store entry reads
    "store.get": ("corrupt", "truncate-so", "fail"),
    # disk-store entry writes
    "store.put": ("enospc", "eacces", "partial", "fail"),
    # in-memory LRU lookups (simulates eviction races)
    "cache.get": ("miss",),
    # the service's cold-compile stage
    "service.compile": ("fail", "slow"),
    # the daemon's unix-socket accept path (connection dropped at accept)
    "wire.accept": ("fail",),
    # reading a wire frame (either end: daemon request read, client
    # reply read) — "fail" forges a reset connection, "slow" stalls
    "wire.read": ("fail", "slow"),
    # writing a wire frame (either end)
    "wire.write": ("fail", "slow"),
    # the daemon's request handler, before dispatching the operation
    "serve.handler": ("fail", "slow"),
}

_CLAUSE = re.compile(
    r"^(?P<point>[a-z][a-z0-9_.-]*)"
    r"(?:=(?P<action>[a-z][a-z0-9-]*)(?::(?P<arg>[^@*]+))?)?"
    r"(?P<mods>(?:[@*]\d+)*)$"
)
_MOD = re.compile(r"([@*])(\d+)")


@dataclass(frozen=True)
class Fault:
    """One armed fault, handed to the injection site when it fires."""

    point: str
    action: str
    arg: Optional[str] = None

    def arg_float(self, default: float) -> float:
        """The clause's ``:arg`` as a float (for slow/hold durations)."""
        if self.arg is None:
            return default
        try:
            return float(self.arg)
        except ValueError:
            return default


class _Rule:
    """One clause's firing state: seen/fired counts against skip/times."""

    __slots__ = ("fault", "skip", "times", "seen", "fired")

    def __init__(self, fault: Fault, skip: int, times: Optional[int]):
        self.fault = fault
        self.skip = skip
        self.times = times
        self.seen = 0
        self.fired = 0

    def eligible(self) -> bool:
        return self.seen > self.skip and (
            self.times is None or self.fired < self.times
        )


class FaultPlan:
    """A parsed spec: rules grouped by point, polled atomically."""

    def __init__(self, rules: List[_Rule], text: str):
        self.text = text
        self._lock = threading.Lock()
        self._rules: Dict[str, List[_Rule]] = {}
        for rule in rules:
            self._rules.setdefault(rule.fault.point, []).append(rule)

    def poll(self, point: str) -> Optional[Fault]:
        """Advance every rule armed on *point*; fire the first eligible."""
        rules = self._rules.get(point)
        if not rules:
            return None
        with self._lock:
            for rule in rules:
                rule.seen += 1
            for rule in rules:
                if rule.eligible():
                    rule.fired += 1
                    return rule.fault
        return None

    def fired(self) -> Dict[str, int]:
        """Total fired count per point (for tests and ``repro doctor``)."""
        with self._lock:
            out: Dict[str, int] = {}
            for point, rules in self._rules.items():
                count = sum(rule.fired for rule in rules)
                if count:
                    out[point] = count
            return out


def parse_spec(text: Optional[str]) -> Optional[FaultPlan]:
    """Parse a ``REPRO_FAULTS`` spec; ``None``/empty means no plan."""
    if not text or not text.strip():
        return None
    rules: List[_Rule] = []
    for raw in text.split(","):
        clause = raw.strip()
        if not clause:
            continue
        match = _CLAUSE.match(clause)
        if match is None:
            raise FaultSpecError(
                "malformed REPRO_FAULTS clause %r (grammar: "
                "point[=action[:arg]][@skip][*times])" % clause
            )
        point = match.group("point")
        actions = POINT_ACTIONS.get(point)
        if actions is None:
            raise FaultSpecError(
                "unknown injection point %r (have: %s)"
                % (point, ", ".join(sorted(POINT_ACTIONS)))
            )
        action = match.group("action") or actions[0]
        if action not in actions:
            raise FaultSpecError(
                "point %r does not support action %r (have: %s)"
                % (point, action, ", ".join(actions))
            )
        skip, times = 0, None
        for mod, value in _MOD.findall(match.group("mods")):
            if mod == "@":
                skip = int(value)
            else:
                times = int(value)
        rules.append(_Rule(Fault(point, action, match.group("arg")), skip, times))
    if not rules:
        return None
    return FaultPlan(rules, text)
