"""Deterministic fault injection for the toolchain, store and service.

The failure paths this package exists to exercise — a hung ``cc``, a
corrupt store entry, a shared object that no longer dlopens, ENOSPC in
the artifact cache — are exactly the ones ordinary test suites never
reach.  Named *injection points* are threaded through the production
code; arming them makes the real handling code (retry, backoff, the
degradation ladder, store self-healing) run for real.

Two ways to arm faults:

* ``REPRO_FAULTS=<spec>`` — read once at import, active process-wide
  (the CI fault-injection leg runs the whole suite this way);
* :func:`injecting` — a context manager that *replaces* the active plan
  for the dynamic extent of a block (tests use this; an env-armed plan
  is suspended inside the block and restored after).

The spec grammar lives in :mod:`repro.faults.spec` (``point=action[:arg]
[@skip][*times]``, comma-separated).  Sites call :func:`poll`, which is
engineered to be zero-overhead while no plan is active: one module-global
load and an is-``None`` test — the same contract as :mod:`repro.obs`.

Every fired fault increments the ``faults.fired.<point>`` metrics counter
(when ``REPRO_METRICS`` is live) and is visible via :func:`fired`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.faults.spec import (
    Fault,
    FaultError,
    FaultPlan,
    FaultSpecError,
    POINT_ACTIONS,
    parse_spec,
)
from repro.obs import metrics as obs_metrics

__all__ = [
    "Fault",
    "FaultError",
    "FaultPlan",
    "FaultSpecError",
    "POINT_ACTIONS",
    "enabled",
    "fired",
    "injecting",
    "parse_spec",
    "poll",
    "raise_if",
    "spec_text",
]

#: the active plan; ``None`` (the production state) makes every
#: :func:`poll` a global load + is-None check.
_plan: Optional[FaultPlan] = parse_spec(os.environ.get("REPRO_FAULTS"))


def enabled() -> bool:
    """Is a fault plan active?  (Sites may use this to skip setup work.)"""
    return _plan is not None


def spec_text() -> Optional[str]:
    """The active plan's spec string (``repro doctor`` reporting)."""
    plan = _plan
    return plan.text if plan is not None else None


def poll(point: str) -> Optional[Fault]:
    """Consume one firing of *point*, or ``None`` (the hot-path check).

    Zero-overhead while no plan is active; when a fault fires, the
    ``faults.fired.<point>`` counter is bumped (metrics permitting).
    """
    plan = _plan
    if plan is None:
        return None
    fault = plan.poll(point)
    if fault is not None:
        obs_metrics.inc("faults.fired.%s" % point)
    return fault


def raise_if(point: str) -> None:
    """Raise :class:`FaultError` when *point* fires (simple-fail sites)."""
    fault = poll(point)
    if fault is not None:
        raise FaultError(fault)


def fired() -> Dict[str, int]:
    """Fired counts per point for the active plan (empty when none)."""
    plan = _plan
    return plan.fired() if plan is not None else {}


def activate(spec: Optional[str]) -> None:
    """Replace the active plan (``None``/empty disarms).  Prefer
    :func:`injecting` — it restores the previous plan on exit."""
    global _plan
    _plan = parse_spec(spec) if isinstance(spec, str) else spec


@contextmanager
def injecting(spec: Optional[str]) -> Iterator[Optional[FaultPlan]]:
    """Arm *spec* for the duration of a block, then restore what was
    active before (including an env-armed plan)."""
    global _plan
    previous = _plan
    _plan = parse_spec(spec)
    try:
        yield _plan
    finally:
        _plan = previous
