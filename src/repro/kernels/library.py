"""Kernel definitions for every operation in the paper's evaluation.

Each :class:`KernelSpec` carries the einsum, the symmetry declaration, the
loop order and formats matching Section 5.2, a dense numpy reference for
validation, and the expected-speedup model the paper states (the purple
line of Figures 6-11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.compiler import CompiledKernel, compile_kernel
from repro.core.config import CompilerOptions, DEFAULT


@dataclass(frozen=True)
class KernelSpec:
    """One evaluation kernel: definition + reference + expectations."""

    name: str
    einsum: str
    symmetric: Mapping[str, object]
    loop_order: Tuple[str, ...]
    formats: Mapping[str, str]
    reference: Callable[..., np.ndarray]
    expected_speedup: float
    paper_figure: str
    description: str = ""

    def compile(
        self, naive: bool = False, options: CompilerOptions = DEFAULT
    ) -> CompiledKernel:
        return compile_kernel(
            self.einsum,
            symmetric=dict(self.symmetric),
            loop_order=self.loop_order,
            formats=dict(self.formats),
            options=options,
            naive=naive,
        )


# ----------------------------------------------------------------------
# dense references
# ----------------------------------------------------------------------
def _ref_ssymv(A: np.ndarray, x: np.ndarray) -> np.ndarray:
    return A @ x


def _ref_bellman_ford(A: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Sparse min-plus semantics: zero entries are missing edges (+inf)."""
    weights = np.where(A != 0.0, A, np.inf)
    return np.min(weights + d[None, :], axis=1)


def _ref_syprd(A: np.ndarray, x: np.ndarray) -> np.ndarray:
    return np.asarray(x @ A @ x)


def _ref_ssyrk(A: np.ndarray) -> np.ndarray:
    return A @ A.T


def _ref_ttm(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return np.einsum("kjl,ki->ijl", A, B)


def _ref_mttkrp(order: int) -> Callable[..., np.ndarray]:
    letters = "iklmz"[: order]

    def ref(A: np.ndarray, B: np.ndarray) -> np.ndarray:
        subs = ",".join([letters] + ["%sj" % c for c in letters[1:]])
        return np.einsum(subs + "->ij", A, *([B] * (order - 1)))

    return ref


# ----------------------------------------------------------------------
# the kernel table (Section 5.2)
# ----------------------------------------------------------------------
def mttkrp_spec(order: int) -> KernelSpec:
    """The N-dimensional symmetric MTTKRP (Section 5.2.6).

    Expected speedup over naive is ``(order - 1)!`` — the kernel reads
    ``1/order!`` of the values and performs ``1/(order-1)!`` of the
    computations thanks to the invisible symmetry of the reduced modes.
    """
    if order < 3:
        raise ValueError("MTTKRP needs order >= 3")
    letters = list("iklmz"[:order])
    rhs = " * ".join(
        ["A[%s]" % ", ".join(letters)] + ["B[%s, j]" % c for c in letters[1:]]
    )
    loop_order = tuple(reversed(letters)) + ("j",)
    return KernelSpec(
        name="mttkrp%dd" % order,
        einsum="C[i, j] += %s" % rhs,
        symmetric={"A": True},
        loop_order=loop_order,
        formats={"A": "sparse"},
        reference=_ref_mttkrp(order),
        expected_speedup=float(math.factorial(order - 1)),
        paper_figure="Figure 11",
        description="%d-D matricized tensor times Khatri-Rao product, "
        "fully symmetric CSF input, dense factor matrix" % order,
    )


KERNELS: Dict[str, KernelSpec] = {
    "ssymv": KernelSpec(
        name="ssymv",
        einsum="y[i] += A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        formats={"A": "sparse"},
        reference=_ref_ssymv,
        expected_speedup=2.0,
        paper_figure="Figure 6",
        description="sparse symmetric matrix-vector multiply (CSC A); "
        "bandwidth bound, reads half of A",
    ),
    "bellmanford": KernelSpec(
        name="bellmanford",
        einsum="y[i] min= A[i, j] + d[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        formats={"A": "sparse"},
        reference=_ref_bellman_ford,
        expected_speedup=2.0,
        paper_figure="Figure 7",
        description="one Bellman-Ford relaxation over an undirected graph "
        "(min-plus semiring — symmetrization beyond + and *)",
    ),
    "syprd": KernelSpec(
        name="syprd",
        einsum="y[] += x[i] * A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        formats={"A": "sparse"},
        reference=_ref_syprd,
        expected_speedup=2.0,
        paper_figure="Figure 8",
        description="symmetric triple product x'Ax; invisible output "
        "symmetry folds mirrored updates into a 2x scale",
    ),
    "ssyrk": KernelSpec(
        name="ssyrk",
        einsum="C[i, j] += A[i, k] * A[j, k]",
        symmetric={},
        loop_order=("k", "j", "i"),
        formats={"A": "sparse"},
        reference=_ref_ssyrk,
        expected_speedup=2.0,
        paper_figure="Figure 9",
        description="sparse rank-k update A A'; no symmetric input, but "
        "visible output symmetry halves compute and writes",
    ),
    "ttm": KernelSpec(
        name="ttm",
        einsum="C[i, j, l] += A[k, j, l] * B[k, i]",
        symmetric={"A": True},
        loop_order=("l", "k", "j", "i"),
        formats={"A": "sparse"},
        reference=_ref_ttm,
        expected_speedup=2.0,
        paper_figure="Figure 10",
        description="mode-1 tensor-times-matrix with fully symmetric CSF "
        "A: reads 1/6 of A, computes half of C (visible {j,l} symmetry)",
    ),
    "mttkrp3d": mttkrp_spec(3),
    "mttkrp4d": mttkrp_spec(4),
    "mttkrp5d": mttkrp_spec(5),
}


def get_kernel(name: str) -> KernelSpec:
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            "unknown kernel %r (have: %s)" % (name, ", ".join(sorted(KERNELS)))
        )
