"""Extended kernels beyond the paper's evaluation set.

These exercise capabilities the paper claims but does not benchmark —
multiple sparse arguments (intersection co-iteration), multiple accesses to
one symmetric tensor, partial symmetry, and further semirings — plus a few
standard BLAS/graph kernels expressed through the same compiler.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.library import KernelSpec


def _ref_triangle_count(A: np.ndarray) -> np.ndarray:
    return np.asarray(np.einsum("ij,jk,ik->", A, A, A))


def _ref_sddmm_diag(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return (A * B).sum(axis=1)


def _ref_ttm4(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return np.einsum("kjlm,ki->ijlm", A, B)


def _ref_bilinear_partial(T: np.ndarray, x: np.ndarray) -> np.ndarray:
    return np.einsum("ijk,j,k->i", T, x, x)


def _ref_widest_path(A: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Max-plus relaxation over stored edges."""
    weights = np.where(A != 0.0, A, -np.inf)
    return np.max(weights + d[None, :], axis=1)


#: extension kernels, same record type as the main library.
EXTENSIONS = {
    "trianglecount": KernelSpec(
        name="trianglecount",
        einsum="y[] += A[i, j] * A[j, k] * A[i, k]",
        symmetric={"A": True},
        loop_order=("k", "j", "i"),
        formats={"A": "sparse"},
        reference=_ref_triangle_count,
        expected_speedup=6.0,
        paper_figure="(extension)",
        description="undirected triangle counting: three accesses to one "
        "symmetric adjacency matrix; iterates one wedge orientation and "
        "scales by 3! via distributive grouping, with sorted-merge "
        "intersection of the two neighbor fibers",
    ),
    "sddmm_rowsum": KernelSpec(
        name="sddmm_rowsum",
        einsum="y[i] += A[i, j] * B[i, j]",
        symmetric={},
        loop_order=("i", "j"),
        formats={"A": "sparse", "B": "sparse"},
        reference=_ref_sddmm_diag,
        expected_speedup=1.0,
        paper_figure="(extension)",
        description="row-wise sparse-sparse elementwise product reduction "
        "(two sparse arguments at once — the Table 1 capability Cyclops "
        "lacks)",
    ),
    "ttm4d": KernelSpec(
        name="ttm4d",
        einsum="C[i, j, l, m] += A[k, j, l, m] * B[k, i]",
        symmetric={"A": True},
        loop_order=("m", "l", "k", "j", "i"),
        formats={"A": "sparse"},
        reference=_ref_ttm4,
        expected_speedup=6.0,
        paper_figure="(extension)",
        description="mode-1 TTM on a fully symmetric 4-tensor: reads 1/24 "
        "of A, exploits the visible {j,l,m} symmetry of C",
    ),
    "bilinear_partial": KernelSpec(
        name="bilinear_partial",
        einsum="y[i] += T[i, j, k] * x[j] * x[k]",
        symmetric={"T": [[1, 2]]},
        loop_order=("i", "k", "j"),
        formats={"T": "sparse"},
        reference=_ref_bilinear_partial,
        expected_speedup=2.0,
        paper_figure="(extension)",
        description="batched quadratic form with *partial* {1,2} symmetry "
        "(mode 0 asymmetric) — Definition 2.2 in action",
    ),
    "widestpath": KernelSpec(
        name="widestpath",
        einsum="y[i] max= A[i, j] + d[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        formats={"A": "sparse"},
        reference=_ref_widest_path,
        expected_speedup=2.0,
        paper_figure="(extension)",
        description="max-plus relaxation (longest/widest path flavor): a "
        "third semiring through the same symmetrization machinery",
    ),
}


def get_extension(name: str) -> KernelSpec:
    try:
        return EXTENSIONS[name]
    except KeyError:
        raise KeyError(
            "unknown extension kernel %r (have: %s)"
            % (name, ", ".join(sorted(EXTENSIONS)))
        )
