"""Hand-written comparator kernels.

``taco_style_*`` are tight hand-written loops over CSR arrays in the style
of TACO's generated C code (row-major, no symmetry awareness) — running on
the same substrate as our generated kernels so the comparison measures code
structure, not runtime technology.  ``scipy_spmv`` is the compiled-library
proxy standing in for MKL (reported separately; a C library cannot be
compared head-to-head with interpreted loops).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.coo import COO
from repro.tensor.fiber import FiberTensor
from repro.tensor.tensor import Tensor


def _csr_arrays(A: Tensor) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    fiber = A.view(tuple(range(A.ndim)), ("dense",) + ("sparse",) * (A.ndim - 1), "full")
    arrays = fiber.arrays()
    return arrays


def taco_style_spmv(A: Tensor, x: np.ndarray) -> np.ndarray:
    """Row-major CSR y = A x, exactly the loop TACO emits for SpMV."""
    arrays = _csr_arrays(A)
    pos, idx, vals = arrays["pos1"], arrays["idx1"], arrays["vals"]
    n = A.shape[0]
    y = np.zeros(n)
    for i in range(n):
        acc = 0.0
        for q in range(pos[i], pos[i + 1]):
            acc += vals[q] * x[idx[q]]
        y[i] = acc
    return y


def taco_style_syprd(A: Tensor, x: np.ndarray) -> float:
    """Row-major CSR x' A x without symmetry awareness."""
    arrays = _csr_arrays(A)
    pos, idx, vals = arrays["pos1"], arrays["idx1"], arrays["vals"]
    n = A.shape[0]
    y = 0.0
    for i in range(n):
        xi = x[i]
        acc = 0.0
        for q in range(pos[i], pos[i + 1]):
            acc += vals[q] * x[idx[q]]
        y += xi * acc
    return y


def taco_style_mttkrp3(A: Tensor, B: np.ndarray) -> np.ndarray:
    """CSF i->k->l MTTKRP, the column-major TACO formulation of Section 5."""
    fiber = A.view((0, 1, 2), ("dense", "sparse", "sparse"), "full")
    arrays = fiber.arrays()
    pos1, idx1 = arrays["pos1"], arrays["idx1"]
    pos2, idx2 = arrays["pos2"], arrays["idx2"]
    vals = arrays["vals"]
    n, r = A.shape[0], B.shape[1]
    C = np.zeros((n, r))
    for i in range(n):
        for q1 in range(pos1[i], pos1[i + 1]):
            k = idx1[q1]
            Bk = B[k]
            for q2 in range(pos2[q1], pos2[q1 + 1]):
                l = idx2[q2]
                C[i] += vals[q2] * Bk * B[l]
    return C


def scipy_spmv(A: Tensor, x: np.ndarray) -> Optional[np.ndarray]:
    """Compiled-library SpMV (MKL stand-in); None if scipy is missing."""
    try:
        import scipy.sparse as sp
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return None
    coo = A._full_coo()
    mat = sp.csr_matrix((coo.vals, (coo.coords[0], coo.coords[1])), shape=A.shape)
    return mat @ x
