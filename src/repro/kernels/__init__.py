"""The paper's kernel library and hand-written baselines.

:mod:`repro.kernels.library` defines each kernel of the evaluation (Section
5.2) — SSYMV, the Bellman-Ford update, SYPRD, SSYRK, TTM and 3/4/5-D MTTKRP
— with the loop order and formats the paper uses, and compiles the naive /
SySTeC variants on demand.  :mod:`repro.kernels.baselines` provides
hand-written comparators: a TACO-style row-major CSR kernel set and (when
scipy is available) library baselines standing in for MKL.
"""

from repro.kernels.library import (
    KERNELS,
    KernelSpec,
    get_kernel,
    mttkrp_spec,
)
from repro.kernels.baselines import (
    taco_style_spmv,
    taco_style_syprd,
    taco_style_mttkrp3,
    scipy_spmv,
)

__all__ = [
    "KERNELS",
    "KernelSpec",
    "get_kernel",
    "mttkrp_spec",
    "scipy_spmv",
    "taco_style_mttkrp3",
    "taco_style_spmv",
    "taco_style_syprd",
]
