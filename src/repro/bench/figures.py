"""Experiment drivers — one per table/figure of the paper's evaluation.

Every driver returns a list of :class:`BenchResult` rows: per workload, the
naive-Finch-equivalent time (our naive generated kernel), the SySTeC time,
and hand-written baselines where the paper compares against them (a
TACO-style kernel; scipy as the compiled-library stand-in for MKL, reported
separately since a C library cannot be compared head-to-head with
interpreted loops).

Scales default to sizes that finish in minutes under pure Python; pass a
larger ``scale`` / ``n`` to stress the same shapes at larger sizes.  The
paper's artifact reduces its TTM/MTTKRP datasets for exactly this reason.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.harness import BenchResult, time_callable, time_compiled_kernel
from repro.core.config import DEFAULT, CompilerOptions
from repro.data.matrices import load_matrix, table
from repro.data.random_tensors import erdos_renyi_symmetric, random_dense
from repro.kernels.baselines import scipy_spmv, taco_style_mttkrp3, taco_style_spmv, taco_style_syprd
from repro.kernels.library import get_kernel, mttkrp_spec

#: a representative subset of Table 2 used by the quick benchmarks
#: (one per structure profile and size class; pass names=None for all 30).
DEFAULT_MATRICES: Tuple[str, ...] = (
    "saylr4",
    "sherman5",
    "gemat11",
    "lnsp3937",
    "orani678",
    "rdist1",
    "memplus",
    "bayer02",
)


def _matrix_rows(
    figure: str,
    kernel_name: str,
    extra_methods,
    scale: float,
    names: Optional[Sequence[str]],
    repeats: int,
    backend: str = "python",
    threads=None,
    dtype: str = "float64",
    use_plan: bool = False,
) -> List[BenchResult]:
    spec = get_kernel(kernel_name)
    options = DEFAULT.but(backend=backend, dtype=dtype)
    if threads is not None:
        options = options.but(threads=threads)
    naive = spec.compile(naive=True, options=options)
    systec = spec.compile(options=options)
    results = []
    for info in table():
        if names is not None and info.name not in names:
            continue
        A = load_matrix(info.name, scale=scale)
        dense_args = _dense_args_for(spec, A.shape[0])
        times: Dict[str, float] = {}
        times["naive"] = time_compiled_kernel(
            naive, repeats=repeats, use_plan=use_plan, A=A, **dense_args
        )
        times["systec"] = time_compiled_kernel(
            systec, repeats=repeats, use_plan=use_plan, A=A, **dense_args
        )
        for method, fn in extra_methods(A, dense_args):
            if fn is None:
                continue
            times[method] = time_callable(fn, repeats=repeats)
        results.append(
            BenchResult(
                figure=figure,
                workload=info.name,
                params={"scale": scale, "n": A.shape[0], "nnz": A.nnz},
                times=times,
                expected_speedup=spec.expected_speedup,
            )
        )
    return results


def _dense_args_for(spec, n: int) -> Dict[str, np.ndarray]:
    from repro.frontend.parser import parse_assignment

    args = {}
    for acc in parse_assignment(spec.einsum).accesses:
        if acc.tensor == "A":
            continue
        if acc.tensor not in args:
            args[acc.tensor] = random_dense((n,) * len(acc.indices), seed=17)
    return args


# ----------------------------------------------------------------------
# Figures 6-9: the Table 2 matrix kernels
# ----------------------------------------------------------------------
def run_fig06_ssymv(
    scale: float = 0.03,
    names: Optional[Sequence[str]] = DEFAULT_MATRICES,
    repeats: int = 3,
    with_library: bool = True,
    backend: str = "python",
    threads=None,
    dtype: str = "float64",
    use_plan: bool = False,
) -> List[BenchResult]:
    """Figure 6: SSYMV.  SySTeC ~1.45x naive, bounded by 2x."""

    def extras(A, dense):
        x = dense["x"]
        yield "taco", lambda: taco_style_spmv(A, x)
        if with_library:
            result = scipy_spmv(A, x)
            if result is not None:
                yield "scipy(MKL proxy)", lambda: scipy_spmv(A, x)

    return _matrix_rows(
        "fig06", "ssymv", extras, scale, names, repeats, backend, threads,
        dtype, use_plan
    )


def run_fig07_bellmanford(
    scale: float = 0.03,
    names: Optional[Sequence[str]] = DEFAULT_MATRICES,
    repeats: int = 3,
    backend: str = "python",
    threads=None,
    dtype: str = "float64",
    use_plan: bool = False,
) -> List[BenchResult]:
    """Figure 7: one Bellman-Ford relaxation (min-plus SSYMV shape)."""

    def extras(A, dense):
        return ()

    return _matrix_rows(
        "fig07", "bellmanford", extras, scale, names, repeats, backend, threads, dtype,
        use_plan
    )


def run_fig08_syprd(
    scale: float = 0.03,
    names: Optional[Sequence[str]] = DEFAULT_MATRICES,
    repeats: int = 3,
    backend: str = "python",
    threads=None,
    dtype: str = "float64",
    use_plan: bool = False,
) -> List[BenchResult]:
    """Figure 8: SYPRD x'Ax.  SySTeC ~1.79x naive, bounded by 2x."""

    def extras(A, dense):
        x = dense["x"]
        yield "taco", lambda: taco_style_syprd(A, x)

    return _matrix_rows(
        "fig08", "syprd", extras, scale, names, repeats, backend, threads, dtype,
        use_plan
    )


def run_fig09_ssyrk(
    scale: float = 0.02,
    names: Optional[Sequence[str]] = ("saylr4", "sherman5", "gemat11", "lnsp3937"),
    repeats: int = 3,
    backend: str = "python",
    threads=None,
    dtype: str = "float64",
    use_plan: bool = False,
) -> List[BenchResult]:
    """Figure 9: SSYRK A A'.  SySTeC ~2.2x naive (compute bound, 2x work)."""

    def extras(A, dense):
        return ()

    return _matrix_rows(
        "fig09", "ssyrk", extras, scale, names, repeats, backend, threads, dtype,
        use_plan
    )


# ----------------------------------------------------------------------
# Figure 10: TTM over density x rank
# ----------------------------------------------------------------------
def run_fig10_ttm(
    n: int = 40,
    densities: Sequence[float] = (0.01, 0.1, 0.3),
    ranks: Sequence[int] = (4, 16, 64),
    repeats: int = 3,
    backend: str = "python",
    threads=None,
    dtype: str = "float64",
    use_plan: bool = False,
) -> List[BenchResult]:
    """Figure 10: mode-1 TTM with a fully symmetric 3-D tensor.

    The paper sees ~2x at high density / low rank, and SySTeC *loses* at
    high rank where initializing the dense output dominates — the crossover
    this sweep reproduces.
    """
    spec = get_kernel("ttm")
    options = DEFAULT.but(backend=backend, dtype=dtype)
    if threads is not None:
        options = options.but(threads=threads)
    naive = spec.compile(naive=True, options=options)
    systec = spec.compile(options=options)
    results = []
    for density in densities:
        A = erdos_renyi_symmetric(n, 3, density, seed=23)
        for rank in ranks:
            B = random_dense((n, rank), seed=29)
            times = {
                "naive": time_compiled_kernel(
                    naive, repeats=repeats, use_plan=use_plan, A=A, B=B
                ),
                "systec": time_compiled_kernel(
                    systec, repeats=repeats, use_plan=use_plan, A=A, B=B
                ),
            }
            results.append(
                BenchResult(
                    figure="fig10",
                    workload="n=%d d=%.2g r=%d" % (n, density, rank),
                    params={"n": n, "density": density, "rank": rank, "nnz": A.nnz},
                    times=times,
                    expected_speedup=spec.expected_speedup,
                )
            )
    return results


# ----------------------------------------------------------------------
# Figure 11: MTTKRP 3/4/5-D over sparsity x rank
# ----------------------------------------------------------------------
#: default side length and density sweep per tensor order.  Sides are large
#: enough that strict (off-diagonal) coordinates dominate — matching the
#: paper's tensors, whose speedups approach the asymptotic n! bounds —
#: while keeping the expanded naive input small enough for pure Python.
_MTTKRP_SIDES = {3: 40, 4: 22, 5: 30}
_MTTKRP_DENSITIES = {
    3: (0.02, 0.1, 0.4),
    4: (0.005, 0.02, 0.08),
    5: (0.002, 0.008),
}


def run_fig11_mttkrp(
    orders: Sequence[int] = (3, 4, 5),
    n: Optional[int] = None,
    densities: Optional[Sequence[float]] = None,
    ranks: Sequence[int] = (4, 16),
    repeats: int = 3,
    with_taco: bool = True,
    backend: str = "python",
    threads=None,
    dtype: str = "float64",
    use_plan: bool = False,
) -> List[BenchResult]:
    """Figure 11: N-D MTTKRP.  Expected speedups 2x / 6x / 24x; the paper
    observes up to 3.38x / 7.35x / 29.8x thanks to register reuse."""
    results = []
    for order in orders:
        spec = mttkrp_spec(order)
        options = DEFAULT.but(backend=backend, dtype=dtype)
        if threads is not None:
            options = options.but(threads=threads)
        naive = spec.compile(naive=True, options=options)
        systec = spec.compile(options=options)
        side = n if n is not None else _MTTKRP_SIDES[order]
        sweep = densities if densities is not None else _MTTKRP_DENSITIES[order]
        for density in sweep:
            A = erdos_renyi_symmetric(side, order, density, seed=31 + order)
            for rank in ranks:
                B = random_dense((side, rank), seed=37)
                times = {
                    "naive": time_compiled_kernel(
                        naive, repeats=repeats, use_plan=use_plan, A=A, B=B
                    ),
                    "systec": time_compiled_kernel(
                        systec, repeats=repeats, use_plan=use_plan, A=A, B=B
                    ),
                }
                if order == 3 and with_taco:
                    times["taco"] = time_callable(
                        lambda: taco_style_mttkrp3(A, B), repeats=repeats
                    )
                results.append(
                    BenchResult(
                        figure="fig11",
                        workload="%dD n=%d d=%.2g r=%d" % (order, side, density, rank),
                        params={
                            "order": order,
                            "n": side,
                            "density": density,
                            "rank": rank,
                            "nnz_canonical": A.nnz,
                        },
                        times=times,
                        expected_speedup=spec.expected_speedup,
                    )
                )
    return results


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
def run_table2(scale: float = 0.02) -> List[Dict[str, object]]:
    """Table 2: the matrix collection — published stats next to the
    synthesized stand-ins actually used at the given scale."""
    rows = []
    for info in table():
        t = load_matrix(info.name, scale=scale)
        rows.append(
            {
                "name": info.name,
                "paper_dimension": info.dimension,
                "paper_nnz": info.nnz,
                "profile": info.profile,
                "generated_dimension": t.shape[0],
                "generated_nnz": t.nnz,
            }
        )
    return rows
