"""Microbenchmark: Python vs C execution backend on the figure kernels.

The two backends run the *same* generated loop structure over the same
prepared fibertree arrays; the only difference is interpreted Python vs a
``cc -O3`` shared object — and, with OpenMP, how many cores the C loops
use.  Timings follow the paper's methodology (only the kernel's timed
region; preparation excluded), and results reuse the
:class:`~repro.bench.harness.BenchResult` JSON shape the other benchmark
drivers emit — ``times["naive"]`` holds the Python-backend time so the
standard ``speedups`` accounting reports the C speedup directly; each
additional thread count adds a ``c@t<N>`` column.

Before any timing is reported, every configuration's output is checked:
the C backend must be **bit-identical** to Python (per element dtype —
the ``-ffp-contract=off`` / weak-scalar-mirroring contract the renderer
makes), and every threaded run must be bit-identical to ``threads=1``
(reduction-safe scheduling).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import (
    BenchResult,
    TimingStats,
    time_callable_stats,
)
from repro.core.config import DEFAULT
from repro.data.random_tensors import erdos_renyi_symmetric, random_dense
from repro.frontend.parser import parse_assignment
from repro.kernels.library import get_kernel

#: kernels compared by default: two sparse matrix kernels and one higher
#: order tensor kernel, matching the figure suite's spread.
BACKEND_BENCH_KERNELS = ("ssymv", "ssyrk", "mttkrp3d")

#: the historical problem size; its trajectory keys stay unsuffixed so the
#: perf history committed before the size axis existed remains diffable.
LEGACY_N = 2000

#: the serial -> parallel crossover sweep: sizes (with denser rows at the
#: top end) that bracket where the cost model should flip ``threads=auto``
#: from serial to a team.
CROSSOVER_SIZES = (2000, 8000, 20000)


def _inputs_for(name: str, n: int, nnz_per_row: float, seed: int = 11) -> Dict:
    spec = get_kernel(name)
    if name == "mttkrp3d":
        side = max(24, int(round(n ** (2.0 / 3.0))))
        density = min(1.0, 6.0 * nnz_per_row / (side * side))
        A = erdos_renyi_symmetric(side, 3, density, seed=seed)
        return {"A": A, "B": random_dense((side, 16), seed=seed + 1)}
    density = min(1.0, nnz_per_row / n)
    A = erdos_renyi_symmetric(n, 2, density, seed=seed)
    args: Dict = {"A": A}
    for acc in parse_assignment(spec.einsum).accesses:
        if acc.tensor != "A" and acc.tensor not in args:
            args[acc.tensor] = random_dense((n,) * len(acc.indices), seed=seed + 2)
    return args


def _method_name(thread_count: int) -> str:
    return "c" if thread_count == 1 else "c@t%d" % thread_count


def bench_backends(
    names: Sequence[str] = BACKEND_BENCH_KERNELS,
    n: int = 1500,
    nnz_per_row: float = 12.0,
    repeats: int = 5,
    threads: Sequence[int] = (1,),
    dtype: str = "float64",
    auto: bool = False,
    tuned: Optional[str] = None,
) -> List[BenchResult]:
    """Time each kernel under both backends (and thread counts) on
    identical inputs.  Raises when any configuration's output diverges.

    ``dtype`` selects the element precision both backends run in —
    float32 halves the value-array traffic of these bandwidth-bound
    kernels, and the cross-backend bit-identity contract holds per dtype.
    ``auto`` additionally measures ``threads="auto"`` — the cost-model
    resolution — as a ``c@auto`` column, with the count it resolved to in
    the row's params.  ``tuned`` names a tuning database
    (:mod:`repro.tune`): the kernel is recompiled and re-resolved with
    that oracle active and lands as a ``tuned@auto`` column — the
    measured-vs-modeled comparison on identical inputs.
    """
    thread_counts = sorted({max(1, int(t)) for t in threads} | {1})
    results: List[BenchResult] = []
    for name in names:
        spec = get_kernel(name)
        inputs = _inputs_for(name, n, nnz_per_row)
        stats: Dict[str, TimingStats] = {}

        # preparation (the paper's untimed setup) runs once per backend;
        # every timed configuration reuses the prepared arguments
        kernel = spec.compile(options=DEFAULT.but(backend="python", dtype=dtype))
        prepared, shape = kernel.prepare(**inputs)
        py_out = kernel.finalize(kernel.run(prepared, shape))
        stats["naive"] = time_callable_stats(
            lambda: kernel.run(prepared, shape), repeats=repeats
        )

        kernel = spec.compile(options=DEFAULT.but(backend="c", dtype=dtype))
        prepared, shape = kernel.prepare(**inputs)
        base_out = kernel.finalize(kernel.run(prepared, shape, threads=1))
        if not np.array_equal(np.asarray(py_out), np.asarray(base_out)):
            raise AssertionError(
                "backend outputs diverge on %s (%s) — refusing to report "
                "timings" % (name, dtype)
            )
        for count in thread_counts:
            if count > 1:
                threaded = kernel.finalize(
                    kernel.run(prepared, shape, threads=count)
                )
                if not np.array_equal(
                    np.asarray(base_out), np.asarray(threaded)
                ):
                    raise AssertionError(
                        "threads=%d output of %s is not bit-identical to "
                        "threads=1 — refusing to report timings" % (count, name)
                    )
            stats[_method_name(count)] = time_callable_stats(
                lambda count=count: kernel.run(prepared, shape, threads=count),
                repeats=repeats,
            )
        resolved_auto = None
        if auto:
            resolved_auto = kernel.bound.resolve_run_threads("auto", prepared)
            auto_out = kernel.finalize(
                kernel.run(prepared, shape, threads="auto")
            )
            if not np.array_equal(np.asarray(base_out), np.asarray(auto_out)):
                raise AssertionError(
                    "threads=auto output of %s is not bit-identical to "
                    "threads=1 — refusing to report timings" % name
                )
            stats["c@auto"] = time_callable_stats(
                lambda: kernel.run(prepared, shape, threads="auto"),
                repeats=repeats,
            )
        resolved_tuned = None
        if tuned is not None:
            from repro import tune as tune_mod

            # recompile with the oracle active so tuned *compile*
            # overrides (pass set / tile / omp strategy) apply too, not
            # just the thread resolution
            tune_mod.configure(tuned)
            try:
                tkernel = spec.compile(
                    options=DEFAULT.but(backend="c", dtype=dtype)
                )
                tprepared, tshape = tkernel.prepare(**inputs)
                resolved_tuned = tkernel.bound.resolve_run_threads(
                    "auto", tprepared
                )
                tuned_out = tkernel.finalize(
                    tkernel.run(tprepared, tshape, threads="auto")
                )
                if not np.array_equal(
                    np.asarray(base_out), np.asarray(tuned_out)
                ):
                    raise AssertionError(
                        "tuned output of %s is not bit-identical to the "
                        "untuned build — refusing to report timings" % name
                    )
                stats["tuned@auto"] = time_callable_stats(
                    lambda: tkernel.run(tprepared, tshape, threads="auto"),
                    repeats=repeats,
                )
            finally:
                tune_mod.reset()

        times = {method: s.best for method, s in stats.items()}
        nnz = inputs["A"].nnz
        params = {
            "n": n,
            "nnz_canonical": int(nnz),
            "threads": thread_counts,
            "dtype": dtype,
        }
        if resolved_auto is not None:
            params["auto_resolved_threads"] = int(resolved_auto)
        if resolved_tuned is not None:
            params["tuned_resolved_threads"] = int(resolved_tuned)
            params["tuned_db"] = tuned
        result = BenchResult(
            figure="backends",
            workload=name,
            params=params,
            times=times,
            expected_speedup=10.0,
        )
        result.stats = stats  # medians ride along for the trajectory
        results.append(result)
    return results


#: the pass-set acceptance sweep: (kernel, n, nnz_per_row, REPRO_PASSES
#: spec).  ssyrk's dense-row output is where cache-blocking pays — the
#: row-block tile keeps the written C-rows resident while the fiber walk
#: streams A; measured win on a 1-core container: ~1.6x at this shape.
PASS_BENCH_CONFIGS = (("ssyrk", 2000, 64.0, "none,tile"),)


def bench_pass_sets(
    configs: Sequence = PASS_BENCH_CONFIGS,
    repeats: int = 5,
    dtype: str = "float64",
) -> List[BenchResult]:
    """Time kernels under a loop-pass selection against the unoptimized
    pipeline (``REPRO_PASSES=none``), single-threaded.

    Both builds run the same prepared arguments and must agree bitwise
    before any timing is reported — the pass pipeline's contract is
    "faster, not different".  ``times["naive"]`` holds the pass-less
    build so the standard ``speedups`` accounting reports the pass win
    directly.
    """
    import os

    from repro.codegen.backends.cpasses import active_pass_config

    results: List[BenchResult] = []
    saved = os.environ.get("REPRO_PASSES")
    try:
        for name, n, nnz_per_row, passes in configs:
            spec = get_kernel(name)
            inputs = _inputs_for(name, int(n), float(nnz_per_row))
            stats: Dict[str, TimingStats] = {}

            os.environ["REPRO_PASSES"] = "none"
            kernel = spec.compile(options=DEFAULT.but(backend="c", dtype=dtype))
            prepared, shape = kernel.prepare(**inputs)
            base_out = kernel.finalize(kernel.run(prepared, shape, threads=1))
            stats["naive"] = time_callable_stats(
                lambda k=kernel, p=prepared, s=shape: k.run(p, s, threads=1),
                repeats=repeats,
            )

            os.environ["REPRO_PASSES"] = passes
            signature = active_pass_config().signature()
            kernel = spec.compile(options=DEFAULT.but(backend="c", dtype=dtype))
            prepared, shape = kernel.prepare(**inputs)
            pass_out = kernel.finalize(kernel.run(prepared, shape, threads=1))
            if not np.array_equal(np.asarray(base_out), np.asarray(pass_out)):
                raise AssertionError(
                    "pass set %r changes %s output — refusing to report "
                    "timings" % (signature, name)
                )
            stats["c"] = time_callable_stats(
                lambda k=kernel, p=prepared, s=shape: k.run(p, s, threads=1),
                repeats=repeats,
            )

            result = BenchResult(
                figure="passes",
                workload=name,
                params={
                    "n": int(n),
                    "nnz_per_row": float(nnz_per_row),
                    "nnz_canonical": int(inputs["A"].nnz),
                    "passes": signature,
                    "dtype": dtype,
                },
                times={m: s.best for m, s in stats.items()},
                expected_speedup=1.15,
            )
            result.stats = stats
            results.append(result)
    finally:
        if saved is None:
            os.environ.pop("REPRO_PASSES", None)
        else:
            os.environ["REPRO_PASSES"] = saved
    return results


def pass_trajectory_entries(
    results: Sequence[BenchResult],
) -> Dict[str, Dict[str, object]]:
    """``kernel@n<size>d<nnz>/c@t1/passes=<signature>`` -> measurement.

    Each pass-bench row lands as two entries — the pass-less baseline
    (``passes=none``) and the selection under test, the latter carrying
    ``speedup_vs_none`` (the acceptance number; the bar is a >= 1.15x
    median win on at least one figure kernel).
    """
    entries: Dict[str, Dict[str, object]] = {}
    for result in results:
        stats: Dict[str, TimingStats] = getattr(result, "stats", {})
        base = "%s@n%dd%d/c@t1/passes=" % (
            result.workload,
            result.params["n"],
            int(result.params["nnz_per_row"]),
        )
        none = stats.get("naive")
        for method, key in (("naive", base + "none"),
                            ("c", base + result.params["passes"])):
            stat = stats.get(method)
            if stat is None:
                continue
            entry: Dict[str, object] = {
                "min_s": stat.best,
                "median_s": stat.median,
                "runs": stat.runs,
                "n": result.params["n"],
                "nnz_canonical": result.params["nnz_canonical"],
                "dtype": result.params["dtype"],
            }
            if method == "c" and none is not None and stat.median:
                entry["speedup_vs_none"] = none.median / stat.median
            entries[key] = entry
    return entries


def format_pass_report(results: Sequence[BenchResult]) -> str:
    header = "%-10s %8s %10s %-24s %12s %12s %9s" % (
        "kernel", "n", "nnz", "passes", "none(s)", "passes(s)", "speedup"
    )
    lines = [header]
    for r in results:
        none = r.stats["naive"].median
        opt = r.stats["c"].median
        lines.append(
            "%-10s %8d %10d %-24s %12.6f %12.6f %8.2fx"
            % (
                r.workload,
                r.params["n"],
                r.params["nnz_canonical"],
                r.params["passes"],
                none,
                opt,
                none / opt if opt else float("nan"),
            )
        )
    return "\n".join(lines)


def backend_trajectory_entries(
    results: Sequence[BenchResult],
) -> Dict[str, Dict[str, object]]:
    """``kernel[@n<size>]/backend@t<threads>[/f32]`` -> measurement.

    The speedup reference is the Python backend (``speedup_vs_python``),
    and threaded entries additionally report their scaling over the
    single-threaded C run (``speedup_vs_c1``) — the serial -> parallel
    crossover signal; a ``c@auto`` sweep lands under ``c@auto`` keys with
    the thread count the cost model resolved to.  Sizes other than the
    historical :data:`LEGACY_N` tag the kernel segment (``ssymv@n8000``)
    so the size axis never overwrites the n=2000 history.  float32 runs
    append a ``/f32`` key suffix, keeping the float64 history diffable;
    pair the two sweeps with :func:`annotate_f32_speedups` to record the
    precision speedup itself.
    """
    entries: Dict[str, Dict[str, object]] = {}
    for result in results:
        stats: Dict[str, TimingStats] = getattr(result, "stats", {})
        dtype = result.params.get("dtype", "float64")
        suffix = "" if dtype == "float64" else "/f32"
        n = result.params["n"]
        workload = result.workload
        if n != LEGACY_N:
            workload = "%s@n%d" % (workload, n)
        python = stats.get("naive")
        c_serial = stats.get("c")
        for method, stat in stats.items():
            if method == "naive":
                key = "%s/python@t1%s" % (workload, suffix)
            elif method == "c":
                key = "%s/c@t1%s" % (workload, suffix)
            elif method == "c@auto":
                key = "%s/c@auto%s" % (workload, suffix)
            elif method == "tuned@auto":
                key = "%s/tuned@auto%s" % (workload, suffix)
            else:  # "c@tN"
                key = "%s/c@t%s%s" % (workload, method.split("@t")[1], suffix)
            entry: Dict[str, object] = {
                "min_s": stat.best,
                "median_s": stat.median,
                "runs": stat.runs,
                "n": n,
                "nnz_canonical": result.params["nnz_canonical"],
                "dtype": dtype,
            }
            if method == "c@auto" and "auto_resolved_threads" in result.params:
                entry["resolved_threads"] = result.params[
                    "auto_resolved_threads"
                ]
            if (
                method == "tuned@auto"
                and "tuned_resolved_threads" in result.params
            ):
                entry["resolved_threads"] = result.params[
                    "tuned_resolved_threads"
                ]
            if python is not None and method != "naive" and stat.best:
                entry["speedup_vs_python"] = python.best / stat.best
            if (
                c_serial is not None
                and (method.startswith("c@") or method == "tuned@auto")
                and method != "c"
                and stat.best
            ):
                entry["speedup_vs_c1"] = c_serial.best / stat.best
            entries[key] = entry
    return entries


def format_crossover_table(results: Sequence[BenchResult]) -> str:
    """Per kernel x size: serial time, thread scaling, and what ``auto`` did.

    The table the README's performance guide embeds — it reads the
    serial -> parallel crossover straight off a multi-size sweep.
    """
    header = "%-10s %8s %10s %10s" % ("kernel", "n", "nnz", "c@t1(s)")
    methods = sorted(
        {m for r in results for m in r.times if m.startswith("c@t")},
        key=lambda m: int(m.split("@t")[1]),
    )
    for method in methods:
        header += " %9s" % ("t%s/t1" % method.split("@t")[1])
    header += " %10s" % "auto"
    lines = [header]
    for r in sorted(results, key=lambda r: (r.workload, r.params["n"])):
        c1 = r.times.get("c")
        line = "%-10s %8d %10d %10.6f" % (
            r.workload,
            r.params["n"],
            r.params["nnz_canonical"],
            c1 if c1 else float("nan"),
        )
        for method in methods:
            t = r.times.get(method)
            line += " %8.2fx" % (c1 / t) if (c1 and t) else " %9s" % "-"
        if "c@auto" in r.times:
            line += " %10s" % ("t=%d" % r.params.get("auto_resolved_threads", 1))
        else:
            line += " %10s" % "-"
        lines.append(line)
    return "\n".join(lines)


def annotate_f32_speedups(
    entries: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Add ``speedup_vs_f64`` to every ``/f32`` entry with a float64 twin.

    The ratio is min-over-min of the same kernel/backend/threads cell —
    the memory-bandwidth win of halving the element size (up to ~2x on
    the bandwidth-bound kernels).  Entries without a twin are left alone.
    """
    for key, entry in entries.items():
        if not key.endswith("/f32"):
            continue
        twin = entries.get(key[: -len("/f32")])
        if twin and twin.get("min_s") and entry.get("min_s"):
            entry["speedup_vs_f64"] = twin["min_s"] / entry["min_s"]
    return entries


def format_backend_report(results: Sequence[BenchResult]) -> str:
    methods = ["naive", "c"] + sorted(
        {m for r in results for m in r.times if m.startswith("c@t")},
        key=lambda m: int(m.split("@t")[1]),
    )
    if any("c@auto" in r.times for r in results):
        methods.append("c@auto")
    if any("tuned@auto" in r.times for r in results):
        methods.append("tuned@auto")
    header = "%-10s %8s" % ("kernel", "nnz")
    for method in methods:
        label = "python(s)" if method == "naive" else "%s(s)" % method
        header += " %12s" % label
    header += " %9s" % "speedup"
    lines = [header]
    for r in results:
        line = "%-10s %8d" % (r.workload, r.params["nnz_canonical"])
        for method in methods:
            line += (
                " %12.6f" % r.times[method] if method in r.times else " %12s" % "-"
            )
        best_c = min(
            (t for m, t in r.times.items() if m != "naive" and t), default=None
        )
        if best_c:
            line += " %8.1fx" % (r.times["naive"] / best_c)
        lines.append(line)
    return "\n".join(lines)
