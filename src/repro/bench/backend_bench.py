"""Microbenchmark: Python vs C execution backend on the figure kernels.

The two backends run the *same* generated loop structure over the same
prepared fibertree arrays; the only difference is interpreted Python vs a
``cc -O3`` shared object.  Timings follow the paper's methodology (only
the kernel's timed region; preparation excluded), and results reuse the
:class:`~repro.bench.harness.BenchResult` JSON shape the other benchmark
drivers emit — ``times["naive"]`` holds the Python-backend time so the
standard ``speedups`` accounting reports the C speedup directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.bench.harness import BenchResult, time_compiled_kernel
from repro.core.config import DEFAULT
from repro.data.random_tensors import erdos_renyi_symmetric, random_dense
from repro.frontend.parser import parse_assignment
from repro.kernels.library import get_kernel

#: kernels compared by default: two sparse matrix kernels and one higher
#: order tensor kernel, matching the figure suite's spread.
BACKEND_BENCH_KERNELS = ("ssymv", "ssyrk", "mttkrp3d")


def _inputs_for(name: str, n: int, nnz_per_row: float, seed: int = 11) -> Dict:
    spec = get_kernel(name)
    if name == "mttkrp3d":
        side = max(24, int(round(n ** (2.0 / 3.0))))
        density = min(1.0, 6.0 * nnz_per_row / (side * side))
        A = erdos_renyi_symmetric(side, 3, density, seed=seed)
        return {"A": A, "B": random_dense((side, 16), seed=seed + 1)}
    density = min(1.0, nnz_per_row / n)
    A = erdos_renyi_symmetric(n, 2, density, seed=seed)
    args: Dict = {"A": A}
    for acc in parse_assignment(spec.einsum).accesses:
        if acc.tensor != "A" and acc.tensor not in args:
            args[acc.tensor] = random_dense((n,) * len(acc.indices), seed=seed + 2)
    return args


def bench_backends(
    names: Sequence[str] = BACKEND_BENCH_KERNELS,
    n: int = 1500,
    nnz_per_row: float = 12.0,
    repeats: int = 5,
) -> List[BenchResult]:
    """Time each kernel under both backends on identical inputs."""
    results: List[BenchResult] = []
    for name in names:
        spec = get_kernel(name)
        inputs = _inputs_for(name, n, nnz_per_row)
        times: Dict[str, float] = {}
        outputs = {}
        for backend in ("python", "c"):
            kernel = spec.compile(options=DEFAULT.but(backend=backend))
            times["naive" if backend == "python" else "c"] = time_compiled_kernel(
                kernel, repeats=repeats, **inputs
            )
            prepared, shape = kernel.prepare(**inputs)
            outputs[backend] = kernel.finalize(kernel.run(prepared, shape))
        if not np.allclose(outputs["python"], outputs["c"], equal_nan=True):
            raise AssertionError(
                "backend outputs diverge on %s — refusing to report timings"
                % name
            )
        nnz = inputs["A"].nnz
        results.append(
            BenchResult(
                figure="backends",
                workload=name,
                params={"n": n, "nnz_canonical": int(nnz)},
                times=times,
                expected_speedup=10.0,
            )
        )
    return results


def format_backend_report(results: Sequence[BenchResult]) -> str:
    lines = [
        "%-10s %8s %12s %12s %9s"
        % ("kernel", "nnz", "python(s)", "c(s)", "speedup")
    ]
    for r in results:
        lines.append(
            "%-10s %8d %12.6f %12.6f %8.1fx"
            % (
                r.workload,
                r.params["nnz_canonical"],
                r.times["naive"],
                r.times["c"],
                r.speedups["c"],
            )
        )
    return "\n".join(lines)
