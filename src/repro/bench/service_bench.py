"""Microbenchmarks for the kernel service: cache latency and batch
throughput.

Two questions, each with a number the roadmap cares about:

* **cache**: what does a ``KernelService.get_or_compile`` hit cost next to
  a cold ``compile_kernel``?  (Acceptance bar: a memory hit is at least
  50x faster on a library kernel; in practice it is thousands of times
  faster — a dict probe vs the full symmetrize/optimize/lower pipeline.)
  Disk rehydration is measured too: it re-``exec``'s the stored source but
  skips the pipeline, landing between the two.

* **batch**: given N requests over a handful of distinct input matrices,
  how does ``service.batch`` (compile once per spec, prepare once per
  input set, optionally thread the runs) compare against the one-off loop
  a naive client would write (compile + prepare + run per request)?

Run via ``python benchmarks/bench_cache.py`` or the pytest entry points in
that file.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import time_callable
from repro.service import BatchRequest, KernelService
from repro.service.keys import canonicalize


@dataclass
class CacheBenchResult:
    """Per-kernel compile-path latencies (seconds)."""

    kernel: str
    cold_compile_s: float
    memory_hit_s: float
    disk_rehydrate_s: Optional[float]

    @property
    def hit_speedup(self) -> float:
        return self.cold_compile_s / self.memory_hit_s

    @property
    def rehydrate_speedup(self) -> Optional[float]:
        if self.disk_rehydrate_s is None:
            return None
        return self.cold_compile_s / self.disk_rehydrate_s


@dataclass
class BatchBenchResult:
    """Throughput of N requests, one-off loop vs batched (seconds)."""

    kernel: str
    requests: int
    distinct_inputs: int
    sequential_s: float
    batch_s: float
    batch_threaded_s: float
    workers: int

    @property
    def batch_speedup(self) -> float:
        return self.sequential_s / self.batch_s

    @property
    def threaded_speedup(self) -> float:
        return self.sequential_s / self.batch_threaded_s


def bench_cache(
    names: Sequence[str] = ("ssymv", "syprd", "ssyrk"),
    store_dir: Optional[str] = None,
    repeats: int = 5,
) -> List[CacheBenchResult]:
    """Cold-compile vs memory-hit (vs disk-rehydrate) per library kernel."""
    from repro.kernels.library import get_kernel

    results: List[CacheBenchResult] = []
    for name in names:
        spec = get_kernel(name)
        request = canonicalize(
            spec.einsum,
            symmetric=dict(spec.symmetric),
            loop_order=spec.loop_order,
            formats=dict(spec.formats),
        )
        cold = time_callable(request.compile, repeats=repeats, min_time=0.0)

        service = KernelService(capacity=32, store=store_dir)
        service.get_or_compile_request(request)  # populate
        hit = time_callable(
            lambda: service.get_or_compile_request(request),
            repeats=max(repeats, 20),
            min_time=0.0,
        )

        rehydrate = None
        if store_dir is not None:
            store = service.store

            def rehydrated():
                kernel = store.get(request.key)
                assert kernel is not None
                return kernel

            rehydrate = time_callable(
                rehydrated, repeats=repeats, min_time=0.0
            )
        results.append(
            CacheBenchResult(
                kernel=name,
                cold_compile_s=cold,
                memory_hit_s=hit,
                disk_rehydrate_s=rehydrate,
            )
        )
    return results


def bench_batch(
    name: str = "ssymv",
    requests: int = 64,
    distinct_inputs: int = 4,
    n: int = 400,
    density: float = 0.05,
    workers: int = 4,
    seed: int = 7,
) -> BatchBenchResult:
    """One-off loop vs batched execution of *requests* library-kernel calls."""
    import numpy as np

    from repro.kernels.library import get_kernel

    spec = get_kernel(name)
    rng = np.random.default_rng(seed)
    inputs: List[Dict[str, np.ndarray]] = []
    for _ in range(distinct_inputs):
        A = rng.random((n, n)) * (rng.random((n, n)) < density)
        A = np.triu(A) + np.triu(A, 1).T
        tensors: Dict[str, np.ndarray] = {"A": A}
        for vec_name in ("x", "d"):
            if "%s[" % vec_name in spec.einsum:
                tensors[vec_name] = rng.random(n)
        if "B[" in spec.einsum:
            tensors["B"] = rng.random((n, 16))
        inputs.append(tensors)

    batch = [
        BatchRequest(
            spec.einsum,
            inputs[i % distinct_inputs],
            symmetric=dict(spec.symmetric),
            loop_order=spec.loop_order,
            formats=dict(spec.formats),
            tag=i,
        )
        for i in range(requests)
    ]

    def sequential() -> None:
        # what a service-less client does: full compile + bind per request
        for item in batch:
            kernel = item.canonical().compile()
            kernel(**item.tensors)

    def batched(n_workers: Optional[int]) -> None:
        service = KernelService(capacity=8)
        service.batch(batch, workers=n_workers)

    start = time.perf_counter()
    sequential()
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    batched(None)
    batch_s = time.perf_counter() - start

    start = time.perf_counter()
    batched(workers)
    batch_threaded_s = time.perf_counter() - start

    return BatchBenchResult(
        kernel=name,
        requests=requests,
        distinct_inputs=distinct_inputs,
        sequential_s=sequential_s,
        batch_s=batch_s,
        batch_threaded_s=batch_threaded_s,
        workers=workers,
    )


def format_cache_report(results: Sequence[CacheBenchResult]) -> str:
    lines = [
        "%-10s %14s %14s %12s %16s"
        % ("kernel", "cold compile", "memory hit", "hit speedup", "disk rehydrate")
    ]
    for r in results:
        rehydrate = (
            "%11.1f us" % (r.disk_rehydrate_s * 1e6)
            if r.disk_rehydrate_s is not None
            else "-"
        )
        lines.append(
            "%-10s %11.2f ms %11.1f us %11.0fx %16s"
            % (
                r.kernel,
                r.cold_compile_s * 1e3,
                r.memory_hit_s * 1e6,
                r.hit_speedup,
                rehydrate,
            )
        )
    return "\n".join(lines)


def format_batch_report(result: BatchBenchResult) -> str:
    return "\n".join(
        [
            "%s: %d requests over %d distinct inputs"
            % (result.kernel, result.requests, result.distinct_inputs),
            "  one-off loop      %8.1f ms  (%.0f req/s)"
            % (
                result.sequential_s * 1e3,
                result.requests / result.sequential_s,
            ),
            "  batched           %8.1f ms  (%.0f req/s, %.1fx)"
            % (
                result.batch_s * 1e3,
                result.requests / result.batch_s,
                result.batch_speedup,
            ),
            "  batched, %d threads %6.1f ms  (%.0f req/s, %.1fx)"
            % (
                result.workers,
                result.batch_threaded_s * 1e3,
                result.requests / result.batch_threaded_s,
                result.threaded_speedup,
            ),
        ]
    )
