"""Benchmark harness: timing, speedup tables, per-figure experiment drivers.

:mod:`repro.bench.harness` times prepared kernels the way the paper does —
minimum over repeated runs, data rearrangement excluded.
:mod:`repro.bench.figures` regenerates every figure of Section 5.2 as a
table of speedups normalized to naive (the red line), with the paper's
expected speedup (the purple line) alongside.
"""

from repro.bench.harness import (
    BenchResult,
    format_table,
    time_callable,
    time_compiled_kernel,
)
from repro.bench.figures import (
    run_fig06_ssymv,
    run_fig07_bellmanford,
    run_fig08_syprd,
    run_fig09_ssyrk,
    run_fig10_ttm,
    run_fig11_mttkrp,
    run_table2,
)

__all__ = [
    "BenchResult",
    "format_table",
    "run_fig06_ssymv",
    "run_fig07_bellmanford",
    "run_fig08_syprd",
    "run_fig09_ssyrk",
    "run_fig10_ttm",
    "run_fig11_mttkrp",
    "run_table2",
    "time_callable",
    "time_compiled_kernel",
]
