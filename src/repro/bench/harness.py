"""Timing and reporting utilities.

The paper's methodology (Section 5.2): timings are the minimum over many
runs; the time to rearrange data before or after each kernel — packing,
transposition, replicating the output — is not included.  We mirror that:
:func:`time_compiled_kernel` times only ``kernel.run`` on pre-prepared
arguments.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.compiler import CompiledKernel


def time_callable(
    fn: Callable[[], object],
    repeats: int = 5,
    min_time: float = 0.05,
    max_time: float = 2.0,
) -> float:
    """Minimum wall-clock time of ``fn()`` over adaptive repeats (seconds)."""
    best = float("inf")
    total = 0.0
    runs = 0
    while runs < repeats or (total < min_time and total < max_time):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed
        runs += 1
        if total >= max_time:
            break
    return best


def time_compiled_kernel(
    kernel: CompiledKernel,
    repeats: int = 5,
    **tensors,
) -> float:
    """Time the kernel's timed region only (preparation excluded)."""
    prepared, shape = kernel.prepare(**tensors)
    kernel.run(prepared, shape)  # warm up (compile caches, page in)
    return time_callable(lambda: kernel.run(prepared, shape), repeats=repeats)


@dataclass
class BenchResult:
    """One row of a figure: a workload and its per-method timings."""

    figure: str
    workload: str
    params: Dict[str, object]
    times: Dict[str, float]
    expected_speedup: float

    @property
    def speedups(self) -> Dict[str, float]:
        """Speedup of every method relative to naive (the paper's red line)."""
        naive = self.times.get("naive")
        if not naive:
            return {}
        return {
            name: naive / t for name, t in self.times.items() if t and name != "naive"
        }

    def to_json(self) -> Dict[str, object]:
        d = asdict(self)
        d["speedups"] = self.speedups
        return d


def format_table(results: Sequence[BenchResult], title: str = "") -> str:
    """Render results as the rows the paper's figures plot."""
    if not results:
        return "(no results)"
    methods = sorted({m for r in results for m in r.times} - {"naive"})
    header = ["workload", "naive(s)"] + [
        "%s x" % m for m in methods
    ] + ["expected x"]
    rows = [header]
    for r in results:
        row = [r.workload, "%.4f" % r.times.get("naive", float("nan"))]
        sp = r.speedups
        for m in methods:
            row.append("%.2f" % sp[m] if m in sp else "-")
        row.append("%.1f" % r.expected_speedup)
        rows.append(row)
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for n, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if n == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    import math

    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def summarize_speedups(results: Sequence[BenchResult], method: str = "systec") -> float:
    """Geometric-mean speedup of a method over naive across results."""
    return geometric_mean([r.speedups[method] for r in results if method in r.speedups])


def dump_json(results: Sequence[BenchResult], path: str) -> None:
    import os

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        json.dump([r.to_json() for r in results], f, indent=2)
