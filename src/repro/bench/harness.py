"""Timing, reporting, and the persistent performance trajectory.

The paper's methodology (Section 5.2): timings are the minimum over many
runs; the time to rearrange data before or after each kernel — packing,
transposition, replicating the output — is not included.  We mirror that:
:func:`time_compiled_kernel` times only ``kernel.run`` on pre-prepared
arguments.

Beyond one-off reports, :func:`record` maintains a *perf trajectory*
file (``BENCH_backends.json`` at the repo root by convention): a merged,
diffable map of ``kernel x backend x threads -> {min, median, speedup}``
plus a machine fingerprint, so performance claims made by one change are
comparable against the history the previous changes checked in.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.compiler import CompiledKernel


@dataclass(frozen=True)
class TimingStats:
    """Adaptive-repeat timing summary for one measured callable."""

    best: float  # minimum (the paper's reported statistic)
    median: float
    runs: int


def time_callable_stats(
    fn: Callable[[], object],
    repeats: int = 5,
    min_time: float = 0.05,
    max_time: float = 2.0,
) -> TimingStats:
    """Best/median wall-clock time of ``fn()`` over adaptive repeats."""
    samples: List[float] = []
    total = 0.0
    while len(samples) < repeats or (total < min_time and total < max_time):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        samples.append(elapsed)
        total += elapsed
        if total >= max_time:
            break
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = 0.5 * (ordered[mid - 1] + ordered[mid])
    return TimingStats(best=ordered[0], median=median, runs=len(ordered))


def time_callable(
    fn: Callable[[], object],
    repeats: int = 5,
    min_time: float = 0.05,
    max_time: float = 2.0,
) -> float:
    """Minimum wall-clock time of ``fn()`` over adaptive repeats (seconds)."""
    return time_callable_stats(fn, repeats, min_time, max_time).best


def time_compiled_kernel_stats(
    kernel: CompiledKernel,
    repeats: int = 5,
    threads=None,
    use_plan: bool = False,
    **tensors,
) -> TimingStats:
    """Best/median of the kernel's timed region only (preparation excluded).

    ``threads`` overrides the kernel's runtime thread count for the
    measured runs (int or ``"auto"``).  ``use_plan`` times the
    repeat-execution fast path instead — one
    :meth:`~repro.core.compiler.CompiledKernel.execution_plan` built
    outside the timed region, each measured call going through the plan's
    pre-marshaled arguments and reused output buffer.
    """
    if use_plan:
        plan = kernel.execution_plan(threads=threads, **tensors)
        plan()  # warm up
        return time_callable_stats(plan, repeats=repeats)
    prepared, shape = kernel.prepare(**tensors)
    kernel.run(prepared, shape, threads=threads)  # warm up
    return time_callable_stats(
        lambda: kernel.run(prepared, shape, threads=threads), repeats=repeats
    )


def time_compiled_kernel(
    kernel: CompiledKernel,
    repeats: int = 5,
    threads=None,
    use_plan: bool = False,
    **tensors,
) -> float:
    """Time the kernel's timed region only (preparation excluded)."""
    return time_compiled_kernel_stats(
        kernel, repeats=repeats, threads=threads, use_plan=use_plan, **tensors
    ).best


@dataclass
class BenchResult:
    """One row of a figure: a workload and its per-method timings."""

    figure: str
    workload: str
    params: Dict[str, object]
    times: Dict[str, float]
    expected_speedup: float

    @property
    def speedups(self) -> Dict[str, float]:
        """Speedup of every method relative to naive (the paper's red line)."""
        naive = self.times.get("naive")
        if not naive:
            return {}
        return {
            name: naive / t for name, t in self.times.items() if t and name != "naive"
        }

    def to_json(self) -> Dict[str, object]:
        d = asdict(self)
        d["speedups"] = self.speedups
        return d


def format_table(results: Sequence[BenchResult], title: str = "") -> str:
    """Render results as the rows the paper's figures plot."""
    if not results:
        return "(no results)"
    methods = sorted({m for r in results for m in r.times} - {"naive"})
    header = ["workload", "naive(s)"] + [
        "%s x" % m for m in methods
    ] + ["expected x"]
    rows = [header]
    for r in results:
        row = [r.workload, "%.4f" % r.times.get("naive", float("nan"))]
        sp = r.speedups
        for m in methods:
            row.append("%.2f" % sp[m] if m in sp else "-")
        row.append("%.1f" % r.expected_speedup)
        rows.append(row)
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for n, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if n == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    import math

    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def summarize_speedups(results: Sequence[BenchResult], method: str = "systec") -> float:
    """Geometric-mean speedup of a method over naive across results."""
    return geometric_mean([r.speedups[method] for r in results if method in r.speedups])


def dump_json(results: Sequence[BenchResult], path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        json.dump([r.to_json() for r in results], f, indent=2)


# ----------------------------------------------------------------------
# the persistent perf trajectory
# ----------------------------------------------------------------------
#: bump when the trajectory file schema changes shape.
TRAJECTORY_VERSION = 1

#: conventional trajectory filename (written at the repo root).
TRAJECTORY_FILENAME = "BENCH_backends.json"


_fingerprint_cache: Optional[Dict[str, object]] = None


def machine_fingerprint(refresh: bool = False) -> Dict[str, object]:
    """Enough machine identity to judge whether two entries are comparable.

    The fingerprint is computed once per process and cached (the toolchain
    probe behind it is subprocess-backed, and ``record`` used to pay it on
    every merge); ``refresh=True`` recomputes — for tests that change the
    probe's environment mid-process.  Callers get a copy they may mutate.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None or refresh:
        import platform

        from repro.codegen.backends import ctoolchain
        from repro.core.config import cpu_count

        tc = ctoolchain.probe()
        _fingerprint_cache = {
            "platform": platform.platform(),
            "system": platform.system(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cpus": cpu_count(),
            "toolchain": tc.describe() if tc else None,
            "openmp": bool(tc and tc.openmp),
        }
    return dict(_fingerprint_cache)


def fingerprint_class(fp: Optional[Mapping[str, object]] = None) -> str:
    """Coarsen a fingerprint onto its *machine class*: OS + ISA + cpus.

    Two machines in one class (``"linux-x86_64-c4"``) are close enough
    that tuned variant selections transfer; the remaining fingerprint
    fields (exact kernel build, python patch level, toolchain string)
    distinguish entries for humans but should not fragment tuning
    lookups.  The tuner's nearest-match fallback relaxes the cpu-count
    component, so the class string keeps its three parts parseable.
    """
    if fp is None:
        fp = machine_fingerprint()
    system = str(fp.get("system") or "").strip().lower()
    if not system:
        # entries recorded before the "system" field: the platform string
        # leads with the OS name ("Linux-6.8..."), recover it from there
        system = str(fp.get("platform", "unknown")).split("-")[0].lower()
    machine = str(fp.get("machine") or "unknown").lower() or "unknown"
    try:
        cpus = max(1, int(fp.get("cpus", 1)))
    except (TypeError, ValueError):
        cpus = 1
    return "%s-%s-c%d" % (system or "unknown", machine, cpus)


def load_trajectory(path: str) -> Optional[Dict[str, object]]:
    """The trajectory document at *path*, or None when absent/unreadable."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("version") != TRAJECTORY_VERSION:
        return None
    return doc


def _stamp_dtype(key: str, entry: Dict[str, object]) -> Dict[str, object]:
    """Ensure an entry carries its element dtype.

    Every measurement is made in a concrete dtype; entries that predate
    the dtype axis (or sweeps that forgot to tag it) are stamped from the
    key convention — a ``/f32`` suffix means float32, everything else is
    the float64 default — so consumers never have to guess.
    """
    if "dtype" not in entry:
        entry["dtype"] = "float32" if key.endswith("/f32") else "float64"
    return entry


def _stamp_obs(
    entry: Dict[str, object], state: Optional[str] = None
) -> Dict[str, object]:
    """Ensure an entry records the observability state it was measured in.

    Instrumented runs are not comparable to clean ones: a trajectory entry
    measured under ``REPRO_TRACE=1`` carries per-call span recording that
    an ``obs: off`` entry does not.  New measurements are stamped with the
    live :func:`repro.obs.state`; entries that predate the axis default to
    ``"off"`` (nothing before it could have been instrumented).
    """
    if "obs" not in entry:
        entry["obs"] = "off" if state is None else state
    return entry


def record(
    path: str,
    entries: Mapping[str, Mapping[str, object]],
    note: Optional[str] = None,
) -> Dict[str, object]:
    """Merge *entries* into the trajectory file at *path* and rewrite it.

    ``entries`` maps stable keys (``"<kernel>/<backend>@t<threads>"`` by
    convention — see :func:`trajectory_entries`) to measurement dicts.
    Existing entries under other keys survive, re-measured keys are
    overwritten, and the machine fingerprint + timestamp are refreshed —
    so consecutive benchmark runs produce a meaningful diff, not a
    rewrite.  Every entry (new or surviving) is guaranteed ``dtype`` and
    ``obs`` stamps on the way out (new measurements record the live
    observability state; pre-axis survivors default to ``"off"``).
    Returns the merged document.
    """
    from repro.obs import state as obs_state

    doc = load_trajectory(path) or {
        "version": TRAJECTORY_VERSION,
        "entries": {},
    }
    merged = {
        key: _stamp_obs(_stamp_dtype(key, dict(value)))
        for key, value in doc.get("entries", {}).items()
    }
    live = obs_state()
    for key, value in entries.items():
        merged[key] = _stamp_obs(_stamp_dtype(key, dict(value)), live)
    doc["version"] = TRAJECTORY_VERSION
    doc["updated"] = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
    doc["machine"] = machine_fingerprint()
    if note is not None:
        doc["note"] = note
    doc["entries"] = {key: merged[key] for key in sorted(merged)}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    os.replace(tmp, path)
    return doc


def trajectory_entries(
    results: Sequence[BenchResult],
    threads: int = 1,
    dtype: str = "float64",
) -> Dict[str, Dict[str, object]]:
    """Flatten figure-driver results into trajectory entries.

    Every ``(workload, method)`` timing becomes one entry keyed
    ``"<figure>/<workload>/<method>@t<threads>"`` carrying the measured
    seconds, the workload parameters, and the speedup over the row's
    naive baseline where one was measured.  Non-default dtypes append a
    ``/f32``-style suffix so precision sweeps never overwrite the
    float64 history.
    """
    entries: Dict[str, Dict[str, object]] = {}
    suffix = "" if dtype == "float64" else "/f32"
    for result in results:
        speedups = result.speedups
        for method, seconds in result.times.items():
            key = "%s/%s/%s@t%d%s" % (
                result.figure, result.workload, method, threads, suffix
            )
            entry: Dict[str, object] = {
                "seconds": seconds,
                "threads": threads,
                "dtype": dtype,
                "params": dict(result.params),
            }
            if method in speedups:
                entry["speedup_vs_naive"] = speedups[method]
            entries[key] = entry
    return entries
