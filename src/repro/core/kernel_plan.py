"""Intermediate representation of a (partially) symmetrized kernel.

A :class:`KernelPlan` is the structure the optimization passes rewrite:

* one or more :class:`LoopNest`\\ s (diagonal splitting produces several),
  each iterating a *filtered view* of the symmetric tensor ("all" canonical
  coordinates, only the strict triangle, or only the diagonals);
* each nest holds :class:`Block`\\ s — exclusive conditional regions keyed by
  one or more equivalence patterns — containing the assignments (with
  multiplicities) to perform there;
* kernel-wide facts: loop order, ordered permutable indices, detected output
  symmetry, and the replication spec produced by the output-canonical pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.frontend.einsum import Assignment
from repro.symmetry.groups import EquivalencePattern
from repro.symmetry.partitions import Partition

#: loop-nest filters over the symmetric tensor's canonical coordinates.
FILTER_ALL = "all"
FILTER_STRICT = "strict"
FILTER_DIAGONAL = "diagonal"


@dataclass(frozen=True)
class Block:
    """An exclusive conditional region of the symmetrized kernel.

    ``patterns`` is the disjunction of equivalence patterns under which the
    block runs (consolidation merges blocks, hence a tuple).  ``factor_table``
    is set by the simplicial-lookup-table pass: when present, the assignments
    run under every pattern in ``patterns`` and their counts are scaled at
    runtime by a factor looked up from which equalities hold.
    """

    patterns: Tuple[EquivalencePattern, ...]
    assignments: Tuple[Assignment, ...]
    #: lookup table ``((bitmask, factor), ...)`` set by the simplicial
    #: lookup-table pass; bit ``t`` of bitmask <=> ``p[t] == p[t+1]``.
    factor_table: Optional[Tuple[Tuple[int, str], ...]] = None

    @property
    def pattern(self) -> EquivalencePattern:
        """The representative (first) pattern."""
        return self.patterns[0]

    @property
    def is_strict(self) -> bool:
        return all(p.is_strict for p in self.patterns)

    @property
    def has_equality(self) -> bool:
        return any(p.has_equality for p in self.patterns)

    def with_assignments(self, assignments: Sequence[Assignment]) -> "Block":
        return replace(self, assignments=tuple(assignments))

    def describe(self) -> str:
        cond = " || ".join(str(p) for p in self.patterns)
        lines = ["if %s:" % cond]
        for a in self.assignments:
            lines.append("    " + str(a))
        return "\n".join(lines)


@dataclass(frozen=True)
class LoopNest:
    """One loop nest over a filtered view of the symmetric input tensor."""

    blocks: Tuple[Block, ...]
    tensor_filter: str = FILTER_ALL

    def with_blocks(self, blocks: Sequence[Block]) -> "LoopNest":
        return replace(self, blocks=tuple(blocks))


@dataclass(frozen=True)
class ReplicationSpec:
    """Post-processing: copy the canonical triangle of the output tensor to
    the non-canonical triangles across these groups of output modes."""

    tensor: str
    mode_parts: Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class KernelPlan:
    """A symmetrized kernel en route through the optimization pipeline."""

    original: Assignment
    loop_order: Tuple[str, ...]
    permutable: Tuple[str, ...]
    symmetric_modes: Mapping[str, Tuple[Tuple[int, ...], ...]]
    nests: Tuple[LoopNest, ...]
    rank: Mapping[str, int]
    replication: Optional[ReplicationSpec] = None
    history: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @property
    def symmetric_tensors(self) -> Tuple[str, ...]:
        return tuple(sorted(self.symmetric_modes))

    @property
    def blocks(self) -> Tuple[Block, ...]:
        return tuple(b for nest in self.nests for b in nest.blocks)

    def total_assignments(self) -> int:
        return sum(len(b.assignments) for b in self.blocks)

    def with_nests(self, nests: Sequence[LoopNest], note: str = "") -> "KernelPlan":
        history = self.history + ((note,) if note else ())
        return replace(self, nests=tuple(nests), history=history)

    def map_blocks(self, fn, note: str = "") -> "KernelPlan":
        """Apply ``fn(block) -> block | list[block] | None`` in every nest."""
        nests = []
        for nest in self.nests:
            new_blocks: List[Block] = []
            for block in nest.blocks:
                result = fn(block)
                if result is None:
                    continue
                if isinstance(result, Block):
                    new_blocks.append(result)
                else:
                    new_blocks.extend(result)
            nests.append(nest.with_blocks(new_blocks))
        return self.with_nests(nests, note)

    def describe(self) -> str:
        """Human-readable rendering used by tests, docs and `.explain()`."""
        lines = ["loop order: (%s)" % ", ".join(self.loop_order)]
        lines.append("canonical chain: %s" % " <= ".join(self.permutable))
        for n, nest in enumerate(self.nests):
            lines.append("nest %d [%s]:" % (n, nest.tensor_filter))
            for block in nest.blocks:
                for line in block.describe().splitlines():
                    lines.append("  " + line)
        if self.replication is not None:
            lines.append(
                "replicate %s across mode groups %s"
                % (self.replication.tensor, list(self.replication.mode_parts))
            )
        return "\n".join(lines)
