"""Cost model: the savings a plan achieves, derived symbolically.

Section 5.2 states, per kernel, what fraction of the symmetric tensor the
optimized kernel *reads* and what fraction of the naive *operations* it
performs (e.g. MTTKRP-5D reads ``1/5! = 1/120`` of A and performs
``1/4! = 1/24`` of the compute).  This module computes both fractions from
the kernel plan itself, in the asymptotic regime where off-diagonal
coordinates dominate — so tests can assert the paper's numbers and the
benchmark reports can print expected next to measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.core.kernel_plan import KernelPlan
from repro.symmetry.detect import detect_output_symmetry


@dataclass(frozen=True)
class PlanCost:
    """Asymptotic per-entry costs relative to the naive kernel.

    All fractions compare the optimized kernel to the naive one on the same
    (full) input, counting only the dominant off-diagonal work:

    * ``read_fraction`` — how much of the symmetric input is iterated;
    * ``op_fraction`` — how many combine-reduce operations are performed
      (output replication not counted, matching the paper);
    * ``write_fraction`` — how many output updates are performed.
    """

    read_fraction: Fraction
    op_fraction: Fraction
    write_fraction: Fraction

    @property
    def expected_speedup_bound(self) -> float:
        """Upper bound on speedup: the reciprocal of the smaller fraction
        (compute-bound kernels are limited by ops, bandwidth-bound kernels
        by reads — the paper's observed speedups sit between 1/ops and
        this ceiling)."""
        return float(1 / min(self.op_fraction, self.read_fraction))


def analyze_plan(plan: KernelPlan) -> PlanCost:
    """Derive the asymptotic savings of an optimized plan.

    The strict (all ``<``) equivalence pattern dominates asymptotically, so
    the fractions follow from the strict block alone:

    * the canonical triangle holds ``1/n!`` of the full tensor's strict
      entries, ``n`` the number of permutable indices bound by the
      symmetric input;
    * per canonical entry the naive kernel would perform ``n!`` updates
      (one per transposition); the optimized block performs
      ``sum(count)`` updates after distributive grouping and output
      restriction.
    """
    n = len(plan.permutable)
    if n == 0:
        one = Fraction(1)
        return PlanCost(one, one, one)
    full = math.factorial(n)

    # reads: does a symmetric sparse input bind the whole chain?
    binds_chain = False
    for acc in plan.original.accesses:
        parts = plan.symmetric_modes.get(acc.tensor)
        if not parts:
            continue
        bound = {acc.indices[m] for part in parts for m in part if len(part) >= 2}
        if set(plan.permutable) <= bound:
            binds_chain = True
            break
    read_fraction = Fraction(1, full) if binds_chain else Fraction(1)

    strict_blocks = [
        b for b in plan.blocks if any(p.is_strict for p in b.patterns)
    ]
    if not strict_blocks:
        return PlanCost(read_fraction, Fraction(1), Fraction(1))
    strict = strict_blocks[0]

    # updates actually performed per canonical strict entry
    performed = sum(a.count for a in strict.assignments)
    # each emitted assignment is one combine-reduce op regardless of count
    # (distributive grouping folds the multiplicity into a scale)
    emitted = len(strict.assignments)

    op_fraction = Fraction(emitted, full)
    write_fraction = Fraction(emitted, full)
    if plan.replication is not None:
        # replicated outputs get their mirrored writes for free (untimed
        # post-pass) — already reflected in the emitted count.
        pass
    return PlanCost(read_fraction, op_fraction, write_fraction)


def describe_cost(plan: KernelPlan) -> str:
    cost = analyze_plan(plan)
    return (
        "reads %s of symmetric input, performs %s of the operations, "
        "writes %s of the updates (expected speedup bound %.3gx)"
        % (
            cost.read_fraction,
            cost.op_fraction,
            cost.write_fraction,
            cost.expected_speedup_bound,
        )
    )
