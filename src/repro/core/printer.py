"""Render kernel plans in the paper's Finch-style surface syntax.

The listings in the paper (Figure 2, Listings 1-7) present kernels as::

    for l=_, k=_, i=_, j=_
        if i <= k && k <= l
            if i != k && k != l
                C[i, j] += A[i, k, l] * B[k, j] * B[l, j]
                ...

:func:`finch_syntax` prints a :class:`KernelPlan` in exactly that shape, so
generated kernels can be compared side by side with the paper (and so the
golden tests can assert listing structure textually).
"""

from __future__ import annotations

from typing import List

from repro.core.kernel_plan import (
    FILTER_DIAGONAL,
    FILTER_STRICT,
    KernelPlan,
    LoopNest,
)
from repro.frontend.einsum import Assignment, Literal


def _format_assignment(a: Assignment) -> str:
    parts = []
    if a.count != 1:
        parts.append(str(a.count))
    for op in a.operands:
        parts.append(str(op) if not isinstance(op, Literal) else str(op))
    rhs = (" %s " % a.combine_op).join(parts)
    update = {"+": "+=", "min": "<<min>>=", "max": "<<max>>="}[a.reduce_op]
    return "%s %s %s" % (a.lhs, update, rhs)


def _chain_condition(plan: KernelPlan) -> str:
    return " && ".join(
        "%s <= %s" % (a, b)
        for a, b in zip(plan.permutable, plan.permutable[1:])
    )


def _block_condition(block) -> str:
    terms = []
    for pattern in block.patterns:
        comps = [
            "%s %s %s" % (a, "==" if rel == "==" else "<", b)
            for (a, rel, b) in pattern.conditions()
        ]
        terms.append(" && ".join(comps) if comps else "true")
    if len(terms) == 1:
        return terms[0]
    return " || ".join("(%s)" % t for t in terms)


def finch_syntax(plan: KernelPlan) -> str:
    """The plan as Finch-style pseudocode (paper listing shape)."""
    lines: List[str] = []
    loop = "for " + ", ".join("%s=_" % i for i in plan.loop_order)
    for n, nest in enumerate(plan.nests):
        suffix = ""
        if nest.tensor_filter == FILTER_STRICT:
            suffix = "   # strict canonical triangle"
        elif nest.tensor_filter == FILTER_DIAGONAL:
            suffix = "   # diagonals"
        lines.append(loop + suffix)
        indent = "    "
        if len(plan.permutable) >= 2:
            lines.append(indent + "if " + _chain_condition(plan))
            indent += "    "
        for block in nest.blocks:
            body_indent = indent
            if block.factor_table is not None:
                lut = ", ".join(
                    "%s -> %s" % (bin(mask), factor)
                    for mask, factor in block.factor_table
                )
                lines.append(indent + "factor = lookup[%s]" % lut)
                for a in block.assignments:
                    lines.append(
                        body_indent + _format_assignment(a.with_count(1)).replace(
                            "+= ", "+= factor * "
                        )
                    )
                continue
            cond = _block_condition(block)
            if cond != "true" and len(plan.permutable) >= 2:
                lines.append(indent + "if " + cond)
                body_indent = indent + "    "
            for a in block.assignments:
                lines.append(body_indent + _format_assignment(a))
    if plan.replication is not None:
        lines.append(
            "# then replicate %s across output mode groups %s"
            % (plan.replication.tensor, list(plan.replication.mode_parts))
        )
    return "\n".join(lines)
