"""Optimization passes (Section 4.2), one module per transform.

Plan-level passes rewrite :class:`~repro.core.kernel_plan.KernelPlan`:

=====================  ==================================================
paper section          module
=====================  ==================================================
4.2.2 output canonical :mod:`repro.core.passes.output_canonical`
4.2.4 consolidate      :mod:`repro.core.passes.consolidate`
4.2.5 lookup table     :mod:`repro.core.passes.lookup_table`
4.2.6 group branches   :mod:`repro.core.passes.group_branches`
4.2.7 distributive     :mod:`repro.core.passes.distributive`
4.2.9 diagonal split   :mod:`repro.core.passes.diagonal_split`
=====================  ==================================================

The remaining three transforms act on the loop-level IR during lowering
(:mod:`repro.codegen`): 4.2.1 common tensor access elimination, 4.2.3
concordization, and 4.2.8 the workspace transformation.
"""

from repro.core.passes.consolidate import consolidate_blocks
from repro.core.passes.diagonal_split import split_diagonals
from repro.core.passes.distributive import group_distributive
from repro.core.passes.group_branches import group_across_branches
from repro.core.passes.lookup_table import build_lookup_table
from repro.core.passes.output_canonical import restrict_output_to_canonical

__all__ = [
    "build_lookup_table",
    "consolidate_blocks",
    "group_across_branches",
    "group_distributive",
    "restrict_output_to_canonical",
    "split_diagonals",
]
