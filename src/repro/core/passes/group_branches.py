"""Group assignments across branches (4.2.6).

When the same assignment appears in several conditional blocks, restructure
so each distinct assignment is emitted once, guarded by the disjunction of
the conditions of the blocks that contained it.  The paper applies this only
when it shrinks the kernel — when the number of distinct assignments is
smaller than the number of (assignment, block) pairs — and so do we.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.kernel_plan import Block, KernelPlan
from repro.frontend.einsum import Assignment


def group_across_branches(plan: KernelPlan) -> KernelPlan:
    """Regroup blocks by assignment within each nest when profitable."""
    nests = []
    for nest in plan.nests:
        occurrences: Dict[Tuple, List] = {}
        order: List[Tuple] = []
        for block in nest.blocks:
            for a in block.assignments:
                key = a.key() + (a.count,)
                if key not in occurrences:
                    occurrences[key] = [a, []]
                    order.append(key)
                occurrences[key][1].extend(block.patterns)
        pair_count = sum(len(b.assignments) for b in nest.blocks)
        if len(order) >= pair_count:
            nests.append(nest)
            continue
        # one block per distinct guard set, preserving assignment order.
        regrouped: Dict[Tuple, Block] = {}
        guard_order: List[Tuple] = []
        for key in order:
            assignment, patterns = occurrences[key]
            guard = tuple(patterns)
            if guard not in regrouped:
                regrouped[guard] = Block(patterns=guard, assignments=())
                guard_order.append(guard)
            prev = regrouped[guard]
            regrouped[guard] = prev.with_assignments(
                prev.assignments + (assignment,)
            )
        nests.append(nest.with_blocks([regrouped[g] for g in guard_order]))
    return plan.with_nests(nests, note="group_branches")
