"""Distributive assignment grouping (4.2.7) — invisible output symmetry.

Equivalent updates within a block are merged and their multiplicity becomes
a ``count`` that the code generator emits as a ``count *`` scale factor.
For idempotent reductions (``min``/``max``) repeated identical updates are
simply dropped (``min(x, v, v) == min(x, v)``), which is how the compiler
"easily extends to general operators beyond + and *" (contribution 3).
"""

from __future__ import annotations

from repro.core.kernel_plan import Block, KernelPlan
from repro.frontend.einsum import REDUCE_IDEMPOTENT, merge_duplicates


def group_distributive(plan: KernelPlan) -> KernelPlan:
    """Merge duplicate assignments per block into counts / drop them for
    idempotent reductions."""

    def rewrite(block: Block) -> Block:
        merged = merge_duplicates(block.assignments)
        folded = tuple(
            a.with_count(1) if a.reduce_op in REDUCE_IDEMPOTENT else a
            for a in merged
        )
        return block.with_assignments(folded)

    return plan.map_blocks(rewrite, note="distributive")
