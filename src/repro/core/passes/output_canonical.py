"""Restrict computation of the output to its canonical triangle (4.2.2).

When the output tensor has *visible* symmetry, each conditional block holds
groups of assignments with identical right-hand sides whose left-hand sides
are transpositions of each other.  Keep only the canonical one per group
(indices within each symmetric group of output modes sorted by loop rank),
and record a :class:`ReplicationSpec` — a post-processing loop copies the
canonical triangle of the output to the other triangles (kept out of the
main loop, and out of the timings, exactly as the paper does).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.kernel_plan import Block, KernelPlan, ReplicationSpec
from repro.frontend.einsum import Assignment
from repro.symmetry.detect import detect_output_symmetry


def restrict_output_to_canonical(plan: KernelPlan) -> KernelPlan:
    """Apply the visible-output-symmetry restriction if one exists."""
    out_sym = detect_output_symmetry(plan.original, plan.symmetric_modes, plan.rank)
    if not out_sym.has_visible:
        return plan

    mode_parts = tuple(
        tuple(p) for p in out_sym.visible.parts if len(p) >= 2
    )
    out_indices = plan.original.lhs.indices

    def rewrite(block: Block):
        kept = _restrict_block(block, mode_parts, plan)
        return block.with_assignments(kept)

    plan = plan.map_blocks(rewrite, note="output_canonical")
    replication = ReplicationSpec(
        tensor=plan.original.lhs.tensor, mode_parts=mode_parts
    )
    return KernelPlan(
        original=plan.original,
        loop_order=plan.loop_order,
        permutable=plan.permutable,
        symmetric_modes=plan.symmetric_modes,
        nests=plan.nests,
        rank=plan.rank,
        replication=replication,
        history=plan.history,
    )


def _canonical_lhs(assignment: Assignment, mode_parts, rank) -> Assignment:
    lhs = assignment.lhs.sort_modes(mode_parts, rank)
    return Assignment(
        lhs=lhs,
        reduce_op=assignment.reduce_op,
        operands=assignment.operands,
        combine_op=assignment.combine_op,
        count=assignment.count,
    )


def _restrict_block(block: Block, mode_parts, plan: KernelPlan) -> Tuple[Assignment, ...]:
    """Keep one canonical-LHS representative per (rhs, canonical-lhs) group.

    Counts must agree across the group's members — each non-canonical write
    is the mirror of exactly one canonical write.  Assignments whose LHS is
    already canonical and unmatched pass through unchanged (diagonal writes
    are their own mirror).
    """
    pattern = block.pattern
    rep = pattern.representative()
    groups: Dict[Tuple, List[Assignment]] = {}
    order: List[Tuple] = []
    for a in block.assignments:
        canon = _canonical_lhs(a, mode_parts, plan.rank)
        # group by the update's value (rhs) and by which canonical location
        # it targets *under this block's equalities*.
        key = (
            canon.lhs.substitute(rep),
            tuple(
                op.substitute(rep) if hasattr(op, "substitute") else op
                for op in canon.operands
            ),
        )
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(a)

    kept: List[Assignment] = []
    for key in order:
        members = groups[key]
        canonical = [
            a
            for a in members
            if _canonical_lhs(a, mode_parts, plan.rank).lhs == a.lhs
        ]
        representative = canonical[0] if canonical else _canonical_lhs(members[0], mode_parts, plan.rank)
        # every member of the group contributes `count` mirrored writes; the
        # canonical triangle receives the canonical share (the counts of the
        # canonical members), the rest is reconstructed by replication.
        count = sum(a.count for a in canonical) or members[0].count
        kept.append(representative.with_count(count))
    return tuple(kept)
