"""Consolidate conditional blocks (4.2.4).

Blocks containing identical assignment lists are replaced by a single block
whose condition is the disjunction of the originals.  Exclusive patterns
keep the semantics unchanged; the generated kernel gets fewer specialized
branches.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.kernel_plan import Block, KernelPlan, LoopNest


def consolidate_blocks(plan: KernelPlan) -> KernelPlan:
    """Merge blocks with identical assignment tuples within each nest."""
    nests = []
    for nest in plan.nests:
        merged: Dict[Tuple, Block] = {}
        order: List[Tuple] = []
        for block in nest.blocks:
            key = tuple(a.key() + (a.count,) for a in block.assignments)
            if key in merged:
                prev = merged[key]
                merged[key] = Block(
                    patterns=prev.patterns + block.patterns,
                    assignments=prev.assignments,
                    factor_table=prev.factor_table,
                )
            else:
                merged[key] = block
                order.append(key)
        nests.append(nest.with_blocks([merged[k] for k in order]))
    return plan.with_nests(nests, note="consolidate")
