"""Diagonal splitting (4.2.9).

Non-diagonal coordinates form the bulk of a sparse tensor, so the strict
(all ``<``) block is moved into its own loop nest iterating only the strict
part of the canonical triangle, while the diagonal blocks iterate only the
(tiny) diagonal part.  The runtime splits the packed symmetric tensor into
``A_nondiag`` / ``A_diag`` once, outside the timed region, and the strict
nest then runs with *no conditionals at all*.
"""

from __future__ import annotations

from repro.core.kernel_plan import (
    FILTER_ALL,
    FILTER_DIAGONAL,
    FILTER_STRICT,
    KernelPlan,
    LoopNest,
)


def split_diagonals(plan: KernelPlan) -> KernelPlan:
    """Split each unsplit nest into a strict nest and a diagonal nest.

    Only applies when there is a symmetric *input* whose canonical triangle
    drives iteration (otherwise there is no packed tensor to filter; e.g.
    SSYRK keeps its equality test inline) and when the kernel actually has
    both strict and diagonal blocks.
    """
    iterates_symmetric_input = any(
        acc.tensor in plan.symmetric_modes
        and len(plan.symmetric_modes[acc.tensor]) > 0
        for acc in plan.original.accesses
    )
    has_nontrivial_symmetry = any(
        len(part) >= 2
        for parts in plan.symmetric_modes.values()
        for part in parts
    )
    if not (iterates_symmetric_input and has_nontrivial_symmetry):
        return plan
    # a symmetric tensor read through several accesses (e.g. triangle
    # counting's A[i,j]*A[j,k]*A[i,k]) mixes strict and diagonal reads in
    # one block — the filtered views would be wrong, so keep the single
    # canonical view with inline equality tests.
    for name in plan.symmetric_modes:
        uses = sum(1 for acc in plan.original.accesses if acc.tensor == name)
        if uses > 1:
            return plan

    nests = []
    for nest in plan.nests:
        if nest.tensor_filter != FILTER_ALL:
            nests.append(nest)
            continue
        strict = [b for b in nest.blocks if b.is_strict]
        diagonal = [b for b in nest.blocks if not b.is_strict and b.has_equality]
        # blocks consolidated across strict and diagonal patterns must run
        # in both nests; each nest's filter makes the foreign patterns
        # unreachable, and codegen prunes the now-constant conditions.
        mixed = [b for b in diagonal if any(p.is_strict for p in b.patterns)]
        diagonal = [b for b in diagonal if b not in mixed]
        if not diagonal and not mixed:
            nests.append(nest)
            continue
        if strict or mixed:
            nests.append(
                LoopNest(blocks=tuple(strict + mixed), tensor_filter=FILTER_STRICT)
            )
        if diagonal or mixed:
            nests.append(
                LoopNest(blocks=tuple(diagonal + mixed), tensor_filter=FILTER_DIAGONAL)
            )
    return plan.with_nests(nests, note="diagonal_split")
