"""Simplicial lookup tables (4.2.5).

Diagonal blocks of highly symmetric kernels perform the *same* template
assignments with different constant factors (and some templates collapse
onto each other when indices coincide).  This pass merges all diagonal
blocks of a nest into a single unconditional block whose assignments are the
strict-block templates, each scaled by a factor read from a table indexed by
which equalities hold at runtime:

    code   = 1*(p1 == p2) + 2*(p2 == p3) + ...
    factor = table[code]

Factors can be fractional (e.g. ``1/3`` when three templates collapse onto
one update, as in the paper's TTM example).  The pass therefore only applies
to the ``+``/``*`` semiring, and only when a consistent table exists; it
returns the plan unchanged otherwise.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.kernel_plan import (
    Block,
    FILTER_DIAGONAL,
    KernelPlan,
    LoopNest,
)
from repro.frontend.einsum import Assignment


def build_lookup_table(plan: KernelPlan) -> KernelPlan:
    """Replace the diagonal nest's blocks with one table-driven block."""
    if plan.original.reduce_op != "+" or plan.original.combine_op != "*":
        return plan
    if len(plan.permutable) < 2:
        return plan

    templates = _strict_templates(plan)
    if templates is None:
        return plan

    nests = []
    for nest in plan.nests:
        if nest.tensor_filter != FILTER_DIAGONAL or len(nest.blocks) < 2:
            nests.append(nest)
            continue
        table = _solve_table(plan, nest, templates)
        if table is None:
            nests.append(nest)
            continue
        patterns = tuple(p for b in nest.blocks for p in b.patterns)
        block = Block(
            patterns=patterns,
            assignments=tuple(a.with_count(1) for a in templates),
            factor_table=table,
        )
        nests.append(LoopNest(blocks=(block,), tensor_filter=FILTER_DIAGONAL))
    return plan.with_nests(nests, note="lookup_table")


def _strict_templates(plan: KernelPlan) -> Optional[Tuple[Assignment, ...]]:
    """The strict block's assignments with counts divided out (the per-
    template multiplicity must be uniform for a factor table to exist)."""
    strict_blocks = [
        b
        for nest in plan.nests
        for b in nest.blocks
        if all(p.is_strict for p in b.patterns)
    ]
    if len(strict_blocks) != 1:
        return None
    return tuple(a.with_count(1) for a in strict_blocks[0].assignments)


def _solve_table(
    plan: KernelPlan, nest: LoopNest, templates: Tuple[Assignment, ...]
) -> Optional[Tuple[Tuple[int, str], ...]]:
    """For each diagonal block, find the per-template factor reproducing the
    block's merged updates, uniformly across templates that collapse onto
    the same update.

    Returns ``((bitmask, factor), ...)`` where ``bitmask`` has bit ``t`` set
    iff the pattern equates chain neighbours ``p[t] == p[t+1]`` (the
    "product of primes" index of the paper, in binary), and ``factor`` is a
    :class:`~fractions.Fraction` rendered as a string.  None when no uniform
    factor exists.
    """
    entries: List[Tuple[int, str]] = []
    for block in nest.blocks:
        for pattern in block.patterns:
            rep = pattern.representative()
            # target: merged update -> total count demanded by this block.
            demanded: Dict[Tuple, Fraction] = {}
            for a in block.assignments:
                key = a.substitute(rep).normalized(plan.symmetric_modes, plan.rank).key()
                demanded[key] = demanded.get(key, Fraction(0)) + a.count
            # group templates by the update they collapse onto.
            groups: Dict[Tuple, int] = {}
            for t in templates:
                key = t.substitute(rep).normalized(plan.symmetric_modes, plan.rank).key()
                groups[key] = groups.get(key, 0) + 1
            if set(groups) != set(demanded):
                return None
            factors = {
                key: Fraction(demanded[key], groups[key]) for key in groups
            }
            if len(set(factors.values())) != 1:
                return None
            factor = next(iter(factors.values()))
            bitmask = 0
            for t, rel in enumerate(pattern.relations):
                if rel == "=":
                    bitmask |= 1 << t
            entries.append((bitmask, str(factor)))
    return tuple(entries)
