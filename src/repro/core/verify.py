"""Plan verification: exhaustive coverage checking.

Symmetrization is only correct if, over the full iteration space, every
update of the original einsum is performed *exactly once* (counting
multiplicities).  This verifier enumerates a small index cube symbolically
— no tensor values involved — and compares the multiset of (output
coordinate, input-coordinate multiset) updates a plan performs against the
naive enumeration.  It catches every class of symmetrization bug we hit
while building the compiler (missed diagonals, double-counted mirrors,
wrong unique-group filters), and runs as a test over the whole kernel
library.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.core.kernel_plan import (
    FILTER_DIAGONAL,
    FILTER_STRICT,
    KernelPlan,
)
from repro.frontend.einsum import Access, Assignment, Literal


def _update_signature(a: Assignment, env: Dict[str, int]) -> Tuple:
    """A symbolic update: (output coordinate, sorted input reads).

    Two updates with the same signature read equal values (symmetric reads
    are canonicalized by normalization before this runs) and write the same
    location, so signatures can be compared as multisets.
    """
    out = tuple(env[i] for i in a.lhs.indices)
    reads = []
    for op in a.operands:
        if isinstance(op, Literal):
            reads.append(("const", op.value))
        else:
            reads.append((op.tensor, tuple(env[i] for i in op.indices)))
    return (out, tuple(sorted(reads)))


def verify_plan_coverage(
    plan: KernelPlan, side: int = 3, symmetric_canonical: bool = True
) -> List[str]:
    """Return a list of coverage violations (empty == verified).

    ``side`` is the extent of every index.  Reads of symmetric tensors are
    canonicalized (coordinates sorted within symmetric mode groups) so that
    mirrored reads compare equal, mirroring what normalization guarantees.
    """
    original = plan.original
    names = original.free_indices
    chain = plan.permutable
    replication = plan.replication

    def canonicalize(sig: Tuple) -> Tuple:
        out, reads = sig
        if replication is not None:
            out = list(out)
            for part in replication.mode_parts:
                vals = sorted((out[m] for m in part), reverse=True)
                for m, v in zip(sorted(part), vals):
                    out[m] = v
            out = tuple(out)
        canon_reads = []
        for tensor, coord in reads:
            parts = plan.symmetric_modes.get(tensor)
            if parts and tensor != "const":
                coord = list(coord)
                for part in parts:
                    vals = sorted((coord[m] for m in part), reverse=True)
                    for m, v in zip(sorted(part), vals):
                        coord[m] = v
                coord = tuple(coord)
            canon_reads.append((tensor, coord))
        return (out, tuple(sorted(canon_reads)))

    expected: Dict[Tuple, Fraction] = {}
    for values in product(range(side), repeat=len(names)):
        env = dict(zip(names, values))
        sig = canonicalize(_update_signature(original, env))
        expected[sig] = expected.get(sig, Fraction(0)) + 1

    performed: Dict[Tuple, Fraction] = {}
    for values in product(range(side), repeat=len(plan.loop_order)):
        env = dict(zip(plan.loop_order, values))
        chain_vals = [env[p] for p in chain]
        if any(a > b for a, b in zip(chain_vals, chain_vals[1:])):
            continue
        is_strict = all(a < b for a, b in zip(chain_vals, chain_vals[1:]))
        for nest in plan.nests:
            if nest.tensor_filter == FILTER_STRICT and not is_strict:
                continue
            if nest.tensor_filter == FILTER_DIAGONAL and is_strict:
                continue
            for block in nest.blocks:
                if block.factor_table is not None:
                    bitmask = 0
                    for t, (a, b) in enumerate(zip(chain_vals, chain_vals[1:])):
                        if a == b:
                            bitmask |= 1 << t
                    factor = None
                    for mask, frac in block.factor_table:
                        if mask == bitmask:
                            factor = Fraction(frac)
                    if factor is None:
                        continue
                    for a in block.assignments:
                        sig = canonicalize(_update_signature(a, env))
                        performed[sig] = performed.get(sig, Fraction(0)) + a.count * factor
                    continue
                if not any(p.matches(chain_vals) for p in block.patterns):
                    continue
                for a in block.assignments:
                    sig = canonicalize(_update_signature(a, env))
                    performed[sig] = performed.get(sig, Fraction(0)) + a.count

    # with visible output symmetry, the plan performs only the canonical
    # share; replication multiplies each canonical update by its orbit size.
    problems: List[str] = []
    if replication is not None:
        expected = _canonical_share(expected, replication, side)

    for sig, want in sorted(expected.items()):
        got = performed.get(sig, Fraction(0))
        if got != want:
            problems.append(
                "update %s performed %s times, expected %s" % (sig, got, want)
            )
    for sig, got in sorted(performed.items()):
        if sig not in expected:
            problems.append("spurious update %s (x%s)" % (sig, got))
    return problems


def _canonical_share(expected, replication, side):
    """Fold mirrored output coordinates: the kernel computes the canonical
    entry once; replication copies it to the mirrors, so the expected
    multiset keeps only canonical-coordinate updates at the *canonical*
    location's multiplicity."""
    # updates were already canonicalized onto canonical output coordinates;
    # each canonical output accumulated the contributions of every mirror.
    # The plan computes exactly the canonical entry's own share: divide by
    # the orbit size of the output coordinate.
    folded = {}
    for (out, reads), count in expected.items():
        orbit = 1
        for part in replication.mode_parts:
            vals = [out[m] for m in part]
            # number of distinct permutations of the mirrored coordinates
            from math import factorial

            orbit_part = factorial(len(vals))
            for v in set(vals):
                orbit_part //= factorial(vals.count(v))
            orbit *= orbit_part
        folded[(out, reads)] = Fraction(count, orbit)
    return folded


def assert_verified(plan: KernelPlan, side: int = 3) -> None:
    problems = verify_plan_coverage(plan, side)
    if problems:
        raise AssertionError(
            "plan fails coverage verification:\n  " + "\n  ".join(problems[:10])
        )
