"""The SySTeC core: symmetrization, optimization passes, compiler driver."""

from repro.core.kernel_plan import Block, KernelPlan, LoopNest
from repro.core.symmetrize import symmetrize
from repro.core.compiler import CompiledKernel, compile_kernel, optimize

__all__ = [
    "Block",
    "CompiledKernel",
    "KernelPlan",
    "LoopNest",
    "compile_kernel",
    "optimize",
    "symmetrize",
]
