"""The SySTeC compiler driver (Figure 4).

``compile_kernel`` runs the full two-phase flow: symmetrize (Section 4.1),
optimize (Section 4.2), lower (concordize / CSE / workspace + sparse loop
emission) and bind, returning a :class:`CompiledKernel` callable on logical
tensors.  ``optimize`` exposes just the plan-level pipeline for inspection
and testing.

The flow is factored into cacheable stages so the service layer
(:mod:`repro.service`) can memoize it: ``plan_kernel`` covers the
plan-level pipeline, ``lower_plan`` the loop-level one, and a finished
:class:`CompiledKernel` round-trips through :meth:`CompiledKernel.to_state`
/ :meth:`CompiledKernel.from_state` without re-running either.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.executor import (
    BoundKernel,
    ExecutionPlan,
    _as_tensor,
    plan_identity,
)
from repro.codegen.lower import LoweredKernel, lower_plan
from repro.codegen.runtime import make_output
from repro.core.config import CompilerOptions, DEFAULT, NAIVE
from repro.core.kernel_plan import Block, KernelPlan, LoopNest
from repro.core.passes import (
    build_lookup_table,
    consolidate_blocks,
    group_across_branches,
    group_distributive,
    restrict_output_to_canonical,
    split_diagonals,
)
from repro.core.symmetrize import infer_loop_order, symmetrize
from repro.frontend.einsum import Assignment
from repro.obs import trace as obs_trace
from repro.frontend.parser import parse_assignment
from repro.symmetry.detect import default_rank
from repro.symmetry.groups import EquivalencePattern
from repro.symmetry.partitions import parse_mode_partition


def _normalize_symmetric(symmetric, assignment: Assignment) -> Dict[str, Tuple[Tuple[int, ...], ...]]:
    """User spec {tensor: True | partition | [[modes]]} -> mode parts."""
    out: Dict[str, Tuple[Tuple[int, ...], ...]] = {}
    for name, spec in (symmetric or {}).items():
        ndim = None
        for acc in assignment.accesses + (assignment.lhs,):
            if acc.tensor == name:
                ndim = len(acc.indices)
                break
        if ndim is None:
            raise ValueError("symmetric tensor %r not used in assignment" % name)
        partition = parse_mode_partition(spec, ndim)
        out[name] = tuple(tuple(p) for p in partition.parts)
    return out


def _validate_formats(formats: Mapping[str, str], assignment: Assignment) -> None:
    """Every format entry must name a tensor the assignment actually uses.

    A typo'd name used to be silently ignored (the kernel quietly fell back
    to the dense default for the tensor the user *meant*); now it fails
    loudly.
    """
    unknown = sorted(set(formats) - set(assignment.tensors))
    if unknown:
        raise ValueError(
            "formats name tensor(s) %s that do not appear in %s (tensors: %s)"
            % (unknown, assignment, ", ".join(assignment.tensors))
        )


#: the plan-level pipeline, in execution order: (options switch, pass).
#: One table drives both the pipeline and its per-pass trace spans, so
#: an added pass cannot silently run untraced (or in a surprise order).
_PLAN_PASSES = (
    ("output_canonical", restrict_output_to_canonical),
    ("distributive", group_distributive),
    ("consolidate", consolidate_blocks),
    ("diagonal_split", split_diagonals),
    ("lookup_table", build_lookup_table),
    ("group_branches", group_across_branches),
)


def optimize(plan: KernelPlan, options: CompilerOptions = DEFAULT) -> KernelPlan:
    """Run the plan-level optimization pipeline (Section 4.2)."""
    for name, pass_fn in _PLAN_PASSES:
        if getattr(options, name):
            with obs_trace.span("pass:%s" % name):
                plan = pass_fn(plan)
    return plan


def naive_plan(
    assignment: Assignment, loop_order: Optional[Sequence[str]] = None
) -> KernelPlan:
    """The unoptimized plan: one nest, one unconditional block, iterating
    the *full* (replicated) tensors — the paper's naive-Finch baseline."""
    if loop_order is None:
        from repro.core.symmetrize import infer_loop_order

        loop_order = infer_loop_order(assignment)
    loop_order = tuple(loop_order)
    rank = default_rank(assignment, loop_order)
    block = Block(
        patterns=(EquivalencePattern((), ()),), assignments=(assignment,)
    )
    return KernelPlan(
        original=assignment,
        loop_order=loop_order,
        permutable=(),
        symmetric_modes={},
        nests=(LoopNest(blocks=(block,), tensor_filter="all"),),
        rank=rank,
        history=("naive",),
    )


def resolve_request(
    assignment: Assignment,
    symmetric: Optional[Mapping] = None,
    loop_order: Optional[Sequence[str]] = None,
    formats: Optional[Mapping[str, str]] = None,
    options: CompilerOptions = DEFAULT,
    naive: bool = False,
) -> Tuple[
    Dict[str, Tuple[Tuple[int, ...], ...]],
    Tuple[str, ...],
    Dict[str, str],
    CompilerOptions,
]:
    """Apply every defaulting rule of :func:`compile_kernel` in one place.

    Returns ``(symmetric_modes, loop_order, formats, options)`` fully
    resolved: symmetry specs normalized to mode partitions, an omitted loop
    order inferred, omitted formats marking each symmetric tensor sparse
    (explicit formats validated), and the naive baseline collapsed onto the
    :data:`NAIVE` switch set.  The service layer's cache-key canonicalizer
    (:mod:`repro.service.keys`) calls this same helper, so keys can never
    drift from what the compiler actually builds.
    """
    from repro.codegen.backends import resolve_backend_name

    symmetric_modes = _normalize_symmetric(symmetric, assignment)
    if loop_order is None:
        loop_order = infer_loop_order(assignment)
    if formats is None:
        formats = {name: "sparse" for name in symmetric_modes}
    else:
        _validate_formats(formats, assignment)
    if naive:
        options = NAIVE.but(
            vectorize_innermost=options.vectorize_innermost,
            dtype=options.dtype,
            backend=options.backend,
            threads=options.threads,
        )
    # "auto" collapses onto a concrete backend here, so cache keys and
    # persisted states always name the backend that actually runs
    backend = resolve_backend_name(options.backend)
    if backend != options.backend:
        options = options.but(backend=backend)
    return symmetric_modes, tuple(loop_order), dict(formats), options


def plan_kernel(
    assignment: Assignment,
    symmetric_modes: Mapping[str, Tuple[Tuple[int, ...], ...]],
    loop_order: Optional[Sequence[str]] = None,
    options: CompilerOptions = DEFAULT,
    naive: bool = False,
) -> Tuple[KernelPlan, CompilerOptions]:
    """Stage 1 of compilation: the plan-level pipeline.

    Returns ``(plan, effective_options)`` — the options actually used for
    lowering (the naive baseline forces the :data:`NAIVE` switch set, keeping
    only the caller's vectorization choice).
    """
    if naive:
        plan = naive_plan(assignment, loop_order)
        options = NAIVE.but(
            vectorize_innermost=options.vectorize_innermost,
            dtype=options.dtype,
            backend=options.backend,
            threads=options.threads,
        )
    else:
        with obs_trace.span("symmetrize"):
            plan = symmetrize(assignment, symmetric_modes, loop_order)
        plan = optimize(plan, options)
    return plan, options


#: bump when the shape of :meth:`CompiledKernel.to_state` changes — stale
#: disk-store entries are then rejected instead of misinterpreted.
#: v2: options grew the ``backend`` field.
#: v3: the C kernel ABI gained a trailing runtime thread-count argument,
#: so shared objects persisted by earlier builds must not be rebound.
#: v4: the element dtype became a pipeline parameter (options.dtype +
#: lowered.dtype); float32 shared objects carry ``float`` value pointers,
#: so pre-dtype artifacts must not be rebound against the new ABI.
#: v5: the C kernel now returns an ``int64_t`` status (0 ok / 1 OOM);
#: void-ABI shared objects from earlier builds must not be rebound with
#: the status-checking call plan.
STATE_VERSION = 5


@dataclass(frozen=True)
class PlanSnapshot:
    """The slice of a :class:`KernelPlan` a compiled kernel needs at run
    time.

    Rehydrating from persisted state skips the pass pipeline entirely, so
    the nest/block structure is gone; what survives is the original
    assignment (for shape resolution), the loop facts, and the plan's
    pretty-printed description.
    """

    original: Assignment
    loop_order: Tuple[str, ...]
    permutable: Tuple[str, ...]
    symmetric_modes: Mapping[str, Tuple[Tuple[int, ...], ...]]
    history: Tuple[str, ...]
    description: str

    def describe(self) -> str:
        return self.description

    def _no_structure(self, attr: str):
        raise AttributeError(
            "this kernel was rehydrated from a persisted state and its plan "
            "is a PlanSnapshot without the optimized %s structure; recompile "
            "with compile_kernel(...) to inspect the full KernelPlan" % attr
        )

    # plan-structure surface that persistence intentionally drops — fail
    # with an explanation, not a bare missing-attribute error, when e.g.
    # analyze_plan or verify_plan_coverage receives a rehydrated plan
    @property
    def blocks(self):
        self._no_structure("block")

    @property
    def nests(self):
        self._no_structure("nest")

    @property
    def replication(self):
        self._no_structure("replication")

    @property
    def rank(self):
        self._no_structure("rank")


class CompiledKernel:
    """A ready-to-run kernel: plan + generated source + binder."""

    def __init__(
        self,
        plan: KernelPlan,
        lowered: LoweredKernel,
        bound: BoundKernel,
        options: CompilerOptions,
        formats: Mapping[str, str],
    ):
        self.plan = plan
        self.lowered = lowered
        self.bound = bound
        self.options = options
        self.formats = dict(formats)

    # ------------------------------------------------------------------
    @property
    def source(self) -> str:
        """The generated Python kernel (inspectable, as in the artifact)."""
        return self.lowered.source

    @property
    def backend(self) -> str:
        """Name of the execution backend this kernel runs on."""
        return self.bound.backend_name

    @property
    def backend_source(self) -> str:
        """The source the active backend executes (Python or C)."""
        return self.bound.executable.source

    def explain(self) -> str:
        """Human-readable options + backend + plan + source dump."""
        return (
            "options: %s\n" % self.options.describe()
            + "backend: %s\n" % self.bound.executable.describe()
            + self.plan.describe()
            + "\n\n"
            + self.lowered.source
        )

    # ------------------------------------------------------------------
    # persistence (used by repro.service's disk store)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """A JSON-serializable snapshot sufficient to rebuild this kernel
        without re-running the symmetrize/optimize/lower pipeline."""
        plan = self.plan
        return {
            "state_version": STATE_VERSION,
            "einsum": str(plan.original),
            "loop_order": list(plan.loop_order),
            "permutable": list(plan.permutable),
            "symmetric_modes": {
                name: [list(part) for part in parts]
                for name, parts in plan.symmetric_modes.items()
            },
            "history": list(plan.history),
            "plan_description": plan.describe(),
            "formats": dict(self.formats),
            "options": self.options.to_dict(),
            "lowered": self.lowered.to_dict(),
        }

    @classmethod
    def from_state(
        cls,
        state: Mapping,
        label: Optional[str] = None,
        artifact: Optional[str] = None,
    ) -> "CompiledKernel":
        """Rehydrate a kernel persisted with :meth:`to_state`.

        Only the generated source is re-``exec``'d (microseconds); the pass
        pipeline does not run, so ``plan`` is a :class:`PlanSnapshot` rather
        than a full :class:`KernelPlan`.  ``artifact`` optionally points at
        a previously-compiled shared object for the C backend to reuse (a
        corrupt artifact falls back to a fresh build).
        """
        version = state.get("state_version")
        if version != STATE_VERSION:
            raise ValueError(
                "unsupported kernel state version %r (this build reads %d)"
                % (version, STATE_VERSION)
            )
        with obs_trace.span("rehydrate", label=label):
            return cls._from_state_checked(state, label, artifact)

    @classmethod
    def _from_state_checked(
        cls,
        state: Mapping,
        label: Optional[str],
        artifact: Optional[str],
    ) -> "CompiledKernel":
        assignment = parse_assignment(state["einsum"])
        symmetric_modes = {
            name: tuple(tuple(int(m) for m in part) for part in parts)
            for name, parts in state["symmetric_modes"].items()
        }
        snapshot = PlanSnapshot(
            original=assignment,
            loop_order=tuple(state["loop_order"]),
            permutable=tuple(state["permutable"]),
            symmetric_modes=symmetric_modes,
            history=tuple(state["history"]) + ("rehydrated",),
            description=state["plan_description"],
        )
        lowered = LoweredKernel.from_dict(state["lowered"])
        options = CompilerOptions.from_dict(state["options"])
        bound = BoundKernel(
            lowered,
            symmetric_modes,
            label=label,
            backend=options.backend,
            artifact=artifact,
            threads=options.threads,
            einsum=str(assignment),
        )
        return cls(snapshot, lowered, bound, options, dict(state["formats"]))

    # ------------------------------------------------------------------
    def output_shape(self, **tensors) -> Tuple[int, ...]:
        wrapped = {
            name: _as_tensor(name, value, self.plan.symmetric_modes)
            for name, value in tensors.items()
        }
        extents: Dict[str, int] = {}
        for acc in self.plan.original.accesses:
            if acc.tensor in wrapped:
                for mode, idx in enumerate(acc.indices):
                    extents.setdefault(idx, int(wrapped[acc.tensor].shape[mode]))
        return tuple(extents[i] for i in self.plan.original.lhs.indices)

    def prepare(self, **tensors):
        """Bind inputs into the exact arrays the kernel consumes.

        Returns ``(prepared_args, output_shape)``; preparation (packing,
        splitting, transposing) happens once, outside the timed region."""
        prepared = self.bound.prepare(**tensors)
        return prepared, self.output_shape(**tensors)

    def run(
        self, prepared, output_shape, threads=None, thread_cap=None
    ) -> np.ndarray:
        """Timed region: allocate the output buffer and run the loops.

        ``threads`` overrides :attr:`CompilerOptions.threads` for this
        run only (int or ``"auto"``) — the thread count is a runtime
        argument of the compiled kernel, not part of its identity.
        ``"auto"`` resolves per run through the work-estimate cost model
        (:meth:`BoundKernel.resolve_run_threads`); ``thread_cap`` bounds
        the resolved count (used by the batch engine's fan-out).
        """
        out = self.bound.make_output_buffer(tuple(output_shape))
        self.bound.run(out, prepared, threads=threads, thread_cap=thread_cap)
        return out

    def execution_plan(
        self, threads=None, thread_cap=None, out=None, **tensors
    ) -> ExecutionPlan:
        """The repeat-execution fast path: prepare/bind/validate once.

        Returns an :class:`~repro.codegen.executor.ExecutionPlan` — a
        callable holding the pre-packed backend arguments and a reusable
        (or caller-owned, via ``out``) output buffer.  ``plan()`` runs
        the timed region and returns the raw buffer; pair with
        :meth:`finalize` (or :meth:`ExecutionPlan.finalized`) for the
        logical result.  Per-call Python overhead is several times lower
        than :meth:`run` — see ``benchmarks/bench_dispatch.py``.
        """
        prepared, shape = self.prepare(**tensors)
        return self.bound.plan_prepared(
            prepared,
            shape,
            threads=threads,
            thread_cap=thread_cap,
            out=out,
            identity=plan_identity(tensors),
            sources=tensors,
        )

    def finalize(self, out: np.ndarray) -> np.ndarray:
        """Untimed post-processing: output transpose-back + replication."""
        return self.bound.finalize(out)

    def finalize_view(self, out: np.ndarray):
        """Symmetry-aware finalization (the paper's future-work item 3):
        skip the replication pass and return a :class:`SymmetricView` that
        redirects mirrored reads to the canonical triangle.  Falls back to
        a plain array when the output has no visible symmetry."""
        from repro.tensor.symmetric_view import SymmetricView

        layout = self.lowered.output.layout
        if layout != tuple(range(len(layout))):
            out = np.transpose(out, np.argsort(layout))
        parts = self.lowered.output.replication_parts
        if not parts:
            return np.ascontiguousarray(out) if out.ndim else out
        return SymmetricView(np.ascontiguousarray(out), parts)

    def __call__(self, **tensors) -> np.ndarray:
        prepared, shape = self.prepare(**tensors)
        return self.finalize(self.run(prepared, shape))


def compile_kernel(
    einsum: Union[str, Assignment],
    symmetric: Optional[Mapping] = None,
    loop_order: Optional[Sequence[str]] = None,
    formats: Optional[Mapping[str, str]] = None,
    options: CompilerOptions = DEFAULT,
    naive: bool = False,
    sparse_levels: Optional[Mapping[str, Sequence[str]]] = None,
) -> CompiledKernel:
    """Compile an einsum into a symmetry-exploiting sparse kernel.

    Parameters
    ----------
    einsum:
        ``"y[i] += A[i, j] * x[j]"`` or a pre-built :class:`Assignment`.
    symmetric:
        ``{"A": True}`` for full symmetry, or a partition of modes
        (``{"A": [[0, 1], [2]]}`` / ``{"A": "{0,1}{2}"}``).
    loop_order:
        index names, outermost first.  Defaults to reverse appearance order.
    formats:
        ``{"A": "sparse"}``; unlisted tensors are dense.  Defaults to
        marking every declared-symmetric tensor sparse.
    options:
        pass/lowering switches (see :class:`CompilerOptions`).
    naive:
        build the unoptimized baseline kernel instead (full tensors, no
        triangle restriction) — the red line in the paper's figures.
    """
    assignment = (
        parse_assignment(einsum) if isinstance(einsum, str) else einsum
    )
    symmetric_modes, loop_order, formats, options = resolve_request(
        assignment, symmetric, loop_order, formats, options, naive
    )

    from repro.frontend.validate import validate_assignment, validate_semiring

    validate_assignment(assignment, symmetric_modes)
    validate_semiring(
        assignment,
        [name for name, kind in formats.items() if kind == "sparse"],
    )
    with obs_trace.span("compile", einsum=str(assignment)):
        plan, options = plan_kernel(
            assignment, symmetric_modes, loop_order, options, naive
        )
        with obs_trace.span("lower"):
            lowered = lower_plan(plan, formats, options, sparse_levels)
        bound = BoundKernel(
            lowered,
            plan.symmetric_modes,
            backend=options.backend,
            threads=options.threads,
            einsum=str(assignment),
        )
    return CompiledKernel(plan, lowered, bound, options, formats)
