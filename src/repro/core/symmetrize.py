"""Phase 1 of SySTeC: symmetrization (Section 4.1).

Given an assignment, the declared input symmetries and a loop order, produce
a :class:`~repro.core.kernel_plan.KernelPlan` whose single loop nest iterates
only the canonical triangle ``p1 <= ... <= pn`` of the permutable indices
and, inside one exclusive conditional block per equivalence pattern, performs
every update of the original full iteration space exactly once.

The four stages of the paper map onto this module as:

1. *Identify Symmetry*  -> :func:`repro.symmetry.detect.permutable_indices`
2. *Restrict Iteration Space* -> the ordered chain (innermost loop first)
3. *Define Assignments* -> apply every permutation in ``S_P|E`` per pattern
4. *Normalize Assignments* -> sort symmetric-tensor indices and operands,
   then merge duplicates into multiplicities.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from repro.frontend.einsum import Assignment, merge_duplicates
from repro.core.kernel_plan import Block, FILTER_ALL, KernelPlan, LoopNest
from repro.symmetry.detect import default_rank, permutable_indices
from repro.symmetry.groups import (
    EquivalencePattern,
    enumerate_patterns,
    unique_permutations,
)

ModeParts = Mapping[str, Tuple[Tuple[int, ...], ...]]


def infer_loop_order(assignment: Assignment) -> Tuple[str, ...]:
    """A sensible default loop order: reduction indices outer-to-inner in
    reverse appearance order, then output indices, innermost last.

    The paper's kernels put the symmetric tensor's modes outermost (its
    storage order) and the dense rank index innermost; first-appearance
    reversed approximates that and every benchmark kernel overrides it
    explicitly anyway.
    """
    return tuple(reversed(assignment.free_indices))


def symmetrize(
    assignment: Assignment,
    symmetric_modes: Optional[ModeParts] = None,
    loop_order: Optional[Sequence[str]] = None,
) -> KernelPlan:
    """Symmetrize *assignment* into a canonical-triangle kernel plan.

    ``symmetric_modes`` maps tensor names to partitions of their modes
    (tuples of tuples of 0-based mode numbers); omitted tensors are treated
    as asymmetric.  ``loop_order`` lists the index names outermost first.
    """
    symmetric_modes = dict(symmetric_modes or {})
    if loop_order is None:
        loop_order = infer_loop_order(assignment)
    loop_order = tuple(loop_order)
    free = set(assignment.free_indices)
    if free.difference(loop_order):
        raise ValueError(
            "loop order %s is missing indices %s"
            % (loop_order, sorted(free.difference(loop_order)))
        )

    rank = default_rank(assignment, loop_order)
    chain = permutable_indices(assignment, symmetric_modes, loop_order)

    blocks = []
    for pattern in enumerate_patterns(chain):
        generated = []
        for sigma in unique_permutations(pattern):
            generated.append(
                assignment.substitute(sigma).normalized(symmetric_modes, rank)
            )
        merged = _merge_modulo_equalities(generated, pattern, symmetric_modes, rank)
        blocks.append(Block(patterns=(pattern,), assignments=merged))

    nest = LoopNest(blocks=tuple(blocks), tensor_filter=FILTER_ALL)
    return KernelPlan(
        original=assignment,
        loop_order=loop_order,
        permutable=chain,
        symmetric_modes=symmetric_modes,
        nests=(nest,),
        rank=rank,
        history=("symmetrize",),
    )


def _merge_modulo_equalities(
    assignments: Sequence[Assignment],
    pattern: EquivalencePattern,
    symmetric_modes: ModeParts,
    rank: Mapping[str, int],
) -> Tuple[Assignment, ...]:
    """Merge assignments that denote the same update *given the equalities
    of this pattern*, keeping the first-written form and summing counts.

    Inside the ``i == k`` block, ``C[i, j] += ...`` and ``C[k, j] += ...``
    are the same update; comparing representative-substituted normal forms
    detects this without rewriting the emitted code (the paper keeps the
    original index names and relies on the runtime equality).
    """
    rep = pattern.representative()
    order = []
    counts = {}
    originals = {}
    for a in assignments:
        key = a.substitute(rep).normalized(symmetric_modes, rank).key()
        if key not in counts:
            order.append(key)
            counts[key] = 0
            originals[key] = a
        counts[key] += a.count
    return tuple(originals[k].with_count(counts[k]) for k in order)
