"""Pass-pipeline configuration.

Every optimization of Section 4.2 can be toggled independently — the
ablation benchmarks flip these switches.  The defaults reproduce the
pipeline the paper's evaluation used (lookup tables are opt-in, as in the
artifact, whose generated MTTKRP kernels use separate diagonal blocks).

Beyond the paper's switches, :attr:`CompilerOptions.backend` selects the
*execution backend* the lowered loops run on: ``"python"`` (interpreted,
always available), ``"c"`` (compiled via the system toolchain, orders of
magnitude faster) or ``"auto"`` (``c`` when a compiler is found).  The
``$REPRO_BACKEND`` environment variable sets the process default.

:attr:`CompilerOptions.threads` is the C backend's *runtime* thread
count (``$REPRO_THREADS``; ``"auto"`` means one thread per visible CPU).
It is deliberately not compile configuration: the thread count crosses
into the compiled kernel as a plain runtime argument, so it is excluded
from cache keys and persisted state (see :data:`RUNTIME_FIELDS`) — one
compiled artifact serves every thread count.

The observability layer (:mod:`repro.obs`) adds three boolean knobs to
the same ``REPRO_*`` family, all read through :func:`env_flag`:

* ``REPRO_TRACE=1`` — record spans from process start (export with
  ``repro trace`` / ``repro compile --trace``);
* ``REPRO_METRICS=1`` — collect counters + latency histograms (served
  by ``repro stats --json``);
* ``REPRO_PROFILE=1`` — compile C kernels with per-nest wall-time
  instrumentation.  Unlike the other two this changes the *generated
  code*, so it is captured in cache keys (like ``$REPRO_OMP_STRATEGY``)
  and profiled builds never alias production artifacts.

All three default off, and the instrumented call sites are engineered to
cost one predicate check when off — the plan dispatch path stays within
5% of an uninstrumented build (enforced by ``benchmarks/bench_dispatch``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Optional

#: values :attr:`CompilerOptions.backend` accepts.  ``auto`` is collapsed
#: onto a concrete backend by :func:`repro.core.compiler.resolve_request`.
#: This is the single source of truth — :mod:`repro.codegen.backends`
#: (which this module cannot import without a cycle) asserts its registry
#: matches at import time.
BACKEND_CHOICES = ("python", "c", "auto")


def default_backend() -> str:
    """The process-wide default backend (``$REPRO_BACKEND`` or python).

    An unrecognized env value warns and falls back to python rather than
    blowing up every ``CompilerOptions()`` construction at import time —
    the environment is outside the program, so it gets a diagnostic, not
    a traceback.  Explicit ``CompilerOptions(backend=...)`` values are
    still validated strictly.
    """
    import warnings

    value = os.environ.get("REPRO_BACKEND", "python")
    if value not in BACKEND_CHOICES:
        warnings.warn(
            "ignoring REPRO_BACKEND=%r (choices: %s); using 'python'"
            % (value, ", ".join(BACKEND_CHOICES)),
            RuntimeWarning,
            stacklevel=2,
        )
        return "python"
    return value


def env_flag(name: str) -> bool:
    """A boolean ``REPRO_*`` knob: unset, empty and ``"0"`` mean off.

    Anything else — ``1``, ``true``, ``yes`` — means on; there is no
    warn-and-fallback here because every non-empty value is a valid way
    of saying "enable".  Used by the :mod:`repro.obs` family
    (``REPRO_TRACE`` / ``REPRO_METRICS`` / ``REPRO_PROFILE``).
    """
    value = os.environ.get(name)
    return value is not None and value not in ("", "0")


#: bad env values already seen, so the warn-and-fallback helpers below
#: diagnose each (name, value) pair exactly once per process.  Knobs like
#: ``cc_retries()`` are consulted on every compile; without this memo a
#: daemon with a typo'd limit would emit the same warning on every
#: request (and warnings-filter configuration should not decide whether
#: operators see the diagnostic at all).
_warned_values: set = set()


def _warn_env_once(name: str, value, expected: str, fallback) -> None:
    import warnings

    if (name, value) in _warned_values:
        return
    _warned_values.add((name, value))
    warnings.warn(
        "ignoring %s=%r (expected %s); using %s"
        % (name, value, expected, fallback),
        RuntimeWarning,
        stacklevel=3,
    )


def env_float(
    name: str,
    default: float,
    minimum: float = 0.0,
    exclusive: bool = False,
) -> float:
    """A float ``REPRO_*`` knob with one-time warn-and-fallback on bad
    values.  ``exclusive`` rejects the minimum itself (``> minimum``
    instead of ``>=``) — used by knobs where zero is meaningless rather
    than a documented off switch."""
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    try:
        parsed = float(value)
        if parsed < minimum or (exclusive and parsed == minimum):
            raise ValueError(value)
    except ValueError:
        _warn_env_once(
            name,
            value,
            "a number %s %g" % (">" if exclusive else ">=", minimum),
            "%g" % default,
        )
        return default
    return parsed


def env_int(
    name: str, default: int, minimum: int = 0, exclusive: bool = False
) -> int:
    """An integer ``REPRO_*`` knob with one-time warn-and-fallback on bad
    values (see :func:`env_float` for ``exclusive``)."""
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    try:
        parsed = int(value)
        if parsed < minimum or (exclusive and parsed == minimum):
            raise ValueError(value)
    except ValueError:
        _warn_env_once(
            name,
            value,
            "an integer %s %d" % (">" if exclusive else ">=", minimum),
            "%d" % default,
        )
        return default
    return parsed


# ----------------------------------------------------------------------
# failure-semantics knobs (the faults / retry / degradation layer)
# ----------------------------------------------------------------------
#: default wall-clock bound on one ``cc`` invocation (seconds).  A hung
#: compiler must never stall a caller forever; 60s is an order of
#: magnitude above the slowest observed kernel build.
DEFAULT_CC_TIMEOUT = 60.0

#: default number of *re*-attempts after a transient compile failure
#: (timeout or signal-killed cc) — 2 retries = 3 attempts total.
DEFAULT_CC_RETRIES = 2

#: default base backoff between compile retries (seconds); doubles per
#: attempt, with up to +100% random jitter so raced processes decorrelate.
DEFAULT_CC_BACKOFF = 0.25

#: default bound on waiting for another process's compile lock (seconds)
#: before falling back to a private compile.
DEFAULT_LOCK_TIMEOUT = 120.0


def cc_timeout():
    """Seconds one ``cc`` invocation may run (``$REPRO_CC_TIMEOUT``).

    ``0`` disables the bound entirely (returns ``None``).
    """
    value = env_float("REPRO_CC_TIMEOUT", DEFAULT_CC_TIMEOUT)
    return None if value == 0 else value


def cc_retries() -> int:
    """Retries after a transient compile failure (``$REPRO_CC_RETRIES``)."""
    return env_int("REPRO_CC_RETRIES", DEFAULT_CC_RETRIES)


def cc_backoff() -> float:
    """Base retry backoff in seconds (``$REPRO_CC_BACKOFF``)."""
    return env_float("REPRO_CC_BACKOFF", DEFAULT_CC_BACKOFF)


def lock_timeout() -> float:
    """Seconds to wait on a cross-process compile lock
    (``$REPRO_LOCK_TIMEOUT``) before compiling privately.

    Zero and negative values are clamped to the default with a one-time
    warning: a zero wait turns every contended key into a duplicate
    private compile, which a long-lived daemon amplifies from waste into
    sustained double load.
    """
    return env_float(
        "REPRO_LOCK_TIMEOUT", DEFAULT_LOCK_TIMEOUT, exclusive=True
    )


# ----------------------------------------------------------------------
# kernel-service daemon knobs (repro serve / repro.serve)
# ----------------------------------------------------------------------
#: default bound on requests admitted concurrently (queued + running)
#: before the daemon sheds load with a structured ``overloaded`` reply.
DEFAULT_SERVE_QUEUE = 32

#: default worker threads executing compile/execute requests.
DEFAULT_SERVE_WORKERS = 4

#: default per-request deadline (seconds); a request may override it.
DEFAULT_SERVE_DEADLINE = 30.0

#: default bound on receiving the rest of a frame once its first byte
#: arrives (slowloris protection; idle connections may wait forever).
DEFAULT_SERVE_READ_TIMEOUT = 30.0

#: default grace period for in-flight requests during a SIGTERM drain.
DEFAULT_SERVE_DRAIN = 10.0

#: default maximum wire-frame size (bytes) — tensors ride in frames.
DEFAULT_SERVE_MAX_FRAME = 64 << 20

#: default capacity of the daemon's warm :class:`ExecutionPlan` pool.
DEFAULT_SERVE_PLANS = 32

#: default client-side re-attempts after a failed daemon request.
DEFAULT_SERVICE_RETRIES = 2

#: default client-side base backoff between re-attempts (seconds);
#: doubled per attempt, capped at one second.
DEFAULT_SERVICE_BACKOFF = 0.05

#: default client-side socket timeout per daemon request (seconds).
DEFAULT_SERVICE_TIMEOUT = 30.0


def serve_queue_limit() -> int:
    """Admission bound on concurrent requests (``$REPRO_SERVE_QUEUE``)."""
    return env_int("REPRO_SERVE_QUEUE", DEFAULT_SERVE_QUEUE, minimum=1)


def serve_workers() -> int:
    """Daemon worker-thread count (``$REPRO_SERVE_WORKERS``)."""
    return env_int("REPRO_SERVE_WORKERS", DEFAULT_SERVE_WORKERS, minimum=1)


def serve_deadline():
    """Default per-request deadline in seconds (``$REPRO_SERVE_DEADLINE``).

    ``0`` disables the default bound entirely (returns ``None``);
    individual requests may still carry their own ``deadline_s``.
    """
    value = env_float("REPRO_SERVE_DEADLINE", DEFAULT_SERVE_DEADLINE)
    return None if value == 0 else value


def serve_read_timeout():
    """Seconds a started frame may take to finish arriving
    (``$REPRO_SERVE_READ_TIMEOUT``; ``0`` disables the bound)."""
    value = env_float("REPRO_SERVE_READ_TIMEOUT", DEFAULT_SERVE_READ_TIMEOUT)
    return None if value == 0 else value


def serve_drain_grace() -> float:
    """Seconds SIGTERM waits for in-flight requests
    (``$REPRO_SERVE_DRAIN``)."""
    return env_float("REPRO_SERVE_DRAIN", DEFAULT_SERVE_DRAIN)


def serve_max_frame() -> int:
    """Maximum accepted wire-frame size in bytes
    (``$REPRO_SERVE_MAX_FRAME``)."""
    return env_int(
        "REPRO_SERVE_MAX_FRAME", DEFAULT_SERVE_MAX_FRAME, minimum=1024
    )


def serve_plan_pool() -> int:
    """Warm execution-plan pool capacity (``$REPRO_SERVE_PLANS``;
    ``0`` disables plan pooling)."""
    return env_int("REPRO_SERVE_PLANS", DEFAULT_SERVE_PLANS)


def service_retries() -> int:
    """Client re-attempts after a failed daemon request
    (``$REPRO_SERVICE_RETRIES``)."""
    return env_int("REPRO_SERVICE_RETRIES", DEFAULT_SERVICE_RETRIES)


def service_backoff() -> float:
    """Client base retry backoff in seconds (``$REPRO_SERVICE_BACKOFF``)."""
    return env_float(
        "REPRO_SERVICE_BACKOFF", DEFAULT_SERVICE_BACKOFF, exclusive=True
    )


def service_timeout() -> float:
    """Client per-request socket timeout in seconds
    (``$REPRO_SERVICE_TIMEOUT``)."""
    return env_float(
        "REPRO_SERVICE_TIMEOUT", DEFAULT_SERVICE_TIMEOUT, exclusive=True
    )


def store_max_bytes():
    """Disk-store size bound in bytes (``$REPRO_STORE_MAX_BYTES``).

    ``0``/unset means unbounded (returns ``None``) — the historical
    behaviour.  When set, :meth:`repro.service.store.DiskStore.put`
    evicts least-recently-used entries (by access time) until the store
    fits, so a long-lived daemon cannot grow the store without limit.
    """
    value = env_int("REPRO_STORE_MAX_BYTES", 0)
    return None if value == 0 else value


def degrade_enabled() -> bool:
    """Is the backend degradation ladder (``c@omp -> c@serial -> python``)
    allowed to absorb runtime failures?  ``REPRO_NO_DEGRADE=1`` turns it
    off — failures then propagate raw, which CI debugging legs prefer."""
    return not env_flag("REPRO_NO_DEGRADE")


#: fields of :class:`CompilerOptions` that configure *runtime* behaviour
#: rather than what gets compiled — excluded from cache-key material and
#: from persisted kernel state.
RUNTIME_FIELDS = frozenset({"threads"})

#: element dtypes the pipeline supports end to end (tensor payloads,
#: workspaces, generated C value types, ctypes signatures).  The names are
#: numpy dtype names; :func:`repro.codegen.runtime.np_dtype` maps them to
#: concrete numpy dtypes.  float64 is the paper's (and the historical)
#: default; float32 halves the memory traffic of the bandwidth-bound
#: symmetric kernels.
DTYPE_CHOICES = ("float64", "float32")


def default_dtype() -> str:
    """The process-wide default element dtype (``$REPRO_DTYPE`` or float64).

    Mirrors :func:`default_backend`: an unrecognized env value warns and
    falls back to float64 instead of breaking every ``CompilerOptions()``
    construction at import time.
    """
    import warnings

    value = os.environ.get("REPRO_DTYPE", "float64")
    if value not in DTYPE_CHOICES:
        warnings.warn(
            "ignoring REPRO_DTYPE=%r (choices: %s); using 'float64'"
            % (value, ", ".join(DTYPE_CHOICES)),
            RuntimeWarning,
            stacklevel=2,
        )
        return "float64"
    return value


def default_threads():
    """The process-wide default thread count (``$REPRO_THREADS`` or 1).

    Returns ``"auto"`` or a positive int.  The conservative default is 1:
    parallel execution is opt-in (set ``REPRO_THREADS=auto`` or a count),
    so single-threaded timings — the paper's methodology — stay the
    baseline unless asked otherwise.  Invalid env values warn and fall
    back to 1, mirroring :func:`default_backend`.
    """
    import warnings

    value = os.environ.get("REPRO_THREADS")
    if value is None or value == "":
        return 1
    if value == "auto":
        return "auto"
    try:
        count = int(value)
        if count < 1:
            raise ValueError(value)
    except ValueError:
        warnings.warn(
            "ignoring REPRO_THREADS=%r (expected 'auto' or a positive "
            "integer); using 1" % (value,),
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return count


#: default parallel cost-model threshold: estimated scalar updates each
#: OpenMP thread must have to be worth waking.  Calibrated against the
#: dispatch/parallel-overhead microbenchmark (``benchmarks/bench_dispatch.py``):
#: entering a parallel region plus the ordered scatter-log replay costs tens
#: of microseconds, while the compiled loops retire an update in roughly a
#: nanosecond — so a thread needs a few tens of thousands of updates before
#: the team pays for itself.
PARALLEL_WORK_THRESHOLD = 32768


def parallel_work_threshold() -> int:
    """Scalar updates per thread before ``threads="auto"`` goes parallel.

    Reads ``$REPRO_PARALLEL_THRESHOLD`` (a positive integer); invalid
    values warn and fall back to the calibrated default, mirroring
    :func:`default_threads`.
    """
    import warnings

    value = os.environ.get("REPRO_PARALLEL_THRESHOLD")
    if value is None or value == "":
        return PARALLEL_WORK_THRESHOLD
    try:
        count = int(value)
        if count < 1:
            raise ValueError(value)
    except ValueError:
        warnings.warn(
            "ignoring REPRO_PARALLEL_THRESHOLD=%r (expected a positive "
            "integer); using %d" % (value, PARALLEL_WORK_THRESHOLD),
            RuntimeWarning,
            stacklevel=2,
        )
        return PARALLEL_WORK_THRESHOLD
    return count


def auto_thread_count(work: float, cpu: Optional[int] = None) -> int:
    """The cost model behind ``threads="auto"``: threads for *work* updates.

    ``work`` is the run's estimated parallel-nest scalar-update count (the
    C renderer's per-nest trip estimate, resolved against the actual
    arguments).  Each thread should carry roughly
    :func:`parallel_work_threshold` updates, so::

        threads = clamp(round(work / threshold), 1, cpu)

    Rounding to the *nearest* count (not floor division) means work just
    under an integer multiple of the threshold — 1.9x the threshold, say —
    gets the team it almost qualifies for instead of silently serializing.
    Small problems still stay serial — the parallel-region and
    scatter-log overhead would otherwise dominate (the observed t2/t4
    regressions on sub-100k-update kernels) — while large problems scale
    to the visible cores.  An *explicit* thread count never passes through
    this model: ``REPRO_THREADS=4`` (or ``threads=4``) always wins.
    """
    cpu = cpu_count() if cpu is None else int(cpu)
    if cpu <= 1:
        return 1
    if work is None or work != work or work < 0:  # None/NaN: no estimate
        return cpu
    threshold = parallel_work_threshold()
    return max(1, min(cpu, (int(work) + threshold // 2) // threshold))


_cpu_count_cache = None


def cpu_count() -> int:
    """Visible CPUs (CPU affinity respected where the OS exposes it)."""
    global _cpu_count_cache
    if _cpu_count_cache is None:
        try:
            _cpu_count_cache = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            _cpu_count_cache = os.cpu_count() or 1
    return _cpu_count_cache


def resolve_threads(value=None) -> int:
    """Collapse a ``threads`` setting onto a concrete positive count.

    ``None`` and ``"auto"`` resolve to the visible CPU count; anything
    else must already be a positive integer-like value.
    """
    if value is None or value == "auto":
        return cpu_count()
    count = int(value)
    if count < 1:
        raise ValueError("thread count must be >= 1, got %r" % (value,))
    return count


@dataclass(frozen=True)
class CompilerOptions:
    """Which transforms run, and how the kernel is lowered and executed."""

    # plan-level passes (Section 4.2)
    output_canonical: bool = True      # 4.2.2
    distributive: bool = True          # 4.2.7
    consolidate: bool = True           # 4.2.4
    group_branches: bool = True        # 4.2.6
    diagonal_split: bool = True        # 4.2.9
    lookup_table: bool = False         # 4.2.5 (opt-in)

    # loop-level transforms applied during lowering
    cse: bool = True                   # 4.2.1
    concordize: bool = True            # 4.2.3
    workspace: bool = True             # 4.2.8

    # lowering strategy
    vectorize_innermost: bool = True   # numpy-vectorize the dense rank loop

    # element dtype: float64 | float32 (tensor payloads, workspaces, the
    # output buffer and the C value type all follow it)
    dtype: str = field(default_factory=default_dtype)

    # execution backend: python | c | auto
    backend: str = field(default_factory=default_backend)

    # runtime thread count for the C backend: positive int | "auto"
    # (excluded from cache keys / persistence — see RUNTIME_FIELDS)
    threads: object = field(default_factory=default_threads)

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                "unknown backend %r (choices: %s)"
                % (self.backend, ", ".join(BACKEND_CHOICES))
            )
        if self.dtype not in DTYPE_CHOICES:
            raise ValueError(
                "unknown dtype %r (choices: %s)"
                % (self.dtype, ", ".join(DTYPE_CHOICES))
            )
        if self.threads != "auto" and (
            not isinstance(self.threads, int) or self.threads < 1
        ):
            raise ValueError(
                "threads must be 'auto' or a positive int, got %r"
                % (self.threads,)
            )

    def but(self, **kwargs) -> "CompilerOptions":
        """A copy with some switches flipped (ablation helper)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line switch summary: ``+on -off`` for booleans, ``name=value``
        for everything else, e.g. ``+cse -lookup_table backend=c``.

        Used by :meth:`CompiledKernel.explain` and the ``repro cache`` CLI so
        a cached kernel's configuration reads at a glance.
        """
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, bool):
                parts.append(("+" if value else "-") + f.name)
            else:
                parts.append("%s=%s" % (f.name, value))
        return " ".join(parts)

    def to_dict(self) -> dict:
        """Field name -> value, in declaration order (stable key material).

        Runtime-only fields (:data:`RUNTIME_FIELDS` — currently just
        ``threads``) are excluded: they do not change what gets compiled,
        so two requests differing only there must share a cache key and a
        persisted kernel must not pin the thread count it was built with.
        """
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in RUNTIME_FIELDS
        }

    @classmethod
    def from_dict(cls, data) -> "CompilerOptions":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown CompilerOptions fields: %s" % sorted(unknown)
            )
        return cls(**data)


#: everything off — the naive kernel the evaluation normalizes against.
NAIVE = CompilerOptions(
    output_canonical=False,
    distributive=False,
    consolidate=False,
    group_branches=False,
    diagonal_split=False,
    lookup_table=False,
    cse=False,
    concordize=True,   # naive kernels still need concordant iteration
    workspace=False,
    vectorize_innermost=True,
)

DEFAULT = CompilerOptions()
