"""Pass-pipeline configuration.

Every optimization of Section 4.2 can be toggled independently — the
ablation benchmarks flip these switches.  The defaults reproduce the
pipeline the paper's evaluation used (lookup tables are opt-in, as in the
artifact, whose generated MTTKRP kernels use separate diagonal blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class CompilerOptions:
    """Which transforms run, and how the kernel is lowered."""

    # plan-level passes (Section 4.2)
    output_canonical: bool = True      # 4.2.2
    distributive: bool = True          # 4.2.7
    consolidate: bool = True           # 4.2.4
    group_branches: bool = True        # 4.2.6
    diagonal_split: bool = True        # 4.2.9
    lookup_table: bool = False         # 4.2.5 (opt-in)

    # loop-level transforms applied during lowering
    cse: bool = True                   # 4.2.1
    concordize: bool = True            # 4.2.3
    workspace: bool = True             # 4.2.8

    # lowering strategy
    vectorize_innermost: bool = True   # numpy-vectorize the dense rank loop

    def but(self, **kwargs) -> "CompilerOptions":
        """A copy with some switches flipped (ablation helper)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line ``+on -off`` switch summary, e.g. ``+cse -lookup_table``.

        Used by :meth:`CompiledKernel.explain` and the ``repro cache`` CLI so
        a cached kernel's configuration reads at a glance.
        """
        return " ".join(
            ("+" if getattr(self, f.name) else "-") + f.name
            for f in fields(self)
        )

    def to_dict(self) -> dict:
        """Field name -> value, in declaration order (stable key material)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data) -> "CompilerOptions":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown CompilerOptions fields: %s" % sorted(unknown)
            )
        return cls(**data)


#: everything off — the naive kernel the evaluation normalizes against.
NAIVE = CompilerOptions(
    output_canonical=False,
    distributive=False,
    consolidate=False,
    group_branches=False,
    diagonal_split=False,
    lookup_table=False,
    cse=False,
    concordize=True,   # naive kernels still need concordant iteration
    workspace=False,
    vectorize_innermost=True,
)

DEFAULT = CompilerOptions()
