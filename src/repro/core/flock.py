"""Advisory inter-process lock files (cross-process single-flight).

A lock is a PID-stamped file created with ``O_CREAT | O_EXCL`` — atomic
on POSIX local filesystems (NFS before v4 does not guarantee it; the
artifact paths this guards are content-addressed, so a lost race there
costs a duplicate compile, never corruption).

Stale locks from dead holders are *reclaimed*: a contender that finds the
holder PID no longer alive renames the lock file to a unique name before
unlinking it, so exactly one contender breaks the lock even when several
discover the corpse simultaneously — the rename loser simply retries.
A lock file whose PID cannot be read yet (the holder is between ``open``
and ``write``) is given a short grace period before being treated as
stale.

Used by :mod:`repro.codegen.backends.ctoolchain` (one ``cc`` run per
content-addressed object across processes sharing ``$REPRO_C_CACHE``)
and :class:`repro.service.engine.KernelService` (one compile per cache
key across processes sharing a disk store).  Lives in :mod:`repro.core`
because both of those layers import it — the service package already
depends on the backends package, so placing it there would cycle.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Union

#: seconds an unreadable (empty / mid-write) lock file is trusted before
#: it is treated as stale.
UNREADABLE_GRACE = 10.0


class InterProcessLock:
    """A non-blocking, reclaimable PID lock file.

    Not reentrant and not thread-safe per instance — use one instance per
    acquisition attempt (they are two ints and a string).
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = str(path)
        self.held = False

    # ------------------------------------------------------------------
    def try_acquire(self) -> bool:
        """One acquisition attempt; reclaims a stale lock but does not
        wait on a live one."""
        for _ in range(2):  # second pass after a successful reclaim
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if not self._reclaim_stale():
                    return False
                continue
            except OSError:
                return False  # unwritable directory: behave as contended
            try:
                os.write(fd, b"%d\n" % os.getpid())
            finally:
                os.close(fd)
            self.held = True
            return True
        return False

    def acquire(self, timeout: float, poll: float = 0.05) -> bool:
        """Poll :meth:`try_acquire` for up to *timeout* seconds."""
        deadline = time.monotonic() + timeout
        while True:
            if self.try_acquire():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll)

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "InterProcessLock":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # ------------------------------------------------------------------
    def holder_pid(self) -> Optional[int]:
        """PID recorded in the lock file, or ``None`` when unreadable."""
        try:
            with open(self.path, "r") as handle:
                return int(handle.read().strip() or "x")
        except (OSError, ValueError):
            return None

    def _is_stale(self) -> bool:
        pid = self.holder_pid()
        if pid is None:
            # unreadable: either mid-write (fresh) or torn — trust it for
            # a grace period, then treat as stale
            try:
                age = time.time() - os.stat(self.path).st_mtime
            except OSError:
                return False  # vanished: not stale, just gone
            return age > UNREADABLE_GRACE
        if pid == os.getpid():
            return False  # our own (a reentrant misuse): never break it
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # holder is dead
        except PermissionError:
            return False  # alive, owned by another user
        except OSError:
            return False
        return False

    def _reclaim_stale(self) -> bool:
        """Break a stale lock; returns True when *this* process broke it
        (losers of the rename race return False and re-wait)."""
        if not self._is_stale():
            return False
        corpse = "%s.stale-%d" % (self.path, os.getpid())
        try:
            os.rename(self.path, corpse)  # exactly one renamer wins
        except OSError:
            return False
        try:
            os.unlink(corpse)
        except OSError:
            pass
        return True
