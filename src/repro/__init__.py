"""repro — a Python reproduction of SySTeC, the symmetric sparse tensor
compiler (Patel, Ahrens, Amarasinghe; CGO 2025).

Quickstart::

    import numpy as np
    from repro import compile_kernel, Tensor

    ssymv = compile_kernel("y[i] += A[i, j] * x[j]", symmetric={"A": True},
                           loop_order=("j", "i"))
    A = np.random.rand(100, 100)
    A = A + A.T                      # symmetric
    y = ssymv(A=A, x=np.random.rand(100))

See :mod:`repro.kernels` for the paper's kernel library, :mod:`repro.data`
for the evaluation's datasets and :mod:`repro.bench` for the experiment
harness.

For repeated compilation the :class:`KernelService` facade caches compiled
kernels by content address (in memory and optionally on disk) and executes
request batches with amortized preparation::

    from repro import KernelService

    service = KernelService(capacity=64, store=".repro-cache")
    ssymv = service.get_or_compile("y[i] += A[i, j] * x[j]",
                                   symmetric={"A": True})
"""

from repro.codegen.executor import ExecutionPlan
from repro.core.analysis import analyze_plan, describe_cost
from repro.core.compiler import (
    CompiledKernel,
    compile_kernel,
    naive_plan,
    optimize,
)
from repro.core.config import CompilerOptions, DEFAULT, NAIVE
from repro.core.printer import finch_syntax
from repro.core.symmetrize import symmetrize
from repro.core.verify import verify_plan_coverage
from repro.frontend.einsum import Access, Assignment, Literal
from repro.frontend.parser import parse_assignment
from repro.service import (
    BatchRequest,
    BatchResult,
    DiskStore,
    KernelService,
    LRUKernelCache,
    cache_key,
)
from repro.symmetry.partitions import Partition
from repro.tensor.coo import COO
from repro.tensor.symmetric_view import SymmetricView
from repro.tensor.tensor import Tensor

__version__ = "1.0.0"

__all__ = [
    "Access",
    "Assignment",
    "BatchRequest",
    "BatchResult",
    "COO",
    "CompiledKernel",
    "ExecutionPlan",
    "CompilerOptions",
    "DEFAULT",
    "DiskStore",
    "KernelService",
    "LRUKernelCache",
    "Literal",
    "NAIVE",
    "Partition",
    "SymmetricView",
    "Tensor",
    "analyze_plan",
    "cache_key",
    "compile_kernel",
    "describe_cost",
    "finch_syntax",
    "naive_plan",
    "optimize",
    "parse_assignment",
    "symmetrize",
    "verify_plan_coverage",
]
