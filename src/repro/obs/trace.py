"""Span tracing: a process-wide recorder with zero overhead when off.

A *span* is one timed region of the pipeline — a compiler pass, a cache
lookup, a plan dispatch — opened with :func:`span` as a context manager::

    with span("lower", einsum=str(assignment)):
        lowered = lower_plan(plan, ...)

When tracing is disabled (the default) :func:`span` returns a shared
null singleton whose ``__enter__``/``__exit__`` do nothing: the cost of
an instrumented site is one module-global load and an ``is None`` check,
which is what lets the hot dispatch path stay instrumented without
giving up its microsecond budget (``benchmarks/bench_dispatch.py``
asserts this stays within 5% of an uninstrumented dispatch).

Enable tracing with ``REPRO_TRACE=1`` in the environment (picked up at
import), programmatically via :func:`enable`, or scoped with the
:func:`tracing` context manager (which installs a fresh recorder and
restores the previous one — what tests and the ``repro trace`` CLI use).

Recorded spans carry wall-clock-anchored ``perf_counter_ns`` timestamps,
the recording thread id and the per-thread nesting depth, and export two
ways: :func:`chrome_trace` produces the Chrome ``trace_event`` JSON
document (load it in ``chrome://tracing`` or https://ui.perfetto.dev),
:func:`format_tree` renders a human-readable indented tree.

The recorder is bounded (:data:`DEFAULT_MAX_EVENTS`): a long-lived
process with tracing left on drops spans past the cap (counting them in
:attr:`TraceRecorder.dropped`) instead of growing without bound.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.core.config import env_flag

#: spans kept per recorder before further spans are counted but dropped.
DEFAULT_MAX_EVENTS = 100_000


class TraceEvent:
    """One completed span: name, ns timestamps, thread, depth, args."""

    __slots__ = ("name", "t0", "t1", "tid", "depth", "args")

    def __init__(self, name: str, t0: int, t1: int, tid: int, depth: int, args: Dict):
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.tid = tid
        self.depth = depth
        self.args = args

    @property
    def duration_ns(self) -> int:
        return self.t1 - self.t0

    def __repr__(self) -> str:
        return "TraceEvent(%s, %.3fms, depth=%d)" % (
            self.name,
            self.duration_ns / 1e6,
            self.depth,
        )


class TraceRecorder:
    """Accumulates completed spans, bounded, from any thread."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        self.max_events = int(max_events)
        self.events: List[TraceEvent] = []
        self.dropped = 0
        #: anchors for converting perf_counter_ns offsets to wall clock.
        self.epoch_ns = time.perf_counter_ns()
        self.epoch_wall = time.time()
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[str]:
        """This thread's open-span stack (names, for depth bookkeeping)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self.events) < self.max_events:
                self.events.append(event)
            else:
                self.dropped += 1

    def snapshot(self) -> List[TraceEvent]:
        """A stable copy of the recorded events (in completion order)."""
        with self._lock:
            return list(self.events)

    def clear(self) -> None:
        with self._lock:
            self.events = []
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)


class _Span:
    """An open span; records a :class:`TraceEvent` on exit."""

    __slots__ = ("_rec", "name", "args", "_t0", "_depth")

    def __init__(self, rec: TraceRecorder, name: str, args: Dict):
        self._rec = rec
        self.name = name
        self.args = args

    def add(self, **kwargs) -> None:
        """Attach late-resolved attributes (e.g. a lookup's outcome)."""
        self.args.update(kwargs)

    def __enter__(self) -> "_Span":
        stack = self._rec._stack()
        self._depth = len(stack)
        stack.append(self.name)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter_ns()
        rec = self._rec
        stack = rec._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        rec.record(
            TraceEvent(
                self.name,
                self._t0,
                t1,
                threading.get_ident(),
                self._depth,
                self.args,
            )
        )
        return False


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, **kwargs) -> None:
        pass


_NULL = _NullSpan()

#: the active recorder, or None when tracing is off.  Module-global so a
#: disabled span() is a single load + is-None check.
_recorder: Optional[TraceRecorder] = None


def span(name: str, **args):
    """Open a span named *name* (context manager).

    With tracing off this returns the shared null span: entering,
    exiting and :meth:`~_Span.add` are all no-ops.
    """
    rec = _recorder
    if rec is None:
        return _NULL
    return _Span(rec, name, args)


def enabled() -> bool:
    """Is a trace recorder installed?"""
    return _recorder is not None


def current() -> Optional[TraceRecorder]:
    """The active recorder (None when tracing is off)."""
    return _recorder


def set_recorder(rec: Optional[TraceRecorder]) -> None:
    """Install (or with None, remove) the process-wide recorder."""
    global _recorder
    _recorder = rec


def enable(max_events: int = DEFAULT_MAX_EVENTS) -> TraceRecorder:
    """Install a fresh recorder and return it (replaces any active one)."""
    rec = TraceRecorder(max_events=max_events)
    set_recorder(rec)
    return rec


def disable() -> Optional[TraceRecorder]:
    """Remove the active recorder; returns it so callers can restore."""
    rec = _recorder
    set_recorder(None)
    return rec


@contextmanager
def tracing(max_events: int = DEFAULT_MAX_EVENTS) -> Iterator[TraceRecorder]:
    """Scoped tracing: install a fresh recorder, restore the previous one.

    The yielded recorder holds every span completed inside the block —
    pass it to :func:`chrome_trace` / :func:`format_tree` afterwards.
    """
    previous = _recorder
    rec = TraceRecorder(max_events=max_events)
    set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def _require(recorder: Optional[TraceRecorder]) -> TraceRecorder:
    rec = recorder if recorder is not None else _recorder
    if rec is None:
        raise RuntimeError(
            "no trace recorder: set REPRO_TRACE=1, call obs.trace.enable() "
            "or pass the recorder from obs.tracing()"
        )
    return rec


def _json_safe(value):
    """Chrome's trace viewer wants plain JSON values in args."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def chrome_trace(recorder: Optional[TraceRecorder] = None) -> dict:
    """The recorded spans as a Chrome ``trace_event`` JSON document.

    Every span becomes a complete event (``"ph": "X"``) with microsecond
    ``ts``/``dur`` relative to the recorder's epoch; thread ids map to
    Chrome ``tid`` lanes.  Load the dumped JSON in ``chrome://tracing``
    or https://ui.perfetto.dev.
    """
    rec = _require(recorder)
    pid = os.getpid()
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for e in sorted(rec.snapshot(), key=lambda e: e.t0):
        events.append(
            {
                "name": e.name,
                "cat": "repro",
                "ph": "X",
                "ts": (e.t0 - rec.epoch_ns) / 1000.0,
                "dur": e.duration_ns / 1000.0,
                "pid": pid,
                "tid": e.tid,
                "args": {k: _json_safe(v) for k, v in e.args.items()},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "epoch_unix": rec.epoch_wall,
            "dropped_events": rec.dropped,
        },
    }


def write_chrome_trace(
    path: str, recorder: Optional[TraceRecorder] = None
) -> int:
    """Dump :func:`chrome_trace` JSON to *path*; returns the span count."""
    import json

    doc = chrome_trace(recorder)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
    return len(doc["traceEvents"]) - 1  # minus the process_name metadata


def format_tree(recorder: Optional[TraceRecorder] = None) -> str:
    """The recorded spans as an indented per-thread tree (human view)."""
    rec = _require(recorder)
    events = sorted(rec.snapshot(), key=lambda e: (e.tid, e.t0))
    if not events:
        return "(no spans recorded)"
    lines: List[str] = []
    tids = sorted({e.tid for e in events})
    for tid in tids:
        if len(tids) > 1:
            lines.append("[thread %d]" % tid)
        for e in events:
            if e.tid != tid:
                continue
            args = " ".join(
                "%s=%s" % (k, _json_safe(v)) for k, v in sorted(e.args.items())
            )
            lines.append(
                "%s%-*s %10.3f ms%s"
                % (
                    "  " * e.depth,
                    max(1, 36 - 2 * e.depth),
                    e.name,
                    e.duration_ns / 1e6,
                    ("  " + args) if args else "",
                )
            )
    if rec.dropped:
        lines.append("(+%d spans dropped past the %d-event cap)" % (rec.dropped, rec.max_events))
    return "\n".join(lines)


# honour the environment at import: REPRO_TRACE=1 records from process
# start, which is what the obs-enabled CI leg and ad-hoc debugging use.
if env_flag("REPRO_TRACE"):  # pragma: no cover - exercised in the CI env leg
    enable()
