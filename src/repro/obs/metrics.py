"""Counters and fixed-bucket latency histograms (the daemon's payload).

A minimal metrics facility in the spirit of Prometheus client libraries,
with the same zero-overhead-when-off contract as :mod:`repro.obs.trace`:
the module-level :func:`inc`/:func:`observe` helpers check one module
flag and return immediately while metrics are disabled, so instrumented
sites cost a function call and a boolean test.

Enable with ``REPRO_METRICS=1`` (read at import) or :func:`enable`.
Instrumented sites across the service layer then feed the process-wide
:class:`MetricsRegistry`:

* counters — ``service.requests``, ``service.origin.memory`` /
  ``.disk`` / ``.remote`` / ``.compiled``, ``service.remote.hits`` /
  ``.retries`` / ``.fallbacks`` / ``.errors`` / ``.artifact_rejected``,
  ``rewrite.calls`` / ``rewrite.applied``, ``store.puts`` /
  ``store.evictions`` …
* histograms — ``service.compile_seconds``, ``plan.dispatch_seconds``,
  ``serve.request_seconds``, ``batch.requests`` /
  ``batch.queue_depth`` …

``registry().to_dict()`` is the JSON payload ``repro stats --json``
serves (merged into ``ServiceStats``) — and the shape the ``repro
serve`` daemon's live ``stats`` endpoint returns.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import env_flag

#: default latency buckets (seconds): 1µs to 10s, quasi-logarithmic.
#: Wide enough for both a 1.3µs plan dispatch and a 100ms cold compile.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> int:
        return self.value


class Histogram:
    """Fixed upper-bound buckets plus count/sum/min/max.

    ``bounds`` are inclusive upper bounds (``value <= bound`` lands in
    that bucket); values above the last bound land in the overflow
    bucket.  Bucket counts are per-bucket (not cumulative); the exported
    dict labels each with its ``le`` bound, ``"+Inf"`` for the overflow.
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        buckets = [
            {"le": bound, "count": self.counts[i]}
            for i, bound in enumerate(self.bounds)
        ]
        buckets.append({"le": "+Inf", "count": self.counts[-1]})
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS
    ) -> Histogram:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(bounds)
            return hist

    def inc(self, name: str, n: int = 1) -> None:
        counter = self.counter(name)
        with self._lock:
            counter.inc(n)

    def observe(self, name: str, value: float) -> None:
        hist = self.histogram(name)
        with self._lock:
            hist.observe(value)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Alias of :meth:`to_dict` (the live-endpoint payload)."""
        return self.to_dict()

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "counters": {
                    name: c.to_dict() for name, c in sorted(self._counters.items())
                },
                "histograms": {
                    name: h.to_dict()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


#: the process-wide registry; always present so handles stay valid
#: across enable/disable flips.
_registry = MetricsRegistry()

_enabled = env_flag("REPRO_METRICS")


def registry() -> MetricsRegistry:
    return _registry


def enabled() -> bool:
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> bool:
    """Turn collection off; returns the previous enabled state."""
    global _enabled
    previous = _enabled
    _enabled = False
    return previous


def inc(name: str, n: int = 1) -> None:
    """Bump a counter iff metrics are enabled (the instrumented-site API)."""
    if _enabled:
        _registry.inc(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram sample iff metrics are enabled."""
    if _enabled:
        _registry.observe(name, value)


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Time a block into histogram *name* (no-op while disabled)."""
    if not _enabled:
        yield
        return
    start = perf_counter()
    try:
        yield
    finally:
        _registry.observe(name, perf_counter() - start)


def to_dict() -> dict:
    """The registry payload (regardless of the enabled flag)."""
    return _registry.to_dict()
