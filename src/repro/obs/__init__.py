"""``repro.obs`` — tracing, metrics and kernel profiling.

Three independent, zero-overhead-when-off facilities, each with its own
environment knob:

* :mod:`repro.obs.trace` (``REPRO_TRACE=1``) — spans over the compile
  pipeline, the kernel service and plan execution; exports Chrome
  ``trace_event`` JSON (``repro trace``) and a human tree
  (``repro compile --trace``).
* :mod:`repro.obs.metrics` (``REPRO_METRICS=1``) — counters and
  fixed-bucket latency histograms, merged into ``ServiceStats`` and
  served by ``repro stats --json``.
* :mod:`repro.obs.profile` (``REPRO_PROFILE=1``) — per-nest wall-time
  instrumentation compiled *into* C kernels, keyed separately so
  profiled builds never alias production artifacts.

The package is stdlib-only and sits below every other ``repro`` module
(it imports only :mod:`repro.core.config`), so any layer can instrument
itself without import cycles.
"""

from __future__ import annotations

from repro.obs import metrics, profile, trace
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.profile import NestProfile, NestReport, profile_kernel
from repro.obs.trace import (
    TraceRecorder,
    chrome_trace,
    format_tree,
    span,
    tracing,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NestProfile",
    "NestReport",
    "TraceRecorder",
    "chrome_trace",
    "format_tree",
    "metrics",
    "profile",
    "profile_kernel",
    "span",
    "state",
    "trace",
    "tracing",
    "write_chrome_trace",
]


def state() -> str:
    """Which facilities are live: ``"off"`` or e.g. ``"trace+metrics"``.

    Stamped onto perf-trajectory entries (``repro.bench.harness.record``)
    so a measurement taken with observability on can never masquerade as
    a production number.
    """
    active = [
        name
        for name, on in (
            ("trace", trace.enabled()),
            ("metrics", metrics.enabled()),
            ("profile", profile.enabled()),
        )
        if on
    ]
    return "+".join(active) if active else "off"
