"""Per-nest kernel profiling: measured wall time vs. the cost model.

With ``REPRO_PROFILE=1`` the C renderer wraps every top-level loop nest
in ``clock_gettime(CLOCK_MONOTONIC)`` timing that accumulates into a
static per-nest array inside the shared object, exported through
``repro_profile_*`` symbols.  A profiled build is a *different* artifact
from the production one on every level: the C source differs (so the
toolchain's content-addressed ``.so`` cache cannot alias them) and the
service cache key carries a ``profile`` field (so memory/disk caches
never hand a profiled kernel to a production caller or vice versa).

:func:`profile_kernel` runs a compiled kernel a few times on concrete
inputs and pairs each nest's measured seconds with the cost model's
:class:`~repro.codegen.backends.c.NestWork` estimate for the same
arguments — the ground truth PR 5's ``threads="auto"`` heuristic was
calibrated against, now measurable per nest instead of guessed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.core.config import env_flag


def enabled() -> bool:
    """Is per-nest profiling requested? (``REPRO_PROFILE``, read live —
    the value is captured into cache keys at canonicalization time and
    into generated C at render time.)"""
    return env_flag("REPRO_PROFILE")


@dataclass(frozen=True)
class NestProfile:
    """Raw accumulators read back from a profiled shared object."""

    #: accumulated seconds per top-level nest, in emission order.
    seconds: Tuple[float, ...]
    #: kernel invocations since the last reset.
    calls: int


@dataclass(frozen=True)
class NestReport:
    """One nest's measured time against its cost-model estimate."""

    nest: int
    seconds: float          # total over the profiled calls
    per_call: float         # seconds / calls
    share: float            # fraction of the kernel's measured nest time
    estimated_work: Optional[float]  # NestWork scalar-update estimate
    seconds_per_update: Optional[float]

    def describe(self) -> str:
        est = (
            "~%.3g updates, %.2f ns/update"
            % (self.estimated_work, 1e9 * self.seconds_per_update)
            if self.estimated_work
            else "no work estimate"
        )
        return "nest %d: %8.3f ms/call  (%4.1f%% of nests)  %s" % (
            self.nest,
            1e3 * self.per_call,
            100.0 * self.share,
            est,
        )


def read_profile(executable) -> Optional[NestProfile]:
    """The executable's accumulated per-nest times, or None when the
    build is not profiled (any backend's executables accept this)."""
    return executable.nest_profile()


def profile_kernel(
    kernel, tensors: Mapping[str, object], repeats: int = 10
) -> List[NestReport]:
    """Run *kernel* ``repeats`` times and report per-nest time vs. work.

    *kernel* is a :class:`~repro.core.compiler.CompiledKernel` built
    with ``REPRO_PROFILE=1`` on the C backend; *tensors* the argument
    mapping its einsum needs.  Raises ``RuntimeError`` for unprofiled
    builds (nothing to read).
    """
    executable = kernel.bound.executable
    if not getattr(executable, "profiled", False):
        raise RuntimeError(
            "kernel build is not profiled: compile with REPRO_PROFILE=1 "
            "on the C backend to get per-nest instrumentation"
        )
    plan = kernel.execution_plan(**tensors)
    executable.profile_reset()
    for _ in range(max(1, int(repeats))):
        plan()
    profile = executable.nest_profile()
    if profile is None or profile.calls == 0:
        raise RuntimeError("profiled kernel recorded no calls")
    model = getattr(executable, "profile_model", ())
    vlen = getattr(executable, "_vlen", None)
    total = sum(profile.seconds) or 1.0
    reports: List[NestReport] = []
    for nest, seconds in enumerate(profile.seconds):
        work: Optional[float] = None
        if nest < len(model) and model[nest] is not None:
            work = model[nest].resolve(plan.prepared, vlen)
        per_call = seconds / profile.calls
        reports.append(
            NestReport(
                nest=nest,
                seconds=seconds,
                per_call=per_call,
                share=seconds / total,
                estimated_work=work,
                seconds_per_update=(per_call / work) if work else None,
            )
        )
    return reports


def format_report(reports: List[NestReport]) -> str:
    return "\n".join(report.describe() for report in reports)
