"""The user-facing logical :class:`Tensor`.

A ``Tensor`` owns a COO payload plus an optional symmetry declaration, and
manufactures (and caches) the concrete views the compiled kernels consume:
permuted fibertree realizations, canonical packings, diagonal splits, and
full expansions for the naive baselines.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.coo import COO
from repro.tensor.fiber import DENSE, SPARSE, FiberTensor
from repro.tensor.symmetry_ops import (
    expand_symmetric,
    pack_canonical,
    split_diagonal,
)


class Tensor:
    """A logical sparse tensor, optionally declared symmetric.

    ``symmetric_modes`` is a tuple of tuples of mode numbers (the partition
    of modes carrying symmetry).  The payload may be stored canonically
    (only the canonical triangle) — constructors record which.
    """

    def __init__(
        self,
        coo: COO,
        symmetric_modes: Tuple[Tuple[int, ...], ...] = (),
        *,
        canonical: bool = False,
    ):
        self.coo = coo
        self.symmetric_modes = tuple(tuple(p) for p in symmetric_modes)
        self.canonical = canonical
        self._view_cache: Dict[Tuple, FiberTensor] = {}
        self._coo_cache: Dict[str, COO] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_dense(
        arr: np.ndarray, symmetric_modes: Tuple[Tuple[int, ...], ...] = ()
    ) -> "Tensor":
        return Tensor(COO.from_dense(arr), symmetric_modes)

    @staticmethod
    def from_coo(coo: COO, symmetric_modes=(), canonical: bool = False) -> "Tensor":
        return Tensor(coo, symmetric_modes, canonical=canonical)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.coo.shape

    @property
    def ndim(self) -> int:
        return self.coo.ndim

    @property
    def nnz(self) -> int:
        return self.coo.nnz

    @property
    def dtype(self) -> np.dtype:
        """The payload value dtype (float64 or float32)."""
        return self.coo.dtype

    @property
    def nontrivial_parts(self) -> Tuple[Tuple[int, ...], ...]:
        return tuple(p for p in self.symmetric_modes if len(p) >= 2)

    def astype(self, dtype) -> "Tensor":
        """This tensor with values cast to *dtype*.

        Returns ``self`` (with its warm view caches) when already there;
        otherwise a fresh :class:`Tensor` carrying the same symmetry
        declaration and canonical flag.
        """
        if np.dtype(dtype) == self.dtype:
            return self
        return Tensor(
            self.coo.astype(dtype),
            self.symmetric_modes,
            canonical=self.canonical,
        )

    def to_dense(self) -> np.ndarray:
        """Dense array of the *full* tensor (expanding a canonical payload)."""
        return self._full_coo().to_dense()

    # ------------------------------------------------------------------
    # symmetry filters
    # ------------------------------------------------------------------
    def _full_coo(self) -> COO:
        if "full" not in self._coo_cache:
            if self.canonical and self.nontrivial_parts:
                self._coo_cache["full"] = expand_symmetric(
                    self.coo, self.nontrivial_parts
                )
            else:
                self._coo_cache["full"] = self.coo
        return self._coo_cache["full"]

    def _canonical_coo(self) -> COO:
        if "canonical" not in self._coo_cache:
            if self.canonical or not self.nontrivial_parts:
                self._coo_cache["canonical"] = self.coo
            else:
                self._coo_cache["canonical"] = pack_canonical(
                    self.coo, self.nontrivial_parts
                )
        return self._coo_cache["canonical"]

    def _filtered_coo(self, tensor_filter: str) -> COO:
        """COO for a kernel-plan filter: full / all(canonical) / strict /
        diagonal."""
        if tensor_filter == "full":
            return self._full_coo()
        if tensor_filter == "all":
            return self._canonical_coo()
        if tensor_filter in ("strict", "diagonal"):
            key = "strict_diag"
            if key not in self._coo_cache:
                strict, diag = split_diagonal(
                    self._canonical_coo(), self.nontrivial_parts
                )
                self._coo_cache[key] = (strict, diag)
            strict, diag = self._coo_cache[key]
            return strict if tensor_filter == "strict" else diag
        raise ValueError("unknown tensor filter %r" % (tensor_filter,))

    # ------------------------------------------------------------------
    # fibertree views
    # ------------------------------------------------------------------
    def view(
        self,
        mode_order: Sequence[int],
        levels: Sequence[str],
        tensor_filter: str = "full",
    ) -> FiberTensor:
        """A (cached) fibertree realization: filter the payload, permute
        modes into storage order, build the level hierarchy."""
        key = (tuple(mode_order), tuple(levels), tensor_filter)
        if key not in self._view_cache:
            coo = self._filtered_coo(tensor_filter).permute(mode_order)
            self._view_cache[key] = FiberTensor(coo, levels)
        return self._view_cache[key]

    def __repr__(self) -> str:
        sym = " symmetric=%s" % (self.symmetric_modes,) if self.symmetric_modes else ""
        packed = " canonical" if self.canonical else ""
        return "Tensor(shape=%s, nnz=%d%s%s)" % (self.shape, self.nnz, sym, packed)


def default_levels(ndim: int) -> Tuple[str, ...]:
    """The paper's CSF-style default: dense outermost level, sparse below
    (CSC/CSR for matrices, Dense(Sparse(Sparse(...))) in higher dims)."""
    if ndim == 0:
        return ()
    return (DENSE,) + (SPARSE,) * (ndim - 1)
