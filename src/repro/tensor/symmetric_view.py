"""Symmetry-aware output storage (the paper's future-work item 3).

Section 7 proposes "symmetry-aware formats [that] could also eliminate or
simplify extra post-processing steps like replicating the canonical
triangle of a tensor to the noncanonical triangles".  This module provides
exactly that: :class:`SymmetricView` wraps an array that holds only the
canonical triangle of a visibly-symmetric kernel output and answers reads
at *any* coordinate by redirecting to the canonical one — no replication
pass, no mirrored storage.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np


class SymmetricView:
    """A read-only symmetric wrapper over a canonical-triangle payload.

    ``mode_parts`` lists the groups of modes across which the tensor is
    symmetric; the payload must contain valid data at every coordinate
    whose per-group indices are non-increasing (what the generated kernels
    write).  Reads at mirrored coordinates are redirected by sorting the
    group's indices — O(1) per access, no extra memory.
    """

    def __init__(self, payload: np.ndarray, mode_parts: Sequence[Sequence[int]]):
        self.payload = payload
        self.mode_parts = tuple(tuple(sorted(p)) for p in mode_parts if len(p) >= 2)
        for part in self.mode_parts:
            sizes = {payload.shape[m] for m in part}
            if len(sizes) > 1:
                raise ValueError(
                    "symmetric modes %s have unequal sizes %s" % (part, sizes)
                )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.payload.shape

    @property
    def ndim(self) -> int:
        return self.payload.ndim

    def canonical_coordinate(self, coord: Sequence[int]) -> Tuple[int, ...]:
        """The canonical (per-group non-increasing) mirror of *coord*."""
        coord = list(coord)
        for part in self.mode_parts:
            vals = sorted((coord[m] for m in part), reverse=True)
            for m, v in zip(part, vals):
                coord[m] = v
        return tuple(coord)

    def __getitem__(self, coord) -> Union[float, np.ndarray]:
        if not isinstance(coord, tuple):
            coord = (coord,)
        if len(coord) != self.ndim or not all(
            isinstance(c, (int, np.integer)) for c in coord
        ):
            raise IndexError(
                "SymmetricView supports full integer coordinates only"
            )
        return self.payload[self.canonical_coordinate(coord)]

    def to_dense(self) -> np.ndarray:
        """Materialize the full symmetric array (the eager alternative —
        equivalent to running the replication post-pass)."""
        from repro.codegen.runtime import replicate_output

        return replicate_output(self.payload, self.mode_parts)

    def __array__(self, dtype=None) -> np.ndarray:
        dense = self.to_dense()
        return dense.astype(dtype) if dtype is not None else dense

    def __repr__(self) -> str:
        return "SymmetricView(shape=%s, symmetric_modes=%s)" % (
            self.shape,
            list(self.mode_parts),
        )
