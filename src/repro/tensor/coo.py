"""Coordinate (COO) representation — the interchange format.

Every sparse tensor enters and leaves the system as a :class:`COO`:
an ``(ndim, nnz)`` integer coordinate array plus a value array.  Formats
(:mod:`repro.tensor.fiber`) are built from a sorted COO; symmetry packing
(:mod:`repro.tensor.symmetry_ops`) filters and expands COO coordinates.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


#: value dtypes a COO payload may carry (anything else is coerced to
#: float64, the historical behaviour).
SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _coerce_vals(vals: np.ndarray, dtype=None) -> np.ndarray:
    """Values in a supported float dtype: an explicit ``dtype`` wins,
    float32/float64 inputs are preserved, everything else (ints, bools,
    float16...) is promoted to float64."""
    vals = np.asarray(vals)
    if dtype is not None:
        target = np.dtype(dtype)
        if target not in SUPPORTED_DTYPES:
            raise ValueError(
                "unsupported value dtype %s (supported: float64, float32)"
                % target
            )
        return vals.astype(target, copy=False)
    if vals.dtype in SUPPORTED_DTYPES:
        return vals
    return vals.astype(np.float64)


class COO:
    """An n-dimensional sparse tensor in coordinate form.

    Duplicate coordinates are combined by addition at construction.  The
    value dtype (float64 by default, float32 preserved end to end) follows
    the ``vals`` array unless ``dtype`` forces one.
    """

    def __init__(
        self,
        coords: np.ndarray,
        vals: np.ndarray,
        shape: Sequence[int],
        *,
        sum_duplicates: bool = True,
        dtype=None,
    ):
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim == 1:
            coords = coords.reshape(1, -1)
        vals = _coerce_vals(vals, dtype)
        if coords.shape[0] != len(shape):
            raise ValueError(
                "coords has %d modes but shape has %d" % (coords.shape[0], len(shape))
            )
        if coords.shape[1] != vals.shape[0]:
            raise ValueError("coords and vals disagree on nnz")
        if coords.size and (
            coords.min(initial=0) < 0
            or (coords.max(axis=1, initial=0) >= np.asarray(shape)).any()
        ):
            raise ValueError("coordinates out of bounds for shape %s" % (shape,))
        self.shape = tuple(int(n) for n in shape)
        if sum_duplicates and coords.shape[1]:
            coords, vals = _sum_duplicates(coords, vals)
        self.coords = coords
        self.vals = vals

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    @property
    def dtype(self) -> np.dtype:
        """The value dtype (float64 or float32)."""
        return self.vals.dtype

    @staticmethod
    def empty(shape: Sequence[int], dtype=np.float64) -> "COO":
        return COO(
            np.zeros((len(shape), 0), dtype=np.int64),
            np.zeros(0, dtype=dtype),
            shape,
        )

    @staticmethod
    def from_dense(arr: np.ndarray, fill: float = 0.0) -> "COO":
        arr = _coerce_vals(arr)
        # compare against the fill *in the array's own dtype*: a float64
        # fill literal must not promote a float32 comparison (and zeros
        # that only exist after rounding to float32 must be dropped)
        mask = arr != arr.dtype.type(fill)
        coords = np.array(np.nonzero(mask), dtype=np.int64)
        return COO(coords, arr[mask], arr.shape, sum_duplicates=False)

    def to_dense(self, fill: float = 0.0) -> np.ndarray:
        # the fill adopts the payload dtype — a float32 tensor densifies
        # to a float32 array, not a silently-promoted float64 one
        out = np.full(self.shape, fill, dtype=self.vals.dtype)
        if self.nnz:
            if self.ndim == 0:
                out[()] = self.vals[0]
            else:
                out[tuple(self.coords)] = self.vals
        return out

    def astype(self, dtype) -> "COO":
        """This tensor with values cast to *dtype* (self when already there)."""
        if np.dtype(dtype) == self.vals.dtype:
            return self
        return COO(
            self.coords,
            self.vals.astype(dtype),
            self.shape,
            sum_duplicates=False,
        )

    # ------------------------------------------------------------------
    def permute(self, order: Sequence[int]) -> "COO":
        """Reorder modes (a transpose): mode ``t`` of the result is mode
        ``order[t]`` of self."""
        order = tuple(order)
        if sorted(order) != list(range(self.ndim)):
            raise ValueError("order %s is not a permutation" % (order,))
        return COO(
            self.coords[list(order)],
            self.vals,
            tuple(self.shape[m] for m in order),
            sum_duplicates=False,
        )

    def filter(self, mask: np.ndarray) -> "COO":
        return COO(
            self.coords[:, mask], self.vals[mask], self.shape, sum_duplicates=False
        )

    def sorted_lex(self) -> "COO":
        """Sort entries lexicographically by coordinate, mode 0 outermost."""
        if not self.nnz or self.ndim == 0:
            return self
        order = np.lexsort(self.coords[::-1])
        return COO(
            self.coords[:, order], self.vals[order], self.shape, sum_duplicates=False
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, COO):
            return NotImplemented
        a, b = self.sorted_lex(), other.sorted_lex()
        return (
            a.shape == b.shape
            and np.array_equal(a.coords, b.coords)
            and np.array_equal(a.vals, b.vals)
        )

    def __repr__(self) -> str:
        return "COO(shape=%s, nnz=%d)" % (self.shape, self.nnz)


def _sum_duplicates(coords: np.ndarray, vals: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    if coords.shape[0] == 0:
        # 0-dimensional tensor: every entry shares the empty coordinate.
        return coords[:, :1], np.array([vals.sum()])
    order = np.lexsort(coords[::-1])
    coords = coords[:, order]
    vals = vals[order]
    if coords.shape[1] == 0:
        return coords, vals
    diff = np.any(coords[:, 1:] != coords[:, :-1], axis=0)
    boundaries = np.concatenate(([True], diff))
    group = np.cumsum(boundaries) - 1
    summed = np.zeros(group[-1] + 1, dtype=vals.dtype)
    np.add.at(summed, group, vals)
    return coords[:, boundaries], summed
