"""Sparse tensor algebra utilities over COO.

Small, well-tested building blocks used by the data generators, baselines
and examples: elementwise combination, scaling, reductions, norms and
comparisons.  These are *library* operations — the compiled kernels never
call them; they exist so downstream users can manipulate inputs/outputs
without round-tripping through dense arrays.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.tensor.coo import COO


def add(a: COO, b: COO) -> COO:
    """Elementwise sum (union of patterns)."""
    if a.shape != b.shape:
        raise ValueError("shape mismatch: %s vs %s" % (a.shape, b.shape))
    coords = np.concatenate([a.coords, b.coords], axis=1)
    vals = np.concatenate([a.vals, b.vals])
    return COO(coords, vals, a.shape)


def scale(a: COO, factor: float) -> COO:
    """Multiply every stored value by a scalar."""
    if factor == 0.0:
        return COO.empty(a.shape)
    return COO(a.coords.copy(), a.vals * factor, a.shape, sum_duplicates=False)


def multiply(a: COO, b: COO) -> COO:
    """Elementwise (Hadamard) product — intersection of patterns."""
    if a.shape != b.shape:
        raise ValueError("shape mismatch: %s vs %s" % (a.shape, b.shape))
    if a.nnz == 0 or b.nnz == 0:
        return COO.empty(a.shape)
    a_sorted, b_sorted = a.sorted_lex(), b.sorted_lex()
    keys_a = _linear_keys(a_sorted)
    keys_b = _linear_keys(b_sorted)
    common, ia, ib = np.intersect1d(keys_a, keys_b, return_indices=True)
    return COO(
        a_sorted.coords[:, ia],
        a_sorted.vals[ia] * b_sorted.vals[ib],
        a.shape,
        sum_duplicates=False,
    )


def _linear_keys(coo: COO) -> np.ndarray:
    keys = np.zeros(coo.nnz, dtype=np.int64)
    for mode in range(coo.ndim):
        keys = keys * coo.shape[mode] + coo.coords[mode]
    return keys


def map_values(a: COO, fn: Callable[[np.ndarray], np.ndarray]) -> COO:
    """Apply a zero-preserving function to the stored values."""
    return COO(a.coords.copy(), fn(a.vals), a.shape, sum_duplicates=False)


def reduce_all(a: COO, op: str = "+") -> float:
    """Reduce every stored value (``+``/``min``/``max`` over nonzeros)."""
    if op not in ("+", "min", "max"):
        raise ValueError("unknown reduction %r" % (op,))
    if a.nnz == 0:
        from repro.frontend.einsum import REDUCE_IDENTITY

        return REDUCE_IDENTITY[op]
    if op == "+":
        return float(a.vals.sum())
    if op == "min":
        return float(a.vals.min())
    if op == "max":
        return float(a.vals.max())
    raise ValueError("unknown reduction %r" % (op,))


def frobenius_norm(a: COO) -> float:
    return float(np.sqrt((a.vals**2).sum()))


def allclose(a: COO, b: COO, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
    """Tolerant equality of two sparse tensors (pattern-insensitive)."""
    if a.shape != b.shape:
        return False
    diff = add(a, scale(b, -1.0))
    if diff.nnz == 0:
        return True
    scale_ref = max(frobenius_norm(a), frobenius_norm(b), 1.0)
    return bool(np.all(np.abs(diff.vals) <= atol + rtol * scale_ref))


def density(a: COO) -> float:
    total = 1
    for n in a.shape:
        total *= n
    return a.nnz / total if total else 0.0
