"""Finch-style fibertree tensor substrate.

Implements the storage side of the paper's Section 2.2: tensors as
hierarchies of per-mode *levels* (``Dense`` / ``Sparse`` over an ``Element``
leaf), so that ``CSR == Dense(Sparse(Element(0)))`` and the 3-D CSF format
is ``Dense(Sparse(Sparse(Element(0))))``.  The code generator iterates these
structures concordantly through their ``pos``/``idx`` arrays.

Also provides the symmetry-aware data preparation the compiler relies on:
canonical-triangle packing, diagonal splitting, and expansion of a packed
tensor back to its full (replicated) form for the naive baselines.
"""

from repro.tensor.coo import COO
from repro.tensor.fiber import FiberTensor
from repro.tensor.tensor import Tensor
from repro.tensor.symmetry_ops import (
    canonical_coords_mask,
    expand_symmetric,
    pack_canonical,
    split_diagonal,
    symmetrize_matrix,
)

__all__ = [
    "COO",
    "FiberTensor",
    "Tensor",
    "canonical_coords_mask",
    "expand_symmetric",
    "pack_canonical",
    "split_diagonal",
    "symmetrize_matrix",
]
