"""Fibertree (level-based) sparse tensor formats.

A :class:`FiberTensor` realizes a COO tensor as a hierarchy of levels, one
per mode, each either

* ``"dense"`` — the level owns every coordinate ``0..n-1``; positions are
  computed, nothing is stored; or
* ``"sparse"`` — the level stores a ``pos`` array (one slice per parent
  position) and an ``idx`` array of coordinates, as in CSR/CSF.

Dense levels must form a (possibly empty) prefix — exactly the shapes the
paper's formats use: CSR/CSC are ``(dense, sparse)``, the 3-D CSF of
Section 2.2 is ``(dense, sparse, sparse)``, and an all-``sparse`` tuple
gives the COO-like fully compressed tree.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.tensor.coo import COO

DENSE = "dense"
SPARSE = "sparse"


class FiberTensor:
    """A concrete fibertree realization of a sparse tensor.

    Attributes
    ----------
    shape : tuple of int
        Per-level dimension sizes, in storage order.
    levels : tuple of str
        ``"dense"`` / ``"sparse"`` per level (dense prefix only).
    pos, idx : dict mapping level -> int64 array
        Structure arrays for each sparse level.
    vals : float array (the COO payload's dtype: float64 or float32)
        Leaf values in storage order.
    """

    def __init__(self, coo: COO, levels: Sequence[str]):
        levels = tuple(levels)
        if len(levels) != coo.ndim:
            raise ValueError("need one level kind per mode")
        seen_sparse = False
        for kind in levels:
            if kind not in (DENSE, SPARSE):
                raise ValueError("unknown level kind %r" % (kind,))
            if kind == DENSE and seen_sparse:
                raise ValueError("dense levels must form a prefix")
            if kind == SPARSE:
                seen_sparse = True
        self.levels = levels
        self.shape = coo.shape
        self.pos: Dict[int, np.ndarray] = {}
        self.idx: Dict[int, np.ndarray] = {}
        self._build(coo.sorted_lex())

    # ------------------------------------------------------------------
    def _build(self, coo: COO) -> None:
        ndim = coo.ndim
        dense_prefix = 0
        while dense_prefix < ndim and self.levels[dense_prefix] == DENSE:
            dense_prefix += 1

        coords = coo.coords
        self.vals = coo.vals.copy()
        nnz = coo.nnz

        # parent slot of each entry at the first sparse level: the flattened
        # dense-prefix coordinate.
        n_slots = 1
        for mode in range(dense_prefix):
            n_slots *= coo.shape[mode]
        slots = np.zeros(nnz, dtype=np.int64)
        for mode in range(dense_prefix):
            slots = slots * coo.shape[mode] + coords[mode]

        parent = slots
        n_parents = n_slots
        for level in range(dense_prefix, ndim):
            level_coords = coords[level]
            if level == ndim - 1:
                # leaf level: idx holds every entry, pos segments by parent.
                self.pos[level] = _segment_pos(parent, n_parents, nnz)
                self.idx[level] = level_coords.copy()
            else:
                # interior sparse level: one idx entry per distinct
                # (parent, coordinate) pair.
                if nnz:
                    head = np.concatenate(
                        (
                            [True],
                            (parent[1:] != parent[:-1])
                            | (level_coords[1:] != level_coords[:-1]),
                        )
                    )
                else:
                    head = np.zeros(0, dtype=bool)
                fiber_ids = np.cumsum(head) - 1 if nnz else np.zeros(0, dtype=np.int64)
                heads = np.nonzero(head)[0]
                self.pos[level] = _segment_pos(
                    parent[heads] if nnz else np.zeros(0, dtype=np.int64),
                    n_parents,
                    len(heads),
                )
                self.idx[level] = level_coords[heads] if nnz else np.zeros(0, dtype=np.int64)
                parent = fiber_ids
                n_parents = len(heads)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    def arrays(self) -> Dict[str, np.ndarray]:
        """Flat name -> array mapping used by generated code
        (``pos0``, ``idx0``, ``pos1``, ..., ``vals``)."""
        out: Dict[str, np.ndarray] = {}
        for level in sorted(self.pos):
            out["pos%d" % level] = self.pos[level]
            out["idx%d" % level] = self.idx[level]
        out["vals"] = self.vals
        return out

    def to_coo(self) -> COO:
        """Reconstruct the COO form (storage order)."""
        ndim = len(self.levels)
        nnz = self.nnz
        coords = np.zeros((ndim, nnz), dtype=np.int64)
        self._fill_coords(coords)
        return COO(coords, self.vals.copy(), self.shape, sum_duplicates=False)

    def _fill_coords(self, coords: np.ndarray) -> None:
        ndim = len(self.levels)
        dense_prefix = 0
        while dense_prefix < ndim and self.levels[dense_prefix] == DENSE:
            dense_prefix += 1
        nnz = self.nnz
        if nnz == 0:
            return

        # walk levels bottom-up: expand each level's idx down to leaf slots.
        # leaf entries e have level-(ndim-1) coordinate idx[ndim-1][e]; the
        # parent position of leaf entry e is found by searching pos arrays.
        coords[ndim - 1] = self.idx[ndim - 1]
        parent_of = _parents_from_pos(self.pos[ndim - 1], nnz)
        for level in range(ndim - 2, dense_prefix - 1, -1):
            coords[level] = self.idx[level][parent_of]
            parent_of = _parents_from_pos(self.pos[level], len(self.idx[level]))[
                parent_of
            ]
        # dense prefix: decode the flattened slot id.
        slot = parent_of
        for level in range(dense_prefix - 1, -1, -1):
            coords[level] = slot % self.shape[level]
            slot = slot // self.shape[level]

    def __repr__(self) -> str:
        return "FiberTensor(levels=%s, shape=%s, nnz=%d)" % (
            self.levels,
            self.shape,
            self.nnz,
        )


def _segment_pos(parents: np.ndarray, n_parents: int, n_children: int) -> np.ndarray:
    """Build a ``pos`` array: ``pos[p]..pos[p+1]`` spans the children of
    parent position ``p`` (parents must be sorted)."""
    counts = np.bincount(parents, minlength=n_parents) if n_children else np.zeros(
        n_parents, dtype=np.int64
    )
    pos = np.zeros(n_parents + 1, dtype=np.int64)
    np.cumsum(counts, out=pos[1:])
    return pos


def _parents_from_pos(pos: np.ndarray, n_children: int) -> np.ndarray:
    """Inverse of :func:`_segment_pos`: the parent of each child position."""
    if n_children == 0:
        return np.zeros(0, dtype=np.int64)
    return np.searchsorted(pos, np.arange(n_children), side="right") - 1
