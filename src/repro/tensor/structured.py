"""Structured tensors: triangular, banded, and run-length-encoded.

SySTeC advertises support for "sparse *or otherwise structured*
(Triangular, Banded, Run-Length-Encoded) tensor operations" — in Finch
these are level formats; here structure enters the same way everything else
does: as a sparsity pattern realized through the fibertree views, plus
structure-specific constructors, predicates and a run-length compression
for value streams.

* triangular / banded matrices are first-class patterns (and the
  canonical-triangle packing the compiler performs *is* a triangular
  structured tensor);
* :class:`RunLengthVector` compresses a leaf value stream by runs — a
  Finch ``RunList``-style representation with O(log r) random access and a
  run iterator for generated code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.tensor.coo import COO
from repro.tensor.tensor import Tensor


# ----------------------------------------------------------------------
# triangular / banded patterns
# ----------------------------------------------------------------------
def triangular(
    arr: np.ndarray, upper: bool = False, strict: bool = False
) -> Tensor:
    """The (lower by default) triangular part of a matrix as a Tensor."""
    if arr.ndim != 2:
        raise ValueError("triangular expects a matrix")
    k = (1 if strict else 0) if upper else -(1 if strict else 0)
    part = np.triu(arr, k) if upper else np.tril(arr, k)
    return Tensor.from_dense(part)


def banded(arr: np.ndarray, bandwidth: int) -> Tensor:
    """Keep entries within ``|i - j| <= bandwidth``."""
    if arr.ndim != 2:
        raise ValueError("banded expects a matrix")
    if bandwidth < 0:
        raise ValueError("bandwidth must be >= 0")
    n, m = arr.shape
    i, j = np.indices((n, m))
    # zero out-of-band entries in the array's own dtype: a float64 zero
    # literal must not silently promote a float32 input
    zero = np.zeros((), dtype=arr.dtype) if arr.dtype.kind == "f" else 0.0
    return Tensor.from_dense(np.where(np.abs(i - j) <= bandwidth, arr, zero))


def is_triangular(coo: COO, upper: bool = False) -> bool:
    if coo.ndim != 2:
        return False
    if coo.nnz == 0:
        return True
    if upper:
        return bool(np.all(coo.coords[0] <= coo.coords[1]))
    return bool(np.all(coo.coords[0] >= coo.coords[1]))


def matrix_bandwidth(coo: COO) -> int:
    """The smallest b with all entries inside ``|i - j| <= b``."""
    if coo.ndim != 2:
        raise ValueError("bandwidth is defined for matrices")
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.coords[0] - coo.coords[1]).max())


# ----------------------------------------------------------------------
# run-length encoding
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunLengthVector:
    """A length-n vector stored as (ends, values) runs.

    ``ends[r]`` is the exclusive end of run ``r``; ``values[r]`` its value.
    This is the 1-D essence of Finch's RunList level: constant runs cost
    O(1) storage, lookup is a binary search.
    """

    ends: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        if len(self.ends) != len(self.values):
            raise ValueError("ends and values must align")
        if len(self.ends) and not np.all(np.diff(self.ends) > 0):
            raise ValueError("run ends must be strictly increasing")

    @staticmethod
    def compress(vec: np.ndarray) -> "RunLengthVector":
        vec = np.asarray(vec)
        if vec.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            vec = vec.astype(np.float64)  # preserve f32; promote the rest
        if vec.ndim != 1:
            raise ValueError("RunLengthVector compresses 1-D arrays")
        if len(vec) == 0:
            return RunLengthVector(
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=vec.dtype)
            )
        change = np.nonzero(vec[1:] != vec[:-1])[0]
        ends = np.concatenate([change + 1, [len(vec)]]).astype(np.int64)
        starts = np.concatenate([[0], ends[:-1]])
        return RunLengthVector(ends, vec[starts])

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.ends[-1]) if len(self.ends) else 0

    @property
    def n_runs(self) -> int:
        return len(self.ends)

    def __getitem__(self, i: int) -> float:
        if not 0 <= i < self.n:
            raise IndexError(i)
        run = int(np.searchsorted(self.ends, i, side="right"))
        return float(self.values[run])

    def runs(self) -> Iterator[Tuple[int, int, float]]:
        """Yield (start, end, value) per run — what a Finch-style kernel
        iterates instead of individual elements."""
        start = 0
        for end, value in zip(self.ends, self.values):
            yield start, int(end), float(value)
            start = int(end)

    def decompress(self) -> np.ndarray:
        out = np.empty(self.n, dtype=self.values.dtype)
        for start, end, value in self.runs():
            out[start:end] = value
        return out

    def dot(self, other: np.ndarray) -> float:
        """Run-aware dot product: one multiply per run, not per element."""
        other = np.asarray(other)
        if other.dtype.kind != "f":
            other = other.astype(np.float64)
        if other.shape != (self.n,):
            raise ValueError("length mismatch")
        total = 0.0
        for start, end, value in self.runs():
            if value != 0.0:
                total += value * other[start:end].sum()
        return total


def rle_matrix_vector(rows: Tuple[RunLengthVector, ...], x: np.ndarray) -> np.ndarray:
    """y = A x for a matrix stored as RLE rows — the structured-kernel
    shape Finch generates for RunList levels."""
    return np.array([row.dot(x) for row in rows])
