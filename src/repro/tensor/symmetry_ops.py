"""Symmetry-aware data preparation.

These run *outside* the timed kernels (the paper likewise excludes data
rearrangement from its timings):

* :func:`pack_canonical` — keep only the canonical triangle of a symmetric
  tensor (this is the "Optimizes Redundant Storage" column of Table 1);
* :func:`split_diagonal` — partition canonical coordinates into the strict
  triangle and the generalized diagonals for diagonal splitting (4.2.9);
* :func:`expand_symmetric` — replicate a canonical tensor back to its full
  form (the input the *naive* baselines consume);
* :func:`symmetrize_matrix` — ``A + A^T``, how the evaluation symmetrizes
  the asymmetric matrices of the Vuduc suite.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.tensor.coo import COO


def canonical_coords_mask(
    coo: COO, parts: Sequence[Sequence[int]], *, strict: bool = False
) -> np.ndarray:
    """Mask of entries whose coordinates are canonical.

    Within each symmetric group of modes (each part of size >= 2), the
    coordinates must be non-increasing in mode order — matching the
    generated kernels, whose outer loops carry the larger indices.  With
    ``strict=True`` they must be strictly decreasing (no diagonal).
    """
    mask = np.ones(coo.nnz, dtype=bool)
    for part in parts:
        modes = sorted(part)
        for a, b in zip(modes, modes[1:]):
            if strict:
                mask &= coo.coords[a] > coo.coords[b]
            else:
                mask &= coo.coords[a] >= coo.coords[b]
    return mask


def pack_canonical(coo: COO, parts: Sequence[Sequence[int]]) -> COO:
    """Keep only the canonical triangle of a symmetric tensor."""
    return coo.filter(canonical_coords_mask(coo, parts))


def split_diagonal(
    coo: COO, parts: Sequence[Sequence[int]]
) -> Tuple[COO, COO]:
    """Split canonical coordinates into (strict triangle, diagonals).

    A coordinate is diagonal when any symmetric group has two equal
    coordinates (Definition 2.4).
    """
    canonical = canonical_coords_mask(coo, parts)
    strict = canonical_coords_mask(coo, parts, strict=True)
    return coo.filter(strict), coo.filter(canonical & ~strict)


def expand_symmetric(coo: COO, parts: Sequence[Sequence[int]]) -> COO:
    """Replicate a canonical tensor to its full symmetric form.

    Every entry is emitted once per *distinct* permutation of its
    coordinates within each symmetric mode group (diagonal entries are not
    duplicated).  The result is what a non-symmetry-aware kernel iterates.
    """
    nontrivial = [sorted(p) for p in parts if len(p) >= 2]
    if not nontrivial or coo.nnz == 0:
        return coo
    coords_list = [coo.coords]
    vals_list = [coo.vals]
    base = coo.coords
    replicas = _distinct_group_permutations(base, nontrivial)
    for perm_coords in replicas:
        coords_list.append(perm_coords[0])
        vals_list.append(coo.vals[perm_coords[1]])
    coords = np.concatenate(coords_list, axis=1)
    vals = np.concatenate(vals_list)
    full = COO(coords, vals, coo.shape, sum_duplicates=False)
    return _drop_duplicates(full)


def _distinct_group_permutations(coords: np.ndarray, groups):
    """All non-identity mode permutations within the symmetric groups,
    applied to every entry; duplicates are filtered later."""
    ndim = coords.shape[0]
    results = []
    perms_per_group = [list(permutations(g)) for g in groups]

    def rec(group_no, mapping):
        if group_no == len(groups):
            if mapping != {m: m for m in mapping}:
                order = list(range(ndim))
                for src, dst in mapping.items():
                    order[dst] = src
                permuted = coords[order]
                results.append((permuted, np.arange(coords.shape[1])))
            return
        group = groups[group_no]
        for perm in perms_per_group[group_no]:
            new_mapping = dict(mapping)
            for src, dst in zip(group, perm):
                new_mapping[src] = dst
            rec(group_no + 1, new_mapping)

    rec(0, {})
    return results


def _drop_duplicates(coo: COO) -> COO:
    """Keep the first occurrence of each coordinate (values are equal by
    symmetry, so *any* occurrence works)."""
    if coo.nnz == 0:
        return coo
    order = np.lexsort(coo.coords[::-1])
    coords = coo.coords[:, order]
    vals = coo.vals[order]
    keep = np.concatenate(
        ([True], np.any(coords[:, 1:] != coords[:, :-1], axis=0))
    )
    return COO(coords[:, keep], vals[keep], coo.shape, sum_duplicates=False)


def symmetrize_matrix(coo: COO) -> COO:
    """``(A + A^T)`` for a square matrix COO — the evaluation's recipe for
    symmetrizing the asymmetric matrices of the Vuduc suite."""
    if coo.ndim != 2 or coo.shape[0] != coo.shape[1]:
        raise ValueError("symmetrize_matrix needs a square matrix")
    coords = np.concatenate([coo.coords, coo.coords[::-1]], axis=1)
    vals = np.concatenate([coo.vals, coo.vals])
    return COO(coords, vals, coo.shape)
