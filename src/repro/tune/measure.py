"""Measured evaluation of variants on real kernels.

The measurer compiles each compile-level variant (pass set, tile size,
OMP strategy) of one lowered kernel through the normal C backend —
pinning the same environment knobs a user would (``REPRO_PASSES`` /
``REPRO_TILE`` / ``REPRO_OMP_STRATEGY``), which also makes any active
tuning oracle inert for the builds (explicit env always outranks tuned
overrides) — binds it to one prepared argument set, and times only the
kernel's loops, exactly like :mod:`repro.bench`.

Before a variant is ever timed, its raw output buffer must be
bit-identical to the untuned baseline's.  A variant that diverges (the
``atomic`` scatter strategy reordering a ``+`` reduction, say) raises
:class:`~repro.tune.search.VariantRejected` and is dropped — the tuner
can only ever make kernels faster, never different.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.harness import (
    TimingStats,
    fingerprint_class,
    machine_fingerprint,
    time_callable_stats,
)
from repro.tune import db as tune_db
from repro.tune.search import (
    BASELINE,
    SearchResult,
    Variant,
    VariantRejected,
    successive_halving,
    variant_space,
)

#: the environment knobs a variant pins for its build.
_VARIANT_ENV = ("REPRO_PASSES", "REPRO_TILE", "REPRO_OMP_STRATEGY")


@contextmanager
def variant_env(variant: Variant):
    """Pin the compile-level environment to *variant* (restored on exit)."""
    saved = {name: os.environ.get(name) for name in _VARIANT_ENV}
    os.environ["REPRO_PASSES"] = variant.passes
    os.environ["REPRO_TILE"] = str(variant.tile_rows)
    os.environ["REPRO_OMP_STRATEGY"] = variant.omp_strategy
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


class VariantMeasurer:
    """Build/verify/time variants of one compiled kernel on one input set.

    ``kernel`` must be a C-backend :class:`~repro.core.compiler.CompiledKernel`
    built under the *baseline* environment (``variant_env(BASELINE)``); its
    executable seeds the build cache as the untuned reference.
    """

    def __init__(self, kernel, inputs: Dict, max_eval_s: float = 2.0):
        if kernel.backend != "c":
            raise VariantRejected(
                "tuning needs the C backend; this kernel runs on %r"
                % kernel.backend
            )
        from repro.codegen.runtime import REDUCE_IDENTITY

        self.kernel = kernel
        self.lowered = kernel.lowered
        self.max_eval_s = float(max_eval_s)
        self.prepared, self.shape = kernel.prepare(**inputs)
        self._fill_value = REDUCE_IDENTITY[self.lowered.output.reduce_op]
        #: compile_axes -> executable (the baseline build seeds the cache).
        self._builds = {BASELINE.compile_axes(): kernel.bound.executable}
        #: variant -> (out_buffer, bound call) once verified bit-identical.
        self._runners: Dict[Variant, Tuple[np.ndarray, object]] = {}
        out, call = self._bind(kernel.bound.executable)
        out.fill(self._fill_value)
        call(1)
        self.baseline_raw = np.array(out, copy=True)
        self._runners[BASELINE] = (out, call)
        #: shape facts for the db key (extents in lowering order + work).
        self.extents = [
            int(self.prepared[dim.name]) for dim in self.lowered.dims
        ]
        self.work = kernel.bound.executable.parallel_work(self.prepared)
        self.shape_key = tune_db.shape_class(self.extents, self.work)

    # ------------------------------------------------------------------
    def _bind(self, executable):
        out = self.kernel.bound.make_output_buffer(self.shape)
        return out, executable.bind(out, self.prepared)

    def _executable(self, variant: Variant):
        axes = variant.compile_axes()
        if axes not in self._builds:
            from repro.codegen.backends import get_backend
            from repro.codegen.backends.base import BackendError

            with variant_env(variant):
                try:
                    self._builds[axes] = get_backend("c").compile(
                        self.lowered, label="tune-%s" % variant.passes
                    )
                except (BackendError, OSError) as exc:
                    raise VariantRejected("build failed: %s" % exc)
        return self._builds[axes]

    def runner(self, variant: Variant):
        """The variant's bound ``(out, call)`` — verified bit-identical to
        the baseline on first use, :class:`VariantRejected` otherwise."""
        cached = self._runners.get(variant)
        if cached is not None:
            return cached
        from repro.codegen.backends.base import BackendError

        out, call = self._bind(self._executable(variant))
        out.fill(self._fill_value)
        try:
            call(variant.threads)
        except (BackendError, OSError) as exc:
            raise VariantRejected("run failed: %s" % exc)
        if not np.array_equal(out, self.baseline_raw):
            raise VariantRejected(
                "output not bit-identical to the untuned baseline"
            )
        self._runners[variant] = (out, call)
        return out, call

    def evaluate(self, variant: Variant, repeats: int) -> TimingStats:
        """Timed loops only (fill + call), ``repeats`` adaptive samples."""
        out, call = self.runner(variant)
        fill, fill_value, threads = out.fill, self._fill_value, variant.threads

        def run() -> None:
            fill(fill_value)
            call(threads)

        return time_callable_stats(
            run, repeats=repeats, min_time=0.0, max_time=self.max_eval_s
        )


@dataclass
class TuneReport:
    """One ``repro tune`` run: what was searched, picked, and recorded."""

    name: Optional[str]
    einsum: str
    dtype: str
    machine_class: str
    shape_key: str
    budget_s: float
    result: SearchResult
    params: Dict[str, object] = field(default_factory=dict)
    db_path: Optional[str] = None
    recorded: bool = False

    def to_dict(self) -> Dict[str, object]:
        result = self.result
        doc: Dict[str, object] = {
            "kernel": self.name,
            "einsum": self.einsum,
            "dtype": self.dtype,
            "machine_class": self.machine_class,
            "shape_class": self.shape_key,
            "budget_s": self.budget_s,
            "evaluations": result.evaluations,
            "rungs": result.rungs,
            "skipped": result.skipped,
            "rejected": {
                v.label(): reason for v, reason in result.rejected.items()
            },
            "params": dict(self.params),
            "db": self.db_path,
            "recorded": self.recorded,
        }
        if result.best is not None and result.best_stats is not None:
            doc["best"] = {
                "variant": result.best.label(),
                "threads": result.best.threads,
                "passes": result.best.passes,
                "tile_rows": result.best.tile_rows,
                "omp_strategy": result.best.omp_strategy,
                "min_s": result.best_stats.best,
                "median_s": result.best_stats.median,
            }
        if result.baseline_stats is not None:
            doc["baseline"] = {
                "min_s": result.baseline_stats.best,
                "median_s": result.baseline_stats.median,
            }
            doc["speedup_vs_baseline"] = result.speedup
        return doc

    def describe(self) -> str:
        result = self.result
        lines = [
            "tuned %s (%s, %s) at shape %s on %s"
            % (
                self.name or self.einsum,
                self.dtype,
                ", ".join("%s=%s" % kv for kv in sorted(self.params.items()))
                or "default inputs",
                self.shape_key,
                self.machine_class,
            ),
            "  %d evaluations over %d rungs in a %.1fs budget"
            " (%d rejected, %d unvisited)"
            % (
                result.evaluations,
                result.rungs,
                self.budget_s,
                len(result.rejected),
                result.skipped,
            ),
        ]
        if result.best is not None and result.best_stats is not None:
            lines.append(
                "  best: %s  min %.6fs  (%.2fx vs untuned baseline)"
                % (result.best.label(), result.best_stats.best, result.speedup)
            )
        else:
            lines.append("  no variant survived the search")
        for variant, reason in sorted(
            result.rejected.items(), key=lambda kv: kv[0].label()
        ):
            lines.append("  rejected %s: %s" % (variant.label(), reason))
        if self.recorded and self.db_path:
            lines.append("  recorded into %s" % self.db_path)
        return "\n".join(lines)


def _variant_signature(variant: Variant) -> Tuple[List[str], str]:
    """Resolve a variant's pass spec to (enabled names, signature text)."""
    from repro.codegen.backends.cpasses import PassConfig, parse_passes

    enabled = parse_passes(variant.passes)
    config = PassConfig(enabled=enabled, tile_rows=variant.tile_rows)
    return list(enabled), config.signature()


def tune_kernel(
    spec,
    inputs: Dict,
    budget_s: float = 30.0,
    dtype: str = "float64",
    db_path: Optional[str] = None,
    name: Optional[str] = None,
    variants: Optional[Sequence[Variant]] = None,
    clock=time.monotonic,
    params: Optional[Dict[str, object]] = None,
) -> TuneReport:
    """Search the variant space for one kernel and record the winner.

    ``spec`` is a kernel-library spec (anything with ``.compile``); the
    baseline kernel is compiled under the pinned baseline environment so
    neither user env nor an active oracle skews the reference point.
    When ``db_path`` is given the winning runtime variant (and, when it
    differs from the default build, the winning compile-level variant)
    is merged into the tuning database under this machine's class.
    """
    from repro.core.config import DEFAULT, cpu_count

    with variant_env(BASELINE):
        kernel = spec.compile(options=DEFAULT.but(backend="c", dtype=dtype))

    budget_s = float(budget_s)
    measurer = VariantMeasurer(
        kernel, inputs, max_eval_s=max(0.25, budget_s / 8.0)
    )
    if variants is None:
        fp = machine_fingerprint()
        variants = variant_space(
            cpus=cpu_count(), openmp=bool(fp.get("openmp"))
        )
    result = successive_halving(
        variants, measurer.evaluate, budget_s, clock=clock
    )

    einsum = str(kernel.plan.original)
    report = TuneReport(
        name=name,
        einsum=einsum,
        dtype=dtype,
        machine_class=fingerprint_class(),
        shape_key=measurer.shape_key,
        budget_s=budget_s,
        result=result,
        params=dict(params or {}),
        db_path=db_path,
    )
    best, best_stats = result.best, result.best_stats
    if db_path is not None and best is not None and best_stats is not None:
        enabled, signature = _variant_signature(best)
        shape_entry: Dict[str, object] = {
            "threads": best.threads,
            "passes": enabled,
            "tile_rows": best.tile_rows,
            "omp_strategy": best.omp_strategy,
            "signature": signature,
            "min_s": best_stats.best,
            "median_s": best_stats.median,
            "runs": best_stats.runs,
            "evaluations": result.evaluations,
            "budget_s": budget_s,
            "params": dict(params or {}),
        }
        if result.baseline_stats is not None:
            shape_entry["baseline_min_s"] = result.baseline_stats.best
            shape_entry["speedup_vs_baseline"] = result.speedup
        compile_entry = None
        if best.compile_axes() != BASELINE.compile_axes():
            compile_entry = {
                "passes": enabled,
                "tile_rows": best.tile_rows,
                "omp_strategy": best.omp_strategy,
                "signature": signature,
                "shape_class": measurer.shape_key,
                "speedup_vs_baseline": result.speedup,
            }
        tune_db.record_tuning(
            db_path,
            report.machine_class,
            machine_fingerprint(),
            tune_db.kernel_id(einsum, dtype),
            name,
            measurer.shape_key,
            shape_entry,
            compile_entry,
        )
        report.recorded = True
        # a process that tunes into its own active database should serve
        # the fresh entries without a restart
        from repro import tune as tune_mod

        tune_mod.reset()
    return report
