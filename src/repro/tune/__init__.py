"""Persistent autotuning: measured variant selection at plan-bind time.

The package follows :mod:`repro.obs`'s zero-overhead discipline: nothing
is loaded and nothing is consulted unless ``REPRO_TUNED`` names a tuning
database — the hot path costs one module-global check when tuning is
off.  With a database active, two integration points consult it:

* :meth:`repro.codegen.executor.BoundKernel.resolve_run_threads` asks
  :func:`active`'s oracle for a measured thread count when ``threads``
  is ``"auto"`` (falling back to the work-estimate cost model on any
  miss), and
* the C renderer and the service cache-key canonicalizer both call
  :func:`compile_overrides` for a measured pass set / tile size / OMP
  strategy — through one shared helper, so the cache key can never
  disagree with the rendered source.

Explicit environment pins always win: a user who sets ``REPRO_PASSES``,
``REPRO_TILE`` or ``REPRO_OMP_STRATEGY`` has overridden the tuner for
that axis, and ``REPRO_NO_TUNE=1`` disables lookups wholesale (the CI
perf-smoke guard uses this to prove the off path costs nothing).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

#: env var naming the tuning database to consult (off when unset).
ENV_DB = "REPRO_TUNED"
#: env var disabling all tuned lookups even when a database is named.
ENV_NO_TUNE = "REPRO_NO_TUNE"
#: env var with the default ``repro tune`` search budget (seconds spec).
ENV_BUDGET = "REPRO_TUNE_BUDGET"

_TRUE = ("1", "true", "yes", "on")

_UNSET = object()
#: the process-wide oracle: ``_UNSET`` until first consulted, then a
#: ``TuningOracle`` or ``None`` — the is-None check is the entire cost
#: of a lookup when tuning is off.
_oracle = _UNSET


def enabled_in_env() -> bool:
    """Whether the environment asks for tuned lookups at all."""
    if os.environ.get(ENV_NO_TUNE, "").strip().lower() in _TRUE:
        return False
    return bool(os.environ.get(ENV_DB))


def _load_from_env():
    if not enabled_in_env():
        return None
    from repro.tune.oracle import load_oracle

    return load_oracle(os.environ[ENV_DB])


def active():
    """The process-wide :class:`~repro.tune.oracle.TuningOracle`, or
    ``None`` when tuning is off / the database is absent or unreadable."""
    global _oracle
    if _oracle is _UNSET:
        _oracle = _load_from_env()
    return _oracle


def reset() -> None:
    """Forget the cached oracle; the next lookup re-reads the env/db."""
    global _oracle
    _oracle = _UNSET


def configure(path: Optional[str]) -> None:
    """Point the process at a database explicitly (``None`` turns tuning
    off); primarily for tests and the daemon's startup wiring."""
    global _oracle
    if path is None:
        _oracle = None
        return
    from repro.tune.oracle import load_oracle

    _oracle = load_oracle(path)


def default_budget(fallback: str = "30s") -> str:
    """The ``repro tune`` budget spec: ``$REPRO_TUNE_BUDGET`` or *fallback*."""
    return os.environ.get(ENV_BUDGET, "").strip() or fallback


# ----------------------------------------------------------------------
# compile-time consultation (shared by renderer and cache-key logic)
# ----------------------------------------------------------------------
def compile_overrides(
    einsum: Optional[str], dtype: str
) -> Tuple[Optional[object], Optional[str]]:
    """The tuned ``(PassConfig, omp_strategy)`` for one kernel, each
    ``None`` when untuned or pinned by explicit environment.

    Both the C renderer and :func:`repro.service.keys.canonicalize` call
    this with the same einsum/dtype, so a tuned build and its cache key
    are derived from the same answer.  Axis-by-axis env precedence:
    ``REPRO_PASSES``/``REPRO_TILE`` pin the pass config, and
    ``REPRO_OMP_STRATEGY`` pins the strategy.
    """
    if einsum is None:
        return None, None
    env_passes = (
        os.environ.get("REPRO_PASSES") is not None
        or os.environ.get("REPRO_TILE") is not None
    )
    env_strategy = os.environ.get("REPRO_OMP_STRATEGY") is not None
    if env_passes and env_strategy:
        return None, None
    oracle = active()
    if oracle is None:
        return None, None
    entry = oracle.compile_for(einsum, str(dtype))
    if entry is None:
        return None, None

    pass_config = None
    if not env_passes:
        from repro.codegen.backends.cpasses import PASS_ORDER, PassConfig

        names = entry.get("passes")
        if isinstance(names, (list, tuple)):
            enabled = tuple(n for n in PASS_ORDER if n in names)
            if "denormals" in enabled:
                # same toolchain gate as active_pass_config(): a tuned
                # entry from an FTZ-capable machine must not ask this
                # toolchain for what it cannot emit
                from repro.codegen.backends import ctoolchain

                if not ctoolchain.probe_ftz():
                    enabled = tuple(n for n in enabled if n != "denormals")
            try:
                tile_rows = max(0, int(entry.get("tile_rows", 0)))
            except (TypeError, ValueError):
                tile_rows = 0
            pass_config = PassConfig(enabled=enabled, tile_rows=tile_rows)

    strategy = None
    if not env_strategy:
        candidate = entry.get("omp_strategy")
        if candidate in ("auto", "serial", "atomic"):
            strategy = candidate
    return pass_config, strategy


def stats_dict() -> Dict[str, object]:
    """Counters for ``repro stats`` — meaningful even when tuning is off."""
    oracle = active()
    if oracle is None:
        return {"configured": False, "enabled": enabled_in_env()}
    out: Dict[str, object] = {"configured": True, "enabled": True}
    out.update(oracle.stats_dict())
    return out
