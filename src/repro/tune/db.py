"""The persistent tuning database (``TUNED.json``).

Layout mirrors the perf-trajectory conventions of
``BENCH_backends.json`` (:mod:`repro.bench.harness`): one merged,
diffable JSON document, atomic tmp-file + ``os.replace`` rewrites, and a
version field that retires stale schemas instead of misreading them.
Writers additionally serialize through the repo's advisory PID lock
(:class:`repro.core.flock.InterProcessLock`), so concurrent
``repro tune`` runs merge instead of clobbering each other.

The document is keyed three levels deep::

    machines.<fingerprint_class>.kernels."<einsum>|<dtype>"
        .compile            # best compile-level variant (passes/tile/omp)
        .shapes.<shape_class>   # best runtime variant per shape bucket

``<fingerprint_class>`` is :func:`repro.bench.harness.fingerprint_class`
(OS + ISA + cpu count); ``<shape_class>`` buckets a run's dimension
extents and work estimate by rounded log2, so nearby problem sizes share
one tuned entry while the serial->parallel crossover sizes stay distinct.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import Dict, Iterable, Mapping, Optional

from repro.core.flock import InterProcessLock

#: bump when the tuning-db schema changes shape.
TUNED_VERSION = 1

#: conventional database filename (written at the repo root).
TUNED_FILENAME = "TUNED.json"

#: seconds a writer waits on a concurrent tuner's lock before failing.
LOCK_TIMEOUT = 10.0


def log2_bucket(value) -> int:
    """Rounded log2 of a positive quantity (values < 1 clamp to bucket 0)."""
    try:
        v = float(value)
    except (TypeError, ValueError):
        return 0
    if v != v or v <= 1.0:
        return 0
    return int(round(math.log2(v)))


def shape_class(extents: Iterable[int], work=None) -> str:
    """Bucket one run's shape onto its tuning key.

    ``extents`` are the kernel's dimension arguments in lowering order;
    ``work`` is the executable's parallel scalar-update estimate (nnz
    proportional for sparse kernels, the natural "how big is this run"
    scalar).  Both are coarsened to rounded log2 — ``"e11x11/w17"`` —
    so a tuned entry measured at n=2000 serves n=2400 but not n=8000.
    """
    parts = "x".join(str(log2_bucket(e)) for e in extents)
    suffix = "-" if work is None else str(log2_bucket(work))
    return "e%s/w%s" % (parts or "-", suffix)


def kernel_id(einsum: str, dtype: str) -> str:
    """The per-kernel db key: the einsum is the kernel's semantic identity
    (shared with the service cache and persisted states), the dtype its
    numeric identity."""
    return "%s|%s" % (einsum, dtype)


def parse_machine_class(cls: str):
    """Split ``"linux-x86_64-c4"`` into ``(os_isa, cpus)`` for
    nearest-match comparisons; ``None`` when the string has no ``-cN``
    tail (foreign or hand-edited keys never match approximately)."""
    head, sep, tail = cls.rpartition("-c")
    if not sep or not head:
        return None
    try:
        cpus = int(tail)
    except ValueError:
        return None
    return head, max(1, cpus)


def load_db(path: str) -> Optional[Dict[str, object]]:
    """The tuning document at *path*, or ``None`` when absent/unreadable/
    wrong-versioned (a stale schema must not be misread as tuned truth)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("version") != TUNED_VERSION:
        return None
    if not isinstance(doc.get("machines"), dict):
        return None
    return doc


def record_tuning(
    path: str,
    machine_class: str,
    fingerprint: Mapping[str, object],
    kernel_key: str,
    kernel_name: Optional[str],
    shape_key: str,
    shape_entry: Mapping[str, object],
    compile_entry: Optional[Mapping[str, object]] = None,
    lock_timeout: float = LOCK_TIMEOUT,
) -> Dict[str, object]:
    """Merge one tuning result into the database at *path*.

    Read-merge-rewrite runs under the advisory lock; the rewrite itself
    is a tmp-file + ``os.replace`` so readers never see a torn document.
    Existing machines/kernels/shapes survive untouched, the re-tuned
    shape (and the kernel's compile recommendation, when given) is
    overwritten.  Returns the merged document.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    lock = InterProcessLock(path + ".lock")
    if not lock.acquire(lock_timeout):
        raise TimeoutError(
            "another tuner holds %s.lock (waited %.0fs)" % (path, lock_timeout)
        )
    try:
        doc = load_db(path) or {"version": TUNED_VERSION, "machines": {}}
        doc["version"] = TUNED_VERSION
        doc["updated"] = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
        machines = doc.setdefault("machines", {})
        section = machines.setdefault(machine_class, {})
        section["fingerprint"] = dict(fingerprint)
        kernels = section.setdefault("kernels", {})
        kernel = kernels.setdefault(kernel_key, {})
        if kernel_name:
            kernel["name"] = kernel_name
        if compile_entry is not None:
            kernel["compile"] = dict(compile_entry)
        shapes = kernel.setdefault("shapes", {})
        shapes[shape_key] = dict(shape_entry)
        kernel["shapes"] = {key: shapes[key] for key in sorted(shapes)}
        section["kernels"] = {key: kernels[key] for key in sorted(kernels)}
        doc["machines"] = {key: machines[key] for key in sorted(machines)}
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=False)
            f.write("\n")
        os.replace(tmp, path)
        return doc
    finally:
        lock.release()
