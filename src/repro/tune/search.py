"""The variant space and the budgeted search over it.

The space is the discrete grid classic empirical autotuners walk
(ATLAS/FFTW-style): per (kernel, shape, machine) every axis the runtime
can actually steer — thread count, OpenMP emission strategy, and the
loop-pass set + tile block size from the cpasses pipeline.  The search
is successive halving under a wall-clock budget: every variant gets a
cheap first measurement, each rung keeps the faster half and doubles the
repeat count, so the budget concentrates on the contenders.

Everything here is deterministic and injectable — the evaluator and the
clock are callables — so the convergence tests run on a synthetic timing
stub with no real sleeps and no compiler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import TimingStats

#: tile-pass row-block sizes the grid explores (0 = size at run time).
TILE_SIZES = (0, 32, 64, 128)


class VariantRejected(Exception):
    """A variant's output was not bit-identical to the untuned baseline
    (or it failed to build/run).  Rejected variants are dropped from the
    search and recorded in the report — never timed, never selected."""


@dataclass(frozen=True)
class Variant:
    """One point of the tuning grid.

    ``passes`` is a ``$REPRO_PASSES`` spec string (the same language users
    pin by hand), ``tile_rows`` the ``$REPRO_TILE`` block size it runs
    with, ``omp_strategy`` the emission mode, ``threads`` the runtime
    count.  The untuned baseline is ``Variant()`` — the defaults every
    un-pinned process compiles and runs with, serially.
    """

    threads: int = 1
    omp_strategy: str = "auto"
    passes: str = "default"
    tile_rows: int = 0

    def compile_axes(self) -> Tuple[str, int, str]:
        """The slice of the variant that changes the generated C (and so
        requires a distinct build): everything but ``threads``."""
        return (self.passes, self.tile_rows, self.omp_strategy)

    def label(self) -> str:
        parts = ["passes=%s" % self.passes]
        if self.tile_rows:
            parts.append("tile=%d" % self.tile_rows)
        if self.omp_strategy != "auto":
            parts.append("omp=%s" % self.omp_strategy)
        parts.append("t%d" % self.threads)
        return ",".join(parts)


#: the untuned reference point every search must measure.
BASELINE = Variant()


def variant_space(
    cpus: int = 1,
    openmp: bool = False,
    tile_sizes: Sequence[int] = TILE_SIZES,
) -> List[Variant]:
    """The grid for one machine: compile-level axes x runtime threads.

    Compile axes: the default pass set, no passes at all, the tile pass
    at each block size, and fission (the scatter-splitting prerequisite
    for better parallel scaling).  Runtime axes: serial plus the powers
    of two up to the visible cpu count; threaded variants additionally
    try the ``atomic`` scatter strategy — the bit-identity gate rejects
    it wherever atomics reorder a ``+`` reduction, which is exactly the
    measurement the guess-based default could never make.
    """
    compile_axes: List[Tuple[str, int]] = [("default", 0), ("none", 0)]
    compile_axes += [("default,+tile", t) for t in tile_sizes]
    compile_axes.append(("default,+fission", 0))

    thread_counts = [1]
    if openmp and cpus > 1:
        count = 2
        while count < cpus:
            thread_counts.append(count)
            count *= 2
        thread_counts.append(cpus)

    variants: List[Variant] = []
    seen = set()
    for passes, tile_rows in compile_axes:
        for threads in thread_counts:
            strategies = ("auto",) if threads == 1 else ("auto", "atomic")
            for strategy in strategies:
                v = Variant(
                    threads=threads,
                    omp_strategy=strategy,
                    passes=passes,
                    tile_rows=tile_rows,
                )
                if v not in seen:
                    seen.add(v)
                    variants.append(v)
    # the baseline leads: rung 0 measures in order, so even a budget too
    # small for the full grid always times the reference point first
    variants.sort(key=lambda v: v != BASELINE)
    return variants


def parse_budget(text) -> float:
    """``"5"``, ``"5s"``, ``"2m"`` -> seconds (CLI ``--budget`` values)."""
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        raw = str(text).strip().lower()
        scale = 1.0
        if raw.endswith("m"):
            raw, scale = raw[:-1], 60.0
        elif raw.endswith("s"):
            raw = raw[:-1]
        try:
            value = float(raw) * scale
        except ValueError:
            raise ValueError(
                "expected a budget like '5', '5s' or '2m', got %r" % (text,)
            )
    if value <= 0:
        raise ValueError("tuning budget must be positive, got %r" % (text,))
    return value


@dataclass
class SearchResult:
    """What one search measured and what it picked."""

    best: Optional[Variant]
    best_stats: Optional[TimingStats]
    baseline_stats: Optional[TimingStats]
    #: last measured stats per surviving variant.
    trials: Dict[Variant, TimingStats] = field(default_factory=dict)
    #: variant -> rejection reason (bit-identity / build failures).
    rejected: Dict[Variant, str] = field(default_factory=dict)
    evaluations: int = 0
    rungs: int = 0
    #: variants rung 0 never reached before the budget ran out.
    skipped: int = 0

    @property
    def speedup(self) -> float:
        """Best-over-baseline win (1.0 when either side is missing)."""
        if not self.best_stats or not self.baseline_stats:
            return 1.0
        if not self.best_stats.best:
            return 1.0
        return self.baseline_stats.best / self.best_stats.best


def successive_halving(
    variants: Sequence[Variant],
    evaluate: Callable[[Variant, int], TimingStats],
    budget_s: float,
    clock: Callable[[], float] = time.monotonic,
    min_repeats: int = 2,
) -> SearchResult:
    """Search *variants* under a wall-clock budget.

    ``evaluate(variant, repeats)`` returns a :class:`TimingStats` (or
    raises :class:`VariantRejected`); the search never calls it again for
    a variant once rejected.  Rung 0 measures the pool in order with
    ``min_repeats`` repeats until the deadline; each later rung keeps the
    faster half (by minimum time — the paper's statistic) and doubles the
    repeats, stopping when one variant remains or the budget is spent.

    A would-be winner other than the baseline must then hold its lead in
    a **final head-to-head duel**: alternating re-measurements of the
    baseline and the winner on the budget's reserved tail.  Rung order
    measures each variant in one block, so slow machine drift (frequency
    ramp-up, cache warming) can systematically flatter whichever variant
    runs later; interleaving cancels the drift, and only the duel's own
    minimums decide.  A winner that cannot beat the freshly re-measured
    baseline is demoted — the recorded speedup is one that replicates.
    """
    start = clock()
    deadline = start + float(budget_s)
    # reserve the budget's tail for the final duel so a grid big enough
    # to exhaust the rungs still gets its decision re-measured
    search_deadline = start + float(budget_s) * 0.75
    result = SearchResult(best=None, best_stats=None, baseline_stats=None)
    pool = list(variants)
    repeats = max(1, int(min_repeats))

    # rung 0: one cheap look at everything, budget permitting
    survivors: List[Variant] = []
    for index, variant in enumerate(pool):
        if index > 0 and clock() >= search_deadline:
            result.skipped = len(pool) - index
            break
        try:
            stats = evaluate(variant, repeats)
        except VariantRejected as exc:
            result.rejected[variant] = str(exc) or "rejected"
            continue
        result.evaluations += 1
        result.trials[variant] = stats
        survivors.append(variant)
    result.rungs = 1

    while len(survivors) > 1 and clock() < search_deadline:
        survivors.sort(key=lambda v: result.trials[v].best)
        survivors = survivors[: max(1, (len(survivors) + 1) // 2)]
        if len(survivors) <= 1:
            break
        repeats *= 2
        for variant in survivors:
            if clock() >= search_deadline:
                break
            try:
                stats = evaluate(variant, repeats)
            except VariantRejected as exc:  # flaky rejection on re-measure
                result.rejected[variant] = str(exc) or "rejected"
                result.trials.pop(variant, None)
                continue
            result.evaluations += 1
            result.trials[variant] = stats
        survivors = [v for v in survivors if v in result.trials]
        result.rungs += 1

    result.baseline_stats = result.trials.get(BASELINE)
    if result.trials:
        best = min(result.trials, key=lambda v: result.trials[v].best)
        result.best = best
        result.best_stats = result.trials[best]

    # the final duel: winner vs freshly re-measured baseline, alternating
    if (
        result.best is not None
        and result.best != BASELINE
        and BASELINE in result.trials
        and clock() < deadline
    ):
        contender = result.best
        duel: Dict[Variant, TimingStats] = {}
        rounds = 0
        while rounds < 3 and clock() < deadline:
            demoted = False
            # alternate who goes first so monotone drift across the duel
            # cannot systematically favor the later-measured side either
            order = (
                (BASELINE, contender)
                if rounds % 2 == 0
                else (contender, BASELINE)
            )
            for variant in order:
                try:
                    stats = evaluate(variant, repeats)
                except VariantRejected as exc:  # flaky contender: demote
                    result.rejected[variant] = str(exc) or "rejected"
                    result.trials.pop(variant, None)
                    demoted = True
                    break
                result.evaluations += 1
                held = duel.get(variant)
                if held is None or stats.best < held.best:
                    duel[variant] = stats
            if demoted:
                duel.pop(contender, None)
                break
            rounds += 1
        if BASELINE in duel:
            result.trials[BASELINE] = duel[BASELINE]
            result.baseline_stats = duel[BASELINE]
            if contender in duel:
                result.trials[contender] = duel[contender]
            # only the duel's own interleaved minimums decide, and the
            # contender must win by a real margin — a database entry that
            # buys under 2% is noise, and the default build needs no entry
            if (
                contender not in duel
                or duel[BASELINE].best <= duel[contender].best * 1.02
            ):
                result.best = BASELINE
                result.best_stats = duel[BASELINE]
            else:
                result.best_stats = duel[contender]
            result.rungs += 1
    return result
