"""Plan-bind-time lookups against the tuning database.

A :class:`TuningOracle` wraps one loaded ``TUNED.json`` document and
answers two questions on the compile/bind path:

* ``threads_for`` — the measured thread count for this kernel at this
  shape class (consulted by
  :meth:`repro.codegen.executor.BoundKernel.resolve_run_threads` when the
  setting is ``"auto"``), and
* ``compile_for`` — the measured pass set / tile size / OMP strategy for
  this kernel (consulted by the C renderer and the service cache-key
  canonicalizer, which must agree — both call through
  :func:`repro.tune.compile_overrides`).

Machine matching degrades gracefully: exact
:func:`~repro.bench.harness.fingerprint_class` first, then the nearest
class sharing OS + ISA (closest log2 cpu count), then a miss — and every
miss falls through to the existing cost model, so an absent or foreign
database can only ever cost one dict probe.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.obs import trace as obs_trace
from repro.tune.db import (
    kernel_id,
    load_db,
    log2_bucket,
    parse_machine_class,
    shape_class,
)


class TuningOracle:
    """Read-only view of one tuning database for one machine."""

    def __init__(
        self,
        doc: Mapping[str, object],
        path: Optional[str] = None,
        machine_class: Optional[str] = None,
    ):
        self.doc = doc
        self.path = path
        if machine_class is None:
            from repro.bench.harness import fingerprint_class

            machine_class = fingerprint_class()
        self.machine_class = machine_class
        self._kernels = self._resolve_machine()
        #: resolved-lookup memo — ``threads_for`` sits on the per-run
        #: dispatch path, so repeated binds of one (kernel, shape) pay a
        #: dict probe instead of re-deriving the shape class each call.
        self._memo: Dict[Tuple, Optional[int]] = {}
        #: lookup counters (mirrored into ``ServiceStats``/``repro stats``).
        self.lookups = 0
        self.hits = 0
        self.fallbacks = 0
        self.compile_hits = 0

    # ------------------------------------------------------------------
    def _resolve_machine(self) -> Dict[str, dict]:
        """The kernel table for this machine: exact class, else nearest."""
        machines = self.doc.get("machines")
        if not isinstance(machines, dict) or not machines:
            self.matched_class = None
            return {}
        section = machines.get(self.machine_class)
        if isinstance(section, dict):
            self.matched_class = self.machine_class
            return dict(section.get("kernels") or {})
        mine = parse_machine_class(self.machine_class)
        if mine is None:
            self.matched_class = None
            return {}
        os_isa, cpus = mine
        best = None
        for cls, candidate in machines.items():
            parsed = parse_machine_class(cls)
            if parsed is None or parsed[0] != os_isa:
                continue
            distance = abs(log2_bucket(parsed[1]) - log2_bucket(cpus))
            if best is None or distance < best[0]:
                best = (distance, cls, candidate)
        if best is None:
            self.matched_class = None
            return {}
        self.matched_class = best[1]
        return dict(best[2].get("kernels") or {})

    @property
    def exact_machine(self) -> bool:
        return self.matched_class == self.machine_class

    def kernel_entry(self, einsum: str, dtype: str) -> Optional[dict]:
        entry = self._kernels.get(kernel_id(einsum, str(dtype)))
        return entry if isinstance(entry, dict) else None

    # ------------------------------------------------------------------
    def threads_for(
        self,
        einsum: str,
        dtype: str,
        extents,
        work,
        cpu: int,
    ) -> Optional[int]:
        """The measured thread count for this run, or ``None`` (miss ->
        caller falls back to the cost model).  Emits a ``tune:lookup``
        span tagged with the resolution origin, so tuned plan binds are
        visible in ``repro trace`` exactly like service cache origins.
        With tracing off, repeated lookups of one (kernel, shape) are
        served from a memo — counters still advance per lookup.
        """
        self.lookups += 1
        memo_key = (einsum, str(dtype), tuple(extents), work, int(cpu))
        if not obs_trace.enabled() and memo_key in self._memo:
            tuned = self._memo[memo_key]
            if tuned is None:
                self.fallbacks += 1
            else:
                self.hits += 1
            return tuned
        shape_key = shape_class(extents, work)
        with obs_trace.span(
            "tune:lookup", kernel=einsum, shape=shape_key
        ) as sp:
            entry = self.kernel_entry(einsum, dtype)
            tuned = None
            if entry is not None:
                shaped = (entry.get("shapes") or {}).get(shape_key)
                if isinstance(shaped, dict) and "threads" in shaped:
                    try:
                        tuned = max(1, min(int(cpu), int(shaped["threads"])))
                    except (TypeError, ValueError):
                        tuned = None
            if tuned is None:
                self.fallbacks += 1
                sp.add(origin="costmodel")
            else:
                self.hits += 1
                sp.add(origin="tuned", threads=tuned)
        self._memo[memo_key] = tuned
        return tuned

    def compile_for(self, einsum: str, dtype: str) -> Optional[dict]:
        """The kernel's measured compile-level variant (``passes`` name
        list, ``tile_rows``, ``omp_strategy``), or ``None``."""
        entry = self.kernel_entry(einsum, dtype)
        if entry is None:
            return None
        compile_entry = entry.get("compile")
        if not isinstance(compile_entry, dict):
            return None
        self.compile_hits += 1
        return compile_entry

    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, object]:
        return {
            "db": self.path,
            "machine_class": self.machine_class,
            "matched_class": self.matched_class,
            "kernels": len(self._kernels),
            "lookups": self.lookups,
            "tuned": self.hits,
            "fallbacks": self.fallbacks,
            "compile_overrides": self.compile_hits,
        }

    def describe(self) -> str:
        if self.matched_class is None:
            match = "no matching machine class (cost-model fallback)"
        elif self.exact_machine:
            match = "machine class %s" % self.matched_class
        else:
            match = "nearest machine class %s (this is %s)" % (
                self.matched_class,
                self.machine_class,
            )
        return "tuned: %d kernels from %s, %s" % (
            len(self._kernels),
            self.path or "<memory>",
            match,
        )


def load_oracle(
    path: str, machine_class: Optional[str] = None
) -> Optional[TuningOracle]:
    """Build an oracle from the database at *path* (``None`` when the
    file is absent, unreadable or the wrong schema version)."""
    doc = load_db(path)
    if doc is None:
        return None
    return TuningOracle(doc, path=path, machine_class=machine_class)
