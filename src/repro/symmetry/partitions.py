"""Partitions of index names / tensor modes (Definition 2.2).

A :class:`Partition` records a (partial) symmetry: the tensor is invariant
under any permutation that only moves elements within a part.  Full symmetry
is the single-part partition; "no symmetry" is the all-singletons partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple, Union


@dataclass(frozen=True)
class Partition:
    """An ordered, canonicalized partition of hashable elements.

    Parts are stored sorted (each part internally sorted, parts sorted by
    their first element) so that equal partitions compare equal.
    """

    parts: Tuple[Tuple, ...]

    @staticmethod
    def of(parts: Iterable[Iterable]) -> "Partition":
        canon = tuple(sorted(tuple(sorted(p)) for p in parts if len(tuple(p)) > 0))
        seen = set()
        for part in canon:
            for item in part:
                if item in seen:
                    raise ValueError("element %r appears in two parts" % (item,))
                seen.add(item)
        return Partition(canon)

    @staticmethod
    def full(elements: Iterable) -> "Partition":
        """The one-part (fully symmetric) partition."""
        return Partition.of([tuple(elements)])

    @staticmethod
    def singletons(elements: Iterable) -> "Partition":
        """The trivial (asymmetric) partition."""
        return Partition.of([(e,) for e in elements])

    # ------------------------------------------------------------------
    @property
    def elements(self) -> Tuple:
        return tuple(e for part in self.parts for e in part)

    @property
    def nontrivial_parts(self) -> Tuple[Tuple, ...]:
        """Parts with at least two elements — the ones carrying symmetry."""
        return tuple(p for p in self.parts if len(p) >= 2)

    @property
    def is_trivial(self) -> bool:
        return not self.nontrivial_parts

    def part_of(self, element) -> Tuple:
        for part in self.parts:
            if element in part:
                return part
        raise KeyError(element)

    def same_part(self, a, b) -> bool:
        try:
            return b in self.part_of(a)
        except KeyError:
            return False

    def restrict(self, elements: Iterable) -> "Partition":
        """The induced partition on a subset of elements."""
        keep = set(elements)
        return Partition.of(
            [tuple(e for e in part if e in keep) for part in self.parts]
        )

    def savings_factor(self) -> int:
        """``prod |part|!`` — the redundancy factor this symmetry removes."""
        import math

        factor = 1
        for part in self.parts:
            factor *= math.factorial(len(part))
        return factor

    def __str__(self) -> str:
        return "".join("{%s}" % ", ".join(str(e) for e in part) for part in self.parts)


SymmetrySpec = Union[bool, str, Partition, Sequence[Sequence]]


def parse_mode_partition(spec: SymmetrySpec, ndim: int) -> Partition:
    """Interpret a user-facing symmetry spec as a partition of mode numbers.

    Accepted forms (modes are 0-based):

    * ``True`` — fully symmetric;
    * a :class:`Partition` of mode numbers — used as is (completed with
      singletons for unmentioned modes);
    * a sequence of sequences of mode numbers, e.g. ``[[0, 1], [2]]``;
    * a string of braced groups of mode numbers, e.g. ``"{0,1}{2}"``.
    """
    if spec is True:
        return Partition.full(range(ndim))
    if isinstance(spec, Partition):
        parts = list(spec.parts)
    elif isinstance(spec, str):
        import re

        groups = re.findall(r"\{([^}]*)\}", spec)
        if not groups:
            raise ValueError("cannot parse symmetry spec %r" % (spec,))
        parts = [
            tuple(int(tok) for tok in grp.replace(",", " ").split()) for grp in groups
        ]
    else:
        parts = [tuple(int(m) for m in part) for part in spec]

    mentioned = {m for part in parts for m in part}
    if not mentioned.issubset(set(range(ndim))):
        raise ValueError(
            "symmetry spec mentions modes %s outside range(%d)"
            % (sorted(mentioned - set(range(ndim))), ndim)
        )
    for m in range(ndim):
        if m not in mentioned:
            parts.append((m,))
    return Partition.of(parts)


def modes_to_index_partition(mode_partition: Partition, indices: Sequence[str]) -> Partition:
    """Translate a partition of modes into a partition of the index names
    bound at those modes by a particular access.

    Raises ``ValueError`` if the same index appears in two different parts
    (the access would contradict the declared symmetry).
    """
    parts = []
    for part in mode_partition.parts:
        names = sorted({indices[m] for m in part})
        parts.append(tuple(names))
    merged = _merge_overlaps(parts)
    return Partition.of(merged)


def _merge_overlaps(parts):
    """Union-find style merge of overlapping parts (an index repeated across
    parts of an access, e.g. ``A[i, i, j]``, fuses the parts)."""
    merged = [set(p) for p in parts]
    changed = True
    while changed:
        changed = False
        for i in range(len(merged)):
            for j in range(i + 1, len(merged)):
                if merged[i] & merged[j]:
                    merged[i] |= merged[j]
                    del merged[j]
                    changed = True
                    break
            if changed:
                break
    return [tuple(sorted(p)) for p in merged]
