"""Symmetry detection on assignments.

Two sources of symmetry feed the symmetrizer:

* **declared input symmetry** — the user supplies a partition of modes for
  each symmetric input tensor; the indices bound across a nontrivial part
  become permutable;
* **assignment automorphisms** — permutations of index names under which the
  normalized right-hand side is invariant and the output index *set* is
  preserved.  These detect *visible* output symmetry (the permutation moves
  output indices: SSYRK's ``C[i,j] = A[i,k] * A[j,k]``) and *invisible*
  output symmetry (it fixes the output: SYPRD, MTTKRP) per Example 3.1 of
  the paper, even when no input tensor is symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.frontend.einsum import Assignment
from repro.symmetry.partitions import (
    Partition,
    modes_to_index_partition,
)

#: safety valve for the brute-force automorphism search (8! = 40320 checks).
MAX_AUTOMORPHISM_INDICES = 8

ModeParts = Mapping[str, Tuple[Tuple[int, ...], ...]]


def default_rank(assignment: Assignment, loop_order: Optional[Sequence[str]] = None) -> Dict[str, int]:
    """Rank of each index used for normalization: position in *loop_order*
    if given, otherwise first-appearance order."""
    if loop_order is not None:
        rank = {idx: pos for pos, idx in enumerate(loop_order)}
        for idx in assignment.free_indices:
            rank.setdefault(idx, len(rank))
        return rank
    return {idx: pos for pos, idx in enumerate(assignment.free_indices)}


def input_symmetric_indices(
    assignment: Assignment, symmetric_modes: ModeParts
) -> List[Tuple[str, ...]]:
    """Index-name parts induced by declared input symmetries.

    For each access to a symmetric tensor, the mode partition is translated
    into a partition of the index names it binds; parts of size >= 2 are
    returned.
    """
    parts: List[Tuple[str, ...]] = []
    for acc in assignment.accesses:
        mode_parts = symmetric_modes.get(acc.tensor)
        if not mode_parts:
            continue
        index_partition = modes_to_index_partition(
            Partition.of(mode_parts), acc.indices
        )
        for part in index_partition.nontrivial_parts:
            if part not in parts:
                parts.append(part)
    return parts


def assignment_automorphisms(
    assignment: Assignment,
    symmetric_modes: ModeParts,
    rank: Optional[Mapping[str, int]] = None,
) -> Tuple[Dict[str, str], ...]:
    """All index permutations leaving the normalized RHS invariant while
    mapping the output index set onto itself.

    The identity is always included.  The search is brute force over
    permutations of the free indices — assignments have a handful of
    indices, so this is cheap and exact.
    """
    free = assignment.free_indices
    if len(free) > MAX_AUTOMORPHISM_INDICES:
        raise ValueError(
            "too many indices (%d) for automorphism search" % len(free)
        )
    if rank is None:
        rank = default_rank(assignment)
    out_set = frozenset(assignment.lhs.indices)
    base = assignment.normalized(symmetric_modes, rank)
    base_rhs = base.operands

    autos: List[Dict[str, str]] = []
    for perm in permutations(free):
        sigma = dict(zip(free, perm))
        if frozenset(sigma[i] for i in out_set) != out_set:
            continue
        candidate = assignment.substitute(sigma).normalized(symmetric_modes, rank)
        if candidate.operands == base_rhs:
            autos.append(sigma)
    return tuple(autos)


def _orbits(autos: Sequence[Mapping[str, str]], elements: Sequence[str]) -> List[Tuple[str, ...]]:
    """Orbit partition of *elements* under the permutation group *autos*."""
    parent = {e: e for e in elements}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for sigma in autos:
        for a, b in sigma.items():
            if a in parent and b in parent:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[ra] = rb
    groups: Dict[str, List[str]] = {}
    for e in elements:
        groups.setdefault(find(e), []).append(e)
    return [tuple(sorted(g)) for g in groups.values()]


@dataclass(frozen=True)
class OutputSymmetry:
    """Detected output symmetry of an assignment.

    ``visible`` partitions the output *mode positions* (Example 3.1: the
    output tensor itself is symmetric and may be restricted to its canonical
    triangle then replicated).  ``invisible`` partitions reduction *index
    names* (equivalent updates hit the same location and fold into a scale
    factor).
    """

    visible: Partition
    invisible: Partition

    @property
    def has_visible(self) -> bool:
        return not self.visible.is_trivial

    @property
    def has_invisible(self) -> bool:
        return not self.invisible.is_trivial


def detect_output_symmetry(
    assignment: Assignment,
    symmetric_modes: ModeParts,
    rank: Optional[Mapping[str, int]] = None,
) -> OutputSymmetry:
    """Classify the output symmetry of *assignment* (visible / invisible)."""
    autos = assignment_automorphisms(assignment, symmetric_modes, rank)
    out_indices = assignment.lhs.indices
    red_indices = assignment.reduction_indices

    visible_orbits = _orbits(autos, out_indices)
    pos_of = {idx: m for m, idx in enumerate(out_indices)}
    visible = Partition.of(
        [tuple(pos_of[i] for i in orbit) for orbit in visible_orbits]
    )

    fixing = [s for s in autos if all(s[i] == i for i in out_indices if i in s)]
    invisible = Partition.of(_orbits(fixing, red_indices)) if red_indices else Partition.of([])
    return OutputSymmetry(visible=visible, invisible=invisible)


def permutable_indices(
    assignment: Assignment,
    symmetric_modes: ModeParts,
    loop_order: Sequence[str],
) -> Tuple[str, ...]:
    """The ordered set ``P = (p1, ..., pn)`` of permutable indices.

    Union of (a) indices bound across nontrivial parts of declared input
    symmetries and (b) nontrivial orbits of assignment automorphisms; ordered
    *innermost loop first* so that the canonical-triangle chain
    ``p1 <= ... <= pn`` bounds each inner loop by the outer ones (this is the
    topological order of step 2 in Section 4.1).
    """
    members = set()
    for part in input_symmetric_indices(assignment, symmetric_modes):
        members.update(part)
    autos = assignment_automorphisms(assignment, symmetric_modes)
    for orbit in _orbits(autos, assignment.free_indices):
        if len(orbit) >= 2:
            members.update(orbit)

    missing = members.difference(loop_order)
    if missing:
        raise ValueError(
            "permutable indices %s not in loop order %s"
            % (sorted(missing), tuple(loop_order))
        )
    inner_first = tuple(reversed(tuple(loop_order)))
    return tuple(i for i in inner_first if i in members)
