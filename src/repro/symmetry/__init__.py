"""Symmetry machinery: partitions, equivalence groups, permutation groups.

Implements the combinatorial core of the paper (Sections 2.1 and 4.1):

* :class:`Partition` — a partition of index names, describing a (partial)
  symmetry (Definition 2.2);
* equivalence groups / patterns — the tensor generalization of diagonals
  (Definition 4.1), enumerated as chains of ``=`` / ``<`` relations between
  consecutively ordered permutable indices;
* unique symmetry groups ``S_P|E`` (Definition 4.2) — the permutations that
  must be applied to the assignment for each equivalence group;
* automorphism detection — finds visible and invisible *output* symmetry
  (Example 3.1) even when no input is symmetric (e.g. SSYRK).
"""

from repro.symmetry.partitions import Partition
from repro.symmetry.groups import (
    EquivalencePattern,
    enumerate_patterns,
    unique_permutations,
)
from repro.symmetry.detect import (
    OutputSymmetry,
    assignment_automorphisms,
    detect_output_symmetry,
    permutable_indices,
)

__all__ = [
    "EquivalencePattern",
    "OutputSymmetry",
    "Partition",
    "assignment_automorphisms",
    "detect_output_symmetry",
    "enumerate_patterns",
    "permutable_indices",
    "unique_permutations",
]
