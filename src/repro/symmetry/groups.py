"""Equivalence groups and unique symmetry groups (Definitions 4.1 and 4.2).

Given the ordered tuple of permutable indices ``P = (p1, ..., pn)`` with the
canonical-triangle constraint ``p1 <= ... <= pn``, every coordinate of the
triangle satisfies exactly one *equivalence pattern*: a chain assigning
either ``=`` or ``<`` to each consecutive pair.  There are ``2**(n-1)``
patterns; the all-``<`` one is the strict (off-diagonal) triangle and the
rest are the generalized diagonals.

For each pattern ``E`` the *unique symmetry group* ``S_P|E`` is the set of
permutations that generate every distinct update of the full iteration space
from one canonical read.  We represent a permutation as the tuple ``t`` where
slot ``j`` of the rewritten assignment receives index ``p[t[j]]`` (i.e. the
substitution ``p_j -> p_{t[j]}``), and keep exactly those ``t`` in which the
members of each equal-run appear in increasing slot order — applying two
permutations that differ only by a swap of equal indices would perform the
same update twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations, product
from typing import Dict, Iterator, List, Sequence, Tuple

EQ = "="
LT = "<"


@dataclass(frozen=True)
class EquivalencePattern:
    """One equivalence group over ordered permutable indices.

    ``indices`` is the canonical ordering ``(p1, ..., pn)``; ``relations``
    has length ``n - 1`` with ``relations[t]`` in ``{"=", "<"}`` relating
    ``p[t]`` and ``p[t+1]``.
    """

    indices: Tuple[str, ...]
    relations: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.relations) != max(len(self.indices) - 1, 0):
            raise ValueError("need exactly n-1 relations")
        for rel in self.relations:
            if rel not in (EQ, LT):
                raise ValueError("bad relation %r" % (rel,))

    # ------------------------------------------------------------------
    @property
    def is_strict(self) -> bool:
        """True for the off-diagonal (no equalities) pattern."""
        return all(rel == LT for rel in self.relations)

    @property
    def has_equality(self) -> bool:
        return not self.is_strict

    def runs(self) -> Tuple[Tuple[int, ...], ...]:
        """Maximal runs of equal positions, e.g. ``(=, <)`` -> ((0,1),(2,))."""
        runs: List[List[int]] = [[0]] if self.indices else []
        for t, rel in enumerate(self.relations):
            if rel == EQ:
                runs[-1].append(t + 1)
            else:
                runs.append([t + 1])
        return tuple(tuple(r) for r in runs)

    def index_runs(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple(tuple(self.indices[i] for i in run) for run in self.runs())

    def representative(self) -> Dict[str, str]:
        """Map each index to the first member of its equal-run.

        Substituting representatives makes assignments that denote the same
        update under this pattern's equalities syntactically identical.
        """
        rep: Dict[str, str] = {}
        for run in self.runs():
            head = self.indices[run[0]]
            for i in run:
                rep[self.indices[i]] = head
        return rep

    def conditions(self) -> Tuple[Tuple[str, str, str], ...]:
        """The pattern as ``(left, rel, right)`` comparisons between
        consecutive indices, with rel in ``{"==", "<"}``."""
        out = []
        for t, rel in enumerate(self.relations):
            out.append(
                (self.indices[t], "==" if rel == EQ else "<", self.indices[t + 1])
            )
        return tuple(out)

    def matches(self, coord: Sequence[int]) -> bool:
        """Whether a canonical coordinate tuple satisfies this pattern."""
        for t, rel in enumerate(self.relations):
            a, b = coord[t], coord[t + 1]
            if rel == EQ and a != b:
                return False
            if rel == LT and not a < b:
                return False
        return True

    def __str__(self) -> str:
        if not self.indices:
            return "()"
        bits = [self.indices[0]]
        for rel, idx in zip(self.relations, self.indices[1:]):
            bits.append(" %s %s" % ("==" if rel == EQ else "<", idx))
        return "".join(bits)


def enumerate_patterns(indices: Sequence[str]) -> Tuple[EquivalencePattern, ...]:
    """All ``2**(n-1)`` equivalence patterns over ordered *indices*.

    The strict pattern comes first, then patterns with increasing numbers of
    equalities — the order diagonal splitting prefers.
    """
    indices = tuple(indices)
    n = len(indices)
    if n == 0:
        return (EquivalencePattern((), ()),)
    patterns = [
        EquivalencePattern(indices, rels)
        for rels in product((LT, EQ), repeat=n - 1)
    ]
    patterns.sort(key=lambda p: sum(rel == EQ for rel in p.relations))
    return tuple(patterns)


def unique_permutations(pattern: EquivalencePattern) -> Tuple[Dict[str, str], ...]:
    """The unique symmetry group ``S_P|E`` as substitution dictionaries.

    Each returned mapping sends the index in slot ``j`` to the index that
    occupies that slot after the permutation, i.e. the substitution to apply
    to the assignment template.  ``len(result) == n! / prod(|run|!)``.
    """
    indices = pattern.indices
    n = len(indices)
    runs = pattern.runs()
    subs: List[Dict[str, str]] = []
    for t in permutations(range(n)):
        slot_of = [0] * n
        for slot, old in enumerate(t):
            slot_of[old] = slot
        ok = True
        for run in runs:
            for a, b in zip(run, run[1:]):
                if slot_of[a] > slot_of[b]:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            subs.append({indices[j]: indices[t[j]] for j in range(n)})
    return tuple(subs)


def iter_canonical_coords(n: int, order: int) -> Iterator[Tuple[int, ...]]:
    """All canonical (non-decreasing) coordinates of an ``order``-way cube of
    side ``n`` — handy for exhaustive tests."""
    from itertools import combinations_with_replacement

    return combinations_with_replacement(range(n), order)
