"""Batch execution: many einsum requests, amortized compilation & binding.

A :class:`BatchRequest` pairs a compile spec with the runtime tensors to
apply it to.  :func:`run_batch` groups the batch three ways:

1. **by cache key** — each distinct kernel spec is resolved through the
   service's ``get_or_compile`` exactly once, however many requests share
   it;
2. **by input set** — within a kernel group, requests over the *same*
   tensor objects share one ``prepare`` call (format packing, transposed
   copies and fibertree construction run once, the paper's untimed setup);
3. **across a thread pool** — the timed loop bodies of distinct requests
   can fan out over worker threads; both the vectorized numpy kernels
   (GIL-releasing BLAS/ufunc calls) and the C backend (ctypes releases
   the GIL around the compiled loops) see real parallelism without
   multiprocessing.

Batch fan-out composes with *intra-kernel* OpenMP threading without
oversubscription: when the pool runs ``workers`` requests concurrently,
each kernel's resolved thread count is divided by the worker count
(floored at 1), so ``workers x threads`` never exceeds the machine by
design.  Pass an explicit per-request thread count via the kernel's
``CompilerOptions.threads`` to take manual control.

Results come back in request order, each tagged with the cache key and
whether the kernel was served hot.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import CompilerOptions, DEFAULT, resolve_threads
from repro.frontend.einsum import Assignment
from repro.service.keys import CompileRequest, canonicalize


@dataclass
class BatchRequest:
    """One unit of work: a compile spec plus the tensors to run it on."""

    einsum: Union[str, Assignment]
    tensors: Mapping[str, object]
    symmetric: Optional[Mapping] = None
    loop_order: Optional[Sequence[str]] = None
    formats: Optional[Mapping[str, str]] = None
    options: CompilerOptions = DEFAULT
    naive: bool = False
    sparse_levels: Optional[Mapping[str, Sequence[str]]] = None
    #: opaque caller identifier, echoed on the result.
    tag: Optional[object] = None

    def canonical(self) -> CompileRequest:
        return canonicalize(
            self.einsum,
            self.symmetric,
            self.loop_order,
            self.formats,
            self.options,
            self.naive,
            self.sparse_levels,
        )


@dataclass
class BatchResult:
    """The outcome of one batch request, in the order it was submitted."""

    tag: Optional[object]
    key: str
    output: np.ndarray
    cache_hit: bool
    group_size: int = 1


@dataclass
class _Group:
    """Requests sharing one compiled kernel."""

    kernel: object
    cache_hit: bool
    #: intra-kernel thread count for this batch (None = kernel default)
    threads: Optional[int] = None
    #: input-set identity -> (prepared args, output shape)
    prepared: Dict[Tuple, Tuple] = field(default_factory=dict)
    positions: List[int] = field(default_factory=list)


def _group_threads(kernel, workers: Optional[int]) -> Optional[int]:
    """Per-run thread count that composes with batch fan-out.

    Without fan-out the kernel's own default applies.  With ``workers``
    concurrent requests, each kernel's resolved count is split across
    the pool so the total stays at the configured level instead of
    multiplying.
    """
    if workers is None or workers <= 1:
        return None
    options = getattr(kernel, "options", None)
    setting = getattr(options, "threads", None)
    if setting is None:
        return None
    return max(1, resolve_threads(setting) // workers)


def _input_identity(tensors: Mapping[str, object]) -> Tuple:
    """Identity of a request's input set: same objects => same binding.

    Object identity (not content) keys the ``prepare`` memo: two requests
    naming the very same arrays share the packed views; equal-but-distinct
    arrays are conservatively prepared separately.
    """
    return tuple(sorted((name, id(value)) for name, value in tensors.items()))


def run_batch(
    service,
    requests: Sequence[BatchRequest],
    workers: Optional[int] = None,
) -> List[BatchResult]:
    """Execute *requests* against *service*, amortizing compile + prepare.

    ``workers`` > 1 fans the run stage across a thread pool; ``None`` or
    ``1`` runs sequentially (still amortized).  Results keep request order.
    """
    groups: Dict[str, _Group] = {}
    order: List[Tuple[str, Tuple, BatchRequest]] = []

    for position, request in enumerate(requests):
        canonical = request.canonical()
        key = canonical.key
        group = groups.get(key)
        if group is None:
            was_cached = service.is_cached(key)
            kernel = service.get_or_compile_request(canonical)
            group = groups[key] = _Group(
                kernel=kernel,
                cache_hit=was_cached,
                threads=_group_threads(kernel, workers),
            )
        ident = _input_identity(request.tensors)
        if ident not in group.prepared:
            group.prepared[ident] = group.kernel.prepare(**request.tensors)
        group.positions.append(position)
        order.append((key, ident, request))

    def run_one(item: Tuple[str, Tuple, BatchRequest]) -> BatchResult:
        key, ident, request = item
        group = groups[key]
        prepared, shape = group.prepared[ident]
        out = group.kernel.run(prepared, shape, threads=group.threads)
        return BatchResult(
            tag=request.tag,
            key=key,
            output=group.kernel.finalize(out),
            cache_hit=group.cache_hit,
            group_size=len(group.positions),
        )

    if workers is not None and workers > 1 and len(order) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_one, order))
    return [run_one(item) for item in order]
