"""Batch execution: many einsum requests, amortized compilation & binding.

A :class:`BatchRequest` pairs a compile spec with the runtime tensors to
apply it to.  :func:`run_batch` groups the batch three ways:

1. **by cache key** — each distinct kernel spec is resolved through the
   service's ``get_or_compile`` exactly once, however many requests share
   it;
2. **by input set** — within a kernel group, requests over the *same*
   tensor objects share one :class:`~repro.codegen.executor.ExecutionPlan`
   (format packing, transposed copies, fibertree construction *and* the
   backend's argument marshaling run once, the paper's untimed setup);
   the plan executes once per distinct input set and every duplicate
   request receives the (copied) result instead of re-running identical
   loops;
3. **across a thread pool** — the timed loop bodies of distinct input
   sets can fan out over worker threads; both the vectorized numpy
   kernels (GIL-releasing BLAS/ufunc calls) and the C backend (ctypes
   releases the GIL around the compiled loops) see real parallelism
   without multiprocessing.

Batch fan-out composes with *intra-kernel* OpenMP threading without
oversubscription: when the pool runs ``workers`` requests concurrently,
each kernel's resolved thread count is divided by the worker count
(floored at 1), so ``workers x threads`` never exceeds the machine by
design.  Pass an explicit per-request thread count via the kernel's
``CompilerOptions.threads`` to take manual control.

Results come back in request order, each tagged with the cache key and
whether the kernel was served hot.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.executor import ExecutionPlan, plan_identity
from repro.core.config import CompilerOptions, DEFAULT, resolve_threads
from repro.frontend.einsum import Assignment
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.keys import CompileRequest, canonicalize


@dataclass
class BatchRequest:
    """One unit of work: a compile spec plus the tensors to run it on."""

    einsum: Union[str, Assignment]
    tensors: Mapping[str, object]
    symmetric: Optional[Mapping] = None
    loop_order: Optional[Sequence[str]] = None
    formats: Optional[Mapping[str, str]] = None
    options: CompilerOptions = DEFAULT
    naive: bool = False
    sparse_levels: Optional[Mapping[str, Sequence[str]]] = None
    #: opaque caller identifier, echoed on the result.
    tag: Optional[object] = None

    def canonical(self) -> CompileRequest:
        return canonicalize(
            self.einsum,
            self.symmetric,
            self.loop_order,
            self.formats,
            self.options,
            self.naive,
            self.sparse_levels,
        )


@dataclass
class BatchResult:
    """The outcome of one batch request, in the order it was submitted."""

    tag: Optional[object]
    key: str
    output: np.ndarray
    cache_hit: bool
    group_size: int = 1


@dataclass
class _Group:
    """Requests sharing one compiled kernel."""

    kernel: object
    cache_hit: bool
    #: intra-kernel thread setting for this batch (None = kernel default,
    #: an int = explicit divided count, ``"auto"`` = cost model per run)
    threads: Optional[object] = None
    #: upper bound on the resolved count (fan-out divides the machine)
    thread_cap: Optional[int] = None
    #: input-set identity -> reusable execution plan
    plans: Dict[Tuple, ExecutionPlan] = field(default_factory=dict)
    positions: List[int] = field(default_factory=list)


def _group_threads(
    kernel, workers: Optional[int]
) -> Tuple[Optional[object], Optional[int]]:
    """``(threads, thread_cap)`` that composes fan-out with OpenMP teams.

    Without fan-out the kernel's own default applies (including the
    ``"auto"`` cost model).  With ``workers`` concurrent input sets, an
    explicit thread count is split across the pool so ``workers x
    threads`` never exceeds the configured level; ``"auto"`` stays
    cost-modeled per run but capped at the machine's share per worker.
    """
    if workers is None or workers <= 1:
        return None, None
    options = getattr(kernel, "options", None)
    setting = getattr(options, "threads", None)
    if setting is None:
        return None, None
    if setting == "auto":
        return "auto", max(1, resolve_threads("auto") // workers)
    return max(1, resolve_threads(setting) // workers), None


def _input_identity(tensors: Mapping[str, object]) -> Tuple:
    """Identity of a request's input set: same objects => same binding.

    Object identity keys the plan memo — two requests naming the very
    same arrays share the packed views and marshaled arguments;
    equal-but-distinct arrays are conservatively prepared separately.
    Each tensor also contributes its dtype and shape
    (:func:`repro.codegen.executor.plan_identity`), so a plan cached for
    one input set can never be replayed against a recast or reshaped
    twin that happens to reuse a collected object's ``id``.
    """
    return plan_identity(tensors)


def run_batch(
    service,
    requests: Sequence[BatchRequest],
    workers: Optional[int] = None,
) -> List[BatchResult]:
    """Execute *requests* against *service*, amortizing compile + prepare.

    ``workers`` > 1 fans the run stage across a thread pool; ``None`` or
    ``1`` runs sequentially (still amortized).  Results keep request order.
    """
    with obs_trace.span(
        "batch:run", requests=len(requests), workers=workers or 1
    ) as sp:
        results = _run_batch(service, requests, workers, sp)
    obs_metrics.inc("batch.runs")
    obs_metrics.inc("batch.requests", len(requests))
    obs_metrics.observe("batch.queue_depth", float(len(requests)))
    return results


def _run_batch(
    service,
    requests: Sequence[BatchRequest],
    workers: Optional[int],
    sp,
) -> List[BatchResult]:
    groups: Dict[str, _Group] = {}
    order: List[Tuple[str, Tuple, BatchRequest]] = []

    for position, request in enumerate(requests):
        canonical = request.canonical()
        key = canonical.key
        group = groups.get(key)
        if group is None:
            was_cached = service.is_cached(key)
            kernel = service.get_or_compile_request(canonical)
            threads, thread_cap = _group_threads(kernel, workers)
            group = groups[key] = _Group(
                kernel=kernel,
                cache_hit=was_cached,
                threads=threads,
                thread_cap=thread_cap,
            )
        ident = _input_identity(request.tensors)
        if ident not in group.plans:
            prepared, shape = group.kernel.prepare(**request.tensors)
            group.plans[ident] = group.kernel.bound.plan_prepared(
                prepared,
                shape,
                threads=group.threads,
                thread_cap=group.thread_cap,
                identity=ident,
                sources=request.tensors,
            )
        group.positions.append(position)
        order.append((key, ident, request))

    # each distinct (kernel, input set) executes its plan exactly once —
    # duplicate requests receive copies of the finished result instead of
    # re-running identical loops (plans hold one reusable buffer each, so
    # they must not run concurrently with themselves anyway)
    unique: List[Tuple[str, Tuple]] = []
    seen = set()
    for key, ident, _ in order:
        if (key, ident) not in seen:
            seen.add((key, ident))
            unique.append((key, ident))

    def run_unique(item: Tuple[str, Tuple]) -> np.ndarray:
        key, ident = item
        group = groups[key]
        return group.kernel.finalize(group.plans[ident]())

    sp.add(kernels=len(groups), unique_plans=len(unique))
    if workers is not None and workers > 1 and len(unique) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            outputs = dict(zip(unique, pool.map(run_unique, unique)))
    else:
        outputs = {item: run_unique(item) for item in unique}

    results: List[BatchResult] = []
    delivered = set()
    for key, ident, request in order:
        group = groups[key]
        output = outputs[(key, ident)]
        if (key, ident) in delivered:
            output = output.copy()  # isolate duplicate deliveries
        else:
            delivered.add((key, ident))
        results.append(
            BatchResult(
                tag=request.tag,
                key=key,
                output=output,
                cache_hit=group.cache_hit,
                group_size=len(group.positions),
            )
        )
    return results
