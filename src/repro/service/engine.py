"""The kernel service facade: compile once, serve forever.

:class:`KernelService` is the recommended entry point for any workload
that compiles more than a handful of kernels: it content-addresses every
compile request (:mod:`repro.service.keys`), serves repeats from an
in-memory LRU (:mod:`repro.service.cache`), optionally persists compiled
kernels to disk (:mod:`repro.service.store`) so later *processes* skip the
pass pipeline too, and executes request batches with amortized
preparation (:mod:`repro.service.batch`).

Lookup path on ``get_or_compile``:  memory LRU -> disk store (rehydrate +
promote into memory) -> cold compile (insert into both).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import faults
from repro.codegen.backends import health as backend_health
from repro.core.compiler import CompiledKernel
from repro.core.config import CompilerOptions, DEFAULT, lock_timeout
from repro.core.flock import InterProcessLock
from repro.faults.spec import FaultError
from repro.frontend.einsum import Assignment
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.batch import BatchRequest, BatchResult, run_batch
from repro.service.cache import CacheStats, LRUKernelCache
from repro.service.keys import CompileRequest, canonicalize
from repro.service.store import DiskStore


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate service counters: memory cache + disk store + compiles +
    the process's backend-health ladder."""

    memory: CacheStats
    compiles: int
    disk_hits: int
    disk_misses: int
    disk_errors: int
    disk_entries: int
    #: :func:`repro.codegen.backends.health.snapshot` at stats time.
    health: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Memory-cache hit rate (division-safe: 0.0 before any lookup)."""
        return self.memory.hit_rate

    @property
    def disk_lookups(self) -> int:
        """Every disk probe: hits + misses + errors (an errored lookup is
        neither a hit nor a miss — the entry existed but failed)."""
        return self.disk_hits + self.disk_misses + self.disk_errors

    @property
    def disk_hit_rate(self) -> float:
        """Disk-store hit rate (division-safe: 0.0 before any lookup)."""
        return self.disk_hits / self.disk_lookups if self.disk_lookups else 0.0

    @property
    def degraded(self) -> bool:
        """Has any backend tier been marked unhealthy this process?"""
        return bool(self.health.get("degraded"))

    def to_dict(self) -> dict:
        """JSON-ready snapshot (``repro stats --json``).

        When ``REPRO_METRICS`` is live, the process-wide metrics registry
        (counters + latency histograms) rides along under ``"metrics"``.
        """
        out = {
            "memory": self.memory.to_dict(),
            "compiles": self.compiles,
            "disk": {
                "entries": self.disk_entries,
                "hits": self.disk_hits,
                "misses": self.disk_misses,
                "errors": self.disk_errors,
                "hit_rate": self.disk_hit_rate,
            },
            "health": self.health,
        }
        if obs_metrics.enabled():
            out["metrics"] = obs_metrics.to_dict()
        from repro import tune

        tune_stats = tune.stats_dict()
        if tune_stats.get("configured"):
            out["tune"] = tune_stats
        return out

    def describe(self) -> str:
        lines = ["memory: %s" % self.memory.describe()]
        lines.append("compiles: %d" % self.compiles)
        if self.disk_hits or self.disk_misses or self.disk_errors or self.disk_entries:
            lines.append(
                "disk: %d entries, %d hits / %d misses, %d errors"
                % (
                    self.disk_entries,
                    self.disk_hits,
                    self.disk_misses,
                    self.disk_errors,
                )
            )
        tiers = self.health.get("tiers", {})
        if any(t.get("failures") for t in tiers.values()):
            lines.append(
                "backend: DEGRADED — active ladder: %s"
                % " -> ".join(self.health.get("ladder", []))
            )
        remote = self.health.get("remote", {})
        if remote.get("failures"):
            errors = remote.get("errors") or ["unreachable"]
            lines.append(
                "service: DEGRADED(remote) — daemon unreachable, serving "
                "in-process (%s)" % errors[0]
            )
        from repro import tune

        oracle = tune.active()
        if oracle is not None:
            lines.append(oracle.describe())
        return "\n".join(lines)


@dataclass(frozen=True)
class WarmupReport:
    """One warmed kernel: where it came from and what it cost."""

    name: str
    key: str
    source: str  # "memory" | "disk" | "compiled"
    seconds: float


class KernelService:
    """Content-addressed compile cache + batch execution engine.

    Parameters
    ----------
    capacity:
        maximum kernels resident in the in-memory LRU.
    store:
        a :class:`DiskStore`, a directory path to create one in, or
        ``None`` for a memory-only service.
    workers:
        default thread-pool width for :meth:`batch` (``None`` = run
        batches sequentially unless the call overrides it).
    use_remote:
        whether cold keys may be fetched from a ``$REPRO_SERVICE``
        daemon before compiling locally.  The daemon sets ``False`` on
        the service it owns — a daemon that consulted a daemon for its
        own cold keys could end up requesting itself, deadlocking every
        cold compile behind a wire round-trip to its own queue.
    """

    def __init__(
        self,
        capacity: int = 128,
        store: Union[DiskStore, str, Path, None] = None,
        workers: Optional[int] = None,
        use_remote: bool = True,
    ):
        self.cache = LRUKernelCache(capacity)
        self.use_remote = use_remote
        if store is not None and not isinstance(store, DiskStore):
            store = DiskStore(store)
        self.store: Optional[DiskStore] = store
        self.workers = workers
        self._compiles = 0
        self._lock = threading.Lock()
        #: single-flight guard: key -> Event set when the leader finishes.
        #: Concurrent misses on one key compile once; followers wait.
        self._inflight: Dict[str, threading.Event] = {}

    # ------------------------------------------------------------------
    # the core lookup
    # ------------------------------------------------------------------
    def get_or_compile(
        self,
        einsum: Union[str, Assignment],
        symmetric: Optional[Mapping] = None,
        loop_order: Optional[Sequence[str]] = None,
        formats: Optional[Mapping[str, str]] = None,
        options: CompilerOptions = DEFAULT,
        naive: bool = False,
        sparse_levels: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> CompiledKernel:
        """The cached equivalent of :func:`repro.core.compiler.compile_kernel`."""
        with obs_trace.span("service:canonicalize"):
            request = canonicalize(
                einsum, symmetric, loop_order, formats, options, naive, sparse_levels
            )
        return self.get_or_compile_request(request)

    def get_or_compile_request(self, request: CompileRequest) -> CompiledKernel:
        """Serve an already-canonical request (memory -> disk -> compile).

        Thread-safe with single-flight semantics: when several threads
        miss on the same key simultaneously, one compiles while the rest
        wait and then read the cached result — the pass pipeline and the
        C toolchain run once per key, not once per caller.
        """
        return self.get_with_origin(request)[0]

    def get_with_origin(
        self, request: CompileRequest
    ) -> Tuple[CompiledKernel, str]:
        """Like :meth:`get_or_compile_request`, also reporting provenance:
        ``"memory"`` / ``"disk"`` / ``"remote"`` / ``"compiled"``.  The
        daemon serves its wire replies through this so clients see where
        an answer came from."""
        key = request.key
        with obs_trace.span("service:lookup", key=key[:12]) as sp:
            kernel, origin = self._serve(key, request)
            sp.add(origin=origin)
        obs_metrics.inc("service.requests")
        obs_metrics.inc("service.origin.%s" % origin)
        return kernel, origin

    def _serve(self, key: str, request: CompileRequest) -> Tuple[CompiledKernel, str]:
        """The lookup loop; returns ``(kernel, origin)`` with origin one
        of ``"memory"`` / ``"disk"`` / ``"remote"`` / ``"compiled"`` (a
        follower that waited out another thread's compile reports
        ``"memory"`` — that is where its answer came from)."""
        while True:
            with self._lock:
                kernel = self.cache.get(key)
                if kernel is not None:
                    return kernel, "memory"
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    leader = True
                else:
                    leader = False
            if not leader:
                with obs_trace.span("service:wait", key=key[:12]):
                    event.wait()
                continue  # cache now holds it, or the leader failed —
                # in which case this thread retries as the new leader
            try:
                kernel = None
                origin = "disk"
                if self.store is not None:
                    with obs_trace.span("service:disk", key=key[:12]):
                        kernel = self.store.get(key)
                if kernel is None:
                    kernel = self._remote_fetch(request)
                    if kernel is not None:
                        origin = "remote"
                        # a daemon-built kernel is as good as a local
                        # compile: persist it (same poisoning gate as
                        # _compile_cold) so the next process skips both
                        # the daemon and the compiler
                        if (
                            self.store is not None
                            and kernel.backend == kernel.options.backend
                        ):
                            self.store.put(key, kernel)
                if kernel is None:
                    kernel, origin = self._compile_cold(key, request)
                with self._lock:
                    if origin == "compiled":
                        self._compiles += 1
                    self.cache.put(key, kernel)
                return kernel, origin
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                event.set()

    def _compile_cold(
        self, key: str, request: CompileRequest
    ) -> Tuple[CompiledKernel, str]:
        """Compile a key this process missed everywhere.

        With a disk store attached, processes sharing it elect a single
        compiler per key through an advisory ``<key>.lock`` file next to
        the entry: the leader compiles and publishes, waiters poll for
        the published entry and rehydrate it.  A waiter that outlives
        ``$REPRO_LOCK_TIMEOUT`` (or finds the published entry unreadable
        on this host) compiles privately — duplicated work, never a wrong
        or missing answer.
        """
        if self.store is None:
            return self._compile_now(key, request), "compiled"
        lock = InterProcessLock(str(self.store.path / ("%s.lock" % key)))
        deadline = time.monotonic() + lock_timeout()
        acquired = False
        try:
            while True:
                if lock.try_acquire():
                    acquired = True
                    break
                if key in self.store:
                    kernel = self.store.get(key)
                    if kernel is not None:
                        return kernel, "disk"
                    break  # published but unservable here: build our own
                if time.monotonic() >= deadline:
                    obs_metrics.inc("service.lock_timeouts")
                    break
                time.sleep(0.05)
            if acquired and key in self.store:
                # the previous holder published while this process waited
                kernel = self.store.get(key)
                if kernel is not None:
                    return kernel, "disk"
            kernel = self._compile_now(key, request)
            # a kernel that degraded to a different backend than requested
            # (e.g. a C request served interpreted because this process's
            # toolchain broke) must not poison the shared store: other
            # processes could compile the real thing
            if kernel.backend == kernel.options.backend:
                self.store.put(key, kernel)
            return kernel, "compiled"
        finally:
            if acquired:
                lock.release()

    def _remote_fetch(self, request: CompileRequest) -> Optional[CompiledKernel]:
        """Ask the ``$REPRO_SERVICE`` daemon for a compiled kernel.

        Returns ``None`` whenever the daemon cannot help — not configured,
        marked unreachable, retries exhausted, or it answered ``degraded``
        — and the lookup falls through to the local compile path.  Never
        raises: remote is an accelerator, not a dependency.
        """
        from repro.serve import client as serve_client

        if not self.use_remote or not serve_client.configured():
            return None
        with obs_trace.span("service:remote", key=request.key[:12]) as sp:
            kernel = serve_client.fetch_compiled(request)
            sp.add(hit=kernel is not None)
        return kernel

    def _compile_now(self, key: str, request: CompileRequest) -> CompiledKernel:
        """One cold compile (the ``service.compile`` injection point)."""
        with obs_trace.span("service:compile", key=key[:12]):
            fault = faults.poll("service.compile")
            if fault is not None:
                if fault.action == "slow":
                    time.sleep(fault.arg_float(0.05))
                else:
                    raise FaultError(fault)
            start = time.perf_counter()
            kernel = request.compile()
            obs_metrics.observe(
                "service.compile_seconds", time.perf_counter() - start
            )
        return kernel

    def is_cached(self, key: str) -> bool:
        """Is *key* resident in memory or on disk?  (No counter side
        effects — used by the batch engine to report hit provenance.)"""
        if key in self.cache:
            return True
        return self.store is not None and key in self.store

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def warmup(
        self,
        names: Optional[Sequence[str]] = None,
        include_extensions: bool = False,
    ) -> List[WarmupReport]:
        """Pre-compile the kernel library into the cache (and disk store).

        ``names`` selects a subset of the library; by default every
        evaluation kernel (Section 5.2) is warmed, plus the extension
        kernels when ``include_extensions`` is set.
        """
        from repro.kernels.extensions import EXTENSIONS
        from repro.kernels.library import KERNELS

        specs = dict(KERNELS)
        if include_extensions:
            specs.update(EXTENSIONS)
        if names is not None:
            missing = sorted(set(names) - set(specs))
            if missing:
                raise KeyError(
                    "unknown kernels %s (have: %s)"
                    % (missing, ", ".join(sorted(specs)))
                )
            specs = {name: specs[name] for name in names}

        reports: List[WarmupReport] = []
        for name in sorted(specs):
            spec = specs[name]
            request = canonicalize(
                spec.einsum,
                symmetric=dict(spec.symmetric),
                loop_order=spec.loop_order,
                formats=dict(spec.formats),
            )
            key = request.key
            in_memory = key in self.cache
            compiles_before = self._compiles
            start = time.perf_counter()
            self.get_or_compile_request(request)
            seconds = time.perf_counter() - start
            # provenance from what actually happened, not what looked
            # available — an unreadable disk entry falls through to a
            # cold compile and must be reported as one
            if self._compiles > compiles_before:
                origin = "compiled"
            elif in_memory:
                origin = "memory"
            else:
                origin = "disk"
            reports.append(
                WarmupReport(name=name, key=key, source=origin, seconds=seconds)
            )
        return reports

    def invalidate(
        self,
        einsum: Union[str, Assignment, None] = None,
        key: Optional[str] = None,
        drop_store: bool = False,
        **spec,
    ) -> int:
        """Remove entries from the cache (and, optionally, the store).

        With no arguments, everything in memory is dropped; a specific
        entry is addressed either by ``key`` or by the same spec arguments
        ``get_or_compile`` takes.  Returns the number of entries removed.
        """
        if key is None and einsum is not None:
            key = canonicalize(einsum, **spec).key
        removed = self.cache.invalidate(key)
        if self.store is not None and drop_store:
            if key is None:
                removed += self.store.clear()
            else:
                removed += int(self.store.remove(key))
        return removed

    def stats(self) -> ServiceStats:
        # explicit None checks: DiskStore defines __len__, so an *empty*
        # store is falsy — `if store` would zero every disk counter on a
        # store that has seen only misses/errors
        store = self.store
        return ServiceStats(
            memory=self.cache.stats(),
            compiles=self._compiles,
            disk_hits=store.hits if store is not None else 0,
            disk_misses=store.misses if store is not None else 0,
            disk_errors=store.errors if store is not None else 0,
            disk_entries=len(store) if store is not None else 0,
            health=backend_health.snapshot(),
        )

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def batch(
        self,
        requests: Sequence[BatchRequest],
        workers: Optional[int] = None,
    ) -> List[BatchResult]:
        """Execute a batch of requests with amortized compile + prepare.

        See :func:`repro.service.batch.run_batch`; ``workers`` defaults to
        the service-wide setting.
        """
        return run_batch(
            self, requests, self.workers if workers is None else workers
        )
