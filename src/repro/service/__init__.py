"""repro.service — content-addressed compile cache + batch execution.

The paper's driver recompiles every einsum from scratch; this subsystem
is what turns the reproduction into something that can serve traffic:

* :mod:`repro.service.keys` — canonicalize a compile request and hash it
  into a stable content-address;
* :mod:`repro.service.cache` — an in-memory LRU of compiled kernels with
  hit/miss/eviction counters;
* :mod:`repro.service.store` — an on-disk store of persisted kernel
  states, rehydrated without re-running the pass pipeline;
* :mod:`repro.service.engine` — the :class:`KernelService` facade
  (``get_or_compile`` / ``warmup`` / ``stats`` / ``invalidate`` /
  ``batch``);
* :mod:`repro.service.batch` — batched execution with per-kernel and
  per-input-set amortization and optional thread-pool fan-out.

Quickstart::

    from repro.service import KernelService

    service = KernelService(capacity=64, store=".repro-cache")
    ssymv = service.get_or_compile(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True}, loop_order=("j", "i")
    )
    y = ssymv(A=A, x=x)          # identical result to compile_kernel(...)
    print(service.stats().describe())
"""

from repro.service.batch import BatchRequest, BatchResult, run_batch
from repro.service.cache import CacheStats, LRUKernelCache
from repro.service.engine import KernelService, ServiceStats, WarmupReport
from repro.service.keys import CompileRequest, cache_key, canonicalize
from repro.service.store import DiskStore, StoreEntry

__all__ = [
    "BatchRequest",
    "BatchResult",
    "CacheStats",
    "CompileRequest",
    "DiskStore",
    "KernelService",
    "LRUKernelCache",
    "ServiceStats",
    "StoreEntry",
    "WarmupReport",
    "cache_key",
    "canonicalize",
    "run_batch",
]
