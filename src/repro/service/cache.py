"""In-memory LRU cache of compiled kernels, with observable statistics.

The cache is a plain ordered map from content-address
(:func:`repro.service.keys.cache_key`) to :class:`CompiledKernel`.  A hit
moves the entry to the most-recently-used end; inserting beyond capacity
evicts from the least-recently-used end.  Hits, misses, insertions and
evictions are counted so ``KernelService.stats()`` and the ``repro cache``
CLI can report cache effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro import faults


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache counters."""

    capacity: int
    size: int
    hits: int
    misses: int
    insertions: int
    evictions: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-ready counters (``repro cache --json`` / ``repro stats``)."""
        return {
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
        }

    def describe(self) -> str:
        return (
            "size %d/%d, %d hits / %d misses (%.1f%% hit rate), "
            "%d insertions, %d evictions"
            % (
                self.size,
                self.capacity,
                self.hits,
                self.misses,
                100.0 * self.hit_rate,
                self.insertions,
                self.evictions,
            )
        )


class LRUKernelCache:
    """A bounded least-recently-used kernel cache."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %r" % (capacity,))
        self.capacity = capacity
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: str):
        """The cached kernel for *key*, or ``None``; a hit refreshes LRU
        position."""
        if faults.poll("cache.get") is not None:
            # injected miss: the entry was "evicted" between the caller's
            # decision and this lookup — the race the service must absorb
            self._misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: str, kernel) -> Optional[Tuple[str, object]]:
        """Insert (or refresh) an entry; returns the evicted ``(key,
        kernel)`` pair if the insertion pushed one out."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = kernel
            return None
        self._entries[key] = kernel
        self._insertions += 1
        if len(self._entries) > self.capacity:
            self._evictions += 1
            return self._entries.popitem(last=False)
        return None

    def invalidate(self, key: Optional[str] = None) -> int:
        """Drop one entry (or all of them); returns how many were dropped.

        Invalidation is deliberate removal, not pressure — it does not
        count as an eviction.
        """
        if key is None:
            n = len(self._entries)
            self._entries.clear()
            return n
        return 1 if self._entries.pop(key, None) is not None else 0

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[str]:
        """Keys from least- to most-recently used."""
        return iter(self._entries.keys())

    def stats(self) -> CacheStats:
        return CacheStats(
            capacity=self.capacity,
            size=len(self._entries),
            hits=self._hits,
            misses=self._misses,
            insertions=self._insertions,
            evictions=self._evictions,
        )
