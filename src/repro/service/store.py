"""On-disk kernel store: persisted compile results, rehydrated on demand.

Each entry is one JSON file ``<key>.json`` under the store directory,
holding the :meth:`CompiledKernel.to_state` snapshot (generated source +
lowered metadata + plan summary).  Loading an entry re-``exec``'s the
source but never re-runs the pass pipeline, so a warm store turns process
startup cost into microseconds per kernel.

Kernels built by the C backend additionally persist their generated C
source (``<key>.c``, for inspection) and the compiled shared object
(``<key>.so``): rehydration hands the ``.so`` to the backend, which
reuses it directly and only recompiles when the artifact is corrupt or
from a foreign architecture.

Writes are atomic (temp file + ``os.replace``) so a crashed writer never
leaves a half-written entry, and unreadable/stale entries are treated as
misses rather than errors — a cache must never be the thing that takes the
service down.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.codegen.backends import BackendError
from repro.core.compiler import STATE_VERSION, CompiledKernel
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class StoreEntry:
    """Metadata about one persisted kernel (for listings and the CLI)."""

    key: str
    einsum: str
    options_line: str
    naive: bool
    size_bytes: int


class DiskStore:
    """A directory of persisted kernel states, addressed by cache key."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if self.path.exists() and not self.path.is_dir():
            raise NotADirectoryError(
                "disk store path %s exists and is not a directory" % self.path
            )
        self.path.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.errors = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _is_key(stem: str) -> bool:
        return bool(stem) and all(c in "0123456789abcdef" for c in stem)

    def _file(self, key: str) -> Path:
        if not self._is_key(key):
            raise ValueError("malformed cache key %r" % (key,))
        return self.path / ("%s.json" % key)

    def put(self, key: str, kernel: CompiledKernel) -> None:
        """Persist a compiled kernel under *key* (atomic overwrite).

        C-backend kernels also persist their generated C source and the
        compiled shared object, so later processes skip the compiler
        entirely.  The JSON entry records the artifact's content hash:
        ``get`` refuses to ``dlopen`` a shared object that does not match
        it (a *truncated* ELF can crash the whole process inside dlopen,
        not just fail to load — the hash check turns that into a clean
        recompile).
        """
        with obs_trace.span("store:put", key=key[:12]):
            self._put(key, kernel)

    def _put(self, key: str, kernel: CompiledKernel) -> None:
        executable = kernel.bound.executable
        so_path = getattr(executable, "so_path", None)
        blob = None
        if so_path is not None:
            try:
                with open(so_path, "rb") as handle:
                    blob = handle.read()
            except OSError:
                blob = None  # build dir vanished: the JSON entry still works
        payload = {"key": key, "state": kernel.to_state()}
        if blob is not None:
            payload["artifact_sha256"] = hashlib.sha256(blob).hexdigest()
        data = json.dumps(payload, indent=1, sort_keys=True)
        self._atomic_write(self._file(key), data.encode("utf-8"), key)
        if so_path is not None:
            self._atomic_write(
                self.path / ("%s.c" % key),
                executable.source.encode("utf-8"),
                key,
            )
            if blob is not None:
                self._atomic_write(self.path / ("%s.so" % key), blob, key)

    def _atomic_write(self, target: Path, blob: bytes, key: str) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path), prefix=".%s." % key[:12], suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, key: str) -> Optional[CompiledKernel]:
        """Rehydrate the kernel stored under *key*, or ``None`` on a miss.

        Corrupt or version-skewed entries count as misses (and are
        removed), never as failures.
        """
        with obs_trace.span("store:get", key=key[:12]) as sp:
            kernel = self._get(key)
            sp.add(hit=kernel is not None)
        return kernel

    def _get(self, key: str) -> Optional[CompiledKernel]:
        path = self._file(key)
        try:
            with open(path, "r") as handle:
                payload = json.load(handle)
            state = payload["state"]
            if state.get("state_version") != STATE_VERSION:
                raise ValueError("state version skew")
            artifact = self._verified_artifact(key, payload)
            kernel = CompiledKernel.from_state(
                state, label=key[:12], artifact=artifact
            )
            self._heal_artifact(key, kernel, artifact, payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except BackendError:
            # the entry is fine, this *host* can't run it (no compiler, or
            # a local build failure): miss, but keep the entry — and its
            # artifacts — for hosts that can
            self.errors += 1
            self.misses += 1
            return None
        except Exception:
            self.errors += 1
            self.misses += 1
            self.remove(key)  # drops the .c/.so siblings too
            return None
        self.hits += 1
        return kernel

    def _verified_artifact(self, key: str, payload) -> Optional[str]:
        """Path of ``<key>.so`` iff its bytes match the recorded hash.

        A mismatched or unhashed shared object is *never* handed to
        ``dlopen``: a truncated mapping can take the process down with
        SIGBUS rather than raising.  Returning ``None`` routes the entry
        through a clean rebuild (and :meth:`_heal_artifact` repairs the
        file afterwards).
        """
        so_path = self.path / ("%s.so" % key)
        digest = payload.get("artifact_sha256")
        if digest is None or not so_path.exists():
            return None
        try:
            with open(so_path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        if hashlib.sha256(blob).hexdigest() != digest:
            return None
        return str(so_path)

    def _heal_artifact(
        self, key, kernel, artifact: Optional[str], payload
    ) -> None:
        """Refresh ``<key>.so`` (and its recorded hash) when the backend
        did not run the persisted artifact (it was corrupt, truncated or
        absent): otherwise every future process would pay a failed load +
        recompile for this entry."""
        executable = kernel.bound.executable
        so_path = getattr(executable, "so_path", None)
        if so_path is None or so_path == artifact:
            return
        try:
            with open(so_path, "rb") as handle:
                blob = handle.read()
            payload = dict(payload)
            payload["artifact_sha256"] = hashlib.sha256(blob).hexdigest()
            data = json.dumps(payload, indent=1, sort_keys=True)
            self._atomic_write(self._file(key), data.encode("utf-8"), key)
            self._atomic_write(self.path / ("%s.so" % key), blob, key)
        except OSError:
            pass  # healing is best-effort; the entry itself is fine

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._file(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Stems of well-formed entries only — foreign ``*.json`` files a
        user (or another tool) drops into the directory are ignored, so
        ``clear``/``remove``/``len`` never trip over them."""
        for path in sorted(self.path.glob("*.json")):
            if self._is_key(path.stem):
                yield path.stem

    def remove(self, key: str) -> bool:
        for suffix in (".c", ".so"):
            try:
                os.unlink(str(self.path / (key + suffix)))
            except OSError:
                pass
        try:
            os.unlink(self._file(key))
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        n = 0
        for key in list(self.keys()):
            n += self.remove(key)
        return n

    def entries(self) -> List[StoreEntry]:
        """Listing metadata for every readable entry (CLI support)."""
        from repro.core.config import CompilerOptions

        out: List[StoreEntry] = []
        for path in sorted(self.path.glob("*.json")):
            if not self._is_key(path.stem):
                continue
            try:
                with open(path, "r") as handle:
                    payload = json.load(handle)
                state = payload["state"]
                options = CompilerOptions.from_dict(state["options"])
                out.append(
                    StoreEntry(
                        key=path.stem,
                        einsum=state["einsum"],
                        options_line=options.describe(),
                        naive=not options.output_canonical
                        and "naive" in state.get("history", []),
                        size_bytes=path.stat().st_size,
                    )
                )
            except Exception:
                self.errors += 1
        return out
