"""On-disk kernel store: persisted compile results, rehydrated on demand.

Each entry is one JSON file ``<key>.json`` under the store directory,
holding the :meth:`CompiledKernel.to_state` snapshot (generated source +
lowered metadata + plan summary).  Loading an entry re-``exec``'s the
source but never re-runs the pass pipeline, so a warm store turns process
startup cost into microseconds per kernel.

Kernels built by the C backend additionally persist their generated C
source (``<key>.c``, for inspection) and the compiled shared object
(``<key>.so``): rehydration hands the ``.so`` to the backend, which
reuses it directly and only recompiles when the artifact is corrupt or
from a foreign architecture.

Writes are atomic (temp file + fsync + ``os.replace``) so a crashed
writer never leaves or publishes a half-written entry; reads that fail
are counted as ``errors`` (distinct from ``misses``) and answered with
``None`` — a cache must never be the thing that takes the service down.
Writes are likewise best-effort: a full or read-only disk costs
persistence, not the compile result (``put`` returns ``False``).

Fault-injection points (:mod:`repro.faults`): ``store.get`` (corrupt /
truncate-so / fail) and ``store.put`` (enospc / eacces / partial / fail).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro import faults
from repro.codegen.backends import BackendError
from repro.core.compiler import STATE_VERSION, CompiledKernel
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class StoreEntry:
    """Metadata about one persisted kernel (for listings and the CLI)."""

    key: str
    einsum: str
    options_line: str
    naive: bool
    size_bytes: int


class DiskStore:
    """A directory of persisted kernel states, addressed by cache key.

    ``max_bytes`` (default ``$REPRO_STORE_MAX_BYTES``; ``None`` =
    unbounded) bounds the store's total size: every successful ``put``
    triggers an LRU-by-access-time :meth:`gc` pass, so a long-lived
    daemon that owns the store cannot grow it into an outage.  Reads
    refresh an entry's access time explicitly (``relatime``/``noatime``
    mounts would otherwise starve the LRU of signal).
    """

    def __init__(
        self, path: Union[str, Path], max_bytes: Optional[int] = None
    ):
        from repro.core.config import store_max_bytes

        self.path = Path(path)
        if self.path.exists() and not self.path.is_dir():
            raise NotADirectoryError(
                "disk store path %s exists and is not a directory" % self.path
            )
        self.path.mkdir(parents=True, exist_ok=True)
        self.max_bytes = store_max_bytes() if max_bytes is None else (
            max_bytes if max_bytes > 0 else None
        )
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _is_key(stem: str) -> bool:
        return bool(stem) and all(c in "0123456789abcdef" for c in stem)

    def _file(self, key: str) -> Path:
        if not self._is_key(key):
            raise ValueError("malformed cache key %r" % (key,))
        return self.path / ("%s.json" % key)

    def put(self, key: str, kernel: CompiledKernel) -> bool:
        """Persist a compiled kernel under *key* (atomic overwrite).

        C-backend kernels also persist their generated C source and the
        compiled shared object, so later processes skip the compiler
        entirely.  The JSON entry records the artifact's content hash:
        ``get`` refuses to ``dlopen`` a shared object that does not match
        it (a *truncated* ELF can crash the whole process inside dlopen,
        not just fail to load — the hash check turns that into a clean
        recompile).

        Persistence is best-effort: a write failure (full disk, read-only
        directory) is counted in ``errors`` and reported as ``False`` —
        the caller keeps its in-memory kernel either way.
        """
        with obs_trace.span("store:put", key=key[:12]) as sp:
            try:
                self._put(key, kernel)
            except OSError:
                self.errors += 1
                obs_metrics.inc("store.put_errors")
                sp.add(ok=False)
                return False
        if self.max_bytes is not None:
            self.gc()
        return True

    def _put(self, key: str, kernel: CompiledKernel) -> None:
        fault = faults.poll("store.put")
        if fault is not None:
            if fault.action == "enospc":
                raise OSError(errno.ENOSPC, "injected: no space left on device")
            if fault.action == "eacces":
                raise PermissionError(errno.EACCES, "injected: permission denied")
            if fault.action == "fail":
                raise OSError("injected: store write failure for %s" % key)
            # "partial" handled below: publish a truncated JSON entry
        executable = kernel.bound.executable
        so_path = getattr(executable, "so_path", None)
        blob = None
        if so_path is not None:
            try:
                with open(so_path, "rb") as handle:
                    blob = handle.read()
            except OSError:
                blob = None  # build dir vanished: the JSON entry still works
        payload = {"key": key, "state": kernel.to_state()}
        if blob is not None:
            payload["artifact_sha256"] = hashlib.sha256(blob).hexdigest()
        data = json.dumps(payload, indent=1, sort_keys=True)
        raw = data.encode("utf-8")
        if fault is not None and fault.action == "partial":
            # simulate a torn entry reaching the store (e.g. a writer
            # without the fsync+rename discipline): readers must treat it
            # as corrupt, never crash
            self._atomic_write(self._file(key), raw[: len(raw) // 2], key)
            return
        if so_path is not None:
            # sidecars land before the JSON entry: the entry is the commit
            # point, and a process that can see it (single-flight waiters
            # poll for exactly that) must also find the artifact — the
            # reverse order makes waiters recompile a published kernel
            self._atomic_write(
                self.path / ("%s.c" % key),
                executable.source.encode("utf-8"),
                key,
            )
            if blob is not None:
                self._atomic_write(self.path / ("%s.so" % key), blob, key)
        self._atomic_write(self._file(key), raw, key)

    def _atomic_write(self, target: Path, blob: bytes, key: str) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path), prefix=".%s." % key[:12], suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                # fsync before the rename: os.replace is atomic in the
                # namespace but not in the data — after a crash, a renamed
                # file whose bytes never hit disk reads back empty
                os.fsync(handle.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, key: str) -> Optional[CompiledKernel]:
        """Rehydrate the kernel stored under *key*, or ``None`` on a miss.

        An absent entry is a *miss*; an entry that exists but cannot be
        served — corrupt, version-skewed, unreadable, or unrunnable on
        this host — is an *error* (kept distinct so operators can tell "a
        cold cache" from "a failing one").  Corrupt and skewed entries
        are removed; entries another host could serve (and transient I/O
        failures) are kept.  Every failure answers ``None`` — the caller
        falls through to a fresh compile.
        """
        with obs_trace.span("store:get", key=key[:12]) as sp:
            kernel = self._get(key)
            sp.add(hit=kernel is not None)
        return kernel

    def _get(self, key: str) -> Optional[CompiledKernel]:
        path = self._file(key)
        fault = faults.poll("store.get")
        try:
            if fault is not None and fault.action == "fail":
                raise OSError("injected: store read failure for %s" % key)
            with open(path, "r") as handle:
                payload = json.load(handle)
            if fault is not None and fault.action == "corrupt":
                raise ValueError("injected: corrupt entry %s" % key)
            state = payload["state"]
            if state.get("state_version") != STATE_VERSION:
                raise ValueError("state version skew")
            artifact = self._verified_artifact(key, payload)
            if fault is not None and fault.action == "truncate-so":
                artifact = None  # as if the hash check rejected the .so
            kernel = CompiledKernel.from_state(
                state, label=key[:12], artifact=artifact
            )
            self._heal_artifact(key, kernel, artifact, payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except BackendError:
            # the entry is fine, this *host* can't run it (no compiler, or
            # a local build failure): error, but keep the entry — and its
            # artifacts — for hosts that can
            self.errors += 1
            obs_metrics.inc("store.get_errors")
            return None
        except OSError:
            # transient I/O (EIO, injected read failure): the entry may be
            # perfectly healthy — never destroy it for a flaky read
            self.errors += 1
            obs_metrics.inc("store.get_errors")
            return None
        except Exception:
            self.errors += 1
            obs_metrics.inc("store.get_errors")
            self.remove(key)  # drops the .c/.so siblings too
            return None
        self.hits += 1
        self._touch(path)
        return kernel

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh *path*'s access time (LRU signal for :meth:`gc`) —
        mount options like ``noatime`` make implicit atime unreliable."""
        try:
            stat = path.stat()
            os.utime(str(path), times=(time.time(), stat.st_mtime))
        except OSError:
            pass

    def _verified_artifact(self, key: str, payload) -> Optional[str]:
        """Path of ``<key>.so`` iff its bytes match the recorded hash.

        A mismatched or unhashed shared object is *never* handed to
        ``dlopen``: a truncated mapping can take the process down with
        SIGBUS rather than raising.  Returning ``None`` routes the entry
        through a clean rebuild (and :meth:`_heal_artifact` repairs the
        file afterwards).
        """
        so_path = self.path / ("%s.so" % key)
        digest = payload.get("artifact_sha256")
        if digest is None or not so_path.exists():
            return None
        try:
            with open(so_path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        if hashlib.sha256(blob).hexdigest() != digest:
            return None
        return str(so_path)

    def _heal_artifact(
        self, key, kernel, artifact: Optional[str], payload
    ) -> None:
        """Refresh ``<key>.so`` (and its recorded hash) when the backend
        did not run the persisted artifact (it was corrupt, truncated or
        absent): otherwise every future process would pay a failed load +
        recompile for this entry."""
        executable = kernel.bound.executable
        so_path = getattr(executable, "so_path", None)
        if so_path is None or so_path == artifact:
            return
        try:
            with open(so_path, "rb") as handle:
                blob = handle.read()
            payload = dict(payload)
            payload["artifact_sha256"] = hashlib.sha256(blob).hexdigest()
            data = json.dumps(payload, indent=1, sort_keys=True)
            # same commit discipline as _put: artifact first, entry second
            self._atomic_write(self.path / ("%s.so" % key), blob, key)
            self._atomic_write(self._file(key), data.encode("utf-8"), key)
        except OSError:
            pass  # healing is best-effort; the entry itself is fine

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._file(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Stems of well-formed entries only — foreign ``*.json`` files a
        user (or another tool) drops into the directory are ignored, so
        ``clear``/``remove``/``len`` never trip over them."""
        for path in sorted(self.path.glob("*.json")):
            if self._is_key(path.stem):
                yield path.stem

    def remove(self, key: str) -> bool:
        for suffix in (".c", ".so"):
            try:
                os.unlink(str(self.path / (key + suffix)))
            except OSError:
                pass
        try:
            os.unlink(self._file(key))
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        n = 0
        for key in list(self.keys()):
            n += self.remove(key)
        return n

    # ------------------------------------------------------------------
    # size bound
    # ------------------------------------------------------------------
    def entry_bytes(self, key: str) -> int:
        """Total on-disk size of one entry (JSON + ``.c`` + ``.so``)."""
        total = 0
        for suffix in (".json", ".c", ".so"):
            try:
                total += (self.path / (key + suffix)).stat().st_size
            except OSError:
                pass
        return total

    def size_bytes(self) -> int:
        """Total on-disk size of every well-formed entry."""
        return sum(self.entry_bytes(key) for key in self.keys())

    def gc(self, max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Evict least-recently-used entries until the store fits.

        Recency is the JSON entry's access time (refreshed explicitly on
        every hit, so ``noatime`` mounts behave).  Entries whose
        ``<key>.lock`` file exists are skipped — another process is
        compiling/publishing that key right now, and evicting under it
        would race the publication.  Returns ``(entries_removed,
        bytes_freed)``.
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        if limit is None:
            return (0, 0)
        aged = []
        total = 0
        for key in self.keys():
            size = self.entry_bytes(key)
            total += size
            try:
                stamp = self._file(key).stat().st_atime
            except OSError:
                stamp = 0.0
            aged.append((stamp, key, size))
        removed = 0
        freed = 0
        if total <= limit:
            return (0, 0)
        for stamp, key, size in sorted(aged):
            if total - freed <= limit:
                break
            if (self.path / ("%s.lock" % key)).exists():
                continue  # mid-publication: never evict under a builder
            if self.remove(key):
                removed += 1
                freed += size
                self.evictions += 1
                obs_metrics.inc("store.evictions")
        return (removed, freed)

    def entries(self) -> List[StoreEntry]:
        """Listing metadata for every readable entry (CLI support)."""
        from repro.core.config import CompilerOptions

        out: List[StoreEntry] = []
        for path in sorted(self.path.glob("*.json")):
            if not self._is_key(path.stem):
                continue
            try:
                with open(path, "r") as handle:
                    payload = json.load(handle)
                state = payload["state"]
                options = CompilerOptions.from_dict(state["options"])
                out.append(
                    StoreEntry(
                        key=path.stem,
                        einsum=state["einsum"],
                        options_line=options.describe(),
                        naive=not options.output_canonical
                        and "naive" in state.get("history", []),
                        size_bytes=path.stat().st_size,
                    )
                )
            except Exception:
                self.errors += 1
        return out
