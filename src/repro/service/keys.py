"""Content-addressed cache keys for compile requests.

Two requests that would produce the same generated kernel must hash to the
same key, however they were spelled: einsum string or pre-parsed
:class:`Assignment`; ``{"A": True}`` or ``{"A": [[0, 1]]}`` or
``{"A": "{0,1}"}``; formats given in any dict order, with or without
explicit ``"dense"`` entries; loop order omitted or spelled out as the
default.  :func:`canonicalize` resolves every default the same way
``compile_kernel`` does and :func:`cache_key` hashes the canonical form.

The key material includes a format-version salt, so a change to the key
schema (or to what a key must capture) retires old disk-store entries
instead of silently aliasing them.

Runtime-only options (``CompilerOptions.threads`` — see
:data:`repro.core.config.RUNTIME_FIELDS`) are excluded from the key
material via ``CompilerOptions.to_dict``: two requests differing only in
thread count share one compiled kernel, and the thread count is supplied
per run instead.

The OpenMP *emission strategy* (``$REPRO_OMP_STRATEGY``) is the opposite
case: it changes the generated C, so for C-backend requests the resolved
strategy is captured at canonicalization time and keyed — an ``atomic``
build and an ``auto`` build of one einsum are distinct cached artifacts,
and a persisted ``.so`` is only ever rehydrated under the strategy that
produced it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.core.compiler import CompiledKernel, compile_kernel, resolve_request
from repro.core.config import CompilerOptions, DEFAULT
from repro.frontend.einsum import Assignment
from repro.frontend.parser import parse_assignment

#: bump when the canonical key material changes shape.
#: v2: options carry the execution backend (part of the key — a python
#: and a c build of the same einsum are distinct cached artifacts).
#: v3: C-backend requests key the resolved OpenMP emission strategy, so
#: auto/serial/atomic builds never alias one another in a shared store.
#: v4: options carry the element dtype — float32 and float64 builds of
#: one einsum are distinct artifacts and never alias in cache or store.
#: v5: C-backend requests key whether per-nest profiling (REPRO_PROFILE)
#: is compiled in, so instrumented builds never alias production ones.
#: v6: C-backend requests key the active optimization-pass set
#: (REPRO_PASSES / REPRO_TILE), so builds under different pass pipelines
#: never alias one another in cache or store.
KEY_VERSION = 6


@dataclass(frozen=True)
class CompileRequest:
    """A fully-resolved, canonical compile request.

    Every field is in normal form (defaults applied, dicts flattened to
    name-sorted tuples), so structural equality of two requests coincides
    with equality of their cache keys (modulo the runtime-only ``threads``
    option, which keys ignore by design).
    """

    assignment: Assignment
    symmetric_modes: Tuple[Tuple[str, Tuple[Tuple[int, ...], ...]], ...]
    loop_order: Tuple[str, ...]
    formats: Tuple[Tuple[str, str], ...]
    options: CompilerOptions
    naive: bool
    sparse_levels: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: resolved OpenMP emission strategy for C-backend requests
    #: ("-" for backends the strategy cannot affect).
    omp_strategy: str = "-"
    #: whether per-nest profiling is compiled into the C source
    #: ("on"/"off"; "-" for backends profiling cannot affect).
    profile: str = "-"
    #: resolved optimization-pass signature for C-backend requests
    #: (:meth:`PassConfig.signature`; "-" for other backends).
    passes: str = "-"

    # ------------------------------------------------------------------
    def key_material(self) -> str:
        """The canonical string the cache key is a digest of."""
        parts = [
            "v%d" % KEY_VERSION,
            "einsum=%s" % self.assignment,
            "symmetric=%s"
            % ";".join(
                "%s:%s"
                % (name, "".join("(%s)" % ",".join(map(str, p)) for p in ps))
                for name, ps in self.symmetric_modes
            ),
            "loop=%s" % ",".join(self.loop_order),
            "formats=%s" % ";".join("%s:%s" % nf for nf in self.formats),
            "options=%s"
            % ",".join(
                "%s=%s" % (name, int(value) if isinstance(value, bool) else value)
                for name, value in self.options.to_dict().items()
            ),
            "naive=%d" % self.naive,
            "levels=%s"
            % ";".join(
                "%s:%s" % (name, ",".join(levels))
                for name, levels in self.sparse_levels
            ),
            "omp=%s" % self.omp_strategy,
            "profile=%s" % self.profile,
            "passes=%s" % self.passes,
        ]
        return "|".join(parts)

    @cached_property
    def key(self) -> str:
        """Stable content hash of the request (sha256 hex).

        Memoized per instance (writes to ``__dict__`` directly, which the
        frozen dataclass permits) — the hot serve path probes this on
        every request.
        """
        return hashlib.sha256(self.key_material().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def compile(self) -> CompiledKernel:
        """Run the full compiler on this (already-canonical) request."""
        return compile_kernel(
            self.assignment,
            symmetric=dict(self.symmetric_modes),
            loop_order=self.loop_order,
            formats=dict(self.formats),
            options=self.options,
            naive=self.naive,
            sparse_levels={n: list(ls) for n, ls in self.sparse_levels} or None,
        )


def canonicalize(
    einsum: Union[str, Assignment],
    symmetric: Optional[Mapping] = None,
    loop_order: Optional[Sequence[str]] = None,
    formats: Optional[Mapping[str, str]] = None,
    options: CompilerOptions = DEFAULT,
    naive: bool = False,
    sparse_levels: Optional[Mapping[str, Sequence[str]]] = None,
) -> CompileRequest:
    """Resolve a user-facing compile spec into a :class:`CompileRequest`.

    Defaulting is delegated to
    :func:`repro.core.compiler.resolve_request` — the same code path
    ``compile_kernel`` runs — so a key can never describe different
    defaults than the compiler would apply.
    """
    assignment = (
        parse_assignment(einsum) if isinstance(einsum, str) else einsum
    )
    symmetric_modes, loop_order, formats, options = resolve_request(
        assignment, symmetric, loop_order, formats, options, naive
    )
    # explicit "dense" entries equal the unlisted default — drop them so
    # {"A": "sparse", "x": "dense"} and {"A": "sparse"} share a key
    canonical_formats = tuple(
        sorted((n, f) for n, f in formats.items() if f != "dense")
    )
    if options.backend == "c":
        from repro import tune
        from repro.codegen.backends.c import default_omp_strategy
        from repro.codegen.backends.cpasses import active_pass_config
        from repro.obs import profile as obs_profile

        # a tuned compile-level variant fills whatever the environment
        # left at its default — through the same helper the renderer
        # consults, so the key always describes the source that gets
        # rendered for it
        tuned_passes, tuned_strategy = tune.compile_overrides(
            str(assignment), options.dtype
        )
        omp_strategy = (
            tuned_strategy
            if tuned_strategy is not None
            else default_omp_strategy()
        )
        profile = "on" if obs_profile.enabled() else "off"
        passes = (
            tuned_passes
            if tuned_passes is not None
            else active_pass_config()
        ).signature()
    else:
        omp_strategy = "-"  # the strategy cannot affect other backends
        profile = "-"  # only the C renderer emits instrumentation
        passes = "-"  # only the C renderer runs the pass pipeline
    return CompileRequest(
        assignment=assignment,
        symmetric_modes=tuple(sorted(symmetric_modes.items())),
        loop_order=tuple(loop_order),
        formats=canonical_formats,
        options=options,
        naive=bool(naive),
        sparse_levels=tuple(
            sorted(
                (name, tuple(levels))
                for name, levels in (sparse_levels or {}).items()
            )
        ),
        omp_strategy=omp_strategy,
        profile=profile,
        passes=passes,
    )


def cache_key(
    einsum: Union[str, Assignment],
    symmetric: Optional[Mapping] = None,
    loop_order: Optional[Sequence[str]] = None,
    formats: Optional[Mapping[str, str]] = None,
    options: CompilerOptions = DEFAULT,
    naive: bool = False,
    sparse_levels: Optional[Mapping[str, Sequence[str]]] = None,
) -> str:
    """The content-address of a compile spec (convenience wrapper)."""
    return canonicalize(
        einsum, symmetric, loop_order, formats, options, naive, sparse_levels
    ).key
