"""Evaluation datasets.

* :mod:`repro.data.matrices` — the 30-matrix Vuduc suite of Table 2,
  synthesized offline with the published (name, dimension, nnz) and a
  per-matrix structure profile, then symmetrized with ``A + A^T`` exactly
  as Section 5.2 prescribes;
* :mod:`repro.data.random_tensors` — uniformly distributed symmetric random
  sparse tensors via an Erdős–Rényi distribution (Section 5.2's recipe for
  the TTM/MTTKRP inputs, for which no public symmetric-tensor datasets
  exist), plus dense factor matrices.
"""

from repro.data.matrices import (
    MATRIX_TABLE,
    MatrixInfo,
    load_matrix,
    suite,
)
from repro.data.random_tensors import (
    erdos_renyi_symmetric,
    random_dense,
    symmetric_matrix,
)

__all__ = [
    "MATRIX_TABLE",
    "MatrixInfo",
    "erdos_renyi_symmetric",
    "load_matrix",
    "random_dense",
    "suite",
    "symmetric_matrix",
]
