"""The Table 2 matrix collection (Vuduc et al.), synthesized offline.

The paper benchmarks SSYMV / Bellman-Ford / SYPRD / SSYRK on 30 matrices
from the SuiteSparse collection (downloaded from sparse.tamu.edu in the
artifact).  We have no network access, so each matrix is synthesized with
its published dimension and nonzero count plus a structure profile chosen
to mimic the original's provenance (circuit and chemistry matrices are
strongly banded, FEM matrices are blocked, optimization matrices are more
random).  The kernels only observe a sparsity pattern; dimension + nnz +
locality structure are what drive the iterator and bandwidth behaviour the
experiments measure.  ``scale`` shrinks dimension and nnz proportionally so
that interpreted kernels finish quickly (the paper's artifact reduces its
dataset sizes for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.tensor.coo import COO
from repro.tensor.symmetry_ops import symmetrize_matrix
from repro.tensor.tensor import Tensor

#: (name, dimension, nnz, profile) for every matrix in Table 2.
#: profiles: "banded" (circuit/chemistry), "block" (FEM), "random" (LP etc).
MATRIX_TABLE: Tuple[Tuple[str, int, int, str], ...] = (
    ("bayer02", 13935, 63679, "banded"),
    ("bayer10", 13436, 94926, "banded"),
    ("bcsstk35", 30237, 1450163, "block"),
    ("coater2", 9540, 207308, "block"),
    ("crystk02", 13965, 968583, "block"),
    ("crystk03", 24696, 1751178, "block"),
    ("ct20stif", 52329, 2698463, "block"),
    ("ex11", 16614, 1096948, "block"),
    ("finan512", 74752, 596992, "random"),
    ("gemat11", 4929, 33185, "random"),
    ("goodwin", 7320, 324784, "block"),
    ("lhr10", 10672, 232633, "banded"),
    ("lnsp3937", 3937, 25407, "banded"),
    ("memplus", 17758, 126150, "random"),
    ("nasasrb", 54870, 2677324, "block"),
    ("olafu", 16146, 1015156, "block"),
    ("onetone2", 36057, 227628, "banded"),
    ("orani678", 2529, 90185, "random"),
    ("raefsky3", 21200, 1488768, "block"),
    ("raefsky4", 19779, 1328611, "block"),
    ("rdist1", 4134, 94408, "banded"),
    ("rim", 22560, 1014951, "block"),
    ("saylr4", 3564, 22316, "banded"),
    ("sherman3", 5005, 20033, "banded"),
    ("sherman5", 3312, 20793, "banded"),
    ("shyy161", 76480, 329762, "banded"),
    ("venkat01", 62424, 1717792, "block"),
    ("vibrobox", 12328, 342828, "random"),
    ("wang3", 26064, 177168, "banded"),
    ("wang4", 26068, 177196, "banded"),
)


@dataclass(frozen=True)
class MatrixInfo:
    name: str
    dimension: int
    nnz: int
    profile: str


def table() -> Tuple[MatrixInfo, ...]:
    """Table 2 as structured records."""
    return tuple(MatrixInfo(*row) for row in MATRIX_TABLE)


def _banded_pattern(rng, n: int, nnz: int) -> Tuple[np.ndarray, np.ndarray]:
    """Entries concentrated near the diagonal (circuit/PDE stencils)."""
    bandwidth = max(2, int(nnz / max(n, 1)) * 2)
    rows = rng.integers(0, n, size=nnz)
    offsets = np.rint(rng.normal(0.0, bandwidth, size=nnz)).astype(np.int64)
    cols = np.clip(rows + offsets, 0, n - 1)
    return rows, cols


def _block_pattern(rng, n: int, nnz: int) -> Tuple[np.ndarray, np.ndarray]:
    """Small dense blocks along the diagonal plus a random overlay (FEM)."""
    block = 6
    n_blocks = max(1, n // block)
    main = int(nnz * 0.8)
    b = rng.integers(0, n_blocks, size=main)
    rows = np.minimum(b * block + rng.integers(0, block, size=main), n - 1)
    cols = np.minimum(b * block + rng.integers(0, block, size=main), n - 1)
    extra = nnz - main
    rows = np.concatenate([rows, rng.integers(0, n, size=extra)])
    cols = np.concatenate([cols, rng.integers(0, n, size=extra)])
    return rows, cols


def _random_pattern(rng, n: int, nnz: int) -> Tuple[np.ndarray, np.ndarray]:
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    return rows, cols


_PROFILES = {
    "banded": _banded_pattern,
    "block": _block_pattern,
    "random": _random_pattern,
}


def load_matrix(
    name: str, scale: float = 1.0, seed: Optional[int] = None
) -> Tensor:
    """Synthesize the named Table 2 matrix, symmetrized with ``A + A^T``.

    ``scale`` < 1 shrinks both the dimension and the nonzero count by that
    factor, preserving the density and structure profile.
    """
    info = {m.name: m for m in table()}.get(name)
    if info is None:
        raise KeyError("unknown matrix %r" % (name,))
    n = max(8, int(info.dimension * scale))
    nnz = max(n, int(info.nnz * scale))
    rng = np.random.default_rng(
        seed if seed is not None else abs(hash(name)) % (2**32)
    )
    rows, cols = _PROFILES[info.profile](rng, n, nnz)
    vals = rng.random(rows.shape[0]) + 0.1
    coo = COO(np.stack([rows, cols]), vals, (n, n))
    sym = symmetrize_matrix(coo)
    return Tensor(sym, symmetric_modes=((0, 1),))


def suite(
    scale: float = 1.0, names: Optional[Tuple[str, ...]] = None
) -> Iterator[Tuple[MatrixInfo, Tensor]]:
    """Iterate (info, symmetrized matrix) over the collection."""
    for info in table():
        if names is not None and info.name not in names:
            continue
        yield info, load_matrix(info.name, scale=scale)
