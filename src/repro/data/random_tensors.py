"""Random symmetric sparse tensors (Section 5.2's TTM/MTTKRP inputs).

The paper generates "uniformly distributed symmetric random sparse tensors
of varying sizes and sparsities via an Erdős–Rényi distribution".  We sample
canonical coordinates directly (every multiset of indices is a Bernoulli
trial), which yields exactly that distribution while storing only the
canonical triangle — the compiler's packed input — and lets the naive
baselines expand to the full tensor on demand.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.coo import COO
from repro.tensor.tensor import Tensor


def erdos_renyi_symmetric(
    n: int,
    order: int,
    density: float,
    seed: Optional[int] = None,
    dtype=np.float64,
) -> Tensor:
    """A fully symmetric ``order``-way tensor of side ``n``.

    ``density`` is the probability that any given canonical coordinate
    (multiset of indices) is nonzero.  The payload is stored canonically
    (coordinates non-increasing), matching what the symmetric kernels
    iterate; ``Tensor`` expands it for the naive kernels.  ``dtype``
    selects the value precision (same seed, same pattern: the float32
    payload is the float64 one rounded).
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    # sample canonical (non-increasing) coordinates by rejection-free
    # enumeration in blocks: draw random coordinates, sort each, dedup.
    target = density * _n_canonical(n, order)
    draws = max(16, int(target * 3) + 8)
    coords = rng.integers(0, n, size=(order, draws))
    coords = -np.sort(-coords, axis=0)  # non-increasing per column
    # dedup columns
    order_ix = np.lexsort(coords[::-1])
    coords = coords[:, order_ix]
    keep = np.concatenate(
        ([True], np.any(coords[:, 1:] != coords[:, :-1], axis=0))
    )
    coords = coords[:, keep]
    # thin to the target count
    n_keep = min(coords.shape[1], max(1, int(round(target))))
    chosen = rng.choice(coords.shape[1], size=n_keep, replace=False)
    coords = coords[:, np.sort(chosen)]
    vals = (rng.random(coords.shape[1]) + 0.1).astype(dtype, copy=False)
    coo = COO(coords, vals, (n,) * order, sum_duplicates=False)
    return Tensor(
        coo, symmetric_modes=(tuple(range(order)),), canonical=True
    )


def _n_canonical(n: int, order: int) -> float:
    """Number of canonical coordinates: C(n + order - 1, order)."""
    from math import comb

    return float(comb(n + order - 1, order))


def random_dense(
    shape: Tuple[int, ...], seed: Optional[int] = None, dtype=np.float64
) -> np.ndarray:
    """A dense factor matrix / vector with entries in [0.1, 1.1)."""
    rng = np.random.default_rng(seed)
    return (rng.random(shape) + 0.1).astype(dtype, copy=False)


def symmetric_matrix(
    n: int, density: float, seed: Optional[int] = None, dtype=np.float64
) -> Tensor:
    """A random symmetric sparse matrix (2-D convenience wrapper)."""
    return erdos_renyi_symmetric(n, 2, density, seed, dtype=dtype)
