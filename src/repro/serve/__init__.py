"""``repro.serve`` — the kernel-service daemon and its client.

Three modules, one wire protocol:

* :mod:`repro.serve.protocol` — length-prefixed JSON framing, the tensor
  codec (raw bytes: remote results are bit-identical by construction),
  the compile-spec codec, and the structured error codes.
* :mod:`repro.serve.daemon` — :class:`KernelServer`, the asyncio
  unix-socket daemon behind ``repro serve``: deadlines, bounded
  admission with structured ``overloaded`` shedding, cross-client
  compile coalescing, graceful SIGTERM drain, crash-safe warm restart.
* :mod:`repro.serve.client` — :class:`ServiceClient` and the
  ``$REPRO_SERVICE`` integration: bounded retries, then sticky fallback
  to the in-process :class:`~repro.service.engine.KernelService`.
"""

from repro.serve.client import (
    RemoteError,
    RemoteReplyError,
    RemoteUnavailable,
    ServiceClient,
    fetch_compiled,
)
from repro.serve.daemon import KernelServer, PlanPool, probe_socket
from repro.serve.protocol import (
    OPERATIONS,
    PROTOCOL_VERSION,
    RETRYABLE_ERRORS,
    ProtocolError,
)

__all__ = [
    "KernelServer",
    "PlanPool",
    "probe_socket",
    "ServiceClient",
    "RemoteError",
    "RemoteReplyError",
    "RemoteUnavailable",
    "fetch_compiled",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "OPERATIONS",
    "RETRYABLE_ERRORS",
]
