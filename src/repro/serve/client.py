"""The kernel-service daemon client: remote first, in-process always.

Setting ``REPRO_SERVICE=unix:/path/to.sock`` makes every
:class:`KernelService` in the process try the daemon for cold keys before
compiling locally (:meth:`KernelService._remote_fetch`).  The contract is
strictly *accelerator, not dependency*:

* retryable replies (``overloaded``, ``draining``) and torn connections
  are retried ``$REPRO_SERVICE_RETRIES`` times with bounded exponential
  backoff (base ``$REPRO_SERVICE_BACKOFF`` seconds, capped at 1s);
* when retries are exhausted the daemon is marked unreachable in the
  process's sticky health record (:func:`backend_health.mark_remote`) —
  the "remote" pseudo-tier above the in-process degradation ladder — and
  every later request falls straight through to the local compile path
  without paying connect latency again;
* :func:`fetch_compiled` therefore never raises, and results are
  bit-identical either way: a daemon-built kernel is rehydrated through
  the same ``to_state``/``from_state`` path the disk store uses, with the
  shipped artifact verified against its ``artifact_sha256`` before any
  ``dlopen``.

Degradation is surfaced, never silent: ``service.remote.*`` metrics count
hits / retries / fallbacks / errors, and ``ServiceStats.describe`` prints
a ``DEGRADED(remote)`` banner once the daemon has been marked.
"""

from __future__ import annotations

import atexit
import base64
import hashlib
import itertools
import os
import shutil
import socket
import tempfile
import threading
import time
import warnings
from typing import Dict, Optional

from repro import faults
from repro.codegen.backends import health as backend_health
from repro.core.config import (
    service_backoff,
    service_retries,
    service_timeout,
)
from repro.obs import metrics as obs_metrics
from repro.serve import protocol
from repro.serve.protocol import ProtocolError

#: the env var naming the daemon endpoint (``unix:/path/to.sock``).
SERVICE_ENV = "REPRO_SERVICE"


class RemoteError(RuntimeError):
    """Base class for kernel-service daemon client failures."""


class RemoteUnavailable(RemoteError):
    """The daemon could not be reached (or kept failing) after the
    configured retries — callers should fall back in-process."""


class RemoteReplyError(RemoteError):
    """The daemon answered with a structured error reply."""

    def __init__(self, code: str, detail: str = ""):
        super().__init__(
            "daemon replied %s%s" % (code, ": %s" % detail if detail else "")
        )
        self.code = code
        self.detail = detail


def parse_endpoint(value: str) -> str:
    """The socket path from a ``unix:PATH`` endpoint string."""
    value = value.strip()
    if value.startswith("unix:"):
        path = value[len("unix:"):]
    else:
        path = value  # a bare path is accepted as shorthand
    if not path:
        raise ValueError("empty %s endpoint" % SERVICE_ENV)
    return path


class ServiceClient:
    """One persistent connection to the daemon, with retries.

    Thread-safe (one request in flight at a time — the protocol is
    strictly request/reply per connection).  Connection failures close
    and re-dial transparently inside :meth:`call`.
    """

    def __init__(
        self,
        path: str,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
    ):
        self.path = str(path)
        self.timeout = service_timeout() if timeout is None else timeout
        self.retries = service_retries() if retries is None else int(retries)
        self.backoff = service_backoff() if backoff is None else float(backoff)
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.path)
        except OSError:
            sock.close()
            raise
        self._sock = sock
        return sock

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # ------------------------------------------------------------------
    def _send(self, sock: socket.socket, msg: dict) -> None:
        fault = faults.poll("wire.write")
        if fault is not None:
            if fault.action == "slow":
                time.sleep(fault.arg_float(0.05))
            else:
                raise ConnectionResetError("injected: wire.write failure")
        sock.sendall(protocol.encode_frame(msg))

    def _recv_exact(self, sock: socket.socket, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise ConnectionResetError("daemon closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _recv(self, sock: socket.socket) -> dict:
        fault = faults.poll("wire.read")
        if fault is not None:
            if fault.action == "slow":
                time.sleep(fault.arg_float(0.05))
            else:
                raise ConnectionResetError("injected: wire.read failure")
        header = self._recv_exact(sock, protocol.HEADER.size)
        length = protocol.decode_length(header)
        return protocol.decode_body(self._recv_exact(sock, length))

    # ------------------------------------------------------------------
    def call(
        self,
        op: str,
        payload: Optional[dict] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """One request/reply exchange, with the full retry policy.

        Raises :class:`RemoteUnavailable` when the daemon cannot be
        reached (or keeps answering retryably) within the retry budget,
        :class:`RemoteReplyError` on a non-retryable structured error.
        """
        msg = dict(payload or {})
        msg["op"] = op
        if deadline is not None:
            msg["deadline_s"] = deadline
        delay = self.backoff
        last: Optional[Exception] = None
        with self._lock:
            for attempt in range(self.retries + 1):
                if attempt:
                    obs_metrics.inc("service.remote.retries")
                    time.sleep(min(delay, 1.0))
                    delay *= 2
                msg["id"] = next(self._ids)
                try:
                    sock = self._connect()
                    self._send(sock, msg)
                    reply = self._recv(sock)
                except (OSError, ProtocolError) as exc:
                    # the connection is untrustworthy either way: re-dial
                    self._close_locked()
                    last = exc
                    continue
                if reply.get("ok"):
                    return reply
                code = str(reply.get("error", "internal"))
                detail = str(reply.get("detail", ""))
                if code in protocol.RETRYABLE_ERRORS:
                    last = RemoteReplyError(code, detail)
                    continue
                raise RemoteReplyError(code, detail)
        raise RemoteUnavailable(
            "daemon at %s unavailable after %d attempt(s): %s"
            % (self.path, self.retries + 1, last)
        )

    # -- convenience wrappers ------------------------------------------
    def compile(self, request, deadline: Optional[float] = None) -> dict:
        """The raw ``compile`` reply for a :class:`CompileRequest`."""
        return self.call(
            "compile",
            {"spec": protocol.spec_from_request(request)},
            deadline=deadline,
        )

    def execute(self, request, tensors, deadline: Optional[float] = None):
        """Run *request* on the daemon; returns ``(result, reply)`` with
        the result decoded back into a numpy array (bit-identical to the
        daemon's buffer — the codec ships raw bytes)."""
        reply = self.call(
            "execute",
            {
                "spec": protocol.spec_from_request(request),
                "tensors": protocol.encode_tensors(tensors),
            },
            deadline=deadline,
        )
        return protocol.decode_tensor(reply["result"]), reply

    def health(self) -> dict:
        return self.call("health")

    def stats(self) -> dict:
        return self.call("stats")

    def shutdown(self) -> dict:
        return self.call("shutdown")


# ---------------------------------------------------------------------------
# the process-wide client (what KernelService._remote_fetch uses)
# ---------------------------------------------------------------------------
_state_lock = threading.Lock()
_client: Optional[ServiceClient] = None
_client_endpoint: Optional[str] = None
_disabled = False
_artifacts: Optional[str] = None
_warned = False


def configured() -> bool:
    """Is a daemon endpoint configured (and not disabled in-process)?"""
    return not _disabled and bool(os.environ.get(SERVICE_ENV))


def disable_in_process() -> None:
    """Permanently ignore ``$REPRO_SERVICE`` in this process.

    The daemon calls this first thing: a daemon whose environment points
    at its own socket must never become its own client — every cold
    compile would deadlock behind a request to itself.
    """
    global _disabled
    _disabled = True


def get_client() -> Optional[ServiceClient]:
    """The memoized process-wide client, or ``None`` if unconfigured."""
    global _client, _client_endpoint
    if not configured():
        return None
    endpoint = os.environ[SERVICE_ENV]
    with _state_lock:
        if _client is None or _client_endpoint != endpoint:
            if _client is not None:
                _client.close()
            try:
                _client = ServiceClient(parse_endpoint(endpoint))
            except ValueError:
                return None
            _client_endpoint = endpoint
        return _client


def reset() -> None:
    """Forget the memoized client and re-enable (tests; also clears the
    sticky remote health mark so a restarted daemon gets retried)."""
    global _client, _client_endpoint, _disabled, _warned
    with _state_lock:
        if _client is not None:
            _client.close()
        _client = None
        _client_endpoint = None
        _disabled = False
        _warned = False
    backend_health.reset_remote()


def _artifact_dir() -> str:
    """A per-process scratch directory for daemon-shipped ``.so`` files
    (removed at interpreter exit)."""
    global _artifacts
    with _state_lock:
        if _artifacts is None:
            _artifacts = tempfile.mkdtemp(prefix="repro-remote-")
            atexit.register(shutil.rmtree, _artifacts, ignore_errors=True)
        return _artifacts


def _materialize_artifact(key: str, reply: dict) -> Optional[str]:
    """Write the shipped shared object to disk iff its bytes match the
    recorded hash — the same refuse-to-dlopen-torn-ELFs rule the disk
    store enforces.  Returns its path, or ``None`` (rebuild locally)."""
    blob_b64 = reply.get("artifact")
    digest = reply.get("artifact_sha256")
    if not blob_b64 or not digest:
        return None
    try:
        blob = base64.b64decode(blob_b64, validate=True)
    except Exception:
        return None
    if hashlib.sha256(blob).hexdigest() != digest:
        obs_metrics.inc("service.remote.artifact_rejected")
        return None
    path = os.path.join(_artifact_dir(), "%s.so" % key)
    try:
        fd, tmp = tempfile.mkstemp(dir=_artifact_dir(), suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except OSError:
        return None
    return path


def _mark_unreachable(error: Exception) -> None:
    global _warned
    first = backend_health.mark_remote(error)
    obs_metrics.inc("service.remote.fallbacks")
    if first and not _warned:
        _warned = True
        warnings.warn(
            "kernel-service daemon unreachable (%s); serving in-process "
            "for the rest of this run" % error,
            RuntimeWarning,
            stacklevel=3,
        )


def fetch_compiled(request) -> Optional["object"]:
    """Fetch a compiled kernel for *request* from the daemon, or ``None``.

    Never raises; every failure path answers ``None`` so the caller's
    lookup falls through to the in-process compile — bit-identical, just
    slower.  Exhausted connection retries mark the daemon unreachable
    (sticky, per-process) so later requests skip straight to local.
    """
    from repro.core.compiler import CompiledKernel

    if not configured() or not backend_health.remote_ok():
        return None
    client = get_client()
    if client is None:
        return None
    try:
        reply = client.compile(request)
    except RemoteUnavailable as exc:
        _mark_unreachable(exc)
        return None
    except RemoteReplyError as exc:
        # the daemon is alive but cannot help with *this* request
        # (degraded toolchain, deadline, malformed spec): not sticky —
        # other requests may still be served fine
        obs_metrics.inc("service.remote.errors")
        return None
    key = reply.get("key", request.key)
    artifact = _materialize_artifact(key, reply)
    try:
        kernel = CompiledKernel.from_state(
            reply["state"], label=key[:12], artifact=artifact
        )
    except Exception:
        obs_metrics.inc("service.remote.errors")
        return None
    obs_metrics.inc("service.remote.hits")
    return kernel
