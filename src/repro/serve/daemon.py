"""``repro serve`` — the crash-tolerant kernel-service daemon.

An asyncio unix-socket server that owns a :class:`KernelService` (the
in-memory LRU and the disk store) plus a bounded pool of warm
:class:`ExecutionPlan`\\ s, and speaks the length-prefixed JSON protocol
of :mod:`repro.serve.protocol`.  Robustness decisions, in order of what
kills shared services first:

* **Deadlines** — every request runs under a deadline (its own
  ``deadline_s`` or ``$REPRO_SERVE_DEADLINE``); expiry answers a
  structured ``deadline`` error.  Compiles themselves stay bounded by
  the ``$REPRO_CC_TIMEOUT`` retry machinery, so a worker thread stuck
  behind a hung ``cc`` is released by the toolchain layer, not leaked.
* **Backpressure** — at most ``$REPRO_SERVE_QUEUE`` requests are
  admitted (queued + running); the rest are shed immediately with an
  ``overloaded`` reply instead of queueing unboundedly.
* **Coalescing** — duplicate in-flight ``compile`` keys share one
  compile task (the wire extension of the service's single-flight), so
  a stampede of clients on one cold hot key costs one compile.
* **Graceful drain** — SIGTERM (or the ``shutdown`` op) stops admitting
  work (``draining`` replies), lets in-flight requests finish within
  ``$REPRO_SERVE_DRAIN`` seconds, then exits, unlinking the socket and
  the pid lock.
* **Crash-safe warm restart** — a ``kill -9``'d daemon leaves only a
  stale socket and a stale PID-stamped lock, both reclaimed on the next
  start; ``--warm`` rehydrates the LRU from the disk store, whose
  ``artifact_sha256`` verification refuses to ``dlopen`` torn shared
  objects (they are healed by a clean rebuild instead).
* **Hostile input** — oversized length prefixes, garbage JSON and torn
  frames answer ``bad-request``/close without allocating; a started
  frame that stalls (slowloris) is cut off by
  ``$REPRO_SERVE_READ_TIMEOUT``.

Fault-injection points (:mod:`repro.faults`): ``wire.accept``,
``wire.read``, ``wire.write`` and ``serve.handler`` make every failure
path above deterministically testable.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import signal
import socket as socket_module
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro import faults
from repro.codegen.backends import health as backend_health
from repro.core.config import (
    serve_deadline,
    serve_drain_grace,
    serve_max_frame,
    serve_plan_pool,
    serve_queue_limit,
    serve_read_timeout,
    serve_workers,
)
from repro.core.flock import InterProcessLock
from repro.faults.spec import FaultError
from repro.obs import metrics as obs_metrics
from repro.serve import protocol
from repro.serve.protocol import ProtocolError, error_reply
from repro.service.engine import KernelService


class PlanPool:
    """A bounded LRU of warm execution plans keyed by request content.

    The key is a digest of (kernel key, tensor names/dtypes/shapes/raw
    bytes): two wire requests with identical inputs reuse one prepared
    plan, skipping preparation and argument marshaling.  Plans are not
    thread-safe, so each entry carries a busy flag — a concurrent
    duplicate request simply runs unpooled rather than waiting.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()

    def acquire(self, digest: str):
        """Borrow the (kernel, plan) pair for *digest*, or ``None``."""
        if self.capacity <= 0:
            return None
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            kernel, plan, busy = entry
            if not busy.acquire(blocking=False):
                self.misses += 1  # in use: duplicate runs unpooled
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return entry

    @staticmethod
    def release(entry) -> None:
        entry[2].release()

    def put(self, digest: str, kernel, plan) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            if digest in self._entries:
                return
            self._entries[digest] = (kernel, plan, threading.Lock())
            while len(self._entries) > self.capacity:
                # evict the least-recently-used idle entry
                for key, entry in self._entries.items():
                    if not entry[2].locked():
                        del self._entries[key]
                        break
                else:
                    break  # every entry busy: over-capacity transiently

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _execute_digest(key: str, tensors) -> str:
    digest = hashlib.sha256()
    digest.update(key.encode("ascii"))
    for name in sorted(tensors):
        arr = tensors[name]
        digest.update(
            ("|%s:%s:%s:" % (name, arr.dtype, arr.shape)).encode("ascii")
        )
        digest.update(arr.tobytes())
    return digest.hexdigest()


class _BadFrame(Exception):
    """A readable-but-invalid frame; answered with ``bad-request``."""


class KernelServer:
    """The daemon: one instance, one unix socket, one kernel service."""

    def __init__(
        self,
        socket_path,
        service: Optional[KernelService] = None,
        *,
        store=None,
        capacity: int = 128,
        queue_limit: Optional[int] = None,
        workers: Optional[int] = None,
        deadline: Optional[float] = None,
        read_timeout: Optional[float] = None,
        drain_grace: Optional[float] = None,
        plan_pool_size: Optional[int] = None,
        max_frame: Optional[int] = None,
    ):
        self.socket_path = str(socket_path)
        if service is None:
            service = KernelService(
                capacity=capacity, store=store, use_remote=False
            )
        else:
            # the daemon owns this service now: it must answer from its
            # own cache/store/compiler, never by dialing a daemon
            service.use_remote = False
        self.service = service
        self.queue_limit = (
            serve_queue_limit() if queue_limit is None else int(queue_limit)
        )
        self.workers = serve_workers() if workers is None else int(workers)
        self.deadline = serve_deadline() if deadline is None else (
            deadline if deadline and deadline > 0 else None
        )
        self.read_timeout = (
            serve_read_timeout() if read_timeout is None else (
                read_timeout if read_timeout and read_timeout > 0 else None
            )
        )
        self.drain_grace = (
            serve_drain_grace() if drain_grace is None else float(drain_grace)
        )
        self.max_frame = (
            serve_max_frame() if max_frame is None else int(max_frame)
        )
        self.plans = PlanPool(
            serve_plan_pool() if plan_pool_size is None else plan_pool_size
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._lock_file = InterProcessLock(self.socket_path + ".lock")
        self._server: Optional[asyncio.AbstractServer] = None
        self._done: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._compiling: Dict[str, asyncio.Task] = {}
        self._connections: set = set()
        self._active = 0
        self._draining = False
        self._started = time.monotonic()
        # counters (mutated on the event loop only — no lock needed)
        self.requests = 0
        self.shed = 0
        self.draining_rejected = 0
        self.deadline_timeouts = 0
        self.coalesced = 0
        self.errors = 0
        self.warmed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _claim_socket(self) -> None:
        """Own the socket path: the PID lock elects exactly one daemon,
        and a stale socket left by a crashed predecessor is reclaimed."""
        if not self._lock_file.try_acquire():
            raise RuntimeError(
                "another daemon appears to hold %s (lock %s, pid %s)"
                % (
                    self.socket_path,
                    self._lock_file.path,
                    self._lock_file.holder_pid(),
                )
            )
        if os.path.exists(self.socket_path):
            # we hold the lock, so no live daemon owns this socket:
            # whatever is there is a crashed predecessor's corpse
            try:
                os.unlink(self.socket_path)
            except OSError:
                self._lock_file.release()
                raise

    def warm_from_store(self) -> Tuple[int, int]:
        """Rehydrate every persisted kernel into the LRU before serving.

        Runs the disk store's full verification path (state-version
        check, ``artifact_sha256`` before any ``dlopen``): corrupt
        entries are removed and counted, never served.  Returns
        ``(rehydrated, failed)``.
        """
        store = self.service.store
        if store is None:
            return (0, 0)
        ok = failed = 0
        for key in list(store.keys()):
            kernel = store.get(key)
            if kernel is None:
                failed += 1
                continue
            self.service.cache.put(key, kernel)
            ok += 1
        self.warmed = ok
        return (ok, failed)

    async def start(self, warm: bool = False) -> None:
        self._claim_socket()
        if warm:
            self.warm_from_store()
        loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        try:
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=self.socket_path
            )
        except BaseException:
            self._lock_file.release()
            raise
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.begin_drain, signal.Signals(signum).name
                )
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread (tests) or platform without support
        self._started = time.monotonic()

    async def run(self, warm: bool = False, on_ready=None) -> None:
        """Start, serve until drained, then clean up.  ``on_ready`` is
        called once the socket is accepting (the CLI prints its banner
        there, so "serving" is never announced before it is true)."""
        await self.start(warm=warm)
        if on_ready is not None:
            on_ready()
        try:
            await self._done.wait()
        finally:
            await self.close()

    def begin_drain(self, reason: str = "shutdown") -> None:
        """Stop admitting work; finish in-flight requests, then stop."""
        if self._draining:
            return
        self._draining = True
        obs_metrics.inc("serve.drains")
        loop = asyncio.get_running_loop()
        loop.create_task(self._drain_then_stop(reason))

    async def _drain_then_stop(self, reason: str) -> None:
        try:
            await asyncio.wait_for(self._idle.wait(), self.drain_grace)
        except asyncio.TimeoutError:
            pass  # grace expired: remaining requests are abandoned
        self._done.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        abandoned = list(self._compiling.values())
        for task in abandoned:
            task.cancel()
        if abandoned:
            await asyncio.gather(*abandoned, return_exceptions=True)
        self._pool.shutdown(wait=False)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._lock_file.release()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connect(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        if faults.poll("wire.accept") is not None:
            writer.close()
            return
        try:
            while True:
                try:
                    msg = await self._read_frame(reader)
                except _BadFrame as exc:
                    self.errors += 1
                    obs_metrics.inc("serve.bad_frames")
                    await self._write_frame(
                        writer,
                        error_reply(None, protocol.BAD_REQUEST, str(exc)),
                    )
                    break  # framing may be desynchronized: drop the link
                if msg is None:
                    break  # clean EOF
                reply = await self._handle(msg)
                if not await self._write_frame(writer, reply):
                    break
        except asyncio.CancelledError:
            pass  # server shutdown cancelled this connection: done
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
            OSError,
        ):
            pass  # torn connection: nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_frame(self, reader) -> Optional[dict]:
        """One request frame; ``None`` on clean EOF.

        The wait for a frame's *first* byte is unbounded (idle client
        connections are legal); once a frame has started, the rest must
        arrive within ``read_timeout`` — a slowloris peer that dribbles
        bytes is disconnected instead of pinning the connection forever.
        """
        fault = faults.poll("wire.read")
        if fault is not None:
            if fault.action == "slow":
                await asyncio.sleep(fault.arg_float(0.05))
            else:
                raise ConnectionResetError("injected: wire.read failure")
        first = await reader.read(1)
        if not first:
            return None

        async def rest() -> bytes:
            header = first + await reader.readexactly(HEADER_REMAINDER)
            length = protocol.decode_length(header, self.max_frame)
            return await reader.readexactly(length)

        if self.read_timeout is not None:
            try:
                body = await asyncio.wait_for(rest(), self.read_timeout)
            except ProtocolError as exc:
                raise _BadFrame(str(exc))
        else:
            try:
                body = await rest()
            except ProtocolError as exc:
                raise _BadFrame(str(exc))
        try:
            return protocol.decode_body(body)
        except ProtocolError as exc:
            raise _BadFrame(str(exc))

    async def _write_frame(self, writer, reply: dict) -> bool:
        fault = faults.poll("wire.write")
        if fault is not None:
            if fault.action == "slow":
                await asyncio.sleep(fault.arg_float(0.05))
            else:
                return False  # injected: connection died under the reply
        try:
            writer.write(protocol.encode_frame(reply, self.max_frame))
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False
        except ProtocolError:
            # the reply itself overflows the frame limit (giant tensor):
            # tell the client something rather than silently closing
            try:
                writer.write(
                    protocol.encode_frame(
                        error_reply(
                            reply.get("id"),
                            protocol.INTERNAL,
                            "reply exceeds the frame limit",
                        ),
                        self.max_frame,
                    )
                )
                await writer.drain()
                return True
            except Exception:
                return False

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    async def _handle(self, msg: dict) -> dict:
        rid = msg.get("id")
        op = msg.get("op")
        self.requests += 1
        obs_metrics.inc("serve.requests")
        if op == "health":
            return self._health_reply(rid)
        if op == "stats":
            return self._stats_reply(rid)
        if op == "shutdown":
            self.begin_drain("shutdown op")
            return {"ok": True, "id": rid, "status": "draining"}
        if op not in ("compile", "execute"):
            return error_reply(
                rid,
                protocol.UNKNOWN_OP,
                "unknown op %r (have: %s)" % (op, ", ".join(protocol.OPERATIONS)),
            )
        if self._draining:
            self.draining_rejected += 1
            obs_metrics.inc("serve.draining_rejected")
            return error_reply(rid, protocol.DRAINING, "daemon is draining")
        if self._active >= self.queue_limit:
            self.shed += 1
            obs_metrics.inc("serve.shed")
            return error_reply(
                rid,
                protocol.OVERLOADED,
                "admission queue full (%d in flight)" % self._active,
            )
        self._active += 1
        self._idle.clear()
        start = time.perf_counter()
        try:
            fault = faults.poll("serve.handler")
            if fault is not None:
                if fault.action == "slow":
                    await asyncio.sleep(fault.arg_float(0.05))
                else:
                    raise FaultError(fault)
            deadline = self._request_deadline(msg)
            if op == "compile":
                return await self._compile_op(msg, rid, deadline)
            return await self._execute_op(msg, rid, deadline)
        except asyncio.TimeoutError:
            self.deadline_timeouts += 1
            obs_metrics.inc("serve.deadline_timeouts")
            return error_reply(
                rid, protocol.DEADLINE, "request deadline expired"
            )
        except (ProtocolError, ValueError, KeyError, TypeError) as exc:
            self.errors += 1
            return error_reply(rid, protocol.BAD_REQUEST, str(exc))
        except Exception as exc:
            self.errors += 1
            obs_metrics.inc("serve.errors")
            return error_reply(
                rid,
                protocol.INTERNAL,
                "%s: %s" % (type(exc).__name__, exc),
            )
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            obs_metrics.observe(
                "serve.request_seconds", time.perf_counter() - start
            )

    def _request_deadline(self, msg: dict) -> Optional[float]:
        value = msg.get("deadline_s")
        if value is None:
            return self.deadline
        deadline = float(value)
        if deadline <= 0:
            raise ProtocolError("deadline_s must be > 0")
        return deadline

    async def _bounded(self, deadline: Optional[float], awaitable):
        if deadline is None:
            return await awaitable
        return await asyncio.wait_for(awaitable, deadline)

    # -- compile -------------------------------------------------------
    async def _compile_op(
        self, msg: dict, rid, deadline: Optional[float]
    ) -> dict:
        request = protocol.request_from_spec(msg.get("spec"))
        key = request.key
        task = self._compiling.get(key)
        if task is None:
            loop = asyncio.get_running_loop()
            task = loop.create_task(self._compile_payload(request))
            self._compiling[key] = task
            task.add_done_callback(
                lambda _t, key=key: self._compiling.pop(key, None)
            )
        else:
            self.coalesced += 1
            obs_metrics.inc("serve.coalesced")
        # shield: one follower's deadline must not cancel the shared
        # compile other requesters (and the cache) are waiting on
        payload = await self._bounded(deadline, asyncio.shield(task))
        reply = dict(payload)
        reply["id"] = rid
        return reply

    async def _compile_payload(self, request) -> dict:
        loop = asyncio.get_running_loop()
        kernel, origin = await loop.run_in_executor(
            self._pool, self.service.get_with_origin, request
        )
        if kernel.backend != kernel.options.backend:
            # this daemon could only produce a degraded kernel (its
            # toolchain broke); shipping it would poison client caches
            # with an artifact other hosts could build properly
            return error_reply(
                None,
                protocol.DEGRADED,
                "daemon serves %s for a %s request"
                % (kernel.backend, kernel.options.backend),
            )
        payload = {
            "ok": True,
            "key": request.key,
            "origin": origin,
            "backend": kernel.backend,
            "state": kernel.to_state(),
        }
        so_path = getattr(kernel.bound.executable, "so_path", None)
        if so_path is not None:
            try:
                with open(so_path, "rb") as handle:
                    blob = handle.read()
                payload["artifact"] = base64.b64encode(blob).decode("ascii")
                payload["artifact_sha256"] = hashlib.sha256(blob).hexdigest()
            except OSError:
                pass  # build dir vanished: state alone still rehydrates
        return payload

    # -- execute -------------------------------------------------------
    async def _execute_op(
        self, msg: dict, rid, deadline: Optional[float]
    ) -> dict:
        request = protocol.request_from_spec(msg.get("spec"))
        tensors = protocol.decode_tensors(msg.get("tensors"))
        loop = asyncio.get_running_loop()
        payload = await self._bounded(
            deadline,
            loop.run_in_executor(self._pool, self._execute, request, tensors),
        )
        payload["id"] = rid
        return payload

    def _execute(self, request, tensors) -> dict:
        """Worker-thread body of one ``execute`` request."""
        kernel, origin = self.service.get_with_origin(request)
        digest = _execute_digest(request.key, tensors)
        entry = self.plans.acquire(digest)
        pooled = entry is not None
        if entry is None:
            kernel_for_run = kernel
            plan = kernel.execution_plan(**tensors)
        else:
            kernel_for_run, plan = entry[0], entry[1]
        try:
            out = plan()
            result = kernel_for_run.finalize(out)
            # encode before releasing: finalize may return a view of the
            # plan's reusable buffer, which the next caller overwrites
            encoded = protocol.encode_tensor(result)
        finally:
            if pooled:
                self.plans.release(entry)
        if not pooled:
            self.plans.put(digest, kernel, plan)
        obs_metrics.inc("serve.executes")
        return {
            "ok": True,
            "key": request.key,
            "origin": origin,
            "backend": kernel.backend,
            "plan_pooled": pooled,
            "result": encoded,
        }

    # -- introspection -------------------------------------------------
    def _health_reply(self, rid) -> dict:
        return {
            "ok": True,
            "id": rid,
            "status": "draining" if self._draining else "serving",
            "pid": os.getpid(),
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self._started,
            "health": backend_health.snapshot(),
        }

    def _stats_reply(self, rid) -> dict:
        return {
            "ok": True,
            "id": rid,
            "stats": self.service.stats().to_dict(),
            "server": {
                "requests": self.requests,
                "active": self._active,
                "queue_limit": self.queue_limit,
                "shed": self.shed,
                "coalesced": self.coalesced,
                "deadline_timeouts": self.deadline_timeouts,
                "draining_rejected": self.draining_rejected,
                "errors": self.errors,
                "warmed": self.warmed,
                "draining": self._draining,
                "uptime_s": time.monotonic() - self._started,
                "plan_pool": {
                    "capacity": self.plans.capacity,
                    "entries": len(self.plans),
                    "hits": self.plans.hits,
                    "misses": self.plans.misses,
                },
            },
        }


#: bytes of the frame header left to read after the first byte arrives.
HEADER_REMAINDER = protocol.HEADER.size - 1


def probe_socket(socket_path) -> bool:
    """Is something accepting connections on *socket_path*?  (Used by
    ``repro doctor`` and the stale-socket check in tests.)"""
    sock = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    sock.settimeout(1.0)
    try:
        sock.connect(str(socket_path))
        return True
    except OSError:
        return False
    finally:
        sock.close()


def main(argv=None) -> int:  # pragma: no cover - thin wrapper, CLI-tested
    """Entry point used by ``repro serve`` (see :mod:`repro.cli`)."""
    raise SystemExit("use `python -m repro.cli serve`")
