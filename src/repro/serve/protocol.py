"""The kernel-service wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON; the JSON value must be an object.  Both directions
use the same framing.  Frames are bounded by ``$REPRO_SERVE_MAX_FRAME``
(tensors ride inside frames, so the default is generous): an oversized
length prefix is a protocol violation, answered with a structured
``bad-request`` error and a closed connection rather than an attempted
allocation — a hostile 4-GiB prefix must cost the daemon nothing.

Requests are ``{"op": ..., "id": ...,  ...}`` with operations
``compile`` / ``execute`` / ``stats`` / ``health`` / ``shutdown``;
replies are ``{"ok": true, ...}`` or ``{"ok": false, "error": <code>,
"detail": ...}``.  Error codes are part of the protocol:

* ``overloaded`` — the admission queue is full; retry after backoff.
* ``draining`` — the daemon is shutting down; retry elsewhere or fall
  back in-process.
* ``deadline`` — the request's deadline expired inside the daemon.
* ``degraded`` — the daemon could only produce a degraded kernel (e.g.
  its toolchain broke); the client should compile locally instead of
  caching a poisoned artifact.
* ``bad-request`` / ``unknown-op`` / ``internal`` — not retryable.

Tensors cross the wire as raw little-endian bytes (base64 inside the
JSON), dtype- and shape-tagged — no textual round-trip, so remote
results are *bit-identical* to in-process execution by construction.

This module is deliberately dependency-light (numpy + stdlib) and shared
verbatim by the daemon (:mod:`repro.serve.daemon`) and the client
(:mod:`repro.serve.client`): there is exactly one definition of the
framing, the tensor codec and the compile-spec codec, so the two ends
cannot drift.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.config import serve_max_frame

#: frame header: one big-endian u32 payload length.
HEADER = struct.Struct(">I")

#: bumped when the frame layout or reply shapes change incompatibly;
#: ``health`` replies carry it so mismatched peers fail loudly.
PROTOCOL_VERSION = 1

# ---------------------------------------------------------------------------
# structured error codes
# ---------------------------------------------------------------------------
OVERLOADED = "overloaded"
DRAINING = "draining"
DEADLINE = "deadline"
DEGRADED = "degraded"
BAD_REQUEST = "bad-request"
UNKNOWN_OP = "unknown-op"
INTERNAL = "internal"

#: errors a client may retry (with backoff) before falling back.
RETRYABLE_ERRORS = frozenset({OVERLOADED, DRAINING})

#: operations the protocol defines.
OPERATIONS = ("compile", "execute", "stats", "health", "shutdown")


class ProtocolError(ValueError):
    """A frame that violates the wire protocol (oversized, torn, or not
    a JSON object) — the connection that produced it is untrustworthy."""


def error_reply(
    request_id, code: str, detail: Optional[str] = None
) -> dict:
    reply = {"ok": False, "error": code}
    if request_id is not None:
        reply["id"] = request_id
    if detail:
        reply["detail"] = str(detail)[:2000]
    return reply


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def encode_frame(doc: Mapping, max_frame: Optional[int] = None) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    limit = serve_max_frame() if max_frame is None else max_frame
    body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(body) > limit:
        raise ProtocolError(
            "frame of %d bytes exceeds the %d-byte limit "
            "(raise $REPRO_SERVE_MAX_FRAME for larger tensors)"
            % (len(body), limit)
        )
    return HEADER.pack(len(body)) + body


def decode_length(header: bytes, max_frame: Optional[int] = None) -> int:
    """Validate a frame header; returns the body length."""
    limit = serve_max_frame() if max_frame is None else max_frame
    if len(header) != HEADER.size:
        raise ProtocolError("truncated frame header (%d bytes)" % len(header))
    (length,) = HEADER.unpack(header)
    if length > limit:
        raise ProtocolError(
            "frame length prefix %d exceeds the %d-byte limit"
            % (length, limit)
        )
    return length


def decode_body(body: bytes) -> dict:
    """Parse a frame body; the JSON value must be an object."""
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("frame body is not valid JSON: %s" % exc)
    if not isinstance(doc, dict):
        raise ProtocolError(
            "frame body must be a JSON object, got %s" % type(doc).__name__
        )
    return doc


# ---------------------------------------------------------------------------
# tensor codec
# ---------------------------------------------------------------------------
def encode_tensor(arr: np.ndarray) -> dict:
    """A numpy array as ``{"dtype", "shape", "data"}`` (raw bytes b64).

    ``tobytes()`` serializes in C order whatever the input layout, and —
    unlike ``ascontiguousarray`` — preserves 0-d shapes (scalar kernel
    outputs must round-trip as 0-d, not be promoted to ``(1,)``).
    """
    arr = np.asarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_tensor(doc) -> np.ndarray:
    """Rebuild an array; every field is validated against hostile input.

    Only numeric dtypes are accepted (a wire peer must never pick
    ``object`` and smuggle pickles), the shape must be non-negative ints,
    and the payload length must match ``prod(shape) * itemsize`` exactly.
    """
    if not isinstance(doc, dict):
        raise ProtocolError("tensor must be an object")
    try:
        dtype = np.dtype(str(doc["dtype"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("bad tensor dtype: %s" % exc)
    if dtype.kind not in "fiub":
        raise ProtocolError(
            "tensor dtype %s is not numeric" % dtype
        )
    shape = doc.get("shape")
    if not isinstance(shape, list) or not all(
        isinstance(s, int) and s >= 0 for s in shape
    ):
        raise ProtocolError("tensor shape must be a list of ints >= 0")
    try:
        raw = base64.b64decode(doc.get("data", ""), validate=True)
    except Exception as exc:
        raise ProtocolError("bad tensor payload: %s" % exc)
    count = 1
    for s in shape:
        count *= s
    if len(raw) != count * dtype.itemsize:
        raise ProtocolError(
            "tensor payload is %d bytes, %s%s needs %d"
            % (len(raw), dtype, tuple(shape), count * dtype.itemsize)
        )
    # .copy(): frombuffer views are read-only and pin the b64 buffer
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def encode_tensors(tensors: Mapping[str, np.ndarray]) -> Dict[str, dict]:
    return {name: encode_tensor(arr) for name, arr in tensors.items()}


def decode_tensors(doc) -> Dict[str, np.ndarray]:
    if not isinstance(doc, dict):
        raise ProtocolError("tensors must be an object of name -> tensor")
    out = {}
    for name, tensor in doc.items():
        if not isinstance(name, str) or not name.isidentifier():
            raise ProtocolError("bad tensor name %r" % (name,))
        out[name] = decode_tensor(tensor)
    return out


# ---------------------------------------------------------------------------
# compile-spec codec
# ---------------------------------------------------------------------------
def spec_from_request(request) -> dict:
    """A :class:`repro.service.keys.CompileRequest` as a wire spec.

    The spec is the *user-facing* compile surface (einsum string,
    symmetric partition, loop order, formats, options dict): the daemon
    re-canonicalizes it through the same :func:`canonicalize` path the
    client used, so both ends agree on defaults by construction.
    """
    return {
        "einsum": str(request.assignment),
        "symmetric": {
            name: [list(part) for part in parts]
            for name, parts in request.symmetric_modes
        },
        "loop_order": list(request.loop_order),
        "formats": dict(request.formats),
        "options": request.options.to_dict(),
        "naive": bool(request.naive),
        "sparse_levels": {
            name: list(levels) for name, levels in request.sparse_levels
        },
    }


def request_from_spec(doc):
    """Canonicalize a wire spec back into a ``CompileRequest``.

    Raises ``ValueError`` (including :class:`ProtocolError`) on anything
    malformed — the daemon maps that onto a ``bad-request`` reply.
    """
    from repro.core.config import CompilerOptions
    from repro.service.keys import canonicalize

    if not isinstance(doc, dict):
        raise ProtocolError("spec must be an object")
    einsum = doc.get("einsum")
    if not isinstance(einsum, str) or not einsum.strip():
        raise ProtocolError("spec.einsum must be a non-empty string")
    options_doc = doc.get("options") or {}
    if not isinstance(options_doc, dict):
        raise ProtocolError("spec.options must be an object")
    options = CompilerOptions.from_dict(options_doc)
    loop_order = doc.get("loop_order") or None
    if loop_order is not None and not (
        isinstance(loop_order, list)
        and all(isinstance(i, str) for i in loop_order)
    ):
        raise ProtocolError("spec.loop_order must be a list of index names")
    return canonicalize(
        einsum,
        symmetric=doc.get("symmetric") or None,
        loop_order=tuple(loop_order) if loop_order else None,
        formats=doc.get("formats") or None,
        options=options,
        naive=bool(doc.get("naive", False)),
        sparse_levels=doc.get("sparse_levels") or None,
    )
