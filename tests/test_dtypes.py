"""The element dtype as a first-class pipeline parameter.

Unit-level coverage of the dtype threading: options/env validation, COO
and Tensor payload dtypes (including the fixed ``todense`` fill and
``from_dense`` mask literals), cache-key and persisted-state separation,
output-buffer dtypes, the structured-tensor helpers, and the CLI flag.
End-to-end bit-identity across backends lives in
:mod:`tests.test_differential`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.compiler import CompiledKernel, compile_kernel
from repro.core.config import CompilerOptions, DEFAULT, DTYPE_CHOICES, default_dtype
from repro.codegen.runtime import make_output, np_dtype
from repro.data.random_tensors import erdos_renyi_symmetric, random_dense
from repro.frontend.validate import ValidationError, validate_inputs
from repro.frontend.parser import parse_assignment
from repro.service.keys import cache_key
from repro.tensor.coo import COO
from repro.tensor.structured import RunLengthVector, banded, triangular
from repro.tensor.tensor import Tensor


# ----------------------------------------------------------------------
# options and env
# ----------------------------------------------------------------------
def test_dtype_choices_and_default():
    assert DTYPE_CHOICES == ("float64", "float32")
    assert CompilerOptions().dtype == "float64"
    assert "dtype=float64" in CompilerOptions().describe()


def test_unknown_dtype_rejected():
    with pytest.raises(ValueError, match="dtype"):
        CompilerOptions(dtype="float16")


def test_env_var_sets_default_dtype(monkeypatch):
    monkeypatch.setenv("REPRO_DTYPE", "float32")
    assert CompilerOptions().dtype == "float32"
    monkeypatch.delenv("REPRO_DTYPE")
    assert CompilerOptions().dtype == "float64"


def test_invalid_env_dtype_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_DTYPE", "bfloat16")
    with pytest.warns(RuntimeWarning, match="REPRO_DTYPE"):
        assert default_dtype() == "float64"


def test_np_dtype_mapping():
    assert np_dtype("float64") == np.dtype(np.float64)
    assert np_dtype("float32") == np.dtype(np.float32)
    with pytest.raises(ValueError, match="dtype"):
        np_dtype("int8")


# ----------------------------------------------------------------------
# COO / Tensor payloads
# ----------------------------------------------------------------------
def test_coo_preserves_float32_and_promotes_the_rest():
    coords = np.array([[0, 1], [1, 0]])
    f32 = COO(coords, np.array([1.0, 2.0], dtype=np.float32), (2, 2))
    assert f32.dtype == np.float32
    ints = COO(coords, np.array([1, 2]), (2, 2))
    assert ints.dtype == np.float64  # non-float payloads promote
    forced = COO(coords, np.array([1, 2]), (2, 2), dtype=np.float32)
    assert forced.dtype == np.float32
    with pytest.raises(ValueError, match="dtype"):
        COO(coords, np.array([1.0, 2.0]), (2, 2), dtype=np.int32)


def test_coo_ops_preserve_dtype():
    coo = COO.from_dense(np.eye(3, dtype=np.float32))
    assert coo.dtype == np.float32
    assert coo.permute((1, 0)).dtype == np.float32
    assert coo.sorted_lex().dtype == np.float32
    assert coo.filter(np.ones(coo.nnz, dtype=bool)).dtype == np.float32
    assert COO.empty((3,), dtype=np.float32).dtype == np.float32
    assert coo.astype(np.float64).dtype == np.float64
    assert coo.astype(np.float32) is coo


def test_to_dense_fill_uses_payload_dtype():
    """The fixed float64 fill literal: a float32 COO densifies to float32."""
    coo = COO.from_dense(np.eye(2, dtype=np.float32))
    dense = coo.to_dense()
    assert dense.dtype == np.float32
    dense9 = coo.to_dense(fill=9.0)
    assert dense9.dtype == np.float32 and dense9[0, 1] == np.float32(9.0)


def test_from_dense_mask_compares_in_payload_dtype():
    """The fixed from_dense mask: values that round to the float32 fill
    are dropped, not kept via a float64 comparison."""
    arr64 = np.zeros((2, 2))
    arr64[0, 0] = 1e-50  # nonzero in f64, rounds to 0.0 in f32
    arr64[1, 1] = 1.0
    assert COO.from_dense(arr64).nnz == 2
    assert COO.from_dense(arr64.astype(np.float32)).nnz == 1


def test_tensor_dtype_and_astype():
    t = Tensor.from_dense(np.eye(3, dtype=np.float32), ((0, 1),))
    assert t.dtype == np.float32
    assert t.astype(np.float32) is t
    t64 = t.astype(np.float64)
    assert t64.dtype == np.float64
    assert t64.symmetric_modes == ((0, 1),)
    assert t.to_dense().dtype == np.float32
    view = t.view((0, 1), ("dense", "sparse"), "full")
    assert view.vals.dtype == np.float32


def test_symmetry_ops_preserve_dtype():
    t = erdos_renyi_symmetric(6, 3, 0.5, seed=5, dtype=np.float32)
    assert t.dtype == np.float32
    assert t._full_coo().dtype == np.float32
    assert t._canonical_coo().dtype == np.float32
    assert random_dense((3, 2), seed=1, dtype=np.float32).dtype == np.float32


# ----------------------------------------------------------------------
# structured helpers
# ----------------------------------------------------------------------
def test_structured_constructors_preserve_float32():
    arr = np.arange(9.0, dtype=np.float32).reshape(3, 3)
    assert triangular(arr).dtype == np.float32
    assert banded(arr, 1).dtype == np.float32


def test_rle_preserves_float32():
    vec = np.array([1, 1, 2, 2, 2, 0], dtype=np.float32)
    rle = RunLengthVector.compress(vec)
    assert rle.values.dtype == np.float32
    assert rle.decompress().dtype == np.float32
    np.testing.assert_array_equal(rle.decompress(), vec)


# ----------------------------------------------------------------------
# keys, state, outputs
# ----------------------------------------------------------------------
def test_dtype_is_part_of_the_cache_key():
    spec = dict(symmetric={"A": True}, loop_order=("j", "i"))
    k64 = cache_key("y[i] += A[i, j] * x[j]", options=DEFAULT.but(dtype="float64"), **spec)
    k32 = cache_key("y[i] += A[i, j] * x[j]", options=DEFAULT.but(dtype="float32"), **spec)
    assert k64 != k32


def test_make_output_dtype_and_identity():
    out = make_output((2, 2), "+", np.float32)
    assert out.dtype == np.float32 and np.all(out == 0)
    out = make_output((2,), "min", np.float32)
    assert out.dtype == np.float32 and np.all(np.isposinf(out))


@pytest.mark.parametrize("dtype", DTYPE_CHOICES)
def test_compiled_kernel_state_roundtrip_keeps_dtype(dtype):
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True},
        loop_order=("j", "i"), options=DEFAULT.but(dtype=dtype),
    )
    assert kernel.lowered.dtype == dtype
    state = kernel.to_state()
    rehydrated = CompiledKernel.from_state(state)
    assert rehydrated.options.dtype == dtype
    assert rehydrated.lowered.dtype == dtype
    A = np.eye(4)
    out = rehydrated(A=A, x=np.ones(4))
    assert out.dtype == np.dtype(dtype)
    np.testing.assert_allclose(out, np.ones(4))


@pytest.mark.parametrize("dtype", DTYPE_CHOICES)
def test_naive_kernels_honor_dtype(dtype):
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True},
        loop_order=("j", "i"), naive=True, options=DEFAULT.but(dtype=dtype),
    )
    assert kernel.options.dtype == dtype
    out = kernel(A=np.eye(3), x=np.ones(3))
    assert out.dtype == np.dtype(dtype)


def test_float32_kernel_casts_float64_inputs_once():
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True},
        loop_order=("j", "i"), options=DEFAULT.but(dtype="float32"),
    )
    prepared = kernel.bound.prepare(A=np.eye(4), x=np.ones(4))
    assert all(
        arr.dtype == np.float32
        for name, arr in prepared.items()
        if getattr(arr, "dtype", None) is not None
        and arr.dtype.kind == "f"
    )


def test_float32_vector_workspace_is_float32():
    """The generated preamble allocates workspaces in the kernel dtype."""
    kernel = compile_kernel(
        "C[i, j] += A[i, k] * B[k, j]", loop_order=("i", "k", "j"),
        options=DEFAULT.but(dtype="float32"),
    )
    if "np.empty" in kernel.source:
        assert "dtype=np.float32" in kernel.source


def test_validate_inputs_rejects_non_real_dtypes():
    assignment = parse_assignment("y[i] += A[i, j] * x[j]")
    with pytest.raises(ValidationError, match="non-real"):
        validate_inputs(
            assignment, {},
            {"A": np.zeros((2, 2), dtype=complex), "x": np.zeros(2)},
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_compile_dtype_flag(capsys):
    rc = cli_main([
        "compile", "y[i] += A[i, j] * x[j]", "--symmetric", "A",
        "--loop-order", "j,i", "--dtype", "float32",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "dtype=float32" in out


def test_cli_rejects_unknown_dtype():
    with pytest.raises(SystemExit):
        cli_main(["compile", "y[i] += A[i, j] * x[j]", "--dtype", "float16"])
