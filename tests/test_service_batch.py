"""Batch execution: results match sequential execution, work is amortized."""

import numpy as np
import pytest

from repro import BatchRequest, KernelService
from repro.kernels.library import KERNELS, get_kernel
from tests.conftest import make_symmetric_matrix
from tests.test_codegen_kernels import build_inputs


def _spec_request(spec, tensors, tag=None):
    return BatchRequest(
        spec.einsum,
        tensors,
        symmetric=dict(spec.symmetric),
        loop_order=spec.loop_order,
        formats=dict(spec.formats),
        tag=tag,
    )


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_batch_matches_sequential_across_library(rng, name):
    """One batch over the whole suite == one-at-a-time compile_kernel."""
    spec = get_kernel(name)
    inputs = build_inputs(rng, spec)
    expected = spec.compile()(**inputs)

    service = KernelService(capacity=16)
    results = service.batch([_spec_request(spec, inputs, tag=name)])
    assert results[0].tag == name
    assert np.array_equal(results[0].output, expected)


def test_mixed_batch_keeps_request_order_and_tags(rng):
    service = KernelService(capacity=16)
    ssymv = get_kernel("ssymv")
    syprd = get_kernel("syprd")
    A = make_symmetric_matrix(rng, 15, 0.5)
    x = rng.random(15)

    requests = [
        _spec_request(ssymv, {"A": A, "x": x}, tag="r0"),
        _spec_request(syprd, {"A": A, "x": x}, tag="r1"),
        _spec_request(ssymv, {"A": A, "x": x}, tag="r2"),
    ]
    results = service.batch(requests)
    assert [r.tag for r in results] == ["r0", "r1", "r2"]
    np.testing.assert_allclose(results[0].output, A @ x, rtol=1e-12)
    np.testing.assert_allclose(results[1].output, x @ A @ x, rtol=1e-12)
    assert np.array_equal(results[0].output, results[2].output)
    # two distinct kernels compiled, however many requests arrived
    assert service.stats().compiles == 2
    assert results[0].group_size == 2  # the two ssymv requests grouped


def test_batch_compiles_each_distinct_spec_once(rng):
    service = KernelService(capacity=16)
    spec = get_kernel("ssymv")
    A = make_symmetric_matrix(rng, 10, 0.5)
    x = rng.random(10)
    requests = [_spec_request(spec, {"A": A, "x": x}, tag=i) for i in range(6)]
    service.batch(requests)
    assert service.stats().compiles == 1
    # the whole group bound its inputs through a single prepare


def test_batch_prepare_amortized_per_input_set(rng, monkeypatch):
    service = KernelService(capacity=16)
    spec = get_kernel("ssymv")
    kernel = service.get_or_compile(
        spec.einsum,
        symmetric=dict(spec.symmetric),
        loop_order=spec.loop_order,
        formats=dict(spec.formats),
    )
    calls = []
    original = kernel.prepare

    def counting_prepare(**tensors):
        calls.append(sorted(tensors))
        return original(**tensors)

    monkeypatch.setattr(kernel, "prepare", counting_prepare)

    A1 = make_symmetric_matrix(rng, 10, 0.5)
    A2 = make_symmetric_matrix(rng, 10, 0.5)
    x = rng.random(10)
    requests = (
        [_spec_request(spec, {"A": A1, "x": x}) for _ in range(3)]
        + [_spec_request(spec, {"A": A2, "x": x}) for _ in range(3)]
    )
    results = service.batch(requests)
    assert len(calls) == 2  # one prepare per distinct input set
    assert all(r.cache_hit for r in results)  # kernel was pre-warmed
    np.testing.assert_allclose(results[0].output, A1 @ x, rtol=1e-12)
    np.testing.assert_allclose(results[-1].output, A2 @ x, rtol=1e-12)


def test_threaded_batch_matches_sequential(rng):
    spec = get_kernel("ssyrk")
    inputs = build_inputs(rng, spec, n=12)
    expected = spec.compile()(**inputs)

    service = KernelService(capacity=16, workers=4)
    requests = [_spec_request(spec, inputs, tag=i) for i in range(8)]
    results = service.batch(requests)  # uses the service-wide worker pool
    assert [r.tag for r in results] == list(range(8))
    for result in results:
        assert np.array_equal(result.output, expected)

    sequential = service.batch(requests, workers=1)
    for a, b in zip(results, sequential):
        assert np.array_equal(a.output, b.output)


def test_empty_batch():
    assert KernelService(capacity=2).batch([]) == []


def test_duplicate_requests_get_isolated_outputs(rng):
    """Requests sharing an input set run their plan once; every delivery
    is still an independently mutable array."""
    service = KernelService(capacity=4)
    spec = get_kernel("ssymv")
    A = make_symmetric_matrix(rng, 10, 0.5)
    x = rng.random(10)
    requests = [_spec_request(spec, {"A": A, "x": x}, tag=i) for i in range(3)]
    results = service.batch(requests)
    assert all(np.array_equal(r.output, results[0].output) for r in results)
    assert results[0].output is not results[1].output
    results[0].output[:] = -1.0  # mutating one delivery leaks nowhere
    np.testing.assert_allclose(results[1].output, A @ x, rtol=1e-12)
    np.testing.assert_allclose(results[2].output, A @ x, rtol=1e-12)


def test_input_identity_includes_dtype_and_shape(rng):
    """A recast or reshaped twin of an input can never alias the plan a
    group cached for the original (satellite: identity hardening)."""
    from repro.service.batch import _input_identity

    x = rng.random(8)
    base = _input_identity({"x": x})
    assert _input_identity({"x": x}) == base
    assert _input_identity({"x": x.astype(np.float32)}) != base
    assert _input_identity({"x": x.reshape(2, 4)}) != base
    A = make_symmetric_matrix(rng, 6, 0.5)
    assert _input_identity({"A": A}) != _input_identity({"A": A.astype(np.float32)})


def test_batch_reports_cold_kernels_as_misses(rng):
    service = KernelService(capacity=16)
    spec = get_kernel("ssymv")
    A = make_symmetric_matrix(rng, 8, 0.5)
    x = rng.random(8)
    results = service.batch([_spec_request(spec, {"A": A, "x": x})])
    assert not results[0].cache_hit
    results = service.batch([_spec_request(spec, {"A": A, "x": x})])
    assert results[0].cache_hit
