"""Unit tests for the einsum parser."""

import pytest

from repro.frontend.einsum import Access, Literal
from repro.frontend.parser import ParseError, parse_assignment


def test_ssymv_roundtrip():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    assert a.lhs == Access("y", ("i",))
    assert a.reduce_op == "+"
    assert a.combine_op == "*"
    assert a.operands == (Access("A", ("i", "j")), Access("x", ("j",)))
    assert str(a) == "y[i] += A[i, j] * x[j]"


def test_scalar_output():
    a = parse_assignment("y[] += x[i] * A[i, j] * x[j]")
    assert a.lhs == Access("y", ())
    assert a.output_indices == ()
    assert a.reduction_indices == ("i", "j")


def test_min_plus_semiring():
    a = parse_assignment("y[i] min= A[i, j] + d[j]")
    assert a.reduce_op == "min"
    assert a.combine_op == "+"


def test_max_reduce():
    assert parse_assignment("y[i] max= A[i, j] * x[j]").reduce_op == "max"


def test_plain_assign_is_sugar_for_plus():
    assert parse_assignment("y[i] = A[i, j] * x[j]").reduce_op == "+"


def test_numeric_literal_operand():
    a = parse_assignment("y[i] += 2 * A[i, j] * x[j]")
    assert a.operands[0] == Literal(2.0)


def test_float_literal():
    a = parse_assignment("y[i] += 0.5 * x[i]")
    assert a.operands[0] == Literal(0.5)


def test_whitespace_insensitive():
    a1 = parse_assignment("C[i,j]+=A[i,k,l]*B[k,j]*B[l,j]")
    a2 = parse_assignment("C[i, j]  +=  A[i, k, l] * B[k, j] * B[l, j]")
    assert a1 == a2


def test_mttkrp_5d_parses():
    a = parse_assignment(
        "C[i, j] += A[i, k, l, m, o] * B[k, j] * B[l, j] * B[m, j] * B[o, j]"
    )
    assert len(a.operands) == 5
    assert a.free_indices == ("i", "j", "k", "l", "m", "o")


def test_mixed_combine_operators_rejected():
    with pytest.raises(ParseError):
        parse_assignment("y[i] += A[i, j] * x[j] + z[i]")


def test_missing_update_rejected():
    with pytest.raises(ParseError):
        parse_assignment("y[i] A[i, j]")


def test_garbage_rejected():
    with pytest.raises(ParseError):
        parse_assignment("y[i] += A[i, j] @ x[j]")


def test_unclosed_bracket_rejected():
    with pytest.raises(ParseError):
        parse_assignment("y[i += A[i, j] * x[j]")


def test_bare_scalar_name_operand():
    a = parse_assignment("y[i] += alpha * x[i]")
    assert a.operands[0] == Access("alpha", ())
