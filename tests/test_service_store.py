"""Disk store: persist -> rehydrate round-trips, corruption tolerance."""

import json

import numpy as np
import pytest

from repro.core.compiler import STATE_VERSION, CompiledKernel, PlanSnapshot
from repro.kernels.library import KERNELS, get_kernel
from repro.service.keys import canonicalize
from repro.service.store import DiskStore
from tests.test_codegen_kernels import build_inputs


def _request_for(spec):
    return canonicalize(
        spec.einsum,
        symmetric=dict(spec.symmetric),
        loop_order=spec.loop_order,
        formats=dict(spec.formats),
    )


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_round_trip_is_bit_identical_across_library(tmp_path, rng, name):
    """compile -> persist -> rehydrate -> identical source and outputs."""
    spec = get_kernel(name)
    request = _request_for(spec)
    fresh = request.compile()

    store = DiskStore(tmp_path)
    store.put(request.key, fresh)
    rehydrated = store.get(request.key)
    assert rehydrated is not None
    assert rehydrated.source == fresh.source
    assert rehydrated.options == fresh.options
    assert rehydrated.formats == fresh.formats

    inputs = build_inputs(rng, spec)
    expected = fresh(**inputs)
    got = rehydrated(**inputs)
    assert got.dtype == expected.dtype
    assert np.array_equal(got, expected)  # bit-identical, not just close


def test_rehydrated_plan_is_a_snapshot(tmp_path):
    spec = get_kernel("ssymv")
    request = _request_for(spec)
    fresh = request.compile()
    store = DiskStore(tmp_path)
    store.put(request.key, fresh)
    rehydrated = store.get(request.key)
    assert isinstance(rehydrated.plan, PlanSnapshot)
    assert rehydrated.plan.describe() == fresh.plan.describe()
    assert rehydrated.plan.history[-1] == "rehydrated"
    assert "def kernel(" in rehydrated.explain()


def test_rehydrated_plan_explains_missing_structure(tmp_path):
    """analyze_plan-style consumers get a self-explanatory error, not a
    bare missing-attribute crash, when handed a rehydrated plan."""
    request = _request_for(get_kernel("ssymv"))
    store = DiskStore(tmp_path)
    store.put(request.key, request.compile())
    rehydrated = store.get(request.key)
    for attr in ("blocks", "nests", "replication", "rank"):
        with pytest.raises(AttributeError, match="recompile"):
            getattr(rehydrated.plan, attr)


def test_foreign_json_files_are_ignored(tmp_path):
    """A notes.json dropped into the store directory must not break
    keys/len/clear/entries."""
    request = _request_for(get_kernel("ssymv"))
    store = DiskStore(tmp_path)
    store.put(request.key, request.compile())
    (tmp_path / "notes.json").write_text('{"mine": true}')
    assert list(store.keys()) == [request.key]
    assert len(store) == 1
    assert len(store.entries()) == 1
    assert store.clear() == 1
    assert (tmp_path / "notes.json").exists()  # untouched


def test_missing_key_is_a_miss(tmp_path):
    store = DiskStore(tmp_path)
    assert store.get("0" * 64) is None
    assert store.misses == 1
    assert "0" * 64 not in store


def test_malformed_key_rejected(tmp_path):
    store = DiskStore(tmp_path)
    with pytest.raises(ValueError):
        store.get("../escape")


def test_corrupt_entry_counts_as_miss_and_is_removed(tmp_path):
    spec = get_kernel("ssymv")
    request = _request_for(spec)
    store = DiskStore(tmp_path)
    store.put(request.key, request.compile())
    path = tmp_path / ("%s.json" % request.key)
    path.write_text("{ not json")
    assert store.get(request.key) is None
    assert store.errors == 1
    assert not path.exists()


def test_version_skew_counts_as_miss(tmp_path):
    spec = get_kernel("ssymv")
    request = _request_for(spec)
    store = DiskStore(tmp_path)
    store.put(request.key, request.compile())
    path = tmp_path / ("%s.json" % request.key)
    payload = json.loads(path.read_text())
    payload["state"]["state_version"] = STATE_VERSION + 1
    path.write_text(json.dumps(payload))
    assert store.get(request.key) is None


def test_keys_remove_clear_and_entries(tmp_path):
    store = DiskStore(tmp_path)
    requests = []
    for name in ("ssymv", "syprd"):
        request = _request_for(get_kernel(name))
        store.put(request.key, request.compile())
        requests.append(request)
    assert sorted(store.keys()) == sorted(r.key for r in requests)
    assert len(store) == 2

    entries = store.entries()
    assert len(entries) == 2
    einsums = {e.einsum for e in entries}
    assert "y[i] += A[i, j] * x[j]" in einsums
    assert all("+cse" in e.options_line for e in entries)

    assert store.remove(requests[0].key)
    assert not store.remove(requests[0].key)
    assert store.clear() == 1
    assert len(store) == 0


def test_from_state_rejects_unknown_version():
    spec = get_kernel("ssymv")
    state = _request_for(spec).compile().to_state()
    state["state_version"] = 999
    with pytest.raises(ValueError, match="state version"):
        CompiledKernel.from_state(state)


# ---------------------------------------------------------------------------
# size bound + LRU-by-atime garbage collection
# ---------------------------------------------------------------------------
def _filled_store(tmp_path, names=("ssymv", "syprd", "ttm")):
    store = DiskStore(tmp_path)
    keys = []
    for name in names:
        request = _request_for(get_kernel(name))
        assert store.put(request.key, request.compile())
        keys.append(request.key)
    return store, keys


def test_gc_unbounded_is_a_noop(tmp_path):
    store, keys = _filled_store(tmp_path)
    assert store.max_bytes is None
    assert store.gc() == (0, 0)
    assert len(store) == len(keys)


def test_gc_evicts_least_recently_used_first(tmp_path):
    import os
    import time

    store, keys = _filled_store(tmp_path)
    # age the first two entries; the third stays fresh
    old = time.time() - 1000
    for key in keys[:2]:
        os.utime(str(tmp_path / ("%s.json" % key)), times=(old, old))
    total = store.size_bytes()
    keep = total - store.entry_bytes(keys[0]) - store.entry_bytes(keys[1])
    removed, freed = store.gc(max_bytes=keep)
    assert removed == 2
    assert sorted(store.keys()) == [keys[2]]
    assert store.size_bytes() <= keep
    assert store.evictions == 2
    # the evicted entries' sidecars are gone too — no .c/.so litter
    litter = [p.name for p in tmp_path.iterdir() if p.stem in (keys[0], keys[1])]
    assert litter == []


def test_get_refreshes_recency(tmp_path):
    import os
    import time

    store, keys = _filled_store(tmp_path, names=("ssymv", "syprd"))
    old = time.time() - 1000
    for key in keys:
        os.utime(str(tmp_path / ("%s.json" % key)), times=(old, old))
    assert store.get(keys[0]) is not None  # hit refreshes atime
    removed, _ = store.gc(max_bytes=store.entry_bytes(keys[0]))
    assert removed == 1
    assert list(store.keys()) == [keys[0]], "the freshly-read entry survives"


def test_gc_skips_entries_under_a_live_lock(tmp_path):
    store, keys = _filled_store(tmp_path, names=("ssymv", "syprd"))
    (tmp_path / ("%s.lock" % keys[0])).write_text("12345\n")
    removed, _ = store.gc(max_bytes=0)
    assert keys[0] in list(store.keys()), "mid-publication entry evicted"
    assert removed == 1


def test_put_triggers_gc_when_bounded(tmp_path):
    request = _request_for(get_kernel("ssymv"))
    kernel = request.compile()
    probe = DiskStore(tmp_path / "probe")
    probe.put(request.key, kernel)
    entry_size = probe.entry_bytes(request.key)

    store = DiskStore(tmp_path / "bounded", max_bytes=int(entry_size * 1.5))
    store.put(request.key, kernel)
    other = _request_for(get_kernel("syprd"))
    store.put(other.key, other.compile())
    # the bound holds after every put: only one entry fits
    assert len(store) == 1
    assert store.size_bytes() <= int(entry_size * 1.5)
    assert store.evictions >= 1


def test_max_bytes_env_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "123456")
    assert DiskStore(tmp_path).max_bytes == 123456
    monkeypatch.delenv("REPRO_STORE_MAX_BYTES")
    assert DiskStore(tmp_path).max_bytes is None
    assert DiskStore(tmp_path, max_bytes=-1).max_bytes is None
