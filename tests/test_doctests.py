"""Run the doctests embedded in public-facing docstrings."""

import doctest

import repro.frontend.parser
import repro.frontend.einsum


def test_parser_doctests():
    results = doctest.testmod(repro.frontend.parser, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 2


def test_einsum_doctests():
    results = doctest.testmod(repro.frontend.einsum, verbose=False)
    assert results.failed == 0
