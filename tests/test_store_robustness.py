"""Disk-store failure injection: a damaged cache must cost a recompile,
never a crash.

The store's contract (see :mod:`repro.service.store`) is that corrupt,
truncated or stale entries behave as *misses*: the service falls back to
a cold compile, evicts what cannot ever load again, and heals artifacts
that merely failed on this read.  These tests damage each persisted
piece — the ``.so`` artifact, the ``.c`` sidecar, the JSON state — and
assert the next lookup still serves a working kernel.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.codegen.backends import get_backend
from repro.core.compiler import STATE_VERSION
from repro.core.config import DEFAULT
from repro.service import KernelService
from repro.service.keys import cache_key
from repro.service.store import DiskStore

HAVE_CC = get_backend("c").is_available()
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no working C toolchain")

EINSUM = "y[i] += A[i, j] * x[j]"
SPEC = dict(symmetric={"A": True}, loop_order=("j", "i"))


def _warm(tmp_path, options=DEFAULT):
    service = KernelService(store=tmp_path)
    service.get_or_compile(EINSUM, options=options, **SPEC)
    return cache_key(EINSUM, options=options, **SPEC)


def _check_runs(kernel):
    A = np.eye(5) + np.eye(5, k=1) + np.eye(5, k=-1)
    x = np.arange(5.0)
    np.testing.assert_allclose(kernel(A=A, x=x), A @ x, rtol=1e-12)


# ----------------------------------------------------------------------
# truncated .so
# ----------------------------------------------------------------------
@needs_cc
def test_truncated_so_falls_back_to_recompile_and_heals(tmp_path):
    """A *truncated* ELF (valid magic, half the bytes — the crash-mid-copy
    shape) must not load; the entry recompiles and the artifact heals."""
    options = DEFAULT.but(backend="c")
    key = _warm(tmp_path, options)
    so = tmp_path / ("%s.so" % key)
    blob = so.read_bytes()
    assert blob[:4] == b"\x7fELF"
    so.write_bytes(blob[: len(blob) // 2])

    fresh = KernelService(store=tmp_path)
    kernel = fresh.get_or_compile(EINSUM, options=options, **SPEC)
    assert kernel.backend == "c"
    _check_runs(kernel)
    healed = so.read_bytes()
    # the store re-persisted a freshly built (complete) object
    assert healed[:4] == b"\x7fELF" and len(healed) > len(blob) // 2


@needs_cc
def test_zero_byte_so_falls_back_to_recompile(tmp_path):
    options = DEFAULT.but(backend="c")
    key = _warm(tmp_path, options)
    (tmp_path / ("%s.so" % key)).write_bytes(b"")

    kernel = KernelService(store=tmp_path).get_or_compile(
        EINSUM, options=options, **SPEC
    )
    assert kernel.backend == "c"
    _check_runs(kernel)


# ----------------------------------------------------------------------
# missing .c sidecar
# ----------------------------------------------------------------------
@needs_cc
def test_missing_c_sidecar_still_rehydrates(tmp_path):
    """The ``.c`` file is an inspection artifact: deleting it must not
    break rehydration (the JSON state carries the lowered source)."""
    options = DEFAULT.but(backend="c")
    key = _warm(tmp_path, options)
    (tmp_path / ("%s.c" % key)).unlink()

    fresh = KernelService(store=tmp_path)
    kernel = fresh.get_or_compile(EINSUM, options=options, **SPEC)
    assert kernel.backend == "c"
    assert fresh.store.hits == 1  # a hit, not a recompile
    _check_runs(kernel)


@needs_cc
def test_missing_c_sidecar_and_so_recompiles(tmp_path):
    options = DEFAULT.but(backend="c")
    key = _warm(tmp_path, options)
    (tmp_path / ("%s.c" % key)).unlink()
    (tmp_path / ("%s.so" % key)).unlink()

    kernel = KernelService(store=tmp_path).get_or_compile(
        EINSUM, options=options, **SPEC
    )
    assert kernel.backend == "c"
    _check_runs(kernel)
    # healing re-persisted the freshly built object for the next process
    assert (tmp_path / ("%s.so" % key)).exists()


# ----------------------------------------------------------------------
# stale STATE_VERSION
# ----------------------------------------------------------------------
def test_stale_state_version_is_a_miss_and_evicted(tmp_path):
    key = _warm(tmp_path)
    path = tmp_path / ("%s.json" % key)
    payload = json.loads(path.read_text())
    payload["state"]["state_version"] = STATE_VERSION - 1
    path.write_text(json.dumps(payload))

    store = DiskStore(tmp_path)
    assert store.get(key) is None
    # an unservable *existing* entry is an error, not a miss (the two are
    # counted separately so a failing cache is distinguishable from a
    # cold one)
    assert store.misses == 0 and store.errors == 1
    assert not path.exists()  # a version-skewed entry can never load: evict

    # the service transparently recompiles into the same slot
    service = KernelService(store=tmp_path)
    kernel = service.get_or_compile(EINSUM, **SPEC)
    _check_runs(kernel)
    assert path.exists()


@needs_cc
def test_stale_state_version_eviction_drops_artifacts(tmp_path):
    """Evicting a version-skewed C entry must take its .c/.so siblings —
    a stale ABI's shared object must never be rebound by a later entry."""
    options = DEFAULT.but(backend="c")
    key = _warm(tmp_path, options)
    path = tmp_path / ("%s.json" % key)
    payload = json.loads(path.read_text())
    payload["state"]["state_version"] = STATE_VERSION + 7
    path.write_text(json.dumps(payload))

    assert DiskStore(tmp_path).get(key) is None
    assert not (tmp_path / ("%s.so" % key)).exists()
    assert not (tmp_path / ("%s.c" % key)).exists()


def test_truncated_json_is_a_miss_and_evicted(tmp_path):
    key = _warm(tmp_path)
    path = tmp_path / ("%s.json" % key)
    path.write_text(path.read_text()[: 40])

    store = DiskStore(tmp_path)
    assert store.get(key) is None
    assert not path.exists()
    kernel = KernelService(store=tmp_path).get_or_compile(EINSUM, **SPEC)
    _check_runs(kernel)


# ----------------------------------------------------------------------
# dtype separation on disk
# ----------------------------------------------------------------------
def test_f32_and_f64_entries_never_alias(tmp_path):
    """One einsum, two dtypes: two distinct keys, two distinct entries,
    each rehydrating to a kernel of its own dtype."""
    service = KernelService(store=tmp_path)
    k64 = service.get_or_compile(EINSUM, options=DEFAULT.but(dtype="float64"), **SPEC)
    k32 = service.get_or_compile(EINSUM, options=DEFAULT.but(dtype="float32"), **SPEC)
    key64 = cache_key(EINSUM, options=DEFAULT.but(dtype="float64"), **SPEC)
    key32 = cache_key(EINSUM, options=DEFAULT.but(dtype="float32"), **SPEC)
    assert key64 != key32
    assert len(service.store) == 2

    fresh = KernelService(store=tmp_path)
    r64 = fresh.get_or_compile(EINSUM, options=DEFAULT.but(dtype="float64"), **SPEC)
    r32 = fresh.get_or_compile(EINSUM, options=DEFAULT.but(dtype="float32"), **SPEC)
    assert fresh.stats().compiles == 0  # both served from disk
    A = np.eye(4)
    assert r64(A=A, x=np.ones(4)).dtype == np.float64
    assert r32(A=A, x=np.ones(4)).dtype == np.float32
    assert k64.lowered.dtype == "float64" and k32.lowered.dtype == "float32"
    assert r64.lowered.dtype == "float64" and r32.lowered.dtype == "float32"
