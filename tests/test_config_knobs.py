"""Env-knob hardening: bad values clamp to defaults with a one-time
warning instead of crashing (or silently misconfiguring) the process."""

from __future__ import annotations

import warnings

import pytest

from repro.core import config


@pytest.fixture(autouse=True)
def fresh_warn_memo():
    config._warned_values.clear()
    yield
    config._warned_values.clear()


def _caught(monkeypatch, name, value, reader):
    monkeypatch.setenv(name, value)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = reader()
    return result, [w for w in caught if issubclass(w.category, RuntimeWarning)]


@pytest.mark.parametrize("value", ["-3", "nan-ish", "", "0x10"])
def test_cc_retries_clamps_bad_values(monkeypatch, value):
    result, warned = _caught(monkeypatch, "REPRO_CC_RETRIES", value, config.cc_retries)
    assert result == config.DEFAULT_CC_RETRIES
    if value != "":  # empty means unset, silently
        assert len(warned) == 1
        assert "REPRO_CC_RETRIES" in str(warned[0].message)


def test_cc_retries_zero_is_valid(monkeypatch):
    result, warned = _caught(monkeypatch, "REPRO_CC_RETRIES", "0", config.cc_retries)
    assert result == 0 and not warned


@pytest.mark.parametrize("value", ["-1", "garbage"])
def test_cc_timeout_clamps_bad_values(monkeypatch, value):
    result, warned = _caught(monkeypatch, "REPRO_CC_TIMEOUT", value, config.cc_timeout)
    assert result == config.DEFAULT_CC_TIMEOUT
    assert len(warned) == 1


def test_cc_timeout_zero_disables(monkeypatch):
    result, warned = _caught(monkeypatch, "REPRO_CC_TIMEOUT", "0", config.cc_timeout)
    assert result is None and not warned


@pytest.mark.parametrize("value", ["0", "-5", "junk"])
def test_lock_timeout_clamps_zero_and_negative(monkeypatch, value):
    """Zero is NOT an off switch here: a zero lock wait turns every
    contended key into a duplicate private compile."""
    result, warned = _caught(
        monkeypatch, "REPRO_LOCK_TIMEOUT", value, config.lock_timeout
    )
    assert result == config.DEFAULT_LOCK_TIMEOUT
    assert len(warned) == 1
    assert "REPRO_LOCK_TIMEOUT" in str(warned[0].message)


def test_warning_is_emitted_once_per_name_value(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_TIMEOUT", "-9")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for _ in range(5):
            assert config.lock_timeout() == config.DEFAULT_LOCK_TIMEOUT
    assert len(caught) == 1
    # a *different* bad value warns again (it is new information)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT", "-10")
        config.lock_timeout()
    assert len(caught) == 1


def test_serve_knob_defaults():
    assert config.serve_queue_limit() == config.DEFAULT_SERVE_QUEUE
    assert config.serve_workers() == config.DEFAULT_SERVE_WORKERS
    assert config.serve_deadline() == config.DEFAULT_SERVE_DEADLINE
    assert config.serve_read_timeout() == config.DEFAULT_SERVE_READ_TIMEOUT
    assert config.serve_drain_grace() == config.DEFAULT_SERVE_DRAIN
    assert config.serve_max_frame() == config.DEFAULT_SERVE_MAX_FRAME
    assert config.serve_plan_pool() == config.DEFAULT_SERVE_PLANS
    assert config.service_retries() == config.DEFAULT_SERVICE_RETRIES
    assert config.service_backoff() == config.DEFAULT_SERVICE_BACKOFF
    assert config.service_timeout() == config.DEFAULT_SERVICE_TIMEOUT
    assert config.store_max_bytes() is None


def test_serve_deadline_zero_disables(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_DEADLINE", "0")
    assert config.serve_deadline() is None
    monkeypatch.setenv("REPRO_SERVE_READ_TIMEOUT", "0")
    assert config.serve_read_timeout() is None


def test_serve_queue_minimum_one(monkeypatch):
    result, warned = _caught(
        monkeypatch, "REPRO_SERVE_QUEUE", "0", config.serve_queue_limit
    )
    assert result == config.DEFAULT_SERVE_QUEUE and len(warned) == 1


def test_serve_max_frame_floor(monkeypatch):
    result, warned = _caught(
        monkeypatch, "REPRO_SERVE_MAX_FRAME", "16", config.serve_max_frame
    )
    assert result == config.DEFAULT_SERVE_MAX_FRAME and len(warned) == 1


def test_store_max_bytes(monkeypatch):
    monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "4096")
    assert config.store_max_bytes() == 4096
    monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "0")
    assert config.store_max_bytes() is None
    result, warned = _caught(
        monkeypatch, "REPRO_STORE_MAX_BYTES", "-1", config.store_max_bytes
    )
    assert result is None and len(warned) == 1
