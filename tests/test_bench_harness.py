"""Tests for the benchmark harness and the figure drivers (tiny scales)."""

import json
import math
import os

import numpy as np
import pytest

from repro.bench.figures import (
    run_fig06_ssymv,
    run_fig07_bellmanford,
    run_fig08_syprd,
    run_fig09_ssyrk,
    run_fig10_ttm,
    run_fig11_mttkrp,
    run_table2,
)
from repro.bench.harness import (
    BenchResult,
    TRAJECTORY_VERSION,
    dump_json,
    format_table,
    geometric_mean,
    load_trajectory,
    machine_fingerprint,
    record,
    summarize_speedups,
    time_callable,
    time_callable_stats,
    time_compiled_kernel,
    trajectory_entries,
)
from repro.kernels.library import get_kernel
from tests.conftest import make_symmetric_matrix


def test_time_callable_returns_positive():
    t = time_callable(lambda: sum(range(100)), repeats=2, min_time=0.0)
    assert t > 0


def test_time_callable_stats_orders_best_and_median():
    stats = time_callable_stats(lambda: sum(range(200)), repeats=5, min_time=0.0)
    assert 0 < stats.best <= stats.median
    assert stats.runs >= 5


def test_time_compiled_kernel_excludes_preparation(rng):
    n = 30
    A = make_symmetric_matrix(rng, n, 0.3)
    x = rng.random(n)
    kernel = get_kernel("ssymv").compile()
    t = time_compiled_kernel(kernel, repeats=2, A=A, x=x)
    assert 0 < t < 1.0


def test_bench_result_speedups():
    r = BenchResult(
        figure="f", workload="w", params={},
        times={"naive": 2.0, "systec": 0.5, "taco": 1.0},
        expected_speedup=2.0,
    )
    assert r.speedups == {"systec": 4.0, "taco": 2.0}


def test_bench_result_no_naive_no_speedups():
    r = BenchResult("f", "w", {}, {"systec": 0.5}, 2.0)
    assert r.speedups == {}


def test_format_table_contains_rows():
    r = BenchResult("f", "saylr4", {}, {"naive": 1.0, "systec": 0.5}, 2.0)
    text = format_table([r], title="T")
    assert "saylr4" in text
    assert "2.00" in text  # the speedup
    assert "T" in text


def test_format_table_empty():
    assert format_table([]) == "(no results)"


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert math.isnan(geometric_mean([]))


def test_summarize_speedups():
    rows = [
        BenchResult("f", "a", {}, {"naive": 1.0, "systec": 0.5}, 2.0),
        BenchResult("f", "b", {}, {"naive": 1.0, "systec": 0.125}, 2.0),
    ]
    assert summarize_speedups(rows) == pytest.approx(4.0)


def test_dump_json(tmp_path):
    rows = [BenchResult("f", "a", {"n": 3}, {"naive": 1.0, "systec": 0.5}, 2.0)]
    path = os.path.join(tmp_path, "r.json")
    dump_json(rows, path)
    data = json.load(open(path))
    assert data[0]["workload"] == "a"
    assert data[0]["speedups"]["systec"] == 2.0


# ----------------------------------------------------------------------
# the persistent perf trajectory
# ----------------------------------------------------------------------
def test_machine_fingerprint_shape():
    fp = machine_fingerprint()
    assert fp["cpus"] >= 1
    assert isinstance(fp["openmp"], bool)
    assert "platform" in fp and "python" in fp


def test_record_merges_instead_of_rewriting(tmp_path):
    path = os.path.join(tmp_path, "BENCH_backends.json")
    record(path, {"ssymv/c@t1": {"min_s": 0.5}})
    doc = record(path, {"ssymv/c@t4": {"min_s": 0.25}})
    assert doc["version"] == TRAJECTORY_VERSION
    assert set(doc["entries"]) == {"ssymv/c@t1", "ssymv/c@t4"}
    # re-measuring an existing key overwrites only that key
    doc = record(path, {"ssymv/c@t1": {"min_s": 0.4}})
    assert doc["entries"]["ssymv/c@t1"]["min_s"] == 0.4
    assert doc["entries"]["ssymv/c@t4"]["min_s"] == 0.25
    on_disk = load_trajectory(path)
    assert on_disk["entries"] == doc["entries"]
    assert on_disk["machine"]["cpus"] >= 1


def test_record_survives_a_corrupt_file(tmp_path):
    path = os.path.join(tmp_path, "BENCH_backends.json")
    with open(path, "w") as f:
        f.write("not json{")
    assert load_trajectory(path) is None
    doc = record(path, {"k": {"min_s": 1.0}})
    from repro import obs

    assert doc["entries"] == {
        "k": {"min_s": 1.0, "dtype": "float64", "obs": obs.state()}
    }


def test_record_stamps_dtype_on_every_entry(tmp_path):
    """Entries always carry their element dtype — new ones from the key
    convention, pre-existing unstamped ones backfilled on merge."""
    path = os.path.join(tmp_path, "BENCH_backends.json")
    record(path, {"ssymv/c@t4": {"min_s": 0.5}, "ssymv/c@t1/f32": {"min_s": 0.4}})
    doc = load_trajectory(path)
    assert doc["entries"]["ssymv/c@t4"]["dtype"] == "float64"
    assert doc["entries"]["ssymv/c@t1/f32"]["dtype"] == "float32"
    # simulate a legacy file whose surviving entries were never stamped
    doc["entries"]["old/c@t2"] = {"min_s": 1.0}
    with open(path, "w") as f:
        json.dump(doc, f)
    merged = record(path, {"new/c@t1": {"min_s": 0.1}})
    assert merged["entries"]["old/c@t2"]["dtype"] == "float64"
    # an explicit stamp is never overwritten
    record(path, {"explicit/c@t1": {"min_s": 1.0, "dtype": "float32"}})
    assert load_trajectory(path)["entries"]["explicit/c@t1"]["dtype"] == "float32"


def test_trajectory_entries_from_bench_results():
    rows = [
        BenchResult(
            "fig06", "saylr4", {"n": 100},
            {"naive": 1.0, "systec": 0.5}, 2.0,
        )
    ]
    entries = trajectory_entries(rows, threads=2)
    assert set(entries) == {
        "fig06/saylr4/naive@t2",
        "fig06/saylr4/systec@t2",
    }
    assert entries["fig06/saylr4/systec@t2"]["speedup_vs_naive"] == 2.0
    assert entries["fig06/saylr4/systec@t2"]["threads"] == 2


def test_backend_trajectory_entries_report_speedups():
    from repro.bench.backend_bench import backend_trajectory_entries
    from repro.bench.harness import TimingStats

    row = BenchResult(
        "backends", "ssymv", {"n": 2000, "nnz_canonical": 5},
        {"naive": 1.0, "c": 0.01, "c@t4": 0.004}, 10.0,
    )
    row.stats = {
        "naive": TimingStats(1.0, 1.1, 3),
        "c": TimingStats(0.01, 0.011, 3),
        "c@t4": TimingStats(0.004, 0.005, 3),
    }
    entries = backend_trajectory_entries([row])
    assert entries["ssymv/python@t1"]["median_s"] == 1.1
    assert entries["ssymv/c@t1"]["speedup_vs_python"] == pytest.approx(100.0)
    assert entries["ssymv/c@t4"]["speedup_vs_c1"] == pytest.approx(2.5)


def test_backend_trajectory_entries_key_the_size_axis():
    """Sizes beyond the historical n=2000 tag the kernel segment; a
    threads=auto sweep lands under c@auto with its resolved count."""
    from repro.bench.backend_bench import backend_trajectory_entries
    from repro.bench.harness import TimingStats

    row = BenchResult(
        "backends", "ssymv",
        {"n": 8000, "nnz_canonical": 9, "auto_resolved_threads": 2},
        {"naive": 1.0, "c": 0.01, "c@t2": 0.005, "c@auto": 0.005}, 10.0,
    )
    row.stats = {
        "naive": TimingStats(1.0, 1.1, 3),
        "c": TimingStats(0.01, 0.011, 3),
        "c@t2": TimingStats(0.005, 0.006, 3),
        "c@auto": TimingStats(0.005, 0.006, 3),
    }
    entries = backend_trajectory_entries([row])
    assert set(entries) == {
        "ssymv@n8000/python@t1",
        "ssymv@n8000/c@t1",
        "ssymv@n8000/c@t2",
        "ssymv@n8000/c@auto",
    }
    assert entries["ssymv@n8000/c@t2"]["speedup_vs_c1"] == pytest.approx(2.0)
    auto = entries["ssymv@n8000/c@auto"]
    assert auto["resolved_threads"] == 2
    assert auto["speedup_vs_c1"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# figure drivers at tiny scale — each must produce sane, faster-than-naive
# results for the symmetric kernel
# ----------------------------------------------------------------------
TINY = dict(scale=0.01, names=("saylr4",), repeats=1)


def test_driver_fig06():
    rows = run_fig06_ssymv(with_library=False, **TINY)
    assert len(rows) == 1
    assert rows[0].times["naive"] > 0
    assert "systec" in rows[0].speedups
    assert "taco" in rows[0].speedups


def test_driver_fig07():
    rows = run_fig07_bellmanford(**TINY)
    assert rows and rows[0].expected_speedup == 2.0


def test_driver_fig08():
    rows = run_fig08_syprd(**TINY)
    assert rows and rows[0].speedups["systec"] > 0.5


def test_driver_fig09():
    rows = run_fig09_ssyrk(scale=0.01, names=("saylr4",), repeats=1)
    assert rows and rows[0].figure == "fig09"


def test_driver_fig10():
    rows = run_fig10_ttm(n=14, densities=(0.1,), ranks=(4,), repeats=1)
    assert len(rows) == 1
    assert rows[0].params["rank"] == 4


def test_driver_fig11():
    rows = run_fig11_mttkrp(
        orders=(3,), n=12, densities=(0.1,), ranks=(4,), repeats=1
    )
    assert len(rows) == 1
    assert rows[0].speedups["systec"] > 0.8  # symmetric should not lose badly


def test_driver_table2():
    rows = run_table2(scale=0.01)
    assert len(rows) == 30
    assert all(r["generated_nnz"] > 0 for r in rows)
