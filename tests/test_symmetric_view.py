"""Tests for symmetry-aware output storage (future-work item 3)."""

import numpy as np
import pytest

from repro.kernels.library import get_kernel
from repro.tensor.symmetric_view import SymmetricView
from tests.conftest import make_symmetric_matrix, make_symmetric_tensor


def test_reads_redirect_to_canonical(rng):
    payload = np.tril(rng.random((4, 4)))
    view = SymmetricView(payload, ((0, 1),))
    assert view[1, 3] == payload[3, 1]
    assert view[3, 1] == payload[3, 1]
    assert view[2, 2] == payload[2, 2]


def test_to_dense_matches_replication(rng):
    payload = np.tril(rng.random((5, 5)))
    view = SymmetricView(payload, ((0, 1),))
    dense = view.to_dense()
    np.testing.assert_allclose(dense, dense.T)
    np.testing.assert_array_equal(np.tril(dense), payload)


def test_array_protocol(rng):
    payload = np.tril(rng.random((3, 3)))
    arr = np.asarray(SymmetricView(payload, ((0, 1),)))
    np.testing.assert_allclose(arr, arr.T)


def test_canonical_coordinate():
    view = SymmetricView(np.zeros((3, 4, 4)), ((1, 2),))
    assert view.canonical_coordinate((0, 1, 3)) == (0, 3, 1)
    assert view.canonical_coordinate((2, 3, 1)) == (2, 3, 1)


def test_rectangular_symmetric_modes_rejected():
    with pytest.raises(ValueError):
        SymmetricView(np.zeros((3, 4)), ((0, 1),))


def test_partial_coordinates_rejected():
    view = SymmetricView(np.zeros((3, 3)), ((0, 1),))
    with pytest.raises(IndexError):
        view[1]


def test_ssyrk_finalize_view_skips_replication(rng):
    """End to end: SSYRK without the replication pass."""
    spec = get_kernel("ssyrk")
    kernel = spec.compile()
    from repro.tensor.tensor import Tensor

    n = 8
    A = rng.random((n, n)) * (rng.random((n, n)) < 0.5)
    prepared, shape = kernel.prepare(A=A)
    raw = kernel.run(prepared, shape)
    view = kernel.finalize_view(raw)
    expected = A @ A.T
    assert isinstance(view, SymmetricView)
    for i in range(n):
        for j in range(n):
            assert view[i, j] == pytest.approx(expected[i, j])


def test_ttm_finalize_view(rng):
    spec = get_kernel("ttm")
    kernel = spec.compile()
    n, r = 6, 3
    A = make_symmetric_tensor(rng, n, 3, 0.5)
    B = rng.random((n, r))
    prepared, shape = kernel.prepare(A=A, B=B)
    view = kernel.finalize_view(kernel.run(prepared, shape))
    expected = np.einsum("kjl,ki->ijl", A, B)
    np.testing.assert_allclose(np.asarray(view), expected, rtol=1e-10)


def test_finalize_view_plain_for_unsymmetric_output(rng):
    kernel = get_kernel("ssymv").compile()
    n = 5
    A = make_symmetric_matrix(rng, n, 0.6)
    x = rng.random(n)
    prepared, shape = kernel.prepare(A=A, x=x)
    out = kernel.finalize_view(kernel.run(prepared, shape))
    assert isinstance(out, np.ndarray)
    np.testing.assert_allclose(out, A @ x, rtol=1e-12)
