"""Unit tests for symmetry-aware data preparation (packing, splitting,
expansion, matrix symmetrization)."""

import itertools

import numpy as np
import pytest

from repro.tensor.coo import COO
from repro.tensor.symmetry_ops import (
    canonical_coords_mask,
    expand_symmetric,
    pack_canonical,
    split_diagonal,
    symmetrize_matrix,
)
from tests.conftest import make_symmetric_matrix, make_symmetric_tensor

FULL2 = ((0, 1),)
FULL3 = ((0, 1, 2),)


def test_pack_matrix_keeps_one_triangle(rng):
    A = make_symmetric_matrix(rng, 6, 0.8)
    coo = COO.from_dense(A)
    packed = pack_canonical(coo, FULL2)
    # canonical == row index >= column index (non-increasing in mode order)
    assert np.all(packed.coords[0] >= packed.coords[1])
    # every canonical entry of A survives
    dense = packed.to_dense()
    np.testing.assert_array_equal(np.tril(A), dense)


def test_pack_then_expand_roundtrip_matrix(rng):
    A = make_symmetric_matrix(rng, 7, 0.6)
    coo = COO.from_dense(A)
    packed = pack_canonical(coo, FULL2)
    full = expand_symmetric(packed, FULL2)
    np.testing.assert_array_equal(full.to_dense(), A)


@pytest.mark.parametrize("order", [2, 3, 4])
def test_pack_then_expand_roundtrip_tensor(rng, order):
    A = make_symmetric_tensor(rng, 4, order, 0.5)
    coo = COO.from_dense(A)
    packed = pack_canonical(coo, (tuple(range(order)),))
    full = expand_symmetric(packed, (tuple(range(order)),))
    np.testing.assert_array_equal(full.to_dense(), A)


def test_expand_does_not_duplicate_diagonals(rng):
    coo = COO(np.array([[1], [1]]), np.array([5.0]), (3, 3))
    full = expand_symmetric(coo, FULL2)
    assert full.nnz == 1


def test_split_diagonal_partitions_canonical_coords(rng):
    A = make_symmetric_tensor(rng, 5, 3, 0.7)
    coo = pack_canonical(COO.from_dense(A), FULL3)
    strict, diag = split_diagonal(coo, FULL3)
    assert strict.nnz + diag.nnz == coo.nnz
    # strict: strictly decreasing coords; diag: at least one equality
    assert np.all(strict.coords[0] > strict.coords[1])
    assert np.all(strict.coords[1] > strict.coords[2])
    eq = (diag.coords[0] == diag.coords[1]) | (diag.coords[1] == diag.coords[2])
    assert np.all(eq)


def test_canonical_mask_partial_symmetry():
    # symmetry only between modes 0 and 2
    coords = np.array([[0, 2, 1], [5, 5, 5], [1, 1, 1]])
    coo = COO(coords, np.ones(3), (3, 6, 3))
    mask = canonical_coords_mask(coo, ((0, 2),))
    assert mask.tolist() == [False, True, True]


def test_symmetrize_matrix_adds_transpose(rng):
    A = rng.random((5, 5)) * (rng.random((5, 5)) < 0.5)
    coo = COO.from_dense(A)
    sym = symmetrize_matrix(coo)
    np.testing.assert_allclose(sym.to_dense(), A + A.T)


def test_symmetrize_matrix_rejects_rectangular():
    with pytest.raises(ValueError):
        symmetrize_matrix(COO.empty((3, 4)))


def test_expand_trivial_partition_is_noop(rng):
    coo = COO.from_dense(rng.random((3, 3)))
    assert expand_symmetric(coo, ((0,), (1,))) is coo
