"""Table 1 of the paper as executable claims.

The SySTeC column of Table 1 asserts full support for: dense tensors,
sparse tensors, structured tensors, general einsums (beyond contractions),
and optimization of redundant reads, redundant operations and redundant
storage.  Each test below exercises one cell.
"""

import numpy as np
import pytest

from repro.core.compiler import compile_kernel
from repro.core.config import DEFAULT
from repro.data.random_tensors import erdos_renyi_symmetric
from tests.conftest import make_symmetric_matrix, make_symmetric_tensor


def test_supports_dense_tensors(rng):
    """Dense-only kernel (no sparse formats at all)."""
    n = 6
    A = make_symmetric_matrix(rng, n, 1.0)  # fully dense symmetric
    x = rng.random(n)
    k = compile_kernel(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True},
        loop_order=("j", "i"), formats={},
    )
    np.testing.assert_allclose(k(A=A, x=x), A @ x, rtol=1e-12)


def test_supports_sparse_tensors(rng):
    n = 8
    A = make_symmetric_matrix(rng, n, 0.3)
    x = rng.random(n)
    k = compile_kernel(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True}, loop_order=("j", "i")
    )
    np.testing.assert_allclose(k(A=A, x=x), A @ x, rtol=1e-12)


def test_supports_structured_tensors(rng):
    """A triangular (structured) input via explicit level formats — the
    canonical-triangle packing *is* a triangular structured tensor."""
    n = 8
    A = make_symmetric_matrix(rng, n, 0.5)
    x = rng.random(n)
    k = compile_kernel(
        "y[i] += A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        sparse_levels={"A": ("dense", "sparse")},
    )
    np.testing.assert_allclose(k(A=A, x=x), A @ x, rtol=1e-12)


def test_supports_general_einsums_not_just_contractions(rng):
    """MTTKRP is not a contraction (B appears twice, j is shared) — the
    Cyclops-style reduction to matmul cannot express it."""
    n = 6
    A = make_symmetric_tensor(rng, n, 3, 0.5)
    B = rng.random((n, 3))
    k = compile_kernel(
        "C[i, j] += A[i, k, l] * B[k, j] * B[l, j]",
        symmetric={"A": True},
        loop_order=("l", "k", "i", "j"),
    )
    np.testing.assert_allclose(
        k(A=A, B=B), np.einsum("ikl,kj,lj->ij", A, B, B), rtol=1e-10
    )


def test_supports_general_operators_beyond_plus_times(rng):
    """Min-plus semiring (Bellman-Ford) — beyond + and *."""
    n = 6
    A = make_symmetric_matrix(rng, n, 0.6)
    d = rng.random(n)
    k = compile_kernel(
        "y[i] min= A[i, j] + d[j]", symmetric={"A": True}, loop_order=("j", "i")
    )
    W = np.where(A != 0, A, np.inf)
    np.testing.assert_allclose(k(A=A, d=d), (W + d[None, :]).min(axis=1))


def test_optimizes_redundant_reads():
    """The optimized SSYMV iterates only the canonical triangle: the packed
    views hold about half the nonzeros of the full matrix."""
    t = erdos_renyi_symmetric(40, 2, 0.2, seed=0)
    k = compile_kernel(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True}, loop_order=("j", "i")
    )
    prepared, _ = k.prepare(A=t, x=np.ones(40))
    canonical_nnz = sum(
        len(v) for name, v in prepared.items() if name.endswith("_vals")
    )
    full_nnz = t._full_coo().nnz
    assert canonical_nnz < 0.75 * full_nnz


def test_optimizes_redundant_operations():
    """SYPRD folds mirrored updates into a single 2x-scaled update."""
    k = compile_kernel(
        "y[] += x[i] * A[i, j] * x[j]", symmetric={"A": True}, loop_order=("j", "i")
    )
    strict_nest = k.plan.nests[0]
    assert len(strict_nest.blocks[0].assignments) == 1
    assert strict_nest.blocks[0].assignments[0].count == 2
    assert "2.0 * " in k.source


def test_optimizes_redundant_storage():
    """A canonically packed tensor stores ~1/n! of the full entries and the
    compiled kernel consumes it directly (no expansion)."""
    t = erdos_renyi_symmetric(25, 3, 0.1, seed=1)
    full = t._full_coo().nnz
    packed = t.coo.nnz
    assert packed < 0.4 * full  # ~1/6 for 3-D, modulo diagonals
    k = compile_kernel(
        "C[i, j] += A[i, k, l] * B[k, j] * B[l, j]",
        symmetric={"A": True},
        loop_order=("l", "k", "i", "j"),
    )
    prepared, shape = k.prepare(A=t, B=np.ones((25, 2)))
    out = k.finalize(k.run(prepared, shape))
    assert out.shape == (25, 2)
