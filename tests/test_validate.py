"""Tests for assignment/input validation."""

import numpy as np
import pytest

from repro.core.compiler import compile_kernel
from repro.frontend.parser import parse_assignment
from repro.frontend.validate import (
    ValidationError,
    validate_assignment,
    validate_inputs,
    validate_semiring,
)


def test_consistent_assignment_passes():
    a = parse_assignment("C[i, j] += A[i, k, l] * B[k, j] * B[l, j]")
    validate_assignment(a, {"A": ((0, 1, 2),)})


def test_inconsistent_arity_rejected():
    a = parse_assignment("y[i] += A[i, j] * A[i, j, k]")
    with pytest.raises(ValidationError):
        validate_assignment(a)


def test_repeated_output_index_rejected():
    a = parse_assignment("C[i, i] += A[i, j]")
    with pytest.raises(ValidationError):
        validate_assignment(a)


def test_unbound_output_index_rejected():
    a = parse_assignment("C[i, z] += A[i, j] * x[j]")
    with pytest.raises(ValidationError):
        validate_assignment(a)


def test_symmetry_on_unused_tensor_rejected():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    with pytest.raises(ValidationError):
        validate_assignment(a, {"Z": ((0, 1),)})


def test_symmetry_mode_out_of_range_rejected():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    with pytest.raises(ValidationError):
        validate_assignment(a, {"A": ((0, 5),)})


def test_semiring_plus_times_ok():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    validate_semiring(a, ["A"])


def test_semiring_min_plus_ok():
    a = parse_assignment("y[i] min= A[i, j] + d[j]")
    validate_semiring(a, ["A"])


def test_semiring_plus_plus_rejected_for_sparse():
    a = parse_assignment("y[i] += A[i, j] + x[j]")
    with pytest.raises(ValidationError):
        validate_semiring(a, ["A"])
    validate_semiring(a, [])  # fine when everything is dense


def test_compile_kernel_rejects_bad_semiring():
    with pytest.raises(ValidationError):
        compile_kernel(
            "y[i] += A[i, j] + x[j]",
            symmetric={"A": True},
            loop_order=("j", "i"),
        )


def test_validate_inputs_extent_mismatch():
    a = parse_assignment("C[i, j] += A[i, k] * B[k, j]")
    with pytest.raises(ValidationError):
        validate_inputs(
            a, {}, {"A": np.zeros((3, 4)), "B": np.zeros((5, 2))}
        )


def test_validate_inputs_missing_tensor():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    with pytest.raises(ValidationError):
        validate_inputs(a, {}, {"A": np.zeros((3, 3))})


def test_validate_inputs_wrong_ndim():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    with pytest.raises(ValidationError):
        validate_inputs(a, {}, {"A": np.zeros(3), "x": np.zeros(3)})


def test_validate_inputs_returns_extents():
    a = parse_assignment("C[i, j] += A[i, k] * B[k, j]")
    extents = validate_inputs(
        a, {}, {"A": np.zeros((3, 4)), "B": np.zeros((4, 2))}
    )
    assert extents == {"i": 3, "k": 4, "j": 2}


def test_validate_inputs_rectangular_symmetry_rejected():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    with pytest.raises(ValidationError):
        validate_inputs(
            a, {"A": ((0, 1),)}, {"A": np.zeros((3, 4)), "x": np.zeros(4)}
        )


def test_validate_inputs_checks_actual_symmetry():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    asym = np.array([[0.0, 1.0], [2.0, 0.0]])
    with pytest.raises(ValidationError):
        validate_inputs(
            a, {"A": ((0, 1),)}, {"A": asym, "x": np.zeros(2)},
            check_symmetry=True,
        )
    sym = np.array([[0.0, 1.0], [1.0, 0.0]])
    validate_inputs(
        a, {"A": ((0, 1),)}, {"A": sym, "x": np.zeros(2)}, check_symmetry=True
    )
