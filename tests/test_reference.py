"""Direct tests of the dense reference interpreters (the test oracle itself
needs testing)."""

import numpy as np
import pytest

from repro.codegen.reference import execute_plan_dense, reference_einsum
from repro.core.compiler import optimize
from repro.core.config import DEFAULT
from repro.core.symmetrize import symmetrize
from repro.frontend.parser import parse_assignment
from tests.conftest import make_symmetric_matrix


def test_reference_matvec(rng):
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    A, x = rng.random((4, 5)), rng.random(5)
    np.testing.assert_allclose(
        reference_einsum(a, {"A": A, "x": x}), A @ x, rtol=1e-12
    )


def test_reference_scalar_output(rng):
    a = parse_assignment("y[] += x[i] * x[i]")
    x = rng.random(6)
    assert float(reference_einsum(a, {"x": x})) == pytest.approx(x @ x)


def test_reference_literal_scale(rng):
    a = parse_assignment("y[i] += 3 * x[i]")
    x = rng.random(4)
    np.testing.assert_allclose(reference_einsum(a, {"x": x}), 3 * x)


def test_reference_min_plus(rng):
    a = parse_assignment("y[i] min= A[i, j] + d[j]")
    A, d = rng.random((4, 4)), rng.random(4)
    np.testing.assert_allclose(
        reference_einsum(a, {"A": A, "d": d}), (A + d[None, :]).min(axis=1)
    )


def test_reference_combine_plus(rng):
    a = parse_assignment("y[i] max= A[i, j] + x[j]")
    A, x = rng.random((3, 3)), rng.random(3)
    np.testing.assert_allclose(
        reference_einsum(a, {"A": A, "x": x}), (A + x[None, :]).max(axis=1)
    )


def test_reference_count_multiplicity(rng):
    a = parse_assignment("y[i] += x[i]").with_count(3)
    x = rng.random(4)
    np.testing.assert_allclose(reference_einsum(a, {"x": x}), 3 * x)


def test_reference_explicit_output_shape(rng):
    a = parse_assignment("y[i] += x[i]")
    out = reference_einsum(a, {"x": rng.random(3)}, output_shape=(3,))
    assert out.shape == (3,)


def test_plan_execution_without_replication(rng):
    """replicate=False leaves only the canonical triangle computed."""
    plan = optimize(
        symmetrize(parse_assignment("C[i, j] += A[i, k] * A[j, k]"), {}, ("k", "j", "i")),
        DEFAULT,
    )
    A = rng.random((4, 4))
    full = execute_plan_dense(plan, {"A": A})
    half = execute_plan_dense(plan, {"A": A}, replicate=False)
    np.testing.assert_allclose(full, A @ A.T, rtol=1e-12)
    # the non-canonical triangle was never written
    expected_half = np.where(
        np.subtract.outer(range(4), range(4)) >= 0, A @ A.T, 0.0
    )
    np.testing.assert_allclose(half, expected_half, rtol=1e-12)


def test_plan_execution_min_semantics(rng):
    plan = optimize(
        symmetrize(
            parse_assignment("y[i] min= A[i, j] + d[j]"), {"A": ((0, 1),)}, ("j", "i")
        ),
        DEFAULT,
    )
    A = make_symmetric_matrix(rng, 5, 1.0)  # fully dense: matches dense ref
    d = rng.random(5)
    np.testing.assert_allclose(
        execute_plan_dense(plan, {"A": A, "d": d}),
        (A + d[None, :]).min(axis=1),
    )
