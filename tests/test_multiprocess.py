"""Cross-process stress: N processes race one cold key on a shared store.

Each child process runs a real ``KernelService`` against the same disk
store and the same persistent ``REPRO_C_CACHE`` build directory, with a
logging ``cc`` wrapper so the test can count actual compiler invocations.
The advisory-lock single-flight (toolchain + engine) must produce exactly
one kernel ``cc`` run, every child must answer bit-identically, and no
lock or temp files may survive.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time

import pytest

from repro.codegen.backends import get_backend

pytestmark = pytest.mark.skipif(
    not get_backend("c").is_available(), reason="no working C toolchain"
)

N_PROCS = 4

_CHILD = r"""
import json, os, sys, time

go = sys.argv[1]
store_dir = sys.argv[2]
deadline = time.time() + 60
while not os.path.exists(go):
    if time.time() > deadline:
        raise SystemExit("no go signal")
    time.sleep(0.005)

import numpy as np
from repro.core.config import DEFAULT
from repro.service import KernelService

svc = KernelService(store=store_dir)
kernel = svc.get_or_compile(
    "y[i] += A[i, j] * x[j]",
    symmetric={"A": True},
    loop_order=("j", "i"),
    options=DEFAULT.but(backend="c"),
)
A = np.array([[2.0, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 4.0]])
x = np.array([1.0, 2.0, 3.0])
out = kernel(A=A, x=x)
print(json.dumps({
    "pid": os.getpid(),
    "backend": kernel.backend,
    "compiles": svc.stats().compiles,
    "origin_bytes": out.tobytes().hex(),
}))
"""


def test_cold_key_race_compiles_exactly_once(tmp_path):
    real_cc = shutil.which(os.environ.get("REPRO_CC", "") or "cc") or shutil.which(
        "gcc"
    )
    if real_cc is None:
        pytest.skip("no cc on PATH")

    store_dir = tmp_path / "store"
    build_dir = tmp_path / "build"
    build_dir.mkdir()
    cc_log = tmp_path / "cc.log"
    wrapper = tmp_path / "loggingcc"
    wrapper.write_text(
        '#!/bin/sh\necho "$@" >> %s\nexec %s "$@"\n' % (cc_log, real_cc)
    )
    wrapper.chmod(0o755)

    child_script = tmp_path / "child.py"
    child_script.write_text(_CHILD)
    go = tmp_path / "go"

    env = dict(os.environ)
    env["REPRO_CC"] = str(wrapper)
    env["REPRO_C_CACHE"] = str(build_dir)
    env.pop("REPRO_NO_CC", None)
    # this test asserts the *fault-free* exactly-once property; an
    # ambient fault schedule (the CI fault-injection leg) would make
    # retries/rebuilds legitimately compile more than once
    env.pop("REPRO_FAULTS", None)
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    procs = [
        subprocess.Popen(
            [sys.executable, str(child_script), str(go), str(store_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        for _ in range(N_PROCS)
    ]
    time.sleep(0.2)  # let every child reach the spin-wait
    go.write_text("go")

    results = []
    for proc in procs:
        out, err = proc.communicate(timeout=180)
        assert proc.returncode == 0, "child failed:\n%s\n%s" % (out, err)
        results.append(json.loads(out.strip().splitlines()[-1]))

    # every child answered, bit-identically, from the C backend
    blobs = {r["origin_bytes"] for r in results}
    assert len(blobs) == 1
    assert all(r["backend"] == "c" for r in results)

    # exactly one *kernel* compile across all processes (probe builds are
    # process-local and excluded by name)
    kernel_ccs = [
        line
        for line in cc_log.read_text().splitlines()
        if "ck_" in line and ".probe." not in line
    ]
    assert len(kernel_ccs) == 1, "expected 1 kernel cc run, saw:\n%s" % (
        "\n".join(kernel_ccs)
    )
    # the service pipeline also ran once: one leader compiled, the rest
    # rehydrated the published entry
    assert sum(r["compiles"] for r in results) == 1

    # the store holds a healthy entry and no litter survived
    entries = sorted(p.name for p in store_dir.iterdir())
    assert any(name.endswith(".json") for name in entries)
    assert not [n for n in entries if n.endswith(".lock") or ".tmp" in n], entries
    build_litter = [
        p.name
        for p in build_dir.iterdir()
        if p.name.endswith(".lock") or p.name.endswith(".tmp.so")
    ]
    assert not build_litter, build_litter


def test_shared_build_cache_race_is_single_compile(tmp_path):
    """The toolchain-level lock alone (no disk store): concurrent
    compile_shared of one source in separate processes runs cc once."""
    real_cc = shutil.which("cc") or shutil.which("gcc")
    if real_cc is None:
        pytest.skip("no cc on PATH")
    build_dir = tmp_path / "build"
    build_dir.mkdir()
    cc_log = tmp_path / "cc.log"
    wrapper = tmp_path / "loggingcc"
    wrapper.write_text(
        '#!/bin/sh\necho "$@" >> %s\nexec %s "$@"\n' % (cc_log, real_cc)
    )
    wrapper.chmod(0o755)

    script = tmp_path / "child.py"
    script.write_text(
        r"""
import os, sys, time
go = sys.argv[1]
deadline = time.time() + 60
while not os.path.exists(go):
    if time.time() > deadline:
        raise SystemExit("no go signal")
    time.sleep(0.005)
from repro.codegen.backends import ctoolchain
so = ctoolchain.compile_shared(
    "double repro_mp(double v) { return v * 3.0; }\n", stem="mprace"
)
print(so)
"""
    )
    go = tmp_path / "go"
    env = dict(os.environ)
    env["REPRO_CC"] = str(wrapper)
    env["REPRO_C_CACHE"] = str(build_dir)
    env.pop("REPRO_NO_CC", None)
    # this test asserts the *fault-free* exactly-once property; an
    # ambient fault schedule (the CI fault-injection leg) would make
    # retries/rebuilds legitimately compile more than once
    env.pop("REPRO_FAULTS", None)
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    procs = [
        subprocess.Popen(
            [sys.executable, str(script), str(go)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        for _ in range(N_PROCS)
    ]
    time.sleep(0.2)
    go.write_text("go")
    paths = set()
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        paths.add(out.strip())
    assert len(paths) == 1  # content-addressed: everyone got the same .so
    kernel_ccs = [
        line for line in cc_log.read_text().splitlines() if "ck_mprace" in line
    ]
    assert len(kernel_ccs) == 1
    assert not [p.name for p in build_dir.iterdir() if p.name.endswith(".lock")]
