"""Unit tests for partitions and symmetry specs."""

import pytest

from repro.symmetry.partitions import (
    Partition,
    modes_to_index_partition,
    parse_mode_partition,
)


def test_of_canonicalizes():
    p = Partition.of([("j", "i"), ("k",)])
    assert p.parts == (("i", "j"), ("k",))


def test_duplicate_elements_rejected():
    with pytest.raises(ValueError):
        Partition.of([("i", "j"), ("j",)])


def test_full_and_singletons():
    assert Partition.full("abc").parts == (("a", "b", "c"),)
    assert Partition.singletons("ab").parts == (("a",), ("b",))


def test_nontrivial_parts():
    p = Partition.of([("i", "j"), ("k",)])
    assert p.nontrivial_parts == (("i", "j"),)
    assert not p.is_trivial
    assert Partition.singletons("ijk").is_trivial


def test_same_part():
    p = Partition.of([("i", "j"), ("k",)])
    assert p.same_part("i", "j")
    assert not p.same_part("i", "k")
    assert not p.same_part("i", "zzz")


def test_restrict():
    p = Partition.of([("i", "j", "k"), ("l",)])
    assert p.restrict(("i", "k", "l")).parts == (("i", "k"), ("l",))


def test_savings_factor():
    assert Partition.of([("i", "j"), ("k", "l")]).savings_factor() == 4
    assert Partition.full("ijk").savings_factor() == 6


def test_parse_true_is_full():
    assert parse_mode_partition(True, 3).parts == ((0, 1, 2),)


def test_parse_list_form_completes_singletons():
    p = parse_mode_partition([[0, 1]], 3)
    assert p.parts == ((0, 1), (2,))


def test_parse_string_form():
    p = parse_mode_partition("{0,1}{2}", 3)
    assert p.parts == ((0, 1), (2,))


def test_parse_out_of_range_rejected():
    with pytest.raises(ValueError):
        parse_mode_partition([[0, 5]], 3)


def test_modes_to_index_partition():
    p = modes_to_index_partition(Partition.of([(0, 1), (2,)]), ("i", "j", "k"))
    assert p.parts == (("i", "j"), ("k",))


def test_modes_to_index_partition_merges_repeated_index():
    # A[i, i, j] with {0,1},{2} symmetry: i appears across the part
    p = modes_to_index_partition(
        Partition.of([(0, 2), (1,)]), ("i", "j", "i")
    )
    assert ("i",) in p.parts or ("i", "j") not in p.parts
