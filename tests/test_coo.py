"""Unit tests for the COO interchange format."""

import numpy as np
import pytest

from repro.tensor.coo import COO


def test_from_to_dense_roundtrip(rng):
    arr = rng.random((4, 5)) * (rng.random((4, 5)) < 0.5)
    coo = COO.from_dense(arr)
    np.testing.assert_array_equal(coo.to_dense(), arr)


def test_nnz_and_shape():
    coo = COO(np.array([[0, 1], [2, 0]]), np.array([1.0, 2.0]), (3, 3))
    assert coo.nnz == 2
    assert coo.shape == (3, 3)
    assert coo.ndim == 2


def test_duplicates_summed():
    coo = COO(
        np.array([[0, 0], [1, 1]]), np.array([1.0, 2.5]), (2, 2)
    )
    assert coo.nnz == 1
    assert coo.to_dense()[0, 1] == 3.5


def test_out_of_bounds_rejected():
    with pytest.raises(ValueError):
        COO(np.array([[5], [0]]), np.array([1.0]), (3, 3))


def test_negative_coords_rejected():
    with pytest.raises(ValueError):
        COO(np.array([[-1], [0]]), np.array([1.0]), (3, 3))


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        COO(np.array([[0], [0]]), np.array([1.0]), (3, 3, 3))


def test_permute_transposes():
    arr = np.array([[0.0, 1.0], [2.0, 0.0]])
    coo = COO.from_dense(arr).permute((1, 0))
    np.testing.assert_array_equal(coo.to_dense(), arr.T)


def test_permute_rejects_non_permutation():
    coo = COO.empty((2, 2))
    with pytest.raises(ValueError):
        coo.permute((0, 0))


def test_sorted_lex_is_lexicographic():
    coo = COO(
        np.array([[1, 0, 1], [0, 1, 1]]), np.array([3.0, 1.0, 2.0]), (2, 2)
    ).sorted_lex()
    assert coo.coords[:, 0].tolist() == [0, 1]
    assert coo.coords[:, -1].tolist() == [1, 1]


def test_filter():
    coo = COO(np.array([[0, 1], [1, 0]]), np.array([1.0, 2.0]), (2, 2))
    kept = coo.filter(coo.coords[0] == 1)
    assert kept.nnz == 1
    assert kept.vals[0] == 2.0


def test_empty():
    coo = COO.empty((3, 4))
    assert coo.nnz == 0
    np.testing.assert_array_equal(coo.to_dense(), np.zeros((3, 4)))


def test_equality_is_order_insensitive():
    a = COO(np.array([[0, 1], [1, 0]]), np.array([1.0, 2.0]), (2, 2))
    b = COO(np.array([[1, 0], [0, 1]]), np.array([2.0, 1.0]), (2, 2))
    assert a == b


def test_scalar_tensor():
    coo = COO(np.zeros((0, 1), dtype=np.int64), np.array([7.0]), ())
    assert coo.to_dense().shape == ()
    assert float(coo.to_dense()) == 7.0
