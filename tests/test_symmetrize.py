"""Tests for the symmetrization phase against the paper's worked examples
(Figure 2, Listing 1, Listing 4, Listing 6) and its structural invariants."""

import numpy as np
import pytest

from repro.codegen.reference import execute_plan_dense, reference_einsum
from repro.core.symmetrize import symmetrize
from repro.frontend.parser import parse_assignment
from tests.conftest import make_symmetric_matrix, make_symmetric_tensor

FULL2 = {"A": ((0, 1),)}
FULL3 = {"A": ((0, 1, 2),)}


def block_by_relations(plan, relations):
    for block in plan.blocks:
        for p in block.patterns:
            if p.relations == relations:
                return block
    raise AssertionError("no block with relations %r" % (relations,))


def test_ssymv_matches_figure_2():
    plan = symmetrize(
        parse_assignment("y[i] += A[i, j] * x[j]"), FULL2, ("j", "i")
    )
    assert plan.permutable == ("i", "j")
    strict = block_by_relations(plan, ("<",))
    texts = {str(a) for a in strict.assignments}
    assert texts == {"y[i] += A[j, i] * x[j]", "y[j] += A[j, i] * x[i]"}
    diag = block_by_relations(plan, ("=",))
    assert len(diag.assignments) == 1
    assert diag.assignments[0].count == 1


def test_syprd_matches_listing_4():
    plan = symmetrize(
        parse_assignment("y[] += x[i] * A[i, j] * x[j]"), FULL2, ("j", "i")
    )
    strict = block_by_relations(plan, ("<",))
    # the two mirrored updates merge into one with multiplicity 2
    assert len(strict.assignments) == 1
    assert strict.assignments[0].count == 2
    diag = block_by_relations(plan, ("=",))
    assert diag.assignments[0].count == 1


def test_mttkrp_matches_listing_6():
    plan = symmetrize(
        parse_assignment("C[i, j] += A[i, k, l] * B[k, j] * B[l, j]"),
        FULL3,
        ("l", "k", "i", "j"),
    )
    assert plan.permutable == ("i", "k", "l")
    strict = block_by_relations(plan, ("<", "<"))
    # Listing 6 lines 4-10: three distinct updates, each performed twice
    assert sorted(a.count for a in strict.assignments) == [2, 2, 2]
    targets = {a.lhs.indices[0] for a in strict.assignments}
    assert targets == {"i", "k", "l"}
    # lines 11-14 (i == k != l): C[i] twice, C[l] once
    b = block_by_relations(plan, ("=", "<"))
    assert sorted(a.count for a in b.assignments) == [1, 2]
    # lines 15-18 (i != k == l): C[i] once, C[k] twice
    b = block_by_relations(plan, ("<", "="))
    assert sorted(a.count for a in b.assignments) == [1, 2]
    # lines 19-20 (i == k == l): single update
    b = block_by_relations(plan, ("=", "="))
    assert len(b.assignments) == 1 and b.assignments[0].count == 1


def test_ttm_strict_block_has_six_updates():
    """Listing 1 lines 3-10: the strict block writes all 6 transpositions."""
    plan = symmetrize(
        parse_assignment("C[i, j, l] += A[k, j, l] * B[k, i]"),
        FULL3,
        ("l", "k", "j", "i"),
    )
    strict = block_by_relations(plan, ("<", "<"))
    assert sum(a.count for a in strict.assignments) == 6
    assert len(strict.assignments) == 6  # all six are distinct updates


def test_update_counts_per_block_sum_to_group_size():
    import math

    plan = symmetrize(
        parse_assignment("C[i, j] += A[i, k, l, m] * B[k, j] * B[l, j] * B[m, j]"),
        {"A": ((0, 1, 2, 3),)},
        ("m", "l", "k", "i", "j"),
    )
    for block in plan.blocks:
        pattern = block.patterns[0]
        expected = math.factorial(4)
        for run in pattern.runs():
            expected //= math.factorial(len(run))
        assert sum(a.count for a in block.assignments) == expected


def test_loop_order_must_cover_free_indices():
    with pytest.raises(ValueError):
        symmetrize(parse_assignment("y[i] += A[i, j] * x[j]"), FULL2, ("i",))


@pytest.mark.parametrize(
    "einsum,symmetric,loop_order",
    [
        ("y[i] += A[i, j] * x[j]", FULL2, ("j", "i")),
        ("y[] += x[i] * A[i, j] * x[j]", FULL2, ("j", "i")),
        ("y[i] min= A[i, j] + d[j]", FULL2, ("j", "i")),
        ("C[i, j] += A[i, k, l] * B[k, j] * B[l, j]", FULL3, ("l", "k", "i", "j")),
        ("C[i, j, l] += A[k, j, l] * B[k, i]", FULL3, ("l", "k", "j", "i")),
        ("C[i, j] += A[i, k] * A[j, k]", {}, ("k", "j", "i")),
    ],
)
def test_symmetrized_plan_semantics(rng, einsum, symmetric, loop_order):
    """The symmetrized plan computes exactly what the raw einsum computes."""
    a = parse_assignment(einsum)
    plan = symmetrize(a, symmetric, loop_order)
    n = 5
    inputs = {}
    for acc in a.accesses:
        if acc.tensor in inputs:
            continue
        if acc.tensor in symmetric:
            inputs[acc.tensor] = make_symmetric_tensor(rng, n, len(acc.indices), 0.6)
        else:
            inputs[acc.tensor] = rng.random((n,) * len(acc.indices))
    expected = reference_einsum(a, inputs)
    got = execute_plan_dense(plan, inputs)
    # min-plus over dense zeros: compare directly (dense reference shares
    # the same zero handling)
    np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)
