"""Shared test fixtures and generators."""

from __future__ import annotations

import itertools

import numpy as np
import pytest


def make_symmetric_matrix(rng, n, density=0.5):
    """A dense symmetric matrix with a random sparsity pattern."""
    A = rng.random((n, n)) * (rng.random((n, n)) < density)
    return np.triu(A) + np.triu(A, 1).T


def make_symmetric_tensor(rng, n, order, density=0.3):
    """A dense fully symmetric tensor with a sparse pattern."""
    T = rng.random((n,) * order) * (rng.random((n,) * order) < density)
    S = np.zeros_like(T)
    for p in itertools.permutations(range(order)):
        S = np.maximum(S, np.transpose(T, p))
    return S


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
