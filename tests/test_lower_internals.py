"""Tests for lowering internals: view requirements, loop sources,
co-iteration, vectorization rules, error paths."""

import numpy as np
import pytest

from repro.codegen.lower import LoweringError, lower_plan
from repro.core.compiler import compile_kernel, naive_plan, optimize
from repro.core.config import DEFAULT, NAIVE
from repro.core.symmetrize import symmetrize
from repro.frontend.parser import parse_assignment

FULL2 = {"A": ((0, 1),)}
FULL3 = {"A": ((0, 1, 2),)}


def lowered_ssymv(**opt):
    plan = symmetrize(parse_assignment("y[i] += A[i, j] * x[j]"), FULL2, ("j", "i"))
    plan = optimize(plan, DEFAULT)
    return lower_plan(plan, {"A": "sparse"}, DEFAULT.but(**opt))


def test_sparse_views_split_by_filter():
    lowered = lowered_ssymv()
    filters = {v.tensor_filter for v in lowered.sparse_views}
    assert filters == {"strict", "diagonal"}
    assert all(v.tensor == "A" for v in lowered.sparse_views)
    assert all(v.levels == ("dense", "sparse") for v in lowered.sparse_views)


def test_dense_views_and_dims():
    lowered = lowered_ssymv()
    assert {v.name for v in lowered.dense_views} == {"x"}
    dim_names = {d.name for d in lowered.dims}
    assert {"n_i", "n_j"} <= dim_names


def test_arg_names_cover_all_requirements():
    lowered = lowered_ssymv()
    args = set(lowered.arg_names)
    for view in lowered.sparse_views:
        assert "%s_vals" % view.name in args
        assert "%s_pos1" % view.name in args
    assert "x" in args


def test_vector_index_not_chosen_when_in_chain():
    # SSYMV innermost index i is permutable -> no vectorization
    assert lowered_ssymv().vector_index is None


def test_vector_index_chosen_for_mttkrp():
    plan = symmetrize(
        parse_assignment("C[i, j] += A[i, k, l] * B[k, j] * B[l, j]"),
        FULL3,
        ("l", "k", "i", "j"),
    )
    plan = optimize(plan, DEFAULT)
    lowered = lower_plan(plan, {"A": "sparse"}, DEFAULT)
    assert lowered.vector_index == "j"
    # output layout puts the vector mode last (it already is)
    assert lowered.output.layout == (0, 1)


def test_vector_mode_moved_to_last_for_ttm():
    plan = symmetrize(
        parse_assignment("C[i, j, l] += A[k, j, l] * B[k, i]"),
        FULL3,
        ("l", "k", "j", "i"),
    )
    plan = optimize(plan, DEFAULT)
    lowered = lower_plan(plan, {"A": "sparse"}, DEFAULT)
    assert lowered.vector_index == "i"
    assert lowered.output.layout == (1, 2, 0)  # i (mode 0) last


def test_same_fiber_co_iteration_emitted_for_ssyrk():
    plan = optimize(
        symmetrize(parse_assignment("C[i, j] += A[i, k] * A[j, k]"), {}, ("k", "j", "i")),
        DEFAULT,
    )
    lowered = lower_plan(plan, {"A": "sparse"}, DEFAULT)
    # the inner row loop is bounded by the outer position + 1
    assert "q0_1 + 1" in lowered.source or "q1_1 + 1" in lowered.source


def test_co_iteration_intersection_emits_merge_loop():
    """Two different sparse tensors binding the same index lower to a
    sorted-merge intersection loop (more than one sparse argument at a
    time — the Table 1 capability Cyclops lacks)."""
    plan = naive_plan(
        parse_assignment("y[i] += A[i, j] * B[i, j]"), ("i", "j")
    )
    lowered = lower_plan(
        plan, {"A": "sparse", "B": "sparse"}, NAIVE.but(vectorize_innermost=False)
    )
    assert "while" in lowered.source
    assert "continue" in lowered.source


def test_intersection_semantics(rng):
    from repro.core.compiler import compile_kernel

    n = 9
    A = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    B = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    kernel = compile_kernel(
        "y[i] += A[i, j] * B[i, j]",
        formats={"A": "sparse", "B": "sparse"},
        loop_order=("i", "j"),
    )
    np.testing.assert_allclose(kernel(A=A, B=B), (A * B).sum(axis=1), rtol=1e-12)


def test_triangle_counting_kernel(rng):
    """Symmetric triangle counting: three accesses to one symmetric sparse
    tensor — canonical-triangle iteration + intersection + a 6x factor."""
    from repro.core.compiler import compile_kernel
    from tests.conftest import make_symmetric_matrix

    n = 12
    Adj = (make_symmetric_matrix(rng, n, 0.4) > 0).astype(float)
    np.fill_diagonal(Adj, 0.0)
    kernel = compile_kernel(
        "y[] += A[i, j] * A[j, k] * A[i, k]",
        symmetric={"A": True},
        loop_order=("k", "j", "i"),
    )
    # multi-access symmetric tensor: diagonal splitting must stay off
    assert len(kernel.plan.nests) == 1
    got = float(kernel(A=Adj))
    assert got == pytest.approx(np.einsum("ij,jk,ik->", Adj, Adj, Adj))


def test_repeated_index_in_sparse_access_rejected():
    plan = naive_plan(parse_assignment("y[] += A[i, i]"), ("i",))
    with pytest.raises(LoweringError):
        lower_plan(plan, {"A": "sparse"}, NAIVE)


def test_multiplicity_under_min_rejected():
    """Counts > 1 cannot lower under an idempotent reduction; the
    distributive pass normally removes them — bypassing it must fail."""
    plan = symmetrize(
        parse_assignment("y[] min= x[i] + A[i, j] + x[j]"), FULL2, ("j", "i")
    )
    # skip group_distributive: the strict block has count-2 assignments
    with pytest.raises(LoweringError):
        lower_plan(plan, {"A": "sparse"}, DEFAULT.but(workspace=False))


def test_cse_off_inlines_reads():
    lowered = lowered_ssymv(cse=False)
    assert "t0" not in lowered.source
    assert lowered.source.count("A__strict_vals[") >= 2


def test_cse_on_hoists_reads():
    lowered = lowered_ssymv(cse=True)
    assert "t0 = A__strict_vals[" in lowered.source


def test_workspace_off_writes_directly():
    lowered = lowered_ssymv(workspace=False)
    assert "ws0" not in lowered.source


def test_sources_in_generated_code_are_deterministic():
    a = lowered_ssymv().source
    b = lowered_ssymv().source
    assert a == b


def test_unsupported_reduce_in_plan():
    with pytest.raises(ValueError):
        parse_assignment("y[i] xor= A[i, j]")
