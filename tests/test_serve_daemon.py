"""Daemon robustness tests: bit-identity over the wire, coalescing,
backpressure, deadlines, drain, hostile input, and crash-safe restart.

The daemon runs in a background thread with its own event loop (the same
process, so fault injection and health state are shared and observable);
the kill-9 test runs a real ``repro serve`` subprocess.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.cli import _synth_inputs
from repro.core.config import CompilerOptions
from repro.serve import protocol
from repro.serve.client import RemoteUnavailable, ServiceClient
from repro.serve.daemon import KernelServer, PlanPool, probe_socket
from repro.service.engine import KernelService
from repro.service.keys import canonicalize

SYMV = dict(
    einsum="y[i] += A[i,j] * x[j]",
    symmetric={"A": True},
    formats={"A": "sparse"},
)


@contextlib.contextmanager
def running_daemon(tmp_path, **kwargs):
    """A live KernelServer on a background thread with its own loop."""
    sock = str(tmp_path / "daemon.sock")
    server = KernelServer(sock, **kwargs)
    loop = asyncio.new_event_loop()

    def body():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.run())
        finally:
            loop.close()

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not os.path.exists(sock):
        if time.monotonic() > deadline or not thread.is_alive():
            raise RuntimeError("daemon failed to start")
        time.sleep(0.01)
    try:
        yield server, sock
    finally:
        if thread.is_alive():
            loop.call_soon_threadsafe(server.begin_drain, "test teardown")
            thread.join(timeout=10.0)
        assert not thread.is_alive(), "daemon thread failed to stop"


def raw_call(sock_path: str, msg: dict, timeout: float = 10.0) -> dict:
    """One frame exchange over a fresh connection, no retry policy."""
    sock = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(sock_path)
        sock.sendall(protocol.encode_frame(msg))
        header = _recv_exact(sock, protocol.HEADER.size)
        return protocol.decode_body(
            _recv_exact(sock, protocol.decode_length(header))
        )
    finally:
        sock.close()


def _recv_exact(sock, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise ConnectionResetError("peer closed")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# the acceptance criterion: every library kernel, both dtypes, over the
# socket, bit-identical to in-process execution
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_all_kernels_bit_identical_over_socket(tmp_path, dtype):
    from repro.kernels.extensions import EXTENSIONS
    from repro.kernels.library import KERNELS

    specs = dict(KERNELS)
    specs.update(EXTENSIONS)
    local = KernelService(use_remote=False)
    with running_daemon(tmp_path, store=str(tmp_path / "store")) as (server, sock):
        client = ServiceClient(sock)
        for name in sorted(specs):
            spec = specs[name]
            request = canonicalize(
                spec.einsum,
                symmetric=dict(spec.symmetric),
                loop_order=spec.loop_order,
                formats=dict(spec.formats),
                options=CompilerOptions(dtype=dtype),
            )
            kernel = local.get_or_compile_request(request)
            tensors = _synth_inputs(kernel, 5)
            expected = kernel(**tensors)
            remote, reply = client.execute(request, tensors)
            assert reply["ok"], name
            assert remote.dtype == expected.dtype, name
            assert np.array_equal(remote, expected), name
        client.close()
    assert server.errors == 0


def test_compile_reply_carries_state_and_origin(tmp_path):
    request = canonicalize(**SYMV)
    with running_daemon(tmp_path, store=str(tmp_path / "store")) as (server, sock):
        client = ServiceClient(sock)
        first = client.compile(request)
        again = client.compile(request)
        client.close()
    assert first["ok"] and first["origin"] == "compiled"
    assert first["key"] == request.key
    assert "state" in first
    assert again["origin"] == "memory"


def test_plan_pool_reuses_warm_plans(tmp_path, rng):
    request = canonicalize(**SYMV)
    kernel = KernelService(use_remote=False).get_or_compile_request(request)
    tensors = _synth_inputs(kernel, 6)
    with running_daemon(tmp_path) as (server, sock):
        client = ServiceClient(sock)
        _, r1 = client.execute(request, tensors)
        _, r2 = client.execute(request, tensors)
        client.close()
    assert r1["plan_pooled"] is False
    assert r2["plan_pooled"] is True
    assert server.plans.hits == 1


# ---------------------------------------------------------------------------
# coalescing, backpressure, deadlines
# ---------------------------------------------------------------------------
def test_duplicate_inflight_compiles_coalesce(tmp_path):
    request = canonicalize(**SYMV)
    with running_daemon(tmp_path) as (server, sock):
        with faults.injecting("service.compile=slow:0.4*1"):
            results = []

            def one():
                client = ServiceClient(sock)
                results.append(client.compile(request))
                client.close()

            threads = [threading.Thread(target=one) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15.0)
    assert len(results) == 3 and all(r["ok"] for r in results)
    assert server.coalesced >= 1
    # the service compiled once: followers shared the in-flight task
    assert server.service.stats().compiles == 1


def test_saturated_queue_sheds_with_structured_overloaded(tmp_path):
    request = canonicalize(**SYMV)
    with running_daemon(tmp_path, queue_limit=1) as (server, sock):
        with faults.injecting("serve.handler=slow:1.0*1"):
            slow = threading.Thread(
                target=lambda: raw_call(sock, {"op": "compile", "id": 1,
                                               "spec": protocol.spec_from_request(request)}),
            )
            slow.start()
            # wait until the slow request occupies the only admission slot
            deadline = time.monotonic() + 5.0
            while server._active == 0:
                assert time.monotonic() < deadline, "slow request never admitted"
                time.sleep(0.005)
            shed = raw_call(
                sock,
                {"op": "compile", "id": 2,
                 "spec": protocol.spec_from_request(request)},
            )
            slow.join(timeout=10.0)
    assert shed["ok"] is False
    assert shed["error"] == protocol.OVERLOADED
    assert shed["error"] in protocol.RETRYABLE_ERRORS
    assert server.shed >= 1
    # control ops are exempt from admission: health must answer even at
    # saturation (operators need to see *into* an overloaded daemon)
    assert server.requests >= 2


def test_request_deadline_expires_with_structured_reply(tmp_path):
    request = canonicalize(**SYMV)
    with running_daemon(tmp_path) as (server, sock):
        with faults.injecting("service.compile=slow:5"):
            reply = raw_call(
                sock,
                {
                    "op": "compile",
                    "id": 1,
                    "deadline_s": 0.1,
                    "spec": protocol.spec_from_request(request),
                },
            )
    assert reply == {
        "ok": False,
        "id": 1,
        "error": protocol.DEADLINE,
        "detail": "request deadline expired",
    }
    assert server.deadline_timeouts == 1


def test_health_stats_and_unknown_op(tmp_path):
    with running_daemon(tmp_path) as (server, sock):
        health = raw_call(sock, {"op": "health", "id": 1})
        stats = raw_call(sock, {"op": "stats", "id": 2})
        bogus = raw_call(sock, {"op": "frobnicate", "id": 3})
    assert health["ok"] and health["status"] == "serving"
    assert health["protocol"] == protocol.PROTOCOL_VERSION
    assert health["pid"] == os.getpid()
    assert stats["ok"] and stats["server"]["queue_limit"] == server.queue_limit
    assert "memory" in stats["stats"]
    assert bogus["error"] == protocol.UNKNOWN_OP


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------
def test_drain_finishes_inflight_and_rejects_new(tmp_path):
    request = canonicalize(**SYMV)
    with running_daemon(tmp_path) as (server, sock):
        with faults.injecting("service.compile=slow:0.5*1"):
            inflight = {}

            def slow():
                inflight["reply"] = raw_call(
                    sock,
                    {"op": "compile", "id": 1,
                     "spec": protocol.spec_from_request(request)},
                )

            thread = threading.Thread(target=slow)
            thread.start()
            while server._active == 0 and thread.is_alive():
                time.sleep(0.01)
            shutdown = raw_call(sock, {"op": "shutdown", "id": 2})
            assert shutdown["ok"] and shutdown["status"] == "draining"
            rejected = raw_call(
                sock,
                {"op": "compile", "id": 3,
                 "spec": protocol.spec_from_request(request)},
            )
            thread.join(timeout=10.0)
    # the in-flight request finished cleanly; the late one was refused
    assert inflight["reply"]["ok"] is True
    assert rejected["error"] == protocol.DRAINING
    assert rejected["error"] in protocol.RETRYABLE_ERRORS
    assert not os.path.exists(sock), "drained daemon must unlink its socket"
    assert not os.path.exists(sock + ".lock"), "drained daemon must drop its lock"


# ---------------------------------------------------------------------------
# hostile input
# ---------------------------------------------------------------------------
def _hostile_sock(sock_path, timeout=5.0):
    sock = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(sock_path)
    return sock


def _daemon_still_serves(sock_path) -> bool:
    reply = raw_call(sock_path, {"op": "health", "id": 99})
    return bool(reply.get("ok"))


def test_oversized_prefix_answered_and_connection_dropped(tmp_path):
    with running_daemon(tmp_path, max_frame=4096) as (server, sock):
        hostile = _hostile_sock(sock)
        try:
            hostile.sendall(protocol.HEADER.pack(0xFFFFFFFF) + b"x" * 64)
            header = _recv_exact(hostile, protocol.HEADER.size)
            reply = protocol.decode_body(
                _recv_exact(hostile, protocol.decode_length(header))
            )
            assert reply["error"] == protocol.BAD_REQUEST
            # after a framing violation the connection must be closed
            assert hostile.recv(1) == b""
        finally:
            hostile.close()
        assert _daemon_still_serves(sock)
        assert server.errors >= 1


def test_garbage_json_answered_bad_request(tmp_path):
    with running_daemon(tmp_path) as (server, sock):
        hostile = _hostile_sock(sock)
        try:
            body = b"\xde\xad\xbe\xef not json"
            hostile.sendall(protocol.HEADER.pack(len(body)) + body)
            header = _recv_exact(hostile, protocol.HEADER.size)
            reply = protocol.decode_body(
                _recv_exact(hostile, protocol.decode_length(header))
            )
            assert reply["error"] == protocol.BAD_REQUEST
        finally:
            hostile.close()
        assert _daemon_still_serves(sock)


def test_mid_request_disconnect_leaves_daemon_serving(tmp_path):
    with running_daemon(tmp_path) as (server, sock):
        hostile = _hostile_sock(sock)
        hostile.sendall(protocol.HEADER.pack(1000) + b"only-a-fragment")
        hostile.close()
        time.sleep(0.1)
        assert _daemon_still_serves(sock)


def test_slowloris_is_disconnected_by_read_timeout(tmp_path):
    with running_daemon(tmp_path, read_timeout=0.2) as (server, sock):
        hostile = _hostile_sock(sock)
        try:
            # start a frame, then dribble: the daemon must cut us off
            hostile.sendall(protocol.HEADER.pack(1000))
            start = time.monotonic()
            hostile.settimeout(5.0)
            assert hostile.recv(1) == b""  # EOF: daemon dropped the link
            assert time.monotonic() - start < 4.0
        finally:
            hostile.close()
        assert _daemon_still_serves(sock)


def test_bad_spec_answered_bad_request_not_crash(tmp_path):
    with running_daemon(tmp_path) as (server, sock):
        reply = raw_call(sock, {"op": "compile", "id": 1, "spec": {"einsum": 42}})
        assert reply["error"] == protocol.BAD_REQUEST
        reply = raw_call(sock, {"op": "execute", "id": 2, "spec": None})
        assert reply["error"] == protocol.BAD_REQUEST
        assert _daemon_still_serves(sock)


def test_wire_accept_fault_drops_connection_only(tmp_path):
    with running_daemon(tmp_path) as (server, sock):
        with faults.injecting("wire.accept=fail*1"):
            dropped = _hostile_sock(sock)
            try:
                # the daemon closes at accept; our next read sees EOF
                assert dropped.recv(1) == b""
            finally:
                dropped.close()
            assert _daemon_still_serves(sock)


# ---------------------------------------------------------------------------
# warm restart + crash tolerance
# ---------------------------------------------------------------------------
def test_warm_restart_rehydrates_from_store(tmp_path):
    store_dir = str(tmp_path / "store")
    request = canonicalize(**SYMV)
    with running_daemon(tmp_path, store=store_dir) as (server, sock):
        assert ServiceClient(sock).compile(request)["origin"] == "compiled"
    sock2 = str(tmp_path / "second.sock")
    server2 = KernelServer(sock2, store=store_dir)
    warmed, failed = server2.warm_from_store()
    assert (warmed, failed) == (1, 0)
    assert request.key in server2.service.cache
    server2._lock_file.release()  # never started; nothing else to clean


def test_stale_socket_and_lock_reclaimed(tmp_path):
    sock = str(tmp_path / "daemon.sock")
    # a crashed predecessor: dead socket file + lock stamped with a pid
    # that no longer exists
    socket_module.socket(socket_module.AF_UNIX).bind(sock)
    with open(sock + ".lock", "w") as handle:
        handle.write("999999999\n")
    server = KernelServer(sock)
    server._claim_socket()
    try:
        assert not probe_socket(sock)
    finally:
        server._lock_file.release()
    # a *live* holder is respected: claiming against it must fail
    with running_daemon(tmp_path) as (daemon, live_sock):
        rival = KernelServer(live_sock)
        with pytest.raises(RuntimeError, match="another daemon"):
            rival._claim_socket()


@pytest.mark.slow
def test_kill9_mid_compile_then_clean_restart(tmp_path):
    """SIGKILL a daemon mid-compile; the next start must reclaim the
    socket and lock, leave no litter, and serve the request cleanly."""
    store_dir = tmp_path / "store"
    sock = str(tmp_path / "daemon.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["REPRO_FAULTS"] = "service.compile=slow:30"
    env.pop("REPRO_SERVICE", None)
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--socket",
        sock,
        "--dir",
        str(store_dir),
    ]
    proc = subprocess.Popen(
        argv, env=env, cwd="/root/repo",
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    try:
        deadline = time.monotonic() + 30.0
        while not os.path.exists(sock):
            assert proc.poll() is None, proc.stdout.read().decode()
            assert time.monotonic() < deadline
            time.sleep(0.05)
        request = canonicalize(**SYMV)
        # park a compile behind the injected 30s stall, then kill -9
        hostile = _hostile_sock(sock)
        hostile.sendall(
            protocol.encode_frame(
                {"op": "compile", "id": 1,
                 "spec": protocol.spec_from_request(request)}
            )
        )
        time.sleep(0.5)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10.0)
        hostile.close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)

    # restart over the corpse, no fault spec this time
    env.pop("REPRO_FAULTS")
    proc = subprocess.Popen(
        argv, env=env, cwd="/root/repo",
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    try:
        deadline = time.monotonic() + 30.0
        while not probe_socket(sock):
            assert proc.poll() is None, proc.stdout.read().decode()
            assert time.monotonic() < deadline
            time.sleep(0.05)
        request = canonicalize(**SYMV)
        reply = raw_call(sock, {"op": "compile", "id": 1,
                                "spec": protocol.spec_from_request(request)})
        assert reply["ok"], reply
        raw_call(sock, {"op": "shutdown", "id": 2})
        proc.wait(timeout=30.0)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
    # no lock/tmp litter, no corrupt store entries
    litter = [
        p.name
        for p in store_dir.glob("*")
        if p.suffix in (".lock", ".tmp") or p.name.startswith(".")
    ]
    assert litter == [], litter
    assert not os.path.exists(sock)
    assert not os.path.exists(sock + ".lock")
    from repro.service.store import DiskStore

    store = DiskStore(store_dir)
    for key in store.keys():
        assert store.get(key) is not None, "corrupt store entry %s" % key


# ---------------------------------------------------------------------------
# the plan pool in isolation
# ---------------------------------------------------------------------------
def test_plan_pool_lru_and_busy_semantics():
    pool = PlanPool(capacity=2)
    pool.put("a", "ka", "pa")
    pool.put("b", "kb", "pb")
    entry = pool.acquire("a")
    assert entry[0] == "ka"
    # while "a" is busy, a duplicate acquire runs unpooled
    assert pool.acquire("a") is None
    pool.put("c", "kc", "pc")  # evicts the idle "b", never the busy "a"
    assert pool.acquire("b") is None
    PlanPool.release(entry)
    assert pool.acquire("a") is not None
    assert len(pool) == 2


def test_plan_pool_capacity_zero_disables():
    pool = PlanPool(capacity=0)
    pool.put("a", "k", "p")
    assert pool.acquire("a") is None
    assert len(pool) == 0
