"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_compile_command(capsys):
    rc = main(
        [
            "compile",
            "y[i] += A[i, j] * x[j]",
            "--symmetric",
            "A",
            "--loop-order",
            "j,i",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "canonical chain: i <= j" in out
    assert "def kernel(" in out
    assert "reads 1/2 of symmetric input" in out


def test_compile_naive(capsys):
    rc = main(
        [
            "compile",
            "y[i] += A[i, j] * x[j]",
            "--symmetric",
            "A",
            "--loop-order",
            "j,i",
            "--naive",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "A__full" in out


def test_kernels_command(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "ssymv" in out
    assert "mttkrp5d" in out
    assert "trianglecount" in out


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "bayer02" in out
    assert "2698463" in out  # ct20stif nnz from the paper


def test_bench_command_tiny(capsys):
    rc = main(["bench", "fig07", "--scale", "0.01", "--names", "saylr4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "saylr4" in out
    assert "geomean" in out


def test_serve_warmup_memory_only(capsys):
    rc = main(["serve-warmup", "--kernels", "ssymv,syprd"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "warmed 2 kernels" in out
    assert "ssymv" in out and "compiled" in out
    assert "compiles: 2" in out


def test_serve_warmup_then_cache_listing(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")
    assert main(["serve-warmup", "--dir", cache_dir, "--kernels", "ssymv"]) == 0
    capsys.readouterr()

    assert main(["cache", "--dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "1 kernels" in out
    assert "y[i] += A[i, j] * x[j]" in out
    assert "+cse" in out  # CompilerOptions.describe() line

    # second warmup is served from disk, no compiles
    assert main(["serve-warmup", "--dir", cache_dir, "--kernels", "ssymv"]) == 0
    out = capsys.readouterr().out
    assert "disk" in out
    assert "compiles: 0" in out


def test_cache_clear_and_empty(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")
    main(["serve-warmup", "--dir", cache_dir, "--kernels", "ssymv"])
    capsys.readouterr()
    assert main(["cache", "--dir", cache_dir, "--clear"]) == 0
    assert "cleared 1 entries" in capsys.readouterr().out
    assert main(["cache", "--dir", cache_dir]) == 0
    assert "empty" in capsys.readouterr().out


def test_cache_requires_dir():
    with pytest.raises(SystemExit):
        main(["cache"])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["bench", "fig99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_backends_command(capsys):
    rc = main(["backends"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "python" in out
    assert "resolves to" in out
    assert "REPRO_BACKEND" in out


def test_compile_with_backend_flag(capsys):
    rc = main(
        [
            "compile",
            "y[i] += A[i, j] * x[j]",
            "--symmetric",
            "A",
            "--loop-order",
            "j,i",
            "--backend",
            "python",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "generated kernel (backend: python)" in out


def test_cache_gc_requires_a_bound(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    main(["serve-warmup", "--dir", cache_dir, "--kernels", "ssymv"])
    capsys.readouterr()
    assert main(["cache", "gc", "--dir", cache_dir]) == 2
    assert "no size bound" in capsys.readouterr().err


def test_cache_gc_evicts_down_to_bound(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    main(["serve-warmup", "--dir", cache_dir, "--kernels", "ssymv,syprd"])
    capsys.readouterr()
    assert main(["cache", "gc", "--dir", cache_dir, "--max-bytes", "1"]) == 0
    out = capsys.readouterr().out
    assert "removed 2 entries" in out
    assert main(["cache", "--dir", cache_dir]) == 0
    assert "empty" in capsys.readouterr().out


def test_cache_gc_json(tmp_path, capsys):
    import json

    cache_dir = str(tmp_path / "cache")
    main(["serve-warmup", "--dir", cache_dir, "--kernels", "ssymv"])
    capsys.readouterr()
    rc = main(
        ["cache", "gc", "--dir", cache_dir, "--max-bytes", "10000000", "--json"]
    )
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["removed"] == 0 and doc["max_bytes"] == 10000000


def test_doctor_probes_unreachable_daemon(tmp_path, capsys):
    rc = main(
        ["doctor", "--socket", str(tmp_path / "no-daemon.sock"), "--json"]
    )
    import json

    doc = json.loads(capsys.readouterr().out)
    assert doc["checks"]["daemon"]["ok"] is False
    assert "unreachable" in doc["checks"]["daemon"]["detail"]
    assert rc == 1  # a configured-but-down daemon is an unhealthy check


def test_help_epilog_documents_serve_env(capsys):
    import pytest as _pytest

    with _pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    for name in (
        "REPRO_SERVICE",
        "REPRO_SERVE_QUEUE",
        "REPRO_SERVE_DEADLINE",
        "REPRO_STORE_MAX_BYTES",
    ):
        assert name in out, name


def test_serve_rejects_bad_store_dir(tmp_path, capsys):
    bogus = tmp_path / "not-a-dir"
    bogus.write_text("file, not directory")
    rc = main(
        ["serve", "--socket", str(tmp_path / "d.sock"), "--dir", str(bogus)]
    )
    assert rc == 2
    assert "error" in capsys.readouterr().err
