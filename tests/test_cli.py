"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_compile_command(capsys):
    rc = main(
        [
            "compile",
            "y[i] += A[i, j] * x[j]",
            "--symmetric",
            "A",
            "--loop-order",
            "j,i",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "canonical chain: i <= j" in out
    assert "def kernel(" in out
    assert "reads 1/2 of symmetric input" in out


def test_compile_naive(capsys):
    rc = main(
        [
            "compile",
            "y[i] += A[i, j] * x[j]",
            "--symmetric",
            "A",
            "--loop-order",
            "j,i",
            "--naive",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "A__full" in out


def test_kernels_command(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "ssymv" in out
    assert "mttkrp5d" in out
    assert "trianglecount" in out


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "bayer02" in out
    assert "2698463" in out  # ct20stif nnz from the paper


def test_bench_command_tiny(capsys):
    rc = main(["bench", "fig07", "--scale", "0.01", "--names", "saylr4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "saylr4" in out
    assert "geomean" in out


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["bench", "fig99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
