"""KernelService facade: lookup path, warmup, invalidation, stats."""

import numpy as np
import pytest

from repro import DEFAULT, KernelService
from repro.core.compiler import PlanSnapshot
from tests.conftest import make_symmetric_matrix

SSYMV = "y[i] += A[i, j] * x[j]"
SPEC = dict(symmetric={"A": True}, loop_order=("j", "i"))


def test_repeat_requests_return_the_same_kernel_object():
    service = KernelService(capacity=4)
    k1 = service.get_or_compile(SSYMV, **SPEC)
    k2 = service.get_or_compile(SSYMV, **SPEC)
    assert k1 is k2
    stats = service.stats()
    assert stats.compiles == 1
    assert stats.memory.hits == 1


def test_equivalent_spellings_hit_the_same_entry():
    service = KernelService(capacity=4)
    service.get_or_compile(SSYMV, **SPEC)
    k = service.get_or_compile(
        SSYMV,
        symmetric={"A": [[0, 1]]},
        loop_order=["j", "i"],
        formats={"A": "sparse", "x": "dense"},
    )
    assert service.stats().compiles == 1
    assert k is service.get_or_compile(SSYMV, **SPEC)


def test_cached_kernel_computes_correctly(rng):
    service = KernelService(capacity=4)
    A = make_symmetric_matrix(rng, 12, 0.5)
    x = rng.random(12)
    first = service.get_or_compile(SSYMV, **SPEC)(A=A, x=x)
    second = service.get_or_compile(SSYMV, **SPEC)(A=A, x=x)
    np.testing.assert_allclose(first, A @ x, rtol=1e-12)
    assert np.array_equal(first, second)


def test_disk_store_survives_service_restart(tmp_path, rng):
    A = make_symmetric_matrix(rng, 10, 0.5)
    x = rng.random(10)

    first = KernelService(capacity=4, store=tmp_path)
    expected = first.get_or_compile(SSYMV, **SPEC)(A=A, x=x)
    assert first.stats().compiles == 1

    # a "new process": fresh memory, same store — no compile happens
    second = KernelService(capacity=4, store=tmp_path)
    kernel = second.get_or_compile(SSYMV, **SPEC)
    stats = second.stats()
    assert stats.compiles == 0
    assert stats.disk_hits == 1
    assert isinstance(kernel.plan, PlanSnapshot)
    assert np.array_equal(kernel(A=A, x=x), expected)
    # rehydrated entry was promoted into memory
    assert second.get_or_compile(SSYMV, **SPEC) is kernel


def test_lru_eviction_falls_back_to_disk_not_recompile(tmp_path):
    service = KernelService(capacity=1, store=tmp_path)
    service.get_or_compile(SSYMV, **SPEC)
    service.get_or_compile(SSYMV, naive=True, **SPEC)  # evicts the first
    assert service.stats().memory.evictions == 1
    service.get_or_compile(SSYMV, **SPEC)  # back via disk rehydration
    stats = service.stats()
    assert stats.compiles == 2
    assert stats.disk_hits == 1


def test_options_distinguish_cache_entries():
    service = KernelService(capacity=8)
    service.get_or_compile(SSYMV, **SPEC)
    service.get_or_compile(SSYMV, options=DEFAULT.but(workspace=False), **SPEC)
    assert service.stats().compiles == 2


def test_invalidate_by_spec_and_everything(tmp_path):
    service = KernelService(capacity=8, store=tmp_path)
    service.get_or_compile(SSYMV, **SPEC)
    assert service.invalidate(SSYMV, **SPEC) == 1
    # memory gone, disk still has it
    assert service.stats().memory.size == 0
    service.get_or_compile(SSYMV, **SPEC)
    assert service.stats().compiles == 1  # rehydrated, not recompiled

    assert service.invalidate(SSYMV, drop_store=True, **SPEC) == 2
    service.get_or_compile(SSYMV, **SPEC)
    assert service.stats().compiles == 2  # really recompiled now

    service.get_or_compile(SSYMV, naive=True, **SPEC)
    assert service.invalidate(drop_store=True) >= 2  # wipe all


def test_warmup_reports_origin_and_populates_cache(tmp_path):
    service = KernelService(capacity=16, store=tmp_path)
    reports = service.warmup(names=("ssymv", "syprd"))
    assert [r.source for r in reports] == ["compiled", "compiled"]
    assert all(len(r.key) == 64 and r.seconds >= 0 for r in reports)

    again = service.warmup(names=("ssymv", "syprd"))
    assert [r.source for r in again] == ["memory", "memory"]

    fresh = KernelService(capacity=16, store=tmp_path)
    rehydrated = fresh.warmup(names=("ssymv",))
    assert rehydrated[0].source == "disk"


def test_warmup_full_library_and_unknown_name():
    service = KernelService(capacity=32)
    reports = service.warmup()
    assert len(reports) == 8  # the Section 5.2 kernel library
    with pytest.raises(KeyError, match="nosuch"):
        service.warmup(names=("nosuch",))


def test_stats_describe_mentions_disk_only_when_present(tmp_path):
    memory_only = KernelService(capacity=2)
    assert "disk" not in memory_only.stats().describe()
    with_store = KernelService(capacity=2, store=tmp_path)
    with_store.get_or_compile(SSYMV, **SPEC)
    assert "disk: 1 entries" in with_store.stats().describe()
