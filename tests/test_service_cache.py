"""LRU kernel cache: eviction order, hit/miss accounting, invalidation."""

import pytest

from repro.service.cache import LRUKernelCache


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        LRUKernelCache(0)


def test_get_miss_then_hit():
    cache = LRUKernelCache(2)
    assert cache.get("a" * 64) is None
    cache.put("a" * 64, "kernel-a")
    assert cache.get("a" * 64) == "kernel-a"
    stats = cache.stats()
    assert (stats.hits, stats.misses) == (1, 1)
    assert stats.hit_rate == 0.5


def test_eviction_is_least_recently_used():
    cache = LRUKernelCache(2)
    cache.put("ka", 1)
    cache.put("kb", 2)
    assert cache.get("ka") == 1  # refresh ka; kb is now LRU
    evicted = cache.put("kc", 3)
    assert evicted == ("kb", 2)
    assert "ka" in cache and "kc" in cache and "kb" not in cache
    assert cache.stats().evictions == 1


def test_put_refreshes_existing_key_without_eviction():
    cache = LRUKernelCache(2)
    cache.put("ka", 1)
    cache.put("kb", 2)
    assert cache.put("ka", 10) is None  # refresh, not insert
    assert cache.put("kc", 3) == ("kb", 2)  # ka was refreshed to MRU
    assert cache.get("ka") == 10


def test_keys_iterate_lru_to_mru():
    cache = LRUKernelCache(3)
    for key in ("k1", "k2", "k3"):
        cache.put(key, key)
    cache.get("k1")
    assert list(cache.keys()) == ["k2", "k3", "k1"]


def test_invalidate_one_and_all():
    cache = LRUKernelCache(3)
    for key in ("k1", "k2", "k3"):
        cache.put(key, key)
    assert cache.invalidate("k2") == 1
    assert cache.invalidate("k2") == 0  # already gone
    assert cache.invalidate() == 2
    assert len(cache) == 0
    # invalidation is deliberate, not pressure
    assert cache.stats().evictions == 0


def test_stats_snapshot_is_immutable_and_descriptive():
    cache = LRUKernelCache(4)
    cache.put("ka", 1)
    cache.get("ka")
    stats = cache.stats()
    assert "1 hits" in stats.describe()
    with pytest.raises(AttributeError):
        stats.hits = 99
