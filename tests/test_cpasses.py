"""The composable C-renderer pass pipeline.

Covers the ``$REPRO_PASSES`` grammar, the cache-key signature, golden
C-source snapshots per pass (regenerate with ``REPRO_UPDATE_GOLDEN=1``),
per-pass bit-identity against the Python backend, pass-set cache keying,
and the satellite regressions that rode along with the pipeline: the
``NestWork`` renamed-view fallback, the OpenMP-strategy warn-once, and
kernel allocation failure surfacing as a recoverable status.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.codegen.backends import get_backend, render_c
from repro.codegen.backends.c import NestWork, default_omp_strategy
from repro.codegen.backends.cpasses import (
    DEFAULT_ON,
    PASS_ORDER,
    PIPELINE,
    PassConfig,
    active_pass_config,
    default_pass_config,
    describe_passes,
    parse_passes,
)
from repro.core import config as core_config
from repro.core.config import DEFAULT
from repro.kernels.library import get_kernel
from repro.obs import metrics as obs_metrics
from repro.service.keys import cache_key

HAVE_CC = get_backend("c").is_available()
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no working C toolchain")

GOLDEN_DIR = Path(__file__).parent / "golden" / "cpasses"


def _lowered(name):
    return get_kernel(name).compile().lowered


# ----------------------------------------------------------------------
# the $REPRO_PASSES grammar
# ----------------------------------------------------------------------
def test_default_set_is_the_bit_exact_never_regressing_passes():
    assert parse_passes("") == DEFAULT_ON == ("fuse", "simd")


def test_none_all_default_reset_the_working_set():
    assert parse_passes("none") == ()
    assert parse_passes("all") == PASS_ORDER
    assert parse_passes("none,default") == DEFAULT_ON
    # tokens apply left to right
    assert parse_passes("all,none") == ()
    assert parse_passes("none,tile") == ("tile",)


def test_plus_minus_bang_prefixes():
    assert parse_passes("+fission") == ("fission", "fuse", "simd")
    assert parse_passes("-fuse") == ("simd",)
    assert parse_passes("!simd,-fuse") == ()
    assert parse_passes("all,-denormals") == (
        "fission",
        "fuse",
        "tile",
        "simd",
    )


def test_result_is_always_in_pipeline_order():
    assert parse_passes("none,simd,tile,fission") == ("fission", "tile", "simd")


def test_unknown_tokens_warn_once_and_are_ignored():
    core_config._warned_values.discard(("REPRO_PASSES", "vectorize"))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert parse_passes("vectorize,tile,none,tile") == ("tile",)
        assert parse_passes("vectorize") == DEFAULT_ON
    ours = [w for w in caught if "REPRO_PASSES" in str(w.message)]
    assert len(ours) == 1
    assert "vectorize" in str(ours[0].message)


def test_env_config_reads_passes_and_tile(monkeypatch):
    monkeypatch.setenv("REPRO_PASSES", "none,tile")
    monkeypatch.setenv("REPRO_TILE", "64")
    config = default_pass_config()
    assert config.enabled == ("tile",)
    assert config.tile_rows == 64


def test_signature_is_canonical():
    assert PassConfig(enabled=()).signature() == "none"
    assert PassConfig(enabled=("simd", "fuse")).signature() == "fuse+simd"
    assert PassConfig(enabled=("tile",)).signature() == "tile@auto"
    assert PassConfig(enabled=("tile",), tile_rows=64).signature() == "tile@64"
    assert (
        PassConfig(enabled=PASS_ORDER, tile_rows=8).signature()
        == "denormals+fission+fuse+tile@8+simd"
    )


def test_pipeline_metadata_is_complete():
    assert tuple(p.name for p in PIPELINE) == PASS_ORDER
    for name, enabled, description in describe_passes(PassConfig(enabled=())):
        assert name in PASS_ORDER
        assert not enabled
        assert description  # every pass documents itself
    defaults = {p.name for p in PIPELINE if p.default_on}
    assert defaults == set(DEFAULT_ON)
    # default-on passes must all claim (and hold, per the differential
    # fuzzer below) bit-identity with the Python backend
    for p in PIPELINE:
        if p.default_on:
            assert p.bit_exact


def test_active_config_honors_env(monkeypatch):
    monkeypatch.setenv("REPRO_PASSES", "none")
    assert active_pass_config().signature() == "none"
    monkeypatch.setenv("REPRO_PASSES", "none,fuse")
    assert active_pass_config().signature() == "fuse"


# ----------------------------------------------------------------------
# golden C-source snapshots (one kernel per pass; on/off diffs)
#
# Rendering is machine-independent: an explicit PassConfig bypasses the
# toolchain FTZ gate, and the env knobs that change emission are cleared.
# Regenerate after an intentional renderer change with
#     REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_cpasses.py
# ----------------------------------------------------------------------
GOLDEN_CASES = {
    "ssymv_none": ("ssymv", PassConfig(enabled=())),
    "ssymv_denormals": ("ssymv", PassConfig(enabled=("denormals",))),
    "ssymv_fission": ("ssymv", PassConfig(enabled=("fission",))),
    "mttkrp3d_fuse": ("mttkrp3d", PassConfig(enabled=("fuse",))),
    "ssyrk_tile": ("ssyrk", PassConfig(enabled=("tile",))),
    "mttkrp3d_simd": ("mttkrp3d", PassConfig(enabled=("simd",))),
}


@pytest.fixture
def _clean_render_env(monkeypatch):
    for name in ("REPRO_OMP_STRATEGY", "REPRO_PROFILE", "REPRO_PASSES", "REPRO_TILE"):
        monkeypatch.delenv(name, raising=False)


@pytest.mark.parametrize("case", sorted(GOLDEN_CASES))
def test_golden_snapshot(case, _clean_render_env):
    kernel, config = GOLDEN_CASES[case]
    src = render_c(_lowered(kernel), label=kernel, passes=config)
    path = GOLDEN_DIR / ("%s.c" % case)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src)
    golden = path.read_text()
    assert src == golden, (
        "generated C for %s drifted from tests/golden/cpasses/%s.c — "
        "review the diff and regenerate with REPRO_UPDATE_GOLDEN=1" % (kernel, case)
    )


def test_each_pass_changes_only_its_marker(_clean_render_env):
    """The on/off diff of each pass shows its transformation and nothing
    else's (passes compose but do not leak into one another)."""
    ssymv = _lowered("ssymv")
    base = render_c(ssymv, passes=PassConfig(enabled=()))
    assert "#pragma omp simd" not in base
    assert "repro_ftz_on" not in base and "rp_tile" not in base

    ftz = render_c(ssymv, passes=PassConfig(enabled=("denormals",)))
    assert "repro_ftz_on" in ftz and "_mm_setcsr" in ftz
    assert "#pragma omp simd" not in ftz

    # fission splits the own-row accumulation out of the scatter nest:
    # one extra parallel region, two extra fiber walks, no scatter log in
    # the disjoint-writes half
    fis = render_c(ssymv, passes=PassConfig(enabled=("fission",)))
    assert fis.count("for (q0_1 = ") == base.count("for (q0_1 = ") + 2
    assert fis.count("#pragma omp parallel") == base.count("#pragma omp parallel") + 1

    mttkrp = _lowered("mttkrp3d")
    plain = render_c(mttkrp, passes=PassConfig(enabled=()))
    fused = render_c(mttkrp, passes=PassConfig(enabled=("fuse",)))
    assert fused.count("for (_v = 0") < plain.count("for (_v = 0")

    simd = render_c(mttkrp, passes=PassConfig(enabled=("simd",)))
    assert "#pragma omp simd" in simd and "#pragma omp simd" not in plain

    ssyrk = _lowered("ssyrk")
    tiled = render_c(ssyrk, passes=PassConfig(enabled=("tile",)))
    assert "rp_tile" in tiled and "rp_thi" in tiled
    assert "rp_tile" not in render_c(ssyrk, passes=PassConfig(enabled=()))


def test_explicit_tile_rows_are_emitted(_clean_render_env):
    src = render_c(
        _lowered("ssyrk"), passes=PassConfig(enabled=("tile",), tile_rows=32)
    )
    assert "int64_t rp_tile = 32;" in src
    auto = render_c(_lowered("ssyrk"), passes=PassConfig(enabled=("tile",)))
    assert "sizeof" in auto and "rp_tile" in auto


def test_rendering_under_passes_is_deterministic(_clean_render_env):
    lowered = _lowered("ssyrk")
    config = PassConfig(enabled=PASS_ORDER)
    assert render_c(lowered, passes=config) == render_c(lowered, passes=config)


# ----------------------------------------------------------------------
# pass-set cache keying
# ----------------------------------------------------------------------
def test_pass_set_keys_c_requests(monkeypatch):
    spec = get_kernel("ssymv")
    opts = DEFAULT.but(backend="c")
    kwargs = dict(symmetric={"A": True}, options=opts)
    monkeypatch.setenv("REPRO_PASSES", "none")
    none_key = cache_key(spec.einsum, **kwargs)
    monkeypatch.setenv("REPRO_PASSES", "none,tile")
    tile_key = cache_key(spec.einsum, **kwargs)
    assert none_key != tile_key
    monkeypatch.setenv("REPRO_TILE", "64")
    assert cache_key(spec.einsum, **kwargs) != tile_key
    monkeypatch.setenv("REPRO_PASSES", "none")
    monkeypatch.delenv("REPRO_TILE")
    assert cache_key(spec.einsum, **kwargs) == none_key


def test_pass_set_does_not_key_python_requests(monkeypatch):
    spec = get_kernel("ssymv")
    kwargs = dict(symmetric={"A": True}, options=DEFAULT.but(backend="python"))
    monkeypatch.setenv("REPRO_PASSES", "none")
    first = cache_key(spec.einsum, **kwargs)
    monkeypatch.setenv("REPRO_PASSES", "all")
    assert cache_key(spec.einsum, **kwargs) == first


# ----------------------------------------------------------------------
# per-pass bit-identity against the Python backend
# ----------------------------------------------------------------------
@needs_cc
@pytest.mark.parametrize(
    "passes", ["none", "denormals", "fission", "fuse", "tile", "simd", "all"]
)
@pytest.mark.parametrize("name", ["ssymv", "ssyrk"])
def test_pass_output_bit_identical_to_python(name, passes, monkeypatch):
    monkeypatch.setenv("REPRO_PASSES", "none,%s" % passes)
    spec = get_kernel(name)
    rng = np.random.default_rng(7)
    n = 24
    A = np.zeros((n, n))
    mask = rng.random((n, n)) < 0.3
    A[mask] = rng.standard_normal(mask.sum())
    A = A + A.T
    inputs = {"A": A}
    if name == "ssymv":
        inputs["x"] = rng.standard_normal(n)
    else:
        inputs["B"] = rng.standard_normal((n, 8))

    ref_kernel = spec.compile(options=DEFAULT.but(backend="python"))
    prepared, shape = ref_kernel.prepare(**inputs)
    ref = ref_kernel.finalize(ref_kernel.run(prepared, shape))

    c_kernel = spec.compile(options=DEFAULT.but(backend="c"))
    prepared, shape = c_kernel.prepare(**inputs)
    serial = c_kernel.finalize(c_kernel.run(prepared, shape, threads=1))
    assert np.asarray(serial).tobytes() == np.asarray(ref).tobytes()
    threaded = c_kernel.finalize(c_kernel.run(prepared, shape, threads=3))
    assert np.asarray(threaded).tobytes() == np.asarray(ref).tobytes()


# ----------------------------------------------------------------------
# satellite regressions
# ----------------------------------------------------------------------
def test_nestwork_renamed_view_falls_back_to_dims():
    """A work term whose recorded names don't resolve (renamed views)
    must estimate from the extents instead of silently returning 0 —
    which made ``threads="auto"`` serve such calls serially forever."""
    work = NestWork(
        idx_arrays=("A__strict_idx1",),
        extent=None,
        vector=False,
        dims=("n_i", "n_j"),
    )
    # the caller renamed the view: none of the recorded arrays resolve
    arrays = {"B__strict_idx1": np.arange(10), "n_i": 100, "n_j": 50}
    obs_metrics.registry().reset()
    was_enabled = obs_metrics.enabled()
    obs_metrics.enable()
    try:
        assert work.resolve(arrays, None) == pytest.approx(5000.0)
    finally:
        if not was_enabled:
            obs_metrics.disable()
    assert obs_metrics.to_dict()["counters"].get("costmodel.unresolved") == 1
    # names that do resolve never touch the fallback
    assert work.resolve({"A__strict_idx1": np.arange(10)}, None) == 10.0
    # nothing recorded at all (fully dense serial nest) stays quiet
    silent = NestWork(idx_arrays=(), extent=None, vector=False, dims=("n_i",))
    obs_metrics.registry().reset()
    silent.resolve({}, None)
    assert "costmodel.unresolved" not in obs_metrics.to_dict()["counters"]


def test_omp_strategy_warns_once_per_value(monkeypatch):
    monkeypatch.setenv("REPRO_OMP_STRATEGY", "bogus-strategy")
    core_config._warned_values.discard(("REPRO_OMP_STRATEGY", "bogus-strategy"))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert default_omp_strategy() == "auto"
        assert default_omp_strategy() == "auto"
    ours = [w for w in caught if "REPRO_OMP_STRATEGY" in str(w.message)]
    assert len(ours) == 1


@needs_cc
def test_kernel_status_abi_reports_clean_zero():
    """Every generated kernel now returns an allocation status; the happy
    path must come back 0 through the ctypes boundary."""
    spec = get_kernel("ssymv")
    kernel = spec.compile(options=DEFAULT.but(backend="c"))
    assert "int64_t kernel(" in kernel.backend_source
    assert "return rp_status;" in kernel.backend_source
    A = np.array([[2.0, 1.0], [1.0, 3.0]])
    out = kernel(A=A, x=np.array([1.0, 2.0]))
    assert np.allclose(out, A @ np.array([1.0, 2.0]))
