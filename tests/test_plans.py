"""Execution plans (the repeat-execution fast path) and the auto-thread
cost model.

The contracts under test:

* ``plan()`` repeat calls are **bitwise identical** to a fresh
  ``prepare`` + ``run`` on every backend, dtype and thread count;
* plans snapshot their argument set — replacing an input's payload does
  not silently flow in, and :meth:`ExecutionPlan.matches` detects it;
* ``threads="auto"`` resolves through the work-estimate cost model (tiny
  problems stay serial, big ones take the cores), while an explicit
  thread count always wins untouched.
"""

import numpy as np
import pytest

from repro.codegen.backends import get_backend
from repro.codegen.executor import ExecutionPlan, plan_identity
from repro.core.compiler import compile_kernel
from repro.core.config import (
    DEFAULT,
    PARALLEL_WORK_THRESHOLD,
    auto_thread_count,
    parallel_work_threshold,
)
from repro.kernels.library import get_kernel
from tests.conftest import make_symmetric_matrix

HAVE_CC = get_backend("c").is_available()

BACKENDS = ("python", "c") if HAVE_CC else ("python",)

needs_cc = pytest.mark.skipif(HAVE_CC is False, reason="no working C toolchain")


def _ssymv(backend, dtype="float64", threads=None):
    options = DEFAULT.but(backend=backend, dtype=dtype)
    if threads is not None:
        options = options.but(threads=threads)
    return get_kernel("ssymv").compile(options=options)


# ----------------------------------------------------------------------
# bitwise equivalence with the run path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", ("float64", "float32"))
@pytest.mark.parametrize("backend", BACKENDS)
def test_plan_repeat_calls_match_fresh_runs(rng, backend, dtype):
    kernel = _ssymv(backend, dtype)
    A = make_symmetric_matrix(rng, 20, 0.4)
    x = rng.random(20)
    prepared, shape = kernel.prepare(A=A, x=x)
    expected = kernel.finalize(kernel.run(prepared, shape))

    plan = kernel.execution_plan(A=A, x=x)
    for _ in range(3):
        out = kernel.finalize(plan())
        assert out.dtype == np.dtype(dtype)
        assert np.array_equal(out, expected)


@needs_cc
def test_plan_threaded_calls_bit_identical(rng):
    kernel = _ssymv("c")
    A = make_symmetric_matrix(rng, 30, 0.5)
    x = rng.random(30)
    prepared, shape = kernel.prepare(A=A, x=x)
    expected = kernel.finalize(kernel.run(prepared, shape, threads=1))
    plan = kernel.execution_plan(A=A, x=x)
    for threads in (1, 3, 1, 3):
        assert np.array_equal(kernel.finalize(plan(threads=threads)), expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bound_kernel_plan_entry_point(rng, backend):
    """The BoundKernel-level API: plan(tensors, output_shape)."""
    kernel = _ssymv(backend)
    A = make_symmetric_matrix(rng, 12, 0.5)
    x = rng.random(12)
    prepared, shape = kernel.prepare(A=A, x=x)
    expected = kernel.finalize(kernel.run(prepared, shape))
    plan = kernel.bound.plan({"A": A, "x": x}, shape)
    assert isinstance(plan, ExecutionPlan)
    assert np.array_equal(kernel.finalize(plan()), expected)
    assert np.array_equal(plan.finalized(), expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_plan_reuses_one_output_buffer(rng, backend):
    kernel = _ssymv(backend)
    A = make_symmetric_matrix(rng, 10, 0.6)
    x = rng.random(10)
    plan = kernel.execution_plan(A=A, x=x)
    first = plan()
    second = plan()
    assert first is second  # same buffer, refilled per call
    assert first is plan.out


@pytest.mark.parametrize("backend", BACKENDS)
def test_plan_with_caller_owned_output(rng, backend):
    kernel = _ssymv(backend)
    A = make_symmetric_matrix(rng, 10, 0.6)
    x = rng.random(10)
    prepared, shape = kernel.prepare(A=A, x=x)
    expected = kernel.finalize(kernel.run(prepared, shape))

    buf = np.empty(10, dtype=np.float64)
    plan = kernel.execution_plan(out=buf, A=A, x=x)
    out = plan()
    assert out is buf
    assert np.array_equal(kernel.finalize(out), expected)

    with pytest.raises(ValueError, match="shape"):
        kernel.execution_plan(out=np.empty(11), A=A, x=x)
    with pytest.raises(ValueError, match="dtype|computes"):
        kernel.execution_plan(out=np.empty(10, dtype=np.float32), A=A, x=x)
    noncontig = np.empty((10, 2))[:, 0]
    with pytest.raises(ValueError, match="contiguous"):
        kernel.execution_plan(out=noncontig, A=A, x=x)


def test_plan_rejects_reserved_threads_argument():
    kernel = compile_kernel("y[i] += A[i, j] * x[j]", symmetric={"A": True})
    with pytest.raises(ValueError, match="reserved"):
        kernel.bound.plan_prepared({"threads": 2}, (3,))


# ----------------------------------------------------------------------
# staleness / invalidation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_plan_detects_replaced_payload(rng, backend):
    """Replacing an input tensor's payload must not silently replay the
    stale binding: matches() flips, and a rebuilt plan sees the data."""
    kernel = _ssymv(backend)
    A = make_symmetric_matrix(rng, 12, 0.5)
    x = rng.random(12)
    plan = kernel.execution_plan(A=A, x=x)
    stale = kernel.finalize(plan()).copy()
    assert plan.matches({"A": A, "x": x})

    x2 = rng.random(12)  # the payload is replaced with a new object
    assert not plan.matches({"A": A, "x": x2})
    fresh = kernel.execution_plan(A=A, x=x2)
    new_out = kernel.finalize(fresh())
    assert not np.array_equal(new_out, stale)
    prepared, shape = kernel.prepare(A=A, x=x2)
    assert np.array_equal(new_out, kernel.finalize(kernel.run(prepared, shape)))


def test_plan_identity_distinguishes_recast_tensors(rng):
    """dtype and shape ride in the identity, so a recast twin that lands
    on a recycled id can never alias a cached plan."""
    x = rng.random(8)
    ident = plan_identity({"x": x})
    assert ident != plan_identity({"x": x.astype(np.float32)})
    assert ident != plan_identity({"x": x.reshape(2, 4)})
    assert ident == plan_identity({"x": x})


def test_plan_pins_its_source_objects(rng):
    """The plan holds strong references to the original arguments, so a
    same-dtype/same-shape replacement can never land on a recycled id()
    and falsely satisfy matches()."""
    import gc
    import weakref

    kernel = _ssymv("python")
    A = make_symmetric_matrix(rng, 8, 0.5)
    x = rng.random(8)
    plan = kernel.execution_plan(A=A, x=x)
    ref = weakref.ref(x)
    del x
    gc.collect()
    assert ref() is not None  # alive: the plan pinned it
    del plan
    gc.collect()
    assert ref() is None  # released with the plan


def test_plan_matches_is_conservative_without_identity(rng):
    kernel = _ssymv("python")
    A = make_symmetric_matrix(rng, 8, 0.5)
    x = rng.random(8)
    prepared, shape = kernel.prepare(A=A, x=x)
    plan = kernel.bound.plan_prepared(prepared, shape)  # no identity given
    assert not plan.matches({"A": A, "x": x})


# ----------------------------------------------------------------------
# the auto-thread cost model
# ----------------------------------------------------------------------
def test_auto_thread_count_scales_with_work():
    assert auto_thread_count(0, cpu=8) == 1
    assert auto_thread_count(PARALLEL_WORK_THRESHOLD // 3, cpu=8) == 1
    assert auto_thread_count(2 * PARALLEL_WORK_THRESHOLD, cpu=8) == 2
    assert auto_thread_count(10**12, cpu=8) == 8  # capped at the machine
    assert auto_thread_count(10**12, cpu=1) == 1
    assert auto_thread_count(None, cpu=8) == 8  # no estimate: old behaviour


def test_auto_thread_count_rounds_to_nearest():
    """1.9x the threshold is closer to two threads' worth of work than
    one — flooring used to serialize it (and every work size just shy of
    a multiple), systematically under-threading near the boundaries."""
    t = PARALLEL_WORK_THRESHOLD
    assert auto_thread_count(int(1.9 * t), cpu=8) == 2
    assert auto_thread_count(int(1.4 * t), cpu=8) == 1
    assert auto_thread_count(int(2.6 * t), cpu=8) == 3
    # the clamp floor survives rounding: work below half a threshold
    # rounds to zero threads, which still resolves to one
    assert auto_thread_count(t // 4, cpu=8) == 1


def test_parallel_threshold_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "100")
    assert parallel_work_threshold() == 100
    assert auto_thread_count(250, cpu=8) == 3  # round(250/100)
    assert auto_thread_count(240, cpu=8) == 2
    monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "zero")
    with pytest.warns(RuntimeWarning):
        assert parallel_work_threshold() == PARALLEL_WORK_THRESHOLD
    monkeypatch.delenv("REPRO_PARALLEL_THRESHOLD")
    assert parallel_work_threshold() == PARALLEL_WORK_THRESHOLD


@needs_cc
def test_auto_resolves_serial_for_tiny_nnz(rng, monkeypatch):
    """Tiny problems stay serial even on a many-core machine."""
    monkeypatch.setattr("repro.core.config._cpu_count_cache", 8)
    kernel = _ssymv("c")
    A = make_symmetric_matrix(rng, 16, 0.4)
    x = rng.random(16)
    prepared, _ = kernel.prepare(A=A, x=x)
    assert kernel.bound.resolve_run_threads("auto", prepared) == 1
    plan = kernel.execution_plan(threads="auto", A=A, x=x)
    assert plan.threads == 1


@needs_cc
def test_auto_resolves_to_cpus_for_large_nnz(rng, monkeypatch):
    """Past the per-thread work threshold, auto takes the visible cores
    (the estimate is cheap to fake: shrink the threshold instead of
    building a genuinely huge matrix)."""
    monkeypatch.setattr("repro.core.config._cpu_count_cache", 4)
    monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "10")
    kernel = _ssymv("c")
    A = make_symmetric_matrix(rng, 30, 0.5)
    x = rng.random(30)
    prepared, _ = kernel.prepare(A=A, x=x)
    work = kernel.bound.executable.parallel_work(prepared)
    assert work is not None and work > 40
    assert kernel.bound.resolve_run_threads("auto", prepared) == 4
    plan = kernel.execution_plan(threads="auto", A=A, x=x)
    assert plan.threads == 4
    # the cap (batch fan-out's share of the machine) bounds the result
    assert kernel.bound.resolve_run_threads("auto", prepared, cap=2) == 2


def test_explicit_threads_always_win(rng, monkeypatch):
    """REPRO_THREADS=<int> (or threads=<int>) bypasses the cost model."""
    monkeypatch.setattr("repro.core.config._cpu_count_cache", 8)
    kernel = _ssymv("python")
    A = make_symmetric_matrix(rng, 6, 0.5)
    x = rng.random(6)
    prepared, _ = kernel.prepare(A=A, x=x)
    # tiny work, yet the explicit setting is honoured verbatim
    assert kernel.bound.resolve_run_threads(3, prepared) == 3
    assert kernel.bound.resolve_run_threads(3, prepared, cap=2) == 2
    monkeypatch.setenv("REPRO_THREADS", "5")
    from repro.core.config import default_threads

    assert default_threads() == 5  # flows into CompilerOptions.threads


def test_python_backend_auto_resolves_serial(rng, monkeypatch):
    """No parallel bodies -> a team could never help -> serial."""
    monkeypatch.setattr("repro.core.config._cpu_count_cache", 8)
    kernel = _ssymv("python")
    A = make_symmetric_matrix(rng, 16, 0.4)
    x = rng.random(16)
    prepared, _ = kernel.prepare(A=A, x=x)
    assert kernel.bound.executable.parallel_work(prepared) is None
    assert kernel.bound.resolve_run_threads("auto", prepared) == 1


@needs_cc
def test_work_estimate_tracks_nnz(rng):
    """The render-time work model resolves to nnz-proportional numbers."""
    kernel = _ssymv("c")
    small = make_symmetric_matrix(rng, 20, 0.2)
    big = make_symmetric_matrix(rng, 60, 0.6)
    x_small, x_big = rng.random(20), rng.random(60)
    prepared_small, _ = kernel.prepare(A=small, x=x_small)
    prepared_big, _ = kernel.prepare(A=big, x=x_big)
    w_small = kernel.bound.executable.parallel_work(prepared_small)
    w_big = kernel.bound.executable.parallel_work(prepared_big)
    assert w_small is not None and w_big is not None
    assert w_big > w_small


@needs_cc
def test_serial_omp_strategy_has_no_work_model(rng):
    """REPRO_OMP_STRATEGY=serial emits no parallel bodies, so auto
    resolves serial rather than spinning up a useless team."""
    from repro.codegen.backends.c import render_c_ex

    kernel = _ssymv("c")
    source, model = render_c_ex(kernel.lowered, parallel="serial")
    assert model == ()
    assert "#pragma omp" not in source
