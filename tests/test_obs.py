"""The observability layer: spans, metrics, profiling, and their CLI.

Every test that needs tracing installs a *fresh* recorder via
``obs.tracing()`` (restoring whatever was active before), and every test
about the disabled state saves and restores the process-wide switches —
so this file stays correct both in a clean tier-1 run and under the CI
observability leg that exports ``REPRO_TRACE=1 REPRO_METRICS=1`` (or
``REPRO_PROFILE=1``) for the whole process.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.codegen.backends import get_backend
from repro.core.config import DEFAULT
from repro.kernels.library import get_kernel
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import Histogram
from repro.service.engine import KernelService
from repro.service.keys import canonicalize

EINSUM = "y[i] += A[i, j] * x[j]"


def _sym(n=8, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.random((n, n))
    return np.triu(A) + np.triu(A, 1).T


@pytest.fixture
def metrics_on():
    """Metrics collection on for the test, restored afterwards."""
    previous = obs_metrics.enabled()
    obs_metrics.enable()
    yield obs_metrics.registry()
    if not previous:
        obs_metrics.disable()


def _counter(name: str) -> int:
    return obs_metrics.to_dict()["counters"].get(name, 0)


# ----------------------------------------------------------------------
# spans across the full compile -> cache-hit -> plan -> execute cycle
# ----------------------------------------------------------------------
def test_span_nesting_and_ordering_full_cycle():
    service = KernelService(capacity=8)
    A, x = _sym(), np.linspace(0.0, 1.0, 8)
    with obs.tracing() as rec:
        kernel = service.get_or_compile(EINSUM, symmetric={"A": True})
        again = service.get_or_compile(EINSUM, symmetric={"A": True})
        plan = kernel.execution_plan(A=A, x=x)
        plan()
        plan()
    assert again is kernel
    events = rec.snapshot()
    names = [e.name for e in events]

    # the cold path walks canonicalize -> lookup -> compile -> pipeline
    for expected in (
        "service:canonicalize",
        "service:lookup",
        "service:compile",
        "compile",
        "symmetrize",
        "pass:output_canonical",
        "lower",
        "backend:compile",
        "prepare",
        "plan:bind",
    ):
        assert expected in names, expected
    assert names.count("plan:execute") == 2
    assert names.count("service:lookup") == 2

    # completion order tracks execution order for pipeline siblings
    assert names.index("symmetrize") < names.index("pass:output_canonical")
    assert names.index("pass:output_canonical") < names.index("lower")
    assert names.index("lower") < names.index("backend:compile")

    # nesting depths: the pipeline sits inside compile, which sits
    # inside the service's compile span, inside the lookup
    by_name = {e.name: e for e in events}
    assert by_name["compile"].depth == by_name["service:compile"].depth + 1
    assert by_name["symmetrize"].depth == by_name["compile"].depth + 1
    assert by_name["lower"].depth == by_name["compile"].depth + 1
    assert by_name["service:compile"].depth == by_name["service:lookup"].depth + 1

    # the lookup spans record where each answer came from
    origins = [e.args.get("origin") for e in events if e.name == "service:lookup"]
    assert origins == ["compiled", "memory"]

    # plan spans carry the resolved thread count
    bind = by_name["plan:bind"]
    assert bind.args.get("threads") == plan.threads
    for e in events:
        if e.name == "plan:execute":
            assert e.args.get("threads") == plan.threads
        assert e.t1 >= e.t0


def test_tracing_scope_restores_previous_recorder():
    before = obs_trace.current()
    with obs.tracing() as rec:
        assert obs_trace.current() is rec
        with obs.tracing() as inner:
            assert obs_trace.current() is inner
        assert obs_trace.current() is rec
    assert obs_trace.current() is before


def test_recorder_caps_events_and_counts_drops():
    with obs.tracing(max_events=3) as rec:
        for n in range(5):
            with obs.span("s%d" % n):
                pass
    assert len(rec) == 3
    assert rec.dropped == 2
    assert "dropped" in obs.format_tree(rec)


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
def test_chrome_trace_json_roundtrip(tmp_path):
    with obs.tracing() as rec:
        with obs.span("outer", label="x") as sp:
            sp.add(outcome="done")
            with obs.span("inner", n=3):
                pass
    doc = obs.chrome_trace(rec)
    meta, *spans = doc["traceEvents"]
    assert meta["ph"] == "M" and meta["args"]["name"] == "repro"
    assert [e["name"] for e in spans] == ["outer", "inner"]  # sorted by t0
    outer, inner = spans
    assert outer["ph"] == inner["ph"] == "X"
    assert outer["args"] == {"label": "x", "outcome": "done"}
    assert inner["args"] == {"n": 3}
    # the child lies within the parent on the timeline
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    path = tmp_path / "trace.json"
    assert obs.write_chrome_trace(str(path), rec) == 2
    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded == doc  # value-faithful through JSON


def test_chrome_trace_without_recorder_raises():
    previous = obs_trace.disable()
    try:
        with pytest.raises(RuntimeError):
            obs.chrome_trace(None)
    finally:
        obs_trace.set_recorder(previous)


# ----------------------------------------------------------------------
# metrics: bucket math and the stats merge
# ----------------------------------------------------------------------
def test_histogram_bucket_math():
    hist = Histogram(bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 3.0, 100.0):
        hist.observe(value)
    doc = hist.to_dict()
    # bounds are inclusive: 1.0 lands in the le=1.0 bucket
    assert [b["count"] for b in doc["buckets"]] == [2, 0, 1, 1]
    assert [b["le"] for b in doc["buckets"]] == [1.0, 2.0, 4.0, "+Inf"]
    assert doc["count"] == 4
    assert doc["sum"] == pytest.approx(104.5)
    assert doc["min"] == 0.5 and doc["max"] == 100.0
    assert doc["mean"] == pytest.approx(104.5 / 4)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=())
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))


def test_service_counters_and_stats_merge(metrics_on):
    requests0 = _counter("service.requests")
    compiled0 = _counter("service.origin.compiled")
    memory0 = _counter("service.origin.memory")
    service = KernelService(capacity=8)
    service.get_or_compile(EINSUM, symmetric={"A": True})
    service.get_or_compile(EINSUM, symmetric={"A": True})
    assert _counter("service.requests") - requests0 == 2
    assert _counter("service.origin.compiled") - compiled0 == 1
    assert _counter("service.origin.memory") - memory0 == 1
    hist = obs_metrics.to_dict()["histograms"]["service.compile_seconds"]
    assert hist["count"] >= 1

    doc = service.stats().to_dict()
    assert doc["memory"]["hits"] == 1
    assert doc["memory"]["misses"] == 1
    assert doc["memory"]["hit_rate"] == pytest.approx(0.5)
    assert doc["compiles"] == 1
    assert doc["metrics"]["counters"]["service.requests"] >= 2


def test_plan_dispatch_histogram(metrics_on):
    kernel = get_kernel("ssymv").compile()
    A, x = _sym(16, seed=1), np.linspace(0.0, 1.0, 16)
    plan = kernel.execution_plan(A=A, x=x)  # built with metrics on
    count0 = obs_metrics.to_dict()["histograms"].get(
        "plan.dispatch_seconds", {"count": 0}
    )["count"]
    plan()
    plan()
    hist = obs_metrics.to_dict()["histograms"]["plan.dispatch_seconds"]
    assert hist["count"] - count0 == 2
    assert sum(b["count"] for b in hist["buckets"]) == hist["count"]


def test_stats_hit_rates_division_safe():
    stats = KernelService(capacity=2).stats()
    assert stats.hit_rate == 0.0
    assert stats.disk_hit_rate == 0.0
    doc = stats.to_dict()
    assert doc["memory"]["hit_rate"] == 0.0
    assert doc["disk"]["hit_rate"] == 0.0


# ----------------------------------------------------------------------
# everything is a no-op while disabled
# ----------------------------------------------------------------------
def test_noop_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    previous_rec = obs_trace.disable()
    previous_metrics = obs_metrics.disable()
    try:
        assert obs.state() == "off"
        # one shared null span, whatever the name or args
        null = obs_trace.span("a")
        assert obs_trace.span("b", key="value") is null
        with null as sp:
            sp.add(anything=1)  # swallowed
        assert not obs_trace.enabled()

        # a full instrumented cycle records nothing and still works
        kernel = get_kernel("ssymv").compile()
        A, x = _sym(16, seed=2), np.linspace(0.0, 1.0, 16)
        plan = kernel.execution_plan(A=A, x=x)
        assert plan._observed is False
        out = plan().copy()
        assert np.allclose(kernel.finalize(out), kernel(A=A, x=x))
        assert obs_trace.current() is None

        counters0 = obs_metrics.to_dict()["counters"]
        obs_metrics.inc("should.not.appear")
        obs_metrics.observe("should.not.appear.s", 1.0)
        assert obs_metrics.to_dict()["counters"] == counters0
    finally:
        obs_trace.set_recorder(previous_rec)
        if previous_metrics:
            obs_metrics.enable()


def test_plans_sample_observability_at_build_time():
    kernel = get_kernel("ssymv").compile()
    A, x = _sym(16, seed=3), np.linspace(0.0, 1.0, 16)
    with obs.tracing() as rec:
        observed_plan = kernel.execution_plan(A=A, x=x)
        assert observed_plan._observed is True
    # a plan built while observability was off stays on the bare path
    # even if someone else's recorder appears later
    previous = obs_trace.disable()
    previous_metrics = obs_metrics.disable()
    try:
        bare_plan = kernel.execution_plan(A=A, x=x)
    finally:
        obs_trace.set_recorder(previous)
        if previous_metrics:
            obs_metrics.enable()
    assert bare_plan._observed is False
    with obs.tracing() as rec:
        bare_plan()
        assert len(rec) == 0
        observed_plan()
        assert "plan:execute" in [e.name for e in rec.snapshot()]


# ----------------------------------------------------------------------
# kernel profiling: key separation and the per-nest report
# ----------------------------------------------------------------------
def test_profiled_key_never_aliases_production(monkeypatch):
    options = DEFAULT.but(backend="c")
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    off = canonicalize(EINSUM, {"A": True}, options=options)
    monkeypatch.setenv("REPRO_PROFILE", "1")
    on = canonicalize(EINSUM, {"A": True}, options=options)
    assert off.key != on.key
    assert "profile=off" in off.key_material()
    assert "profile=on" in on.key_material()

    # other backends emit no instrumentation: profiling cannot change
    # their build, so it must not fragment their key space either
    py_options = DEFAULT.but(backend="python")
    py_on = canonicalize(EINSUM, {"A": True}, options=py_options)
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    py_off = canonicalize(EINSUM, {"A": True}, options=py_options)
    assert py_on.key == py_off.key
    assert "profile=-" in py_off.key_material()


def test_profile_kernel_reports_per_nest(monkeypatch):
    if not get_backend("c").is_available():
        pytest.skip("no working C toolchain")
    monkeypatch.setenv("REPRO_PROFILE", "1")
    spec = get_kernel("ssymv")
    kernel = spec.compile(options=DEFAULT.but(backend="c"))
    executable = kernel.bound.executable
    assert executable.profiled
    assert "repro_profile_read" in executable.source

    A, x = _sym(32, seed=4), np.linspace(0.0, 1.0, 32)
    reports = obs.profile_kernel(kernel, {"A": A, "x": x}, repeats=4)
    assert len(reports) == len(executable.profile_model) >= 1
    assert sum(r.share for r in reports) == pytest.approx(1.0)
    for report in reports:
        assert report.seconds >= 0.0
        assert report.per_call == pytest.approx(report.seconds / 4)
    text = obs.profile.format_report(reports)
    assert "nest 0" in text

    # the instrumented build still computes the right answer
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    reference = spec.compile()  # python backend
    assert np.allclose(kernel(A=A, x=x), reference(A=A, x=x))


def test_unprofiled_builds_refuse_profiling():
    kernel = get_kernel("ssymv").compile()  # python backend: never profiled
    assert kernel.bound.executable.nest_profile() is None
    with pytest.raises(RuntimeError, match="not profiled"):
        obs.profile_kernel(kernel, {"A": _sym(), "x": np.ones(8)})


# ----------------------------------------------------------------------
# trajectory entries record their observability state
# ----------------------------------------------------------------------
def test_trajectory_entries_stamped_with_obs_state(tmp_path):
    from repro.bench.harness import load_trajectory, record

    path = str(tmp_path / "traj.json")
    doc = record(path, {"k/one@t1": {"seconds": 1.0}})
    assert doc["entries"]["k/one@t1"]["obs"] == obs.state()

    # entries that predate the axis default to "off" on the next merge
    doc["entries"]["k/old@t1"] = {"seconds": 2.0, "dtype": "float64"}
    del doc["entries"]["k/old@t1"]  # simulate via direct file edit instead
    raw = load_trajectory(path)
    raw["entries"]["k/old@t1"] = {"seconds": 2.0, "dtype": "float64"}
    with open(path, "w") as handle:
        json.dump(raw, handle)
    merged = record(path, {})
    assert merged["entries"]["k/old@t1"]["obs"] == "off"


# ----------------------------------------------------------------------
# CLI: repro trace / stats / cache --json / compile --trace
# ----------------------------------------------------------------------
def test_cli_trace_covers_cold_warm_and_execution(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "trace.json"
    rc = main(
        ["trace", "ssymv", "--size", "8", "--calls", "2",
         "--out", str(out), "--tree"]
    )
    assert rc == 0
    with open(out) as handle:
        doc = json.load(handle)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in spans}
    # compile passes, service cache lookups, plan execution — all there
    assert "compile" in names
    assert any(name.startswith("pass:") for name in names)
    assert "service:lookup" in names
    assert "plan:bind" in names and "plan:execute" in names
    origins = {
        e["args"]["origin"] for e in spans if e["name"] == "service:lookup"
    }
    assert {"compiled", "memory"} <= origins  # cold then warm
    assert sum(1 for e in spans if e["name"] == "plan:execute") == 2
    text = capsys.readouterr().out
    assert str(out) in text
    assert "service:lookup" in text  # the --tree dump


def test_cli_stats_json(tmp_path, capsys):
    from repro.cli import main

    rc = main(["stats", "--dir", str(tmp_path / "cache"), "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["compiles"] == 0
    assert doc["memory"]["hit_rate"] == 0.0
    assert doc["disk"]["entries"] == 0


def test_cli_cache_json(tmp_path, capsys):
    from repro.cli import main

    cache_dir = tmp_path / "cache"
    service = KernelService(capacity=4, store=cache_dir)
    service.get_or_compile(EINSUM, symmetric={"A": True})
    rc = main(["cache", "--dir", str(cache_dir), "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["count"] == 1
    (entry,) = doc["entries"]
    assert set(entry) >= {"key", "einsum", "options", "naive", "size_bytes"}
    assert entry["einsum"].startswith("y[i]")


def test_cli_compile_trace_prints_tree(capsys):
    from repro.cli import main

    rc = main(["compile", EINSUM, "--symmetric", "A", "--trace"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "=== trace ===" in text
    assert "compile" in text and "lower" in text
    assert text.index("=== trace ===") < text.index("=== options ===")


def test_cli_help_documents_env_vars(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    text = capsys.readouterr().out
    for var in ("REPRO_BACKEND", "REPRO_THREADS", "REPRO_TRACE",
                "REPRO_METRICS", "REPRO_PROFILE"):
        assert var in text, var
