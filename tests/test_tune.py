"""The persistent autotuner: search, database, oracle, and wiring."""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro import tune
from repro.bench.harness import TimingStats, fingerprint_class
from repro.codegen.backends import get_backend
from repro.tune import db as tune_db
from repro.tune.oracle import TuningOracle, load_oracle
from repro.tune.search import (
    BASELINE,
    Variant,
    VariantRejected,
    parse_budget,
    successive_halving,
    variant_space,
)

from conftest import make_symmetric_matrix

HAVE_CC = get_backend("c").is_available()
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no working C toolchain")


@pytest.fixture(autouse=True)
def _fresh_oracle():
    """Every test starts and ends with no cached oracle."""
    tune.reset()
    yield
    tune.reset()


# ----------------------------------------------------------------------
# the search: deterministic convergence on a synthetic timing stub
# ----------------------------------------------------------------------
class FakeClock:
    """A monotonic clock whose time only moves when evaluations charge it."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _fake_evaluator(clock, costs, cost_per_eval=1.0, noise=None):
    """evaluate(variant, repeats) stub: advances the fake clock and
    returns deterministic timings from a cost table (no real sleeps)."""
    calls = []

    def evaluate(variant, repeats):
        calls.append((variant, repeats))
        clock.now += cost_per_eval
        base = costs[variant.compile_axes()] / variant.threads
        wobble = noise(variant, repeats) if noise else 0.0
        return TimingStats(
            best=base + wobble, median=base + wobble, runs=repeats
        )

    evaluate.calls = calls
    return evaluate


def _grid():
    """A small deterministic space: baseline, a slow variant, a fast one."""
    return [
        BASELINE,
        Variant(passes="none"),
        Variant(passes="default,+tile", tile_rows=64),
    ]


def _costs(fast=("default,+tile", 64, "auto")):
    costs = {
        BASELINE.compile_axes(): 1.0,
        ("none", 0, "auto"): 1.5,
        ("default,+tile", 64, "auto"): 1.0,
    }
    costs[fast] = 0.4
    return costs


def test_search_converges_on_the_fastest_variant():
    clock = FakeClock()
    evaluate = _fake_evaluator(clock, _costs())
    result = successive_halving(_grid(), evaluate, budget_s=100.0, clock=clock)
    assert result.best == Variant(passes="default,+tile", tile_rows=64)
    assert result.best_stats.best == pytest.approx(0.4)
    assert result.baseline_stats.best == pytest.approx(1.0)
    assert result.speedup == pytest.approx(2.5)
    assert result.rungs >= 2  # the halving actually ran
    # later rungs double the repeats of the survivors
    assert max(r for _, r in evaluate.calls) > min(r for _, r in evaluate.calls)


def test_search_respects_the_budget():
    clock = FakeClock()
    evaluate = _fake_evaluator(clock, _costs(), cost_per_eval=1.0)
    # budget admits the baseline plus one more rung-0 measurement
    result = successive_halving(_grid(), evaluate, budget_s=2.0, clock=clock)
    assert result.evaluations == 2
    assert result.skipped == 1  # the unvisited tail is reported, not hidden
    assert result.baseline_stats is not None  # the reference always runs


def test_search_drops_rejected_variants_permanently():
    clock = FakeClock()
    poisoned = Variant(passes="default,+tile", tile_rows=64)
    inner = _fake_evaluator(clock, _costs())

    def evaluate(variant, repeats):
        if variant == poisoned:
            clock.now += 1.0
            raise VariantRejected("output not bit-identical")
        return inner(variant, repeats)

    result = successive_halving(_grid(), evaluate, budget_s=100.0, clock=clock)
    assert poisoned in result.rejected
    assert "bit-identical" in result.rejected[poisoned]
    assert result.best != poisoned  # the fastest-on-paper variant lost
    assert result.best == BASELINE  # next-fastest surviving variant wins


def test_final_duel_demotes_a_winner_that_does_not_replicate():
    """A contender whose rung-time advantage was measurement drift (fast
    early samples that later re-measurements cannot reproduce) must lose
    the final interleaved duel — only the duel's own minimums decide, so
    the stale fast sample cannot save it."""
    clock = FakeClock()
    tile = Variant(passes="default,+tile", tile_rows=64)
    calls = []

    def evaluate(variant, repeats):
        calls.append(variant)
        clock.now += 1.0
        if variant == tile:
            # flattered early, true cost (same as baseline) thereafter
            t = 0.5 if len(calls) <= 4 else 1.0
        elif variant.passes == "none":
            t = 1.5
        else:
            t = 1.0
        return TimingStats(best=t, median=t, runs=repeats)

    result = successive_halving(_grid(), evaluate, budget_s=100.0, clock=clock)
    assert result.best == BASELINE
    assert result.best_stats.best == pytest.approx(1.0)
    assert result.speedup == pytest.approx(1.0)
    # the duel actually ran, interleaved: its evaluations alternate sides
    duel_calls = calls[-4:]
    assert tile in duel_calls and BASELINE in duel_calls


def test_final_duel_requires_a_real_margin():
    """A sub-2% duel win is noise — no database entry for the contender."""
    clock = FakeClock()
    tile = Variant(passes="default,+tile", tile_rows=64)

    def evaluate(variant, repeats):
        clock.now += 1.0
        t = {tile: 0.99}.get(variant, 1.5 if variant.passes == "none" else 1.0)
        return TimingStats(best=t, median=t, runs=repeats)

    result = successive_halving(_grid(), evaluate, budget_s=100.0, clock=clock)
    assert result.best == BASELINE  # 1% is inside the noise margin


def test_variant_space_baseline_first_and_serial_without_openmp():
    space = variant_space(cpus=8, openmp=False)
    assert space[0] == BASELINE
    assert all(v.threads == 1 for v in space)
    assert len(space) == len(set(space))  # no duplicate grid points
    threaded = variant_space(cpus=8, openmp=True)
    assert {v.threads for v in threaded} == {1, 2, 4, 8}
    # the atomic scatter strategy is only worth trying with a team
    assert all(v.threads > 1 for v in threaded if v.omp_strategy == "atomic")


def test_parse_budget():
    assert parse_budget("5") == 5.0
    assert parse_budget("5s") == 5.0
    assert parse_budget("2m") == 120.0
    assert parse_budget(7) == 7.0
    with pytest.raises(ValueError):
        parse_budget("fast")
    with pytest.raises(ValueError):
        parse_budget("0s")


# ----------------------------------------------------------------------
# the database: keys, merge semantics, concurrent writers
# ----------------------------------------------------------------------
def test_shape_class_buckets_by_rounded_log2():
    assert tune_db.shape_class([2000, 2000], 150000) == "e11x11/w17"
    # nearby sizes share the bucket; the next crossover size does not
    assert tune_db.shape_class([2400, 2400], 160000) == tune_db.shape_class(
        [2000, 2000], 150000
    )
    assert tune_db.shape_class([8000, 8000], 150000) != tune_db.shape_class(
        [2000, 2000], 150000
    )
    assert tune_db.shape_class([], None) == "e-/w-"
    assert tune_db.shape_class([0], 0) == "e0/w0"  # degenerate extents clamp


def test_machine_class_parse_roundtrip():
    assert tune_db.parse_machine_class("linux-x86_64-c4") == ("linux-x86_64", 4)
    assert tune_db.parse_machine_class("no-cpu-suffix") is None
    cls = fingerprint_class()
    parsed = tune_db.parse_machine_class(cls)
    assert parsed is not None and parsed[1] >= 1


def _record(path, machine_class, kernel_key, shape_key, threads=2, **extra):
    tune_db.record_tuning(
        path,
        machine_class,
        {"cpus": 4},
        kernel_key,
        "k",
        shape_key,
        dict({"threads": threads}, **extra),
    )


def test_record_tuning_merges_and_roundtrips(tmp_path):
    path = str(tmp_path / "TUNED.json")
    _record(path, "linux-x86_64-c4", "a|float64", "e11x11/w17", threads=2)
    _record(path, "linux-x86_64-c4", "b|float64", "e8x8/w10", threads=1)
    _record(path, "linux-x86_64-c4", "a|float64", "e13x13/w20", threads=4)
    doc = tune_db.load_db(path)
    kernels = doc["machines"]["linux-x86_64-c4"]["kernels"]
    assert set(kernels) == {"a|float64", "b|float64"}
    assert set(kernels["a|float64"]["shapes"]) == {"e11x11/w17", "e13x13/w20"}
    # a re-tune overwrites only its shape
    _record(path, "linux-x86_64-c4", "a|float64", "e11x11/w17", threads=8)
    doc = tune_db.load_db(path)
    shapes = doc["machines"]["linux-x86_64-c4"]["kernels"]["a|float64"]["shapes"]
    assert shapes["e11x11/w17"]["threads"] == 8
    assert shapes["e13x13/w20"]["threads"] == 4


def test_load_db_rejects_wrong_versions(tmp_path):
    path = tmp_path / "TUNED.json"
    assert tune_db.load_db(str(path)) is None  # absent
    path.write_text("not json")
    assert tune_db.load_db(str(path)) is None  # unreadable
    path.write_text(json.dumps({"version": 999, "machines": {}}))
    assert tune_db.load_db(str(path)) is None  # future schema


def test_concurrent_writers_serialize_through_the_lock(tmp_path):
    """N threads recording distinct kernels all land in the merged db."""
    path = str(tmp_path / "TUNED.json")
    errors = []

    def write(i):
        try:
            _record(
                path, "linux-x86_64-c4", "k%d|float64" % i, "e11x11/w17",
                threads=i + 1,
            )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    doc = tune_db.load_db(path)
    kernels = doc["machines"]["linux-x86_64-c4"]["kernels"]
    assert len(kernels) == 8
    assert not os.path.exists(path + ".lock")  # every writer released


# ----------------------------------------------------------------------
# the oracle: machine matching, lookups, graceful fallback
# ----------------------------------------------------------------------
def _doc(machine_class="linux-x86_64-c4", threads=4, compile_entry=None):
    kernel = {
        "name": "ssymv",
        "shapes": {"e11x11/w17": {"threads": threads}},
    }
    if compile_entry is not None:
        kernel["compile"] = compile_entry
    return {
        "version": tune_db.TUNED_VERSION,
        "machines": {
            machine_class: {
                "fingerprint": {},
                "kernels": {"y[i] += A[i, j] * x[j]|float64": kernel},
            }
        },
    }


def test_oracle_exact_hit_and_shape_miss():
    oracle = TuningOracle(_doc(), machine_class="linux-x86_64-c4")
    assert oracle.exact_machine
    hit = oracle.threads_for(
        "y[i] += A[i, j] * x[j]", "float64", [2000, 2000], 150000, cpu=8
    )
    assert hit == 4
    miss = oracle.threads_for(
        "y[i] += A[i, j] * x[j]", "float64", [64, 64], 400, cpu=8
    )
    assert miss is None  # different shape bucket: cost model decides
    stats = oracle.stats_dict()
    assert stats["lookups"] == 2
    assert stats["tuned"] == 1 and stats["fallbacks"] == 1


def test_oracle_memoizes_repeated_lookups_with_counters_advancing():
    """threads_for sits on the per-run dispatch path: a repeated lookup of
    one (kernel, shape) is a memo hit — same answer, counters still move."""
    oracle = TuningOracle(_doc(), machine_class="linux-x86_64-c4")
    args = ("y[i] += A[i, j] * x[j]", "float64", [2000, 2000], 150000, 8)
    first = oracle.threads_for(*args)
    second = oracle.threads_for(*args)
    assert first == second == 4
    stats = oracle.stats_dict()
    assert stats["lookups"] == 2 and stats["tuned"] == 2


def test_oracle_clamps_tuned_threads_to_the_visible_machine():
    oracle = TuningOracle(
        _doc(threads=16), machine_class="linux-x86_64-c4"
    )
    assert (
        oracle.threads_for(
            "y[i] += A[i, j] * x[j]", "float64", [2000, 2000], 150000, cpu=2
        )
        == 2
    )


def test_oracle_nearest_machine_class_same_os_isa():
    oracle = TuningOracle(
        _doc(machine_class="linux-x86_64-c8"),
        machine_class="linux-x86_64-c4",
    )
    assert not oracle.exact_machine
    assert oracle.matched_class == "linux-x86_64-c8"
    assert (
        oracle.threads_for(
            "y[i] += A[i, j] * x[j]", "float64", [2000, 2000], 150000, cpu=8
        )
        == 4
    )


def test_oracle_unknown_fingerprint_falls_back_to_cost_model():
    """A db recorded on a foreign OS/ISA never matches — every lookup is
    a counted fallback, not an error."""
    oracle = TuningOracle(
        _doc(machine_class="darwin-arm64-c8"),
        machine_class="linux-x86_64-c4",
    )
    assert oracle.matched_class is None
    assert (
        oracle.threads_for(
            "y[i] += A[i, j] * x[j]", "float64", [2000, 2000], 150000, cpu=8
        )
        is None
    )
    assert oracle.stats_dict()["fallbacks"] == 1


def test_load_oracle_absent_db_is_none(tmp_path):
    assert load_oracle(str(tmp_path / "missing.json")) is None


# ----------------------------------------------------------------------
# the module-level switch and env knobs
# ----------------------------------------------------------------------
def test_active_is_none_without_env(monkeypatch):
    monkeypatch.delenv(tune.ENV_DB, raising=False)
    assert tune.active() is None
    assert tune.stats_dict() == {"configured": False, "enabled": False}


def test_active_loads_from_env_and_no_tune_wins(tmp_path, monkeypatch):
    path = str(tmp_path / "TUNED.json")
    cls = fingerprint_class()
    _record(path, cls, "a|float64", "e11x11/w17")
    monkeypatch.setenv(tune.ENV_DB, path)
    tune.reset()
    assert tune.active() is not None
    monkeypatch.setenv(tune.ENV_NO_TUNE, "1")
    tune.reset()
    assert tune.active() is None
    assert tune.stats_dict()["enabled"] is False


def test_active_with_absent_db_path(monkeypatch, tmp_path):
    monkeypatch.setenv(tune.ENV_DB, str(tmp_path / "nope.json"))
    tune.reset()
    assert tune.active() is None  # enabled but unreadable: off, not an error
    assert tune.stats_dict() == {"configured": False, "enabled": True}


def test_compile_overrides_env_precedence(monkeypatch):
    from repro.codegen.backends.cpasses import PassConfig

    compile_entry = {
        "passes": ["fission", "tile"],
        "tile_rows": 64,
        "omp_strategy": "serial",
    }
    for name in ("REPRO_PASSES", "REPRO_TILE", "REPRO_OMP_STRATEGY"):
        monkeypatch.delenv(name, raising=False)
    tune.configure(None)
    tune._oracle = TuningOracle(
        _doc(compile_entry=compile_entry), machine_class="linux-x86_64-c4"
    )
    pc, strategy = tune.compile_overrides("y[i] += A[i, j] * x[j]", "float64")
    assert pc == PassConfig(enabled=("fission", "tile"), tile_rows=64)
    assert strategy == "serial"
    # an explicit pass pin silences the tuned pass config, not the strategy
    monkeypatch.setenv("REPRO_PASSES", "none")
    pc, strategy = tune.compile_overrides("y[i] += A[i, j] * x[j]", "float64")
    assert pc is None and strategy == "serial"
    monkeypatch.delenv("REPRO_PASSES")
    monkeypatch.setenv("REPRO_OMP_STRATEGY", "atomic")
    pc, strategy = tune.compile_overrides("y[i] += A[i, j] * x[j]", "float64")
    assert pc is not None and strategy is None
    # unknown kernels and anonymous (einsum-less) compiles never override
    assert tune.compile_overrides("z[i] += B[i, j]", "float64") == (None, None)
    assert tune.compile_overrides(None, "float64") == (None, None)


# ----------------------------------------------------------------------
# end-to-end wiring (C backend): measurer gate, plan-bind lookups
# ----------------------------------------------------------------------
def _ssymv_kernel_and_inputs(rng, n=64):
    from repro.core.config import DEFAULT
    from repro.kernels.library import get_kernel

    spec = get_kernel("ssymv")
    A = make_symmetric_matrix(rng, n, 0.3)
    x = rng.random(n)
    return spec, {"A": A, "x": x}


@needs_cc
def test_measurer_rejects_poisoned_variants(rng):
    from repro.core.config import DEFAULT
    from repro.tune.measure import VariantMeasurer, variant_env

    spec, inputs = _ssymv_kernel_and_inputs(rng)
    with variant_env(BASELINE):
        kernel = spec.compile(options=DEFAULT.but(backend="c"))
    measurer = VariantMeasurer(kernel, inputs, max_eval_s=0.2)
    good = Variant(passes="none")
    stats = measurer.evaluate(good, repeats=1)
    assert stats.runs >= 1
    # poison the baseline reference: any *new* variant must now be
    # rejected by the bit-identity gate before it is ever timed
    measurer.baseline_raw = measurer.baseline_raw + 1.0
    with pytest.raises(VariantRejected, match="bit-identical"):
        measurer.runner(Variant(passes="default,+tile", tile_rows=32))


@needs_cc
def test_tune_kernel_records_and_oracle_serves_it(rng, tmp_path, monkeypatch):
    from repro.core.config import DEFAULT
    from repro.obs import trace as obs_trace
    from repro.tune.measure import tune_kernel

    for name in ("REPRO_PASSES", "REPRO_TILE", "REPRO_OMP_STRATEGY"):
        monkeypatch.delenv(name, raising=False)
    path = str(tmp_path / "TUNED.json")
    spec, inputs = _ssymv_kernel_and_inputs(rng)
    report = tune_kernel(
        spec, inputs, budget_s=3.0, db_path=path, name="ssymv"
    )
    assert report.recorded
    assert report.result.best is not None
    assert report.result.baseline_stats is not None

    tune.configure(path)
    kernel = spec.compile(options=DEFAULT.but(backend="c"))
    with obs_trace.tracing() as rec:
        plan = kernel.execution_plan(threads="auto", **inputs)
    lookups = [e for e in rec.events if e.name == "tune:lookup"]
    assert lookups and lookups[0].args["origin"] == "tuned"
    assert plan.threads == report.result.best.threads
    stats = tune.stats_dict()
    assert stats["configured"] and stats["tuned"] >= 1


@needs_cc
def test_no_lookup_spans_without_a_database(rng, monkeypatch):
    from repro.core.config import DEFAULT
    from repro.obs import trace as obs_trace

    monkeypatch.delenv(tune.ENV_DB, raising=False)
    tune.reset()
    spec, inputs = _ssymv_kernel_and_inputs(rng)
    kernel = spec.compile(options=DEFAULT.but(backend="c"))
    with obs_trace.tracing() as rec:
        kernel.execution_plan(threads="auto", **inputs)
    assert not [e for e in rec.events if e.name == "tune:lookup"]


@needs_cc
def test_cache_key_tracks_tuned_compile_overrides(monkeypatch):
    """The service cache key and the renderer consult the same override:
    activating a tuned pass set must change the key (no aliasing between
    tuned and untuned builds of one einsum)."""
    from repro.service.keys import cache_key

    for name in ("REPRO_PASSES", "REPRO_TILE", "REPRO_OMP_STRATEGY"):
        monkeypatch.delenv(name, raising=False)
    monkeypatch.delenv(tune.ENV_DB, raising=False)  # hermetic reference key
    tune.configure(None)
    from repro.core.config import DEFAULT

    options = DEFAULT.but(backend="c")
    einsum = "y[i] += A[i, j] * x[j]"
    untuned = cache_key(einsum, symmetric={"A": True}, options=options)
    tune._oracle = TuningOracle(
        _doc(
            compile_entry={
                "passes": ["fuse", "tile", "simd"],
                "tile_rows": 64,
                "omp_strategy": "auto",
            }
        ),
        machine_class="linux-x86_64-c4",
    )
    tuned = cache_key(einsum, symmetric={"A": True}, options=options)
    assert tuned != untuned
    # explicit env pins restore the untuned key (the user overrode it)
    monkeypatch.setenv("REPRO_PASSES", "default")
    monkeypatch.setenv("REPRO_TILE", "0")
    pinned = cache_key(einsum, symmetric={"A": True}, options=options)
    assert pinned == untuned
