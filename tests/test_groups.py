"""Tests for equivalence patterns and unique symmetry groups (Defs 4.1/4.2).

Includes the paper's worked example (Section 4.3): for the MTTKRP chain
``i <= k <= l`` and equivalence group ``{(i = k), (l)}`` the unique
symmetry group is ``{(1,2,3), (1,3,2), (3,1,2)}``.
"""

import math
from itertools import product

import pytest

from repro.symmetry.groups import (
    EquivalencePattern,
    enumerate_patterns,
    unique_permutations,
)


def subs_as_tuple(sub, indices):
    return tuple(sub[i] for i in indices)


def test_pattern_count():
    assert len(enumerate_patterns(("i", "j"))) == 2
    assert len(enumerate_patterns(("i", "k", "l"))) == 4
    assert len(enumerate_patterns(("i", "k", "l", "m"))) == 8


def test_strict_pattern_first():
    patterns = enumerate_patterns(("i", "k", "l"))
    assert patterns[0].is_strict
    assert all(p.has_equality for p in patterns[1:])


def test_runs():
    p = EquivalencePattern(("i", "k", "l"), ("=", "<"))
    assert p.runs() == ((0, 1), (2,))
    assert p.index_runs() == (("i", "k"), ("l",))


def test_representative():
    p = EquivalencePattern(("i", "k", "l"), ("=", "<"))
    assert p.representative() == {"i": "i", "k": "i", "l": "l"}


def test_conditions():
    p = EquivalencePattern(("i", "k", "l"), ("=", "<"))
    assert p.conditions() == (("i", "==", "k"), ("k", "<", "l"))


def test_matches():
    p = EquivalencePattern(("i", "k", "l"), ("=", "<"))
    assert p.matches((2, 2, 5))
    assert not p.matches((2, 3, 5))
    assert not p.matches((2, 2, 2))


def test_paper_section_4_3_unique_group():
    """S_P|E for E = {(i=k),(l)} is {(1,2,3),(1,3,2),(3,1,2)}."""
    p = EquivalencePattern(("i", "k", "l"), ("=", "<"))
    subs = unique_permutations(p)
    got = {subs_as_tuple(s, ("i", "k", "l")) for s in subs}
    assert got == {("i", "k", "l"), ("i", "l", "k"), ("l", "i", "k")}


def test_strict_group_is_full_symmetric_group():
    p = EquivalencePattern(("i", "k", "l"), ("<", "<"))
    assert len(unique_permutations(p)) == 6


def test_all_equal_group_is_identity():
    p = EquivalencePattern(("i", "k", "l"), ("=", "="))
    subs = unique_permutations(p)
    assert len(subs) == 1
    assert subs[0] == {"i": "i", "k": "k", "l": "l"}


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_group_sizes(n):
    """|S_P|E| == n! / prod(|run|!)."""
    indices = tuple("p%d" % t for t in range(n))
    for pattern in enumerate_patterns(indices):
        expected = math.factorial(n)
        for run in pattern.runs():
            expected //= math.factorial(len(run))
        assert len(unique_permutations(pattern)) == expected


@pytest.mark.parametrize("n,side", [(2, 4), (3, 4), (4, 3)])
def test_full_space_coverage(n, side):
    """The heart of symmetrization: iterating canonical coordinates and
    applying S_P|E for the matching pattern touches every coordinate of the
    full cube exactly once."""
    indices = tuple("p%d" % t for t in range(n))
    patterns = enumerate_patterns(indices)
    seen = {}
    for coord in product(range(side), repeat=n):
        asc = tuple(sorted(coord))
        if asc != coord:
            continue  # iterate only canonical (non-decreasing) coordinates
        matching = [p for p in patterns if p.matches(coord)]
        assert len(matching) == 1, "patterns must be exclusive"
        env = dict(zip(indices, coord))
        for sub in unique_permutations(matching[0]):
            image = tuple(env[sub[i]] for i in indices)
            seen[image] = seen.get(image, 0) + 1
    assert seen == {c: 1 for c in product(range(side), repeat=n)}
