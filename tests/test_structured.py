"""Tests for structured tensors (triangular, banded, RLE) — the Table 1
'Supports Structured Tensors' row."""

import numpy as np
import pytest

from repro.core.compiler import compile_kernel
from repro.tensor.structured import (
    RunLengthVector,
    banded,
    is_triangular,
    matrix_bandwidth,
    rle_matrix_vector,
    triangular,
)


def test_triangular_lower(rng):
    arr = rng.random((5, 5))
    t = triangular(arr)
    np.testing.assert_array_equal(t.to_dense(), np.tril(arr))
    assert is_triangular(t.coo)
    assert not is_triangular(t.coo, upper=True)


def test_triangular_strict_upper(rng):
    arr = rng.random((4, 4))
    t = triangular(arr, upper=True, strict=True)
    np.testing.assert_array_equal(t.to_dense(), np.triu(arr, 1))
    assert is_triangular(t.coo, upper=True)


def test_triangular_rejects_non_matrix():
    with pytest.raises(ValueError):
        triangular(np.zeros((2, 2, 2)))


def test_banded(rng):
    arr = rng.random((6, 6))
    t = banded(arr, 1)
    assert matrix_bandwidth(t.coo) <= 1
    np.testing.assert_array_equal(
        t.to_dense(), arr * (np.abs(np.subtract.outer(range(6), range(6))) <= 1)
    )


def test_banded_bandwidth_validation():
    with pytest.raises(ValueError):
        banded(np.eye(3), -1)


def test_matrix_bandwidth_empty():
    from repro.tensor.coo import COO

    assert matrix_bandwidth(COO.empty((4, 4))) == 0


def test_banded_symmetric_kernel(rng):
    """A banded symmetric matrix through the SSYMV kernel: the structure is
    just a pattern; the compiler exploits the symmetry on top of it."""
    arr = rng.random((8, 8))
    arr = (arr + arr.T) / 2
    A = banded(arr, 2).to_dense()
    A = np.triu(A) + np.triu(A, 1).T  # keep exactly symmetric
    x = rng.random(8)
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True}, loop_order=("j", "i")
    )
    np.testing.assert_allclose(kernel(A=A, x=x), A @ x, rtol=1e-12)


# ----------------------------------------------------------------------
# RLE
# ----------------------------------------------------------------------
def test_rle_compress_roundtrip():
    vec = np.array([3.0, 3.0, 3.0, 0.0, 0.0, 7.0])
    rle = RunLengthVector.compress(vec)
    assert rle.n_runs == 3
    np.testing.assert_array_equal(rle.decompress(), vec)


def test_rle_random_roundtrip(rng):
    vec = rng.integers(0, 3, size=50).astype(float)
    rle = RunLengthVector.compress(vec)
    np.testing.assert_array_equal(rle.decompress(), vec)
    assert rle.n == 50


def test_rle_indexing():
    rle = RunLengthVector.compress(np.array([1.0, 1.0, 2.0]))
    assert rle[0] == 1.0
    assert rle[1] == 1.0
    assert rle[2] == 2.0
    with pytest.raises(IndexError):
        rle[3]


def test_rle_empty():
    rle = RunLengthVector.compress(np.array([]))
    assert rle.n == 0
    assert rle.n_runs == 0


def test_rle_dot_matches_dense(rng):
    vec = rng.integers(0, 4, size=40).astype(float)
    rle = RunLengthVector.compress(vec)
    x = rng.random(40)
    assert rle.dot(x) == pytest.approx(vec @ x)


def test_rle_dot_length_mismatch():
    rle = RunLengthVector.compress(np.ones(4))
    with pytest.raises(ValueError):
        rle.dot(np.ones(5))


def test_rle_matrix_vector(rng):
    A = rng.integers(0, 3, size=(5, 12)).astype(float)
    rows = tuple(RunLengthVector.compress(A[i]) for i in range(5))
    x = rng.random(12)
    np.testing.assert_allclose(rle_matrix_vector(rows, x), A @ x, rtol=1e-12)


def test_rle_validation():
    with pytest.raises(ValueError):
        RunLengthVector(np.array([3, 2]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        RunLengthVector(np.array([3]), np.array([1.0, 2.0]))
