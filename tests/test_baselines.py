"""Tests for the hand-written TACO-style and library baselines."""

import numpy as np
import pytest

from repro.data.random_tensors import erdos_renyi_symmetric, symmetric_matrix
from repro.kernels.baselines import (
    scipy_spmv,
    taco_style_mttkrp3,
    taco_style_spmv,
    taco_style_syprd,
)


@pytest.fixture
def matrix():
    return symmetric_matrix(12, 0.4, seed=11)


def test_taco_spmv(matrix, rng):
    x = rng.random(matrix.shape[0])
    np.testing.assert_allclose(
        taco_style_spmv(matrix, x), matrix.to_dense() @ x, rtol=1e-12
    )


def test_taco_syprd(matrix, rng):
    x = rng.random(matrix.shape[0])
    A = matrix.to_dense()
    assert taco_style_syprd(matrix, x) == pytest.approx(x @ A @ x)


def test_taco_mttkrp3(rng):
    t = erdos_renyi_symmetric(7, 3, 0.4, seed=3)
    B = rng.random((7, 4))
    expected = np.einsum("ikl,kj,lj->ij", t.to_dense(), B, B)
    np.testing.assert_allclose(taco_style_mttkrp3(t, B), expected, rtol=1e-12)


def test_scipy_spmv_matches(matrix, rng):
    x = rng.random(matrix.shape[0])
    result = scipy_spmv(matrix, x)
    if result is None:
        pytest.skip("scipy unavailable")
    np.testing.assert_allclose(result, matrix.to_dense() @ x, rtol=1e-12)
