"""Property-based tests (hypothesis) for the symmetry machinery."""

import math
from itertools import product

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symmetry.groups import enumerate_patterns, unique_permutations
from repro.symmetry.partitions import Partition

NAMES = ("a", "b", "c", "d", "e")


@st.composite
def chains(draw, max_n=5):
    n = draw(st.integers(min_value=1, max_value=max_n))
    return NAMES[:n]


@given(chains())
def test_patterns_are_exhaustive_and_exclusive(chain):
    """Every canonical coordinate satisfies exactly one pattern."""
    patterns = enumerate_patterns(chain)
    side = 3
    for coord in product(range(side), repeat=len(chain)):
        if list(coord) != sorted(coord):
            continue
        matching = [p for p in patterns if p.matches(coord)]
        assert len(matching) == 1


@given(chains())
def test_group_sizes_partition_the_symmetric_group(chain):
    """sum over patterns of |S_P|E| * (diagonal multiplicities) relates to
    n!: for the strict pattern alone |S| == n!."""
    n = len(chain)
    patterns = enumerate_patterns(chain)
    strict = [p for p in patterns if p.is_strict][0]
    assert len(unique_permutations(strict)) == math.factorial(n)


@given(chains(), st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_coverage_exactly_once(chain, side):
    """Chain iteration + S_P|E covers the full cube exactly once —
    the invariant that makes symmetrization semantics-preserving."""
    n = len(chain)
    if side**n > 2000:
        side = 2
    patterns = enumerate_patterns(chain)
    counts = {}
    for coord in product(range(side), repeat=n):
        if list(coord) != sorted(coord):
            continue
        pattern = [p for p in patterns if p.matches(coord)][0]
        env = dict(zip(chain, coord))
        for sub in unique_permutations(pattern):
            image = tuple(env[sub[i]] for i in chain)
            counts[image] = counts.get(image, 0) + 1
    assert counts == {c: 1 for c in product(range(side), repeat=n)}


@given(
    st.lists(st.sampled_from("abcdef"), min_size=1, max_size=6, unique=True),
    st.randoms(),
)
@settings(max_examples=50, deadline=None)
def test_partition_roundtrip(elements, rnd):
    """Random partitions canonicalize stably."""
    elements = list(elements)
    rnd.shuffle(elements)
    parts = []
    current = []
    for e in elements:
        current.append(e)
        if rnd.random() < 0.5:
            parts.append(current)
            current = []
    if current:
        parts.append(current)
    p = Partition.of(parts)
    q = Partition.of([list(reversed(part)) for part in p.parts])
    assert p == q
    assert sorted(p.elements) == sorted(elements)


@given(chains())
def test_representative_is_idempotent(chain):
    for pattern in enumerate_patterns(chain):
        rep = pattern.representative()
        for idx in chain:
            assert rep[rep[idx]] == rep[idx]
