"""Edge cases across backends and dtypes.

The differential fuzzer sweeps the bulk of the space; these are the
corners it deliberately leaves out: empty payloads, degenerate shape-1
dimensions, duplicate coordinates (summed at COO construction), and
values near the dtype's floor and ceiling (denormal / inf-adjacent),
all through both backends in both dtypes — plus the symbolic plan
verifier on the degenerate side=1 index cube, where every triangle,
diagonal and mirror coincides.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.codegen.backends import get_backend
from repro.core.compiler import compile_kernel, plan_kernel
from repro.core.config import DEFAULT
from repro.core.verify import verify_plan_coverage
from repro.frontend.parser import parse_assignment
from repro.kernels.library import KERNELS, get_kernel
from repro.tensor.coo import COO
from repro.tensor.tensor import Tensor

HAVE_CC = get_backend("c").is_available()

DTYPES = ("float64", "float32")

BACKENDS = ("python", "c") if HAVE_CC else ("python",)


def _run_everywhere(spec_name, inputs, dtype):
    """Run a library kernel on every backend (and threads=3 for c),
    asserting bitwise agreement; returns the python output."""
    spec = get_kernel(spec_name)
    outs = {}
    for backend in BACKENDS:
        kernel = spec.compile(options=DEFAULT.but(backend=backend, dtype=dtype))
        prepared, shape = kernel.prepare(**inputs)
        outs[backend] = np.asarray(
            kernel.finalize(kernel.run(prepared, shape, threads=1))
        )
        if backend == "c":
            threaded = np.asarray(
                kernel.finalize(kernel.run(prepared, shape, threads=3))
            )
            assert np.array_equal(outs["c"], threaded, equal_nan=True)
    if "c" in outs:
        assert np.array_equal(outs["python"], outs["c"], equal_nan=True)
    assert outs["python"].dtype == np.dtype(dtype)
    return outs["python"]


# ----------------------------------------------------------------------
# nnz = 0
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", ("ssymv", "syprd", "ssyrk", "mttkrp3d"))
def test_empty_tensor_yields_identity_output(name, dtype):
    spec = get_kernel(name)
    n = 5
    assignment = parse_assignment(spec.einsum)
    inputs = {}
    for acc in assignment.accesses:
        t = acc.tensor
        if t in inputs:
            continue
        shape = (n,) * len(acc.indices) if t != "B" else (n, 3)
        if spec.formats.get(t) == "sparse":
            sym = ((tuple(range(len(acc.indices))),) if t in spec.symmetric else ())
            inputs[t] = Tensor(COO.empty(shape, dtype=dtype), sym)
        else:
            inputs[t] = np.ones(shape, dtype=dtype)
    out = _run_everywhere(name, inputs, dtype)
    assert np.all(out == 0.0)


@pytest.mark.parametrize("dtype", DTYPES)
def test_empty_tensor_min_reduction_yields_inf(dtype):
    A = Tensor(COO.empty((4, 4), dtype=dtype), ((0, 1),))
    d = np.zeros(4, dtype=dtype)
    out = _run_everywhere("bellmanford", {"A": A, "d": d}, dtype)
    assert np.all(np.isinf(out)) and np.all(out > 0)


# ----------------------------------------------------------------------
# shape-1 dimensions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", sorted(KERNELS))
def test_shape_one_dimensions(name, dtype):
    """Every extent 1: loops of a single iteration, every triangle is the
    diagonal, the canonical packing keeps exactly one entry."""
    spec = get_kernel(name)
    assignment = parse_assignment(spec.einsum)
    inputs = {}
    for acc in assignment.accesses:
        t = acc.tensor
        if t not in inputs:
            inputs[t] = np.full((1,) * len(acc.indices), 2.0, dtype=dtype)
    out = _run_everywhere(name, inputs, dtype)
    expected = spec.reference(
        **{k: np.asarray(v, dtype=np.float64) for k, v in inputs.items()}
    )
    np.testing.assert_allclose(out.astype(np.float64), expected, rtol=1e-6)


# ----------------------------------------------------------------------
# all-duplicate coordinates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", DTYPES)
def test_all_duplicate_coordinates_are_summed_once(dtype):
    """A COO whose every entry shares one coordinate collapses to a single
    summed entry at construction — and the kernels see only the sum."""
    coords = np.array([[2, 2, 2, 2], [1, 1, 1, 1]])
    vals = np.array([0.25, 0.5, 1.0, 2.0], dtype=dtype)
    coo = COO(coords, vals, (4, 4))
    assert coo.nnz == 1
    assert coo.dtype == np.dtype(dtype)
    # symmetric wrap: the (2,1) canonical entry mirrors to (1,2)
    A = Tensor(coo, ((0, 1),), canonical=True)
    x = np.ones(4, dtype=dtype)
    out = _run_everywhere("ssymv", {"A": A, "x": x}, dtype)
    dense = A.to_dense().astype(np.float64)
    np.testing.assert_allclose(out.astype(np.float64), dense @ np.ones(4), rtol=1e-6)


# ----------------------------------------------------------------------
# denormal / inf-adjacent values
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", DTYPES)
def test_denormal_values_survive_bit_identically(dtype, monkeypatch):
    """Denormal magnitudes flow through both backends without flush-to-
    zero (no -ffast-math): results stay bit-identical and nonzero.

    The one pass that deliberately breaks this (``denormals``, off by
    default and documented as not bit-exact) is forced off so ambient
    ``REPRO_PASSES=all`` (the CI passes leg) cannot flip the property
    under test."""
    monkeypatch.setenv(
        "REPRO_PASSES",
        "%s,-denormals" % os.environ.get("REPRO_PASSES", ""),
    )
    tiny = 1e-310 if dtype == "float64" else np.float64(1e-42)
    arr = np.zeros((4, 4), dtype=dtype)
    arr[2, 1] = arr[1, 2] = np.dtype(dtype).type(tiny)
    arr[3, 3] = np.dtype(dtype).type(tiny)
    A = Tensor.from_dense(arr, ((0, 1),))
    x = np.ones(4, dtype=dtype)
    out = _run_everywhere("ssymv", {"A": A, "x": x}, dtype)
    assert out[1] != 0.0 and out[2] != 0.0  # not flushed to zero


@pytest.mark.parametrize("dtype", DTYPES)
def test_inf_adjacent_values_overflow_consistently(dtype):
    """Values near the dtype ceiling: products overflow to inf the same
    way on every backend (exactly where IEEE says so)."""
    big = float(np.finfo(np.dtype(dtype)).max) * 0.75
    arr = np.zeros((3, 3))
    arr[1, 0] = arr[0, 1] = big
    arr[2, 2] = big
    A = Tensor.from_dense(arr.astype(dtype), ((0, 1),))
    x = np.full(3, 4.0, dtype=dtype)
    with np.errstate(over="ignore"):
        out = _run_everywhere("ssymv", {"A": A, "x": x}, dtype)
    assert np.isinf(out[0]) and np.isinf(out[1]) and np.isinf(out[2])


@pytest.mark.parametrize("dtype", DTYPES)
def test_bellmanford_with_infinite_distances(dtype):
    """+inf distances stay absorbing through the min-plus semiring."""
    arr = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 2.0], [0.0, 2.0, 0.0]])
    A = Tensor.from_dense(arr.astype(dtype), ((0, 1),))
    d = np.array([0.0, np.inf, np.inf], dtype=dtype)
    out = _run_everywhere("bellmanford", {"A": A, "d": d}, dtype)
    expected = get_kernel("bellmanford").reference(
        A=arr, d=np.array([0.0, np.inf, np.inf])
    )
    np.testing.assert_allclose(out.astype(np.float64), expected)


# ----------------------------------------------------------------------
# the symbolic verifier on degenerate cubes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", (1, 2))
@pytest.mark.parametrize("name", sorted(KERNELS))
def test_plan_coverage_on_degenerate_cubes(name, side):
    """verify.py's exhaustive coverage check at side=1 (every coordinate
    equal — pure diagonal) and side=2 (smallest cube with a strict
    triangle): each update performed exactly once, even where all the
    symmetry orbits collapse."""
    spec = get_kernel(name)
    assignment = parse_assignment(spec.einsum)
    symmetric_modes = {
        t: (tuple(range(len(acc.indices))),)
        for acc in assignment.accesses
        for t in [acc.tensor]
        if t in spec.symmetric
    }
    plan, _ = plan_kernel(assignment, symmetric_modes, spec.loop_order, DEFAULT)
    assert verify_plan_coverage(plan, side=side) == []


@pytest.mark.parametrize("side", (1, 2))
def test_naive_plan_coverage_on_degenerate_cubes(side):
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True},
        loop_order=("j", "i"), naive=True,
    )
    assert verify_plan_coverage(kernel.plan, side=side) == []
