"""Wire-protocol unit tests: framing, tensor codec, spec codec, and the
hostile-input rules (oversized prefixes, garbage bodies, forged dtypes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CompilerOptions
from repro.serve import protocol
from repro.serve.protocol import ProtocolError
from repro.service.keys import canonicalize


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def test_frame_round_trip():
    doc = {"op": "health", "id": 7, "nested": {"a": [1, 2, 3]}}
    frame = protocol.encode_frame(doc)
    length = protocol.decode_length(frame[: protocol.HEADER.size])
    assert length == len(frame) - protocol.HEADER.size
    assert protocol.decode_body(frame[protocol.HEADER.size :]) == doc


def test_oversized_length_prefix_rejected_before_allocation():
    # a hostile 4-GiB length prefix must be refused from the header alone
    header = protocol.HEADER.pack(0xFFFFFFFF)
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.decode_length(header, max_frame=1 << 20)


def test_truncated_header_rejected():
    with pytest.raises(ProtocolError, match="truncated"):
        protocol.decode_length(b"\x00\x01")


def test_encode_frame_respects_limit():
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.encode_frame({"blob": "x" * 2048}, max_frame=1024)


@pytest.mark.parametrize(
    "body", [b"not json at all", b"[1, 2, 3]", b'"just a string"', b"\xff\xfe"]
)
def test_bad_bodies_rejected(body):
    with pytest.raises(ProtocolError):
        protocol.decode_body(body)


# ---------------------------------------------------------------------------
# tensor codec
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_tensor_round_trip_bit_identical(rng, dtype):
    arr = rng.random((5, 7)).astype(dtype)
    back = protocol.decode_tensor(protocol.encode_tensor(arr))
    assert back.dtype == arr.dtype
    assert back.shape == arr.shape
    assert np.array_equal(back, arr)  # exact: raw bytes, no text round-trip
    back[0, 0] = -1.0  # the decoded copy must be writable


def test_tensor_codec_zero_size(rng):
    arr = np.zeros((0, 3))
    back = protocol.decode_tensor(protocol.encode_tensor(arr))
    assert back.shape == (0, 3)


def test_tensor_codec_scalar_stays_zero_d():
    # scalar kernel outputs (e.g. syprd) must round-trip as 0-d, not (1,)
    back = protocol.decode_tensor(protocol.encode_tensor(np.array(2.5)))
    assert back.shape == ()
    assert back == 2.5


def test_tensor_codec_non_contiguous_input(rng):
    arr = rng.random((6, 6))[::2, ::2]  # strided view
    back = protocol.decode_tensor(protocol.encode_tensor(arr))
    assert np.array_equal(back, arr)


@pytest.mark.parametrize(
    "doc",
    [
        "not a dict",
        {"dtype": "object", "shape": [1], "data": ""},  # pickle smuggling
        {"dtype": "float64", "shape": "bad", "data": ""},
        {"dtype": "float64", "shape": [-1], "data": ""},
        {"dtype": "float64", "shape": [2], "data": "AAAA"},  # length mismatch
        {"dtype": "float64", "shape": [1], "data": "!!not-base64!!"},
        {"dtype": "no-such-dtype", "shape": [1], "data": ""},
    ],
)
def test_hostile_tensors_rejected(doc):
    with pytest.raises(ProtocolError):
        protocol.decode_tensor(doc)


def test_tensors_mapping_validates_names(rng):
    good = protocol.encode_tensors({"A": rng.random((2, 2))})
    assert set(protocol.decode_tensors(good)) == {"A"}
    with pytest.raises(ProtocolError, match="name"):
        protocol.decode_tensors({"not an identifier!": good["A"]})
    with pytest.raises(ProtocolError):
        protocol.decode_tensors(["A"])


# ---------------------------------------------------------------------------
# compile-spec codec
# ---------------------------------------------------------------------------
def test_spec_round_trip_preserves_key():
    request = canonicalize(
        "y[i] += A[i,j] * x[j]",
        symmetric={"A": True},
        formats={"A": "sparse"},
        options=CompilerOptions(dtype="float32"),
    )
    spec = protocol.spec_from_request(request)
    back = protocol.request_from_spec(spec)
    assert back.key == request.key
    assert back == request


def test_spec_round_trip_naive_and_levels():
    request = canonicalize(
        "y[i] += A[i,j] * x[j]",
        formats={"A": "sparse"},
        sparse_levels={"A": ["dense", "compressed"]},
        naive=True,
    )
    back = protocol.request_from_spec(protocol.spec_from_request(request))
    assert back.key == request.key


@pytest.mark.parametrize(
    "doc",
    [
        None,
        "y[i] += x[i]",
        {},
        {"einsum": ""},
        {"einsum": 42},
        {"einsum": "y[i] += x[i]", "options": "bad"},
        {"einsum": "y[i] += x[i]", "loop_order": [1, 2]},
    ],
)
def test_hostile_specs_rejected(doc):
    with pytest.raises(ValueError):
        protocol.request_from_spec(doc)


def test_error_reply_shape():
    reply = protocol.error_reply(3, protocol.OVERLOADED, "queue full")
    assert reply == {
        "ok": False,
        "id": 3,
        "error": "overloaded",
        "detail": "queue full",
    }
    assert protocol.OVERLOADED in protocol.RETRYABLE_ERRORS
    assert protocol.DRAINING in protocol.RETRYABLE_ERRORS
    assert protocol.DEADLINE not in protocol.RETRYABLE_ERRORS
