"""Unit tests for the KernelPlan / LoopNest / Block data structures."""

import pytest

from repro.core.kernel_plan import (
    Block,
    FILTER_DIAGONAL,
    FILTER_STRICT,
    KernelPlan,
    LoopNest,
)
from repro.core.symmetrize import symmetrize
from repro.frontend.parser import parse_assignment
from repro.symmetry.groups import EquivalencePattern

FULL2 = {"A": ((0, 1),)}


@pytest.fixture
def plan():
    return symmetrize(
        parse_assignment("y[i] += A[i, j] * x[j]"), FULL2, ("j", "i")
    )


def test_block_pattern_accessors(plan):
    strict = plan.blocks[0]
    assert strict.pattern is strict.patterns[0]
    assert strict.is_strict
    diag = plan.blocks[1]
    assert diag.has_equality
    assert not diag.is_strict


def test_block_describe(plan):
    text = plan.blocks[0].describe()
    assert text.startswith("if i < j:")
    assert "y[i] += " in text


def test_plan_describe_contains_everything(plan):
    text = plan.describe()
    assert "loop order: (j, i)" in text
    assert "canonical chain: i <= j" in text
    assert "nest 0" in text


def test_total_assignments(plan):
    assert plan.total_assignments() == 3  # 2 strict + 1 diagonal


def test_map_blocks_replace(plan):
    doubled = plan.map_blocks(
        lambda b: b.with_assignments(
            [a.with_count(a.count * 2) for a in b.assignments]
        ),
        note="double",
    )
    assert all(
        a.count == 2 for b in doubled.blocks for a in b.assignments
    )
    assert "double" in doubled.history
    # original untouched (plans are immutable records)
    assert all(a.count == 1 for b in plan.blocks for a in b.assignments)


def test_map_blocks_drop(plan):
    pruned = plan.map_blocks(
        lambda b: None if b.has_equality else b, note="drop-diag"
    )
    assert len(pruned.blocks) == 1


def test_map_blocks_split(plan):
    doubled = plan.map_blocks(lambda b: [b, b])
    assert len(doubled.blocks) == 2 * len(plan.blocks)


def test_with_nests_records_history(plan):
    nest = LoopNest(blocks=plan.nests[0].blocks, tensor_filter=FILTER_STRICT)
    updated = plan.with_nests([nest], note="test-note")
    assert updated.nests[0].tensor_filter == FILTER_STRICT
    assert updated.history[-1] == "test-note"


def test_symmetric_tensors_listing(plan):
    assert plan.symmetric_tensors == ("A",)


def test_bad_pattern_relations_rejected():
    with pytest.raises(ValueError):
        EquivalencePattern(("i", "j"), ("<=",))
    with pytest.raises(ValueError):
        EquivalencePattern(("i", "j", "k"), ("<",))
