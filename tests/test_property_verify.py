"""Property test: random einsums through random pipeline configurations all
pass the exhaustive coverage verifier."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiler import optimize
from repro.core.config import CompilerOptions
from repro.core.symmetrize import symmetrize
from repro.core.verify import verify_plan_coverage
from repro.frontend.parser import parse_assignment

KERNEL_POOL = [
    ("y[i] += A[i, j] * x[j]", {"A": ((0, 1),)}, ("j", "i")),
    ("y[] += x[i] * A[i, j] * x[j]", {"A": ((0, 1),)}, ("j", "i")),
    ("C[i, j] += A[i, k] * A[j, k]", {}, ("k", "j", "i")),
    (
        "C[i, j] += A[i, k, l] * B[k, j] * B[l, j]",
        {"A": ((0, 1, 2),)},
        ("l", "k", "i", "j"),
    ),
    (
        "C[i, j, l] += A[k, j, l] * B[k, i]",
        {"A": ((0, 1, 2),)},
        ("l", "k", "j", "i"),
    ),
    (
        "y[] += A[i, j] * A[j, k] * A[i, k]",
        {"A": ((0, 1),)},
        ("k", "j", "i"),
    ),
]


@given(
    st.integers(min_value=0, max_value=len(KERNEL_POOL) - 1),
    st.booleans(),
    st.booleans(),
    st.booleans(),
    st.booleans(),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_random_pipelines_always_verified(
    which, output_canonical, distributive, consolidate, diagonal_split, lookup
):
    einsum, symmetric, loop_order = KERNEL_POOL[which]
    plan = symmetrize(parse_assignment(einsum), symmetric, loop_order)
    options = CompilerOptions(
        output_canonical=output_canonical,
        distributive=distributive,
        consolidate=consolidate,
        group_branches=False,
        diagonal_split=diagonal_split,
        lookup_table=lookup,
    )
    plan = optimize(plan, options)
    side = 2 if len(plan.loop_order) >= 4 else 3
    assert verify_plan_coverage(plan, side=side) == []
