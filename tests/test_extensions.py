"""Tests for the extended kernel library (capabilities beyond the paper's
evaluation set)."""

import numpy as np
import pytest

from repro.kernels.extensions import EXTENSIONS, get_extension
from tests.conftest import make_symmetric_matrix, make_symmetric_tensor


def build_inputs(rng, spec, n=8):
    inputs = {}
    assignment = spec.compile(naive=True).plan.original
    for acc in assignment.accesses:
        name = acc.tensor
        if name in inputs:
            continue
        ndim = len(acc.indices)
        if name in spec.symmetric and spec.symmetric[name] is True:
            inputs[name] = make_symmetric_tensor(rng, n, ndim, 0.5)
        elif name in spec.symmetric:
            # partial {1,2} symmetry
            T = rng.random((n,) * ndim) * (rng.random((n,) * ndim) < 0.5)
            T = (T + np.transpose(T, (0, 2, 1))) / 2
            inputs[name] = T
        elif ndim == 2 and name == "B" and spec.name == "ttm4d":
            inputs[name] = rng.random((n, 4))
        else:
            shape = (n,) * ndim
            inputs[name] = rng.random(shape) * (rng.random(shape) < 0.5)
    return inputs


@pytest.mark.parametrize("name", sorted(EXTENSIONS))
def test_extension_matches_reference(rng, name):
    spec = get_extension(name)
    inputs = build_inputs(rng, spec)
    expected = spec.reference(**inputs)
    got = spec.compile()(**inputs)
    np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("name", sorted(EXTENSIONS))
def test_extension_naive_matches_reference(rng, name):
    spec = get_extension(name)
    inputs = build_inputs(rng, spec)
    expected = spec.reference(**inputs)
    got = spec.compile(naive=True)(**inputs)
    np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)


def test_trianglecount_exploits_full_symmetry(rng):
    spec = get_extension("trianglecount")
    kernel = spec.compile()
    # the strict block folds 3! mirrored wedges into one 6x-scaled update
    strict = kernel.plan.blocks[0]
    assert strict.assignments[0].count == 6
    assert "6.0 * " in kernel.source
    assert "while" in kernel.source  # fiber intersection


def test_ttm4d_output_symmetry_detected():
    spec = get_extension("ttm4d")
    kernel = spec.compile()
    assert kernel.plan.replication is not None
    assert kernel.plan.replication.mode_parts == ((1, 2, 3),)


def test_widestpath_idempotent_fold():
    kernel = get_extension("widestpath").compile()
    for block in kernel.plan.blocks:
        assert all(a.count == 1 for a in block.assignments)


def test_unknown_extension():
    with pytest.raises(KeyError):
        get_extension("nope")
