"""Advisory inter-process lock files: acquisition, contention, staleness.

Staleness is simulated rather than produced (killing real child
processes mid-acquire is flaky); the multiprocessing stress test in
``test_multiprocess.py`` exercises live cross-process contention.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import flock
from repro.core.flock import InterProcessLock


def test_acquire_release_cycle(tmp_path):
    path = tmp_path / "x.lock"
    lock = InterProcessLock(path)
    assert lock.try_acquire()
    assert path.exists()
    assert lock.holder_pid() == os.getpid()
    lock.release()
    assert not path.exists()
    # reusable after release
    assert lock.try_acquire()
    lock.release()


def test_contended_lock_not_acquired(tmp_path):
    path = tmp_path / "x.lock"
    first = InterProcessLock(path)
    assert first.try_acquire()
    second = InterProcessLock(path)
    # the holder (this process) is alive: never stolen
    assert not second.try_acquire()
    assert not second.acquire(timeout=0.15, poll=0.02)
    first.release()
    assert second.try_acquire()
    second.release()


def test_release_without_acquire_is_noop(tmp_path):
    lock = InterProcessLock(tmp_path / "x.lock")
    lock.release()  # must not raise, must not unlink anything else


def test_context_manager_releases(tmp_path):
    path = tmp_path / "x.lock"
    with InterProcessLock(path) as lock:
        acquired = lock.try_acquire()
        assert acquired
    assert not path.exists()


def test_dead_holder_is_reclaimed(tmp_path):
    path = tmp_path / "x.lock"
    # forge a lock held by a PID that cannot exist
    dead = 2 ** 22 + 1  # beyond default pid_max on Linux
    path.write_text("%d\n" % dead)
    lock = InterProcessLock(path)
    assert lock.try_acquire()
    assert lock.holder_pid() == os.getpid()
    lock.release()


def test_unreadable_lock_respects_grace(tmp_path, monkeypatch):
    path = tmp_path / "x.lock"
    path.write_text("")  # mid-write: no pid yet
    lock = InterProcessLock(path)
    # fresh unreadable lock is trusted...
    assert not lock.try_acquire()
    # ...until the grace period passes
    old = time.time() - flock.UNREADABLE_GRACE - 1
    os.utime(path, (old, old))
    assert lock.try_acquire()
    lock.release()


def test_garbage_pid_follows_unreadable_path(tmp_path):
    path = tmp_path / "x.lock"
    path.write_text("not-a-pid\n")
    lock = InterProcessLock(path)
    assert lock.holder_pid() is None
    assert not lock.try_acquire()  # within grace: trusted
    old = time.time() - flock.UNREADABLE_GRACE - 1
    os.utime(path, (old, old))
    assert lock.try_acquire()
    lock.release()


def test_own_pid_never_broken(tmp_path):
    path = tmp_path / "x.lock"
    path.write_text("%d\n" % os.getpid())  # as if re-entered
    lock = InterProcessLock(path)
    assert not lock.try_acquire()


def test_unwritable_directory_behaves_as_contended(tmp_path):
    if os.geteuid() == 0:
        pytest.skip("root ignores directory permissions")
    sub = tmp_path / "ro"
    sub.mkdir()
    sub.chmod(0o555)
    try:
        lock = InterProcessLock(sub / "x.lock")
        assert not lock.try_acquire()
    finally:
        sub.chmod(0o755)


def test_acquire_times_out_and_then_succeeds(tmp_path):
    path = tmp_path / "x.lock"
    holder = InterProcessLock(path)
    assert holder.try_acquire()
    waiter = InterProcessLock(path)
    start = time.monotonic()
    assert not waiter.acquire(timeout=0.1, poll=0.02)
    assert time.monotonic() - start >= 0.1
    holder.release()
    assert waiter.acquire(timeout=0.5, poll=0.02)
    waiter.release()
