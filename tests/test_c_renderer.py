"""Unit tests for the C renderer and toolchain layer.

These exercise the translation itself (signatures, vector loops,
intersection walks, LUTs, failure modes) without needing end-to-end
parity, which lives in test_backends.py.
"""

import numpy as np
import pytest

from repro.codegen.backends import CRenderError, get_backend, render_c
from repro.codegen.backends import ctoolchain
from repro.core.compiler import compile_kernel
from repro.core.config import DEFAULT
from repro.kernels.extensions import EXTENSIONS
from repro.kernels.library import get_kernel

needs_cc = pytest.mark.skipif(
    not get_backend("c").is_available(), reason="no working C toolchain"
)


def _lowered(name, **kwargs):
    return get_kernel(name).compile(**kwargs).lowered


def test_renders_signature_and_sparse_walk():
    src = render_c(_lowered("ssymv"), label="ssymv")
    assert "int64_t kernel(double *restrict out" in src
    assert "const int64_t *restrict A__strict_pos1" in src
    assert "const double *restrict A__strict_vals" in src
    assert "int64_t n_i" in src
    # the triangle workspace flush and the concordant walk
    assert "out[j] += ws0;" in src
    assert "for (q0_1 = A__strict_pos1[j];" in src


def test_renders_vector_statements_as_plain_loops():
    src = render_c(_lowered("mttkrp3d"))
    assert "malloc" in src and "free(ws0);" in src
    assert "for (_v = 0; _v < n_j; ++_v)" in src
    # dense rows index through the runtime extent vector
    assert "B_dims[1]" in src


def test_renders_minmax_semiring():
    src = render_c(_lowered("bellmanford"))
    assert "fmin(" in src
    assert "INFINITY" in src


def test_renders_intersection_walk():
    src = render_c(EXTENSIONS["sddmm_rowsum"].compile().lowered)
    assert "(q0_1 < q0_1_end) && (q1_1 < q1_1_end)" in src
    assert "while (" in src
    assert "continue;" in src


def test_renders_lookup_table():
    lowered = get_kernel("mttkrp3d").compile(
        options=DEFAULT.but(lookup_table=True)
    ).lowered
    src = render_c(lowered)
    assert "static const double _lut0[" in src
    assert "<<" in src


def test_rendering_is_deterministic():
    lowered = _lowered("ssyrk")
    assert render_c(lowered) == render_c(lowered)


def test_c_keyword_index_names_are_rejected():
    kernel = compile_kernel(
        "y[do] += A[do, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "do"),
        options=DEFAULT.but(backend="python"),
    )
    with pytest.raises(CRenderError, match="C identifier"):
        render_c(kernel.lowered)


# ----------------------------------------------------------------------
# toolchain
# ----------------------------------------------------------------------
def test_probe_respects_no_cc_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CC", "1")
    ctoolchain.reset_probe_cache()
    try:
        assert ctoolchain.probe() is None
        with pytest.raises(ctoolchain.ToolchainError, match="compiler"):
            ctoolchain.compile_shared("int x;\n")
    finally:
        monkeypatch.delenv("REPRO_NO_CC")
        ctoolchain.reset_probe_cache()


@needs_cc
def test_compile_shared_is_content_addressed():
    src = "double repro_dummy(double x) { return x + 1.0; }\n"
    first = ctoolchain.compile_shared(src)
    second = ctoolchain.compile_shared(src)
    assert first == second
    other = ctoolchain.compile_shared(src.replace("1.0", "2.0"))
    assert other != first


@needs_cc
def test_compile_shared_surfaces_compiler_errors():
    with pytest.raises(ctoolchain.ToolchainError, match="failed"):
        ctoolchain.compile_shared("this is not C\n")


@needs_cc
def test_executable_rejects_bad_output_buffer():
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        options=DEFAULT.but(backend="c"),
    )
    prepared, shape = kernel.prepare(A=np.eye(3), x=np.ones(3))
    bad = np.zeros(shape, dtype=np.float32)
    with pytest.raises(ValueError, match="float64"):
        kernel.bound.executable(bad, **prepared)


@needs_cc
def test_scalar_output_kernel_runs_in_c(rng):
    from tests.conftest import make_symmetric_matrix

    kernel = compile_kernel(
        "y[] += x[i] * A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        options=DEFAULT.but(backend="c"),
    )
    A = make_symmetric_matrix(rng, 9, 0.6)
    x = rng.random(9)
    np.testing.assert_allclose(kernel(A=A, x=x), x @ A @ x, rtol=1e-12)


@needs_cc
def test_dense_only_vectorized_kernel_runs_in_c(rng):
    kernel = compile_kernel(
        "y[j] += M[i, j] * x[i]",
        loop_order=("i", "j"),
        options=DEFAULT.but(backend="c"),
    )
    assert kernel.lowered.vector_index == "j"
    M = rng.random((5, 7))
    x = rng.random(5)
    np.testing.assert_allclose(kernel(M=M, x=x), M.T @ x, rtol=1e-12)
