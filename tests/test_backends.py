"""The pluggable execution-backend layer.

Parity (C backend vs Python backend vs numpy reference across the figure
suite), graceful degradation without a compiler, disk-store artifact
reuse, cache-key separation and the prepare-time memoization.
"""

import os

import numpy as np
import pytest

from repro.codegen.backends import (
    BackendError,
    BackendUnavailableError,
    get_backend,
    resolve_backend_name,
)
from repro.codegen.backends import ctoolchain
from repro.codegen import executor as executor_mod
from repro.core.compiler import compile_kernel
from repro.core.config import DEFAULT, CompilerOptions
from repro.kernels.library import KERNELS, get_kernel
from repro.service import KernelService
from repro.service.keys import cache_key
from repro.tensor.tensor import Tensor
from tests.conftest import make_symmetric_matrix
from tests.test_codegen_kernels import build_inputs

HAVE_CC = get_backend("c").is_available()
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no working C toolchain")

C_OPTS = DEFAULT.but(backend="c")


@pytest.fixture
def no_toolchain(monkeypatch):
    """Force the probe to find nothing, restoring the real cache after."""
    monkeypatch.setenv("REPRO_NO_CC", "1")
    ctoolchain.reset_probe_cache()
    yield
    monkeypatch.delenv("REPRO_NO_CC", raising=False)
    ctoolchain.reset_probe_cache()


# ----------------------------------------------------------------------
# parity across the figure suite
# ----------------------------------------------------------------------
@needs_cc
@pytest.mark.parametrize("name", sorted(KERNELS))
def test_c_backend_matches_python_and_reference(rng, name):
    spec = get_kernel(name)
    inputs = build_inputs(rng, spec)
    expected = spec.reference(**inputs)
    py = spec.compile()(**inputs)
    c_kernel = spec.compile(options=C_OPTS)
    assert c_kernel.backend == "c"
    got = c_kernel(**inputs)
    np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(got, py, rtol=1e-12, atol=0)


@needs_cc
@pytest.mark.parametrize("name", sorted(KERNELS))
def test_c_backend_matches_python_naive(rng, name):
    spec = get_kernel(name)
    inputs = build_inputs(rng, spec)
    py = spec.compile(naive=True)(**inputs)
    got = spec.compile(naive=True, options=C_OPTS)(**inputs)
    np.testing.assert_allclose(got, py, rtol=1e-12, atol=0)


# ----------------------------------------------------------------------
# selection and fallback
# ----------------------------------------------------------------------
def test_auto_degrades_to_python_without_compiler(no_toolchain):
    assert resolve_backend_name("auto") == "python"
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        options=DEFAULT.but(backend="auto"),
    )
    assert kernel.backend == "python"
    A = np.eye(4)
    np.testing.assert_allclose(kernel(A=A, x=np.ones(4)), np.ones(4))


def test_explicit_c_without_compiler_raises(no_toolchain):
    with pytest.raises(BackendUnavailableError):
        compile_kernel(
            "y[i] += A[i, j] * x[j]",
            symmetric={"A": True},
            loop_order=("j", "i"),
            options=C_OPTS,
        )


@needs_cc
def test_auto_resolves_to_c_with_compiler():
    assert resolve_backend_name("auto") == "c"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        CompilerOptions(backend="fortran")
    with pytest.raises(ValueError, match="backend"):
        resolve_backend_name("fortran")


def test_env_var_sets_default_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "auto")
    assert CompilerOptions().backend == "auto"
    monkeypatch.delenv("REPRO_BACKEND")
    assert CompilerOptions().backend == "python"


def test_invalid_env_backend_warns_and_falls_back(monkeypatch):
    """A typo'd $REPRO_BACKEND must not make every import crash."""
    monkeypatch.setenv("REPRO_BACKEND", "turbo")
    with pytest.warns(RuntimeWarning, match="REPRO_BACKEND"):
        assert CompilerOptions().backend == "python"


def test_describe_and_explain_name_the_backend():
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        options=DEFAULT.but(backend="python"),
    )
    assert "backend=python" in kernel.options.describe()
    assert "backend: python" in kernel.explain()


@needs_cc
def test_c_kernel_exposes_generated_c_source():
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
        options=C_OPTS,
    )
    assert "int64_t kernel(" in kernel.backend_source
    assert "backend=c" in kernel.options.describe()


# ----------------------------------------------------------------------
# keys and the disk store
# ----------------------------------------------------------------------
def test_backend_is_part_of_the_cache_key():
    spec = dict(symmetric={"A": True}, loop_order=("j", "i"))
    k_py = cache_key("y[i] += A[i, j] * x[j]", options=DEFAULT.but(backend="python"), **spec)
    k_c = cache_key("y[i] += A[i, j] * x[j]", options=DEFAULT.but(backend="c"), **spec)
    assert k_py != k_c


@needs_cc
def test_store_persists_and_reuses_c_artifacts(tmp_path, rng, monkeypatch):
    einsum = "y[i] += A[i, j] * x[j]"
    spec = dict(symmetric={"A": True}, loop_order=("j", "i"), options=C_OPTS)
    service = KernelService(store=tmp_path)
    kernel = service.get_or_compile(einsum, **spec)
    key = cache_key(einsum, **spec)
    assert (tmp_path / ("%s.json" % key)).exists()
    assert (tmp_path / ("%s.c" % key)).exists()
    assert (tmp_path / ("%s.so" % key)).exists()

    # a fresh service must rehydrate from the persisted .so without ever
    # invoking the compiler
    def boom(*a, **k):
        raise AssertionError("recompiled despite a valid artifact")

    monkeypatch.setattr(ctoolchain, "compile_shared", boom)
    fresh = KernelService(store=tmp_path)
    rehydrated = fresh.get_or_compile(einsum, **spec)
    assert rehydrated.backend == "c"
    A = make_symmetric_matrix(rng, 8, 0.6)
    x = rng.random(8)
    np.testing.assert_allclose(rehydrated(A=A, x=x), A @ x, rtol=1e-12)


@needs_cc
def test_corrupt_so_degrades_to_recompile(tmp_path, rng):
    einsum = "y[i] += A[i, j] * x[j]"
    spec = dict(symmetric={"A": True}, loop_order=("j", "i"), options=C_OPTS)
    KernelService(store=tmp_path).get_or_compile(einsum, **spec)
    key = cache_key(einsum, **spec)
    (tmp_path / ("%s.so" % key)).write_bytes(b"this is not an ELF object")

    fresh = KernelService(store=tmp_path)
    kernel = fresh.get_or_compile(einsum, **spec)
    assert kernel.backend == "c"
    A = make_symmetric_matrix(rng, 8, 0.6)
    x = rng.random(8)
    np.testing.assert_allclose(kernel(A=A, x=x), A @ x, rtol=1e-12)
    # the store's artifact is healed: the next process loads it directly
    healed = (tmp_path / ("%s.so" % key)).read_bytes()
    assert healed != b"this is not an ELF object"
    assert healed[:4] == b"\x7fELF"


def test_store_remove_deletes_artifacts(tmp_path):
    einsum = "y[i] += A[i, j] * x[j]"
    spec = dict(symmetric={"A": True}, loop_order=("j", "i"))
    if HAVE_CC:
        spec["options"] = C_OPTS
    service = KernelService(store=tmp_path)
    service.get_or_compile(einsum, **spec)
    key = cache_key(einsum, **spec)
    assert service.store.remove(key)
    leftovers = [p for p in os.listdir(tmp_path) if p.startswith(key)]
    assert leftovers == []


# ----------------------------------------------------------------------
# prepare-time memoization
# ----------------------------------------------------------------------
def test_prepare_wraps_shared_inputs_once(monkeypatch):
    calls = []
    original = executor_mod._as_tensor

    def counting(name, value, symmetric_modes, dtype=np.float64):
        calls.append(name)
        return original(name, value, symmetric_modes, dtype=dtype)

    monkeypatch.setattr(executor_mod, "_as_tensor", counting)
    kernel = compile_kernel(
        "C[i, j] += A[i, k] * B[k, j]", loop_order=("i", "k", "j")
    )
    shared = np.arange(16.0).reshape(4, 4)
    prepared = kernel.bound.prepare(A=shared, B=shared)
    assert len(calls) == 1  # one wrap for two argument names
    expected = shared @ shared
    out = kernel.finalize(kernel.run(prepared, (4, 4)))
    np.testing.assert_allclose(out, expected)


def test_prepare_densifies_each_tensor_once(monkeypatch):
    calls = []
    original = Tensor.to_dense

    def counting(self):
        calls.append(id(self))
        return original(self)

    monkeypatch.setattr(Tensor, "to_dense", counting)
    # B appears twice with different index orders -> two dense views
    kernel = compile_kernel(
        "C[i, j] += A[i, k, l] * B[k, j] * B[j, l]",
        loop_order=("i", "k", "l", "j"),
    )
    assert len(kernel.lowered.dense_views) >= 2
    A = np.random.default_rng(0).random((3, 3, 3))
    B = np.random.default_rng(1).random((3, 3))
    kernel.bound.prepare(A=A, B=B)
    # one to_dense per distinct tensor object, not per dense view
    assert len(calls) == len(set(calls))


def test_prepare_memoizes_fibertree_views():
    kernel = compile_kernel(
        "y[i] += A[i, j] * x[j]", symmetric={"A": True}, loop_order=("j", "i")
    )
    A = Tensor.from_dense(np.eye(5), ((0, 1),))
    before = len(A._view_cache)
    kernel.bound.prepare(A=A, x=np.ones(5))
    first = len(A._view_cache)
    kernel.bound.prepare(A=A, x=np.ones(5))
    assert len(A._view_cache) == first > before  # second prepare reuses all


@needs_cc
def test_unrunnable_entry_survives_for_capable_hosts(tmp_path, monkeypatch):
    """A C entry whose .so is corrupt on a compilerless host is a miss,
    not an eviction: the JSON entry must survive for hosts that can
    rebuild or run it."""
    einsum = "y[i] += A[i, j] * x[j]"
    spec = dict(symmetric={"A": True}, loop_order=("j", "i"), options=C_OPTS)
    KernelService(store=tmp_path).get_or_compile(einsum, **spec)
    key = cache_key(einsum, **spec)
    (tmp_path / ("%s.so" % key)).write_bytes(b"garbage")

    monkeypatch.setenv("REPRO_NO_CC", "1")
    ctoolchain.reset_probe_cache()
    try:
        store = KernelService(store=tmp_path).store
        assert store.get(key) is None
        assert store.errors == 1
        assert (tmp_path / ("%s.json" % key)).exists()  # not destroyed
    finally:
        monkeypatch.delenv("REPRO_NO_CC")
        ctoolchain.reset_probe_cache()


@needs_cc
def test_stale_build_cache_object_is_rebuilt(rng):
    """A content-addressed .so in the build dir that no longer loads
    (e.g. REPRO_C_CACHE carried over from another machine) is rebuilt.

    Uses an einsum nothing else compiles: the stale object must not be
    mapped by this process (overwriting a dlopen'd file in place would
    clobber its pages; the production paths always replace via a fresh
    inode, the pre-seeding below mirrors the foreign-cache scenario).
    """
    import os
    from pathlib import Path

    from repro.codegen.backends import render_c

    kernel = compile_kernel(
        "zz[i] += QQ[i, j] * ww[j]",
        symmetric={"QQ": True},
        loop_order=("j", "i"),
        options=DEFAULT.but(backend="python"),  # render only, never dlopen
    )
    source = render_c(kernel.lowered)
    stale = ctoolchain.compile_shared(source)
    tmp = stale + ".seed"
    with open(tmp, "wb") as handle:
        handle.write(b"not an object file")
    os.replace(tmp, stale)  # fresh inode, like a restored foreign cache
    rebuilt = get_backend("c").compile(kernel.lowered)
    prepared = kernel.bound.prepare(QQ=np.eye(4), ww=np.ones(4))
    out = np.zeros(4)
    rebuilt(out, **prepared)
    np.testing.assert_allclose(out, np.ones(4))
