"""Correctness of every lowering feature combination (the ablation axes)."""

import numpy as np
import pytest

from repro.core.compiler import compile_kernel
from repro.core.config import DEFAULT
from repro.kernels.library import get_kernel
from tests.conftest import make_symmetric_matrix, make_symmetric_tensor

OPTION_AXES = [
    "output_canonical",
    "distributive",
    "consolidate",
    "group_branches",
    "diagonal_split",
    "cse",
    "workspace",
    "vectorize_innermost",
]


@pytest.mark.parametrize("axis", OPTION_AXES)
@pytest.mark.parametrize("kernel_name", ["ssymv", "syprd", "mttkrp3d", "ttm", "ssyrk"])
def test_each_option_off_is_still_correct(rng, axis, kernel_name):
    spec = get_kernel(kernel_name)
    n, r = 6, 3
    inputs = {}
    for acc in spec.compile(naive=True).plan.original.accesses:
        name = acc.tensor
        if name in inputs:
            continue
        if name in spec.symmetric:
            inputs[name] = make_symmetric_tensor(rng, n, len(acc.indices), 0.6)
        elif name == "B":
            inputs[name] = rng.random((n, r))
        elif name == "A":
            shape = (n,) * len(acc.indices)
            inputs[name] = rng.random(shape) * (rng.random(shape) < 0.5)
        else:
            inputs[name] = rng.random((n,) * len(acc.indices))
    expected = spec.reference(**inputs)
    options = DEFAULT.but(**{axis: False})
    got = spec.compile(options=options)(**inputs)
    np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("kernel_name", ["mttkrp3d", "mttkrp4d"])
def test_lookup_table_lowering(rng, kernel_name):
    spec = get_kernel(kernel_name)
    n, r = 5, 3
    order = int(kernel_name[6])
    A = make_symmetric_tensor(rng, n, order, 0.6)
    B = rng.random((n, r))
    expected = spec.reference(A=A, B=B)
    kernel = spec.compile(options=DEFAULT.but(lookup_table=True))
    assert "_lut0" in kernel.source
    got = kernel(A=A, B=B)
    np.testing.assert_allclose(got, expected, rtol=1e-10)


def test_everything_off_equals_everything_on(rng):
    spec = get_kernel("mttkrp3d")
    n = 6
    A = make_symmetric_tensor(rng, n, 3, 0.5)
    B = rng.random((n, 4))
    all_off = DEFAULT.but(
        output_canonical=False,
        distributive=False,
        consolidate=False,
        group_branches=False,
        diagonal_split=False,
        cse=False,
        workspace=False,
        vectorize_innermost=False,
    )
    a = spec.compile(options=all_off)(A=A, B=B)
    b = spec.compile()(A=A, B=B)
    np.testing.assert_allclose(a, b, rtol=1e-10)


def test_scalar_loops_without_vectorization(rng):
    """The fully scalar lowering (no numpy in the inner loop)."""
    spec = get_kernel("mttkrp3d")
    n = 5
    A = make_symmetric_tensor(rng, n, 3, 0.5)
    B = rng.random((n, 3))
    kernel = spec.compile(options=DEFAULT.but(vectorize_innermost=False))
    assert "for j in range(" in kernel.source
    np.testing.assert_allclose(kernel(A=A, B=B), spec.reference(A=A, B=B), rtol=1e-10)


def test_vectorized_kernel_has_no_rank_loop():
    kernel = get_kernel("mttkrp3d").compile()
    assert "for j in range(" not in kernel.source


def test_min_plus_with_workspace(rng):
    n = 6
    A = make_symmetric_matrix(rng, n, 0.6)
    d = rng.random(n)
    spec = get_kernel("bellmanford")
    for workspace in (False, True):
        kernel = spec.compile(options=DEFAULT.but(workspace=workspace))
        got = kernel(A=A, d=d)
        np.testing.assert_allclose(got, spec.reference(A=A, d=d), rtol=1e-12)


def test_partial_symmetry_kernel(rng):
    """A tensor symmetric in two of three modes: y[i] += T[i,j,k] x[j] x[k].

    T is sparse-iterated only when the normalized access is concordant; the
    {j,k} partial symmetry keeps mode 0 in place, so it is.
    """
    n = 5
    T = rng.random((n, n, n)) * (rng.random((n, n, n)) < 0.5)
    T = (T + np.transpose(T, (0, 2, 1))) / 2
    x = rng.random(n)
    kernel = compile_kernel(
        "y[i] += T[i, j, k] * x[j] * x[k]",
        symmetric={"T": [[1, 2]]},
        loop_order=("i", "k", "j"),
        formats={"T": "sparse"},
    )
    expected = np.einsum("ijk,j,k->i", T, x, x)
    np.testing.assert_allclose(kernel(T=T, x=x), expected, rtol=1e-10)


def test_literal_scale_in_einsum(rng):
    n = 6
    A = make_symmetric_matrix(rng, n, 0.6)
    x = rng.random(n)
    kernel = compile_kernel(
        "y[i] += 3 * A[i, j] * x[j]",
        symmetric={"A": True},
        loop_order=("j", "i"),
    )
    np.testing.assert_allclose(kernel(A=A, x=x), 3 * (A @ x), rtol=1e-12)
