"""Cache-key canonicalization: equivalent specs collide, different specs
don't."""

import pytest

from repro import DEFAULT, NAIVE, cache_key
from repro.frontend.parser import parse_assignment
from repro.service.keys import KEY_VERSION, canonicalize

SSYMV = "y[i] += A[i, j] * x[j]"


def test_key_is_sha256_hex():
    key = cache_key(SSYMV, symmetric={"A": True})
    assert len(key) == 64
    assert set(key) <= set("0123456789abcdef")


def test_string_and_parsed_assignment_share_a_key():
    assert cache_key(SSYMV, symmetric={"A": True}) == cache_key(
        parse_assignment(SSYMV), symmetric={"A": True}
    )


def test_symmetry_spec_forms_share_a_key():
    keys = {
        cache_key(SSYMV, symmetric={"A": True}),
        cache_key(SSYMV, symmetric={"A": [[0, 1]]}),
        cache_key(SSYMV, symmetric={"A": "{0,1}"}),
    }
    assert len(keys) == 1


def test_default_loop_order_explicit_or_omitted_share_a_key():
    a = parse_assignment(SSYMV)
    inferred = tuple(reversed(a.free_indices))
    assert cache_key(SSYMV, symmetric={"A": True}) == cache_key(
        SSYMV, symmetric={"A": True}, loop_order=inferred
    )


def test_default_formats_explicit_or_omitted_share_a_key():
    keys = {
        cache_key(SSYMV, symmetric={"A": True}),
        cache_key(SSYMV, symmetric={"A": True}, formats={"A": "sparse"}),
        cache_key(
            SSYMV,
            symmetric={"A": True},
            formats={"x": "dense", "A": "sparse", "y": "dense"},
        ),
    }
    assert len(keys) == 1


def test_distinct_specs_get_distinct_keys():
    base = cache_key(SSYMV, symmetric={"A": True})
    assert base != cache_key(SSYMV)  # no symmetry declared
    assert base != cache_key(SSYMV, symmetric={"A": True}, loop_order=("i", "j"))
    assert base != cache_key(SSYMV, symmetric={"A": True}, formats={"A": "dense"})
    assert base != cache_key(
        SSYMV, symmetric={"A": True}, options=DEFAULT.but(cse=False)
    )
    assert base != cache_key(SSYMV, symmetric={"A": True}, naive=True)
    assert base != cache_key(
        SSYMV,
        symmetric={"A": True},
        sparse_levels={"A": ("dense", "sparse")},
    )
    assert base != cache_key("z[i] += A[i, j] * x[j]", symmetric={"A": True})


def test_naive_collapses_plan_options_into_one_key():
    """The naive path forces the NAIVE switch set, so plan-level option
    differences are irrelevant — only vectorization survives."""
    a = cache_key(SSYMV, symmetric={"A": True}, naive=True)
    b = cache_key(
        SSYMV, symmetric={"A": True}, naive=True, options=DEFAULT.but(cse=False)
    )
    c = cache_key(
        SSYMV,
        symmetric={"A": True},
        naive=True,
        options=DEFAULT.but(vectorize_innermost=False),
    )
    assert a == b
    assert a != c


def test_key_material_carries_version_salt():
    request = canonicalize(SSYMV, symmetric={"A": True})
    assert request.key_material().startswith("v%d|" % KEY_VERSION)


def test_canonicalize_rejects_unknown_format_names():
    with pytest.raises(ValueError, match="Z"):
        canonicalize(SSYMV, symmetric={"A": True}, formats={"Z": "sparse"})


def test_request_compiles_to_a_working_kernel(rng):
    import numpy as np

    from tests.conftest import make_symmetric_matrix

    request = canonicalize(SSYMV, symmetric={"A": True}, loop_order=("j", "i"))
    kernel = request.compile()
    A = make_symmetric_matrix(rng, 9, 0.6)
    x = rng.random(9)
    np.testing.assert_allclose(kernel(A=A, x=x), A @ x, rtol=1e-12)


def test_naive_request_uses_naive_options():
    request = canonicalize(SSYMV, symmetric={"A": True}, naive=True)
    # the pass switches collapse onto NAIVE; the backend is resolved
    # independently (canonical requests never carry "auto")
    assert request.options == NAIVE.but(backend=request.options.backend)
    assert request.options.backend != "auto"
    assert request.compile().plan.history == ("naive",)


def test_canonicalize_defaults_match_compiled_kernel():
    """Keys and compiler share one defaulting code path (resolve_request):
    what the key says must be what the compiled kernel carries."""
    from repro import compile_kernel

    request = canonicalize(SSYMV, symmetric={"A": True})
    kernel = compile_kernel(SSYMV, symmetric={"A": True})
    assert request.loop_order == kernel.plan.loop_order
    assert dict(request.formats) == kernel.formats
    assert request.options == kernel.options
