"""Tests for argument binding and execution (BoundKernel)."""

import numpy as np
import pytest

from repro.codegen.executor import BoundKernel, _as_tensor, compile_source
from repro.codegen.lower import lower_plan
from repro.core.compiler import compile_kernel, optimize
from repro.core.config import DEFAULT
from repro.core.symmetrize import symmetrize
from repro.frontend.parser import parse_assignment
from repro.tensor.coo import COO
from repro.tensor.tensor import Tensor
from tests.conftest import make_symmetric_matrix


def ssymv_bound():
    plan = optimize(
        symmetrize(parse_assignment("y[i] += A[i, j] * x[j]"), {"A": ((0, 1),)}, ("j", "i")),
        DEFAULT,
    )
    lowered = lower_plan(plan, {"A": "sparse"}, DEFAULT)
    return BoundKernel(lowered, plan.symmetric_modes)


def test_as_tensor_passthrough(rng):
    t = Tensor.from_dense(np.eye(3))
    assert _as_tensor("A", t, {}) is t


def test_as_tensor_wraps_coo():
    coo = COO.from_dense(np.eye(3))
    t = _as_tensor("A", coo, {"A": ((0, 1),)})
    assert isinstance(t, Tensor)
    assert t.symmetric_modes == ((0, 1),)


def test_as_tensor_wraps_ndarray(rng):
    t = _as_tensor("A", np.eye(4), {})
    assert isinstance(t, Tensor)
    assert t.shape == (4, 4)


def test_prepare_produces_all_args(rng):
    bound = ssymv_bound()
    A = make_symmetric_matrix(rng, 6, 0.5)
    prepared = bound.prepare(A=A, x=np.ones(6))
    assert set(prepared) == set(bound.lowered.arg_names)
    assert prepared["n_j"] == 6


def test_prepare_missing_tensor_raises(rng):
    bound = ssymv_bound()
    with pytest.raises(KeyError):
        bound.prepare(A=make_symmetric_matrix(rng, 4, 0.5))  # x missing


def test_make_output_buffer_layout():
    kernel = compile_kernel(
        "C[i, j, l] += A[k, j, l] * B[k, i]",
        symmetric={"A": True},
        loop_order=("l", "k", "j", "i"),
    )
    buf = kernel.bound.make_output_buffer((3, 4, 5))
    # layout (1, 2, 0): the vector mode i moves last
    assert buf.shape == (4, 5, 3)


def test_finalize_restores_logical_layout(rng):
    n = 6
    A = make_symmetric_matrix(rng, n, 0.6)
    B = rng.random((n, 4))
    # use the TTM kernel: layout is permuted and replication is needed
    kernel = compile_kernel(
        "C[i, j, l] += A[k, j, l] * B[k, i]",
        symmetric={"A": True},
        loop_order=("l", "k", "j", "i"),
    )
    A3 = np.zeros((n, n, n))
    # build a small fully symmetric 3-tensor
    from tests.conftest import make_symmetric_tensor

    A3 = make_symmetric_tensor(rng, n, 3, 0.5)
    out = kernel(A=A3, B=B)
    assert out.shape == (4, n, n)
    np.testing.assert_allclose(
        out, np.einsum("kjl,ki->ijl", A3, B), rtol=1e-10
    )


def test_compile_source_rejects_bad_python():
    class FakeLowered:
        source = "def kernel(:\n    pass\n"

    with pytest.raises(SyntaxError):
        compile_source(FakeLowered())


def test_run_is_repeatable(rng):
    bound = ssymv_bound()
    A = make_symmetric_matrix(rng, 5, 0.7)
    x = rng.random(5)
    prepared = bound.prepare(A=A, x=x)
    out1 = bound.make_output_buffer((5,))
    bound.run(out1, prepared)
    out2 = bound.make_output_buffer((5,))
    bound.run(out2, prepared)
    np.testing.assert_array_equal(out1, out2)
