"""Randomized cross-backend differential fuzzing.

The pipeline's strongest correctness claim is that the *same* lowered
loop structure produces **bit-identical** outputs however it executes:
interpreted Python, compiled C, and OpenMP-threaded C (the renderer's
reduction-safe scheduling contract) — per element dtype.  Hand-picked
cases cannot cover the cross product of kernels x symmetry groups x
densities x shapes x dtypes, so this module drives a seeded generator
through every library *and* extension kernel and asserts:

* python == c (threads=1), bitwise, per dtype;
* c (threads=1) == c (threads=3), bitwise (reduction-safe scheduling);
* the result tracks the dense numpy reference (allclose, per-dtype
  tolerance) — and, where a TACO-style baseline exists, that oracle too.

Two sweep sizes share one case table:

* the **CI subset** (default, unmarked): one seed per kernel x dtype —
  quick enough for tier-1, still every kernel through every backend;
* the **full sweep** (``-m slow``): every seed in the table, ~200+
  compiled cases, run as its own CI leg.

Without a C toolchain the backend comparison degrades to python-vs-
reference so the generator and the python path stay covered everywhere.
"""

from __future__ import annotations

import itertools
import zlib

import numpy as np
import pytest

from repro.codegen.backends import get_backend
from repro.core.config import DEFAULT
from repro.frontend.parser import parse_assignment
from repro.kernels.baselines import taco_style_mttkrp3, taco_style_spmv, taco_style_syprd
from repro.kernels.extensions import EXTENSIONS
from repro.kernels.library import KERNELS
from repro.tensor.tensor import Tensor

HAVE_CC = get_backend("c").is_available()

ALL_SPECS = {**KERNELS, **EXTENSIONS}

#: per-dtype tolerance against the float64 dense reference.
REFERENCE_RTOL = {"float64": 1e-9, "float32": 5e-4}

#: seeds of the full sweep; the CI subset takes the first one only.
FULL_SEEDS = tuple(range(8))

#: (n, density) profiles cycled by seed — varying size and fill together
#: with the seed keeps every case distinct without exploding the matrix.
PROFILES = ((7, 0.5), (5, 0.9), (11, 0.2), (4, 1.0), (9, 0.35), (6, 0.7),
            (13, 0.12), (8, 0.05))

#: higher-order tensors shrink so the dense reference stays cheap.
MAX_SIDE_BY_NDIM = {3: 7, 4: 5, 5: 4}


def _symmetrize(arr: np.ndarray, parts) -> np.ndarray:
    """Make *arr* symmetric within each declared mode group (max over the
    group's permutations, preserving the sparsity pattern's spirit)."""
    out = arr
    for part in parts:
        if len(part) < 2:
            continue
        acc = np.zeros_like(out)
        for perm in itertools.permutations(part):
            order = list(range(out.ndim))
            for src, dst in zip(part, perm):
                order[src] = dst
            acc = np.maximum(acc, np.transpose(out, order))
        out = acc
    return out


def fuzz_inputs(spec, seed: int, dtype: str):
    """Seeded random inputs for *spec*: symmetric where declared, sparse
    where formatted sparse, dense factors elsewhere — in *dtype*."""
    # crc32, not hash(): PYTHONHASHSEED randomization would make the
    # "seeded" inputs differ per process and CI failures unreproducible
    name_salt = zlib.crc32(spec.name.encode("utf-8")) % 997
    rng = np.random.default_rng(0xD1F + 1000 * seed + name_salt)
    n, density = PROFILES[seed % len(PROFILES)]
    r = int(rng.integers(2, 6))
    inputs = {}
    assignment = parse_assignment(spec.einsum)
    # indices are shared across tensors, so one side fits all: the widest
    # access caps it (dense references of 4-/5-way tensors stay cheap)
    max_ndim = max(len(acc.indices) for acc in assignment.accesses)
    side = min(n, MAX_SIDE_BY_NDIM.get(max_ndim, n))
    for acc in assignment.accesses:
        name = acc.tensor
        if name in inputs:
            continue
        ndim = len(acc.indices)
        shape = (side,) * ndim
        if name in spec.symmetric:
            arr = rng.random(shape) * (rng.random(shape) < density)
            parts = (
                tuple(range(ndim))
                if spec.symmetric[name] is True
                else spec.symmetric[name]
            )
            parts = (parts,) if parts and isinstance(parts[0], int) else parts
            arr = _symmetrize(arr, [tuple(p) for p in parts])
        elif spec.formats.get(name) == "sparse":
            arr = rng.random(shape) * (rng.random(shape) < density)
        elif ndim == 2 and name == "B":
            arr = rng.random((side, r))
        else:
            arr = rng.random(shape)
        inputs[name] = arr.astype(dtype)
    return inputs


def run_differential_case(name: str, seed: int, dtype: str) -> None:
    """One fuzz case: compile + run on every backend — and through the
    repeat-execution plan fast path — compare bitwise."""
    spec = ALL_SPECS[name]
    inputs = fuzz_inputs(spec, seed, dtype)
    py_kernel = spec.compile(options=DEFAULT.but(backend="python", dtype=dtype))
    py = np.asarray(py_kernel(**inputs))
    assert py.dtype == np.dtype(dtype)

    # the plan path must be indistinguishable from one-shot execution,
    # including on repeat calls against the reused output buffer
    py_plan = py_kernel.execution_plan(**inputs)
    for repeat in range(2):
        assert np.array_equal(
            np.asarray(py_kernel.finalize(py_plan())), py
        ), "%s seed=%d dtype=%s: python plan() diverges (repeat %d)" % (
            name, seed, dtype, repeat,
        )

    ref_inputs = {k: np.asarray(v, dtype=np.float64) for k, v in inputs.items()}
    expected = spec.reference(**ref_inputs)
    rtol = REFERENCE_RTOL[dtype]
    np.testing.assert_allclose(
        py.astype(np.float64), expected, rtol=rtol, atol=rtol,
        err_msg="%s seed=%d dtype=%s: python vs reference" % (name, seed, dtype),
    )

    if not HAVE_CC:
        return
    kernel = spec.compile(options=DEFAULT.but(backend="c", dtype=dtype))
    prepared, shape = kernel.prepare(**inputs)
    c1 = np.asarray(kernel.finalize(kernel.run(prepared, shape, threads=1)))
    c3 = np.asarray(kernel.finalize(kernel.run(prepared, shape, threads=3)))
    assert np.array_equal(py, c1), (
        "%s seed=%d dtype=%s: python and c diverge (max |d|=%g)"
        % (name, seed, dtype, float(np.max(np.abs(py - c1))))
    )
    assert np.array_equal(c1, c3), (
        "%s seed=%d dtype=%s: c@threads=3 is not bit-identical to threads=1"
        % (name, seed, dtype)
    )

    # plan fast path: repeat calls, serial and threaded, all bitwise equal
    # to the fresh runs above (the pooled scatter log is exercised twice)
    c_plan = kernel.execution_plan(**inputs)
    for threads in (1, 3, 3, 1):
        got = np.asarray(kernel.finalize(c_plan(threads=threads)))
        assert np.array_equal(c1, got), (
            "%s seed=%d dtype=%s: c plan(threads=%d) diverges from run()"
            % (name, seed, dtype, threads)
        )


# ----------------------------------------------------------------------
# CI subset: every kernel x dtype, one seed — runs in tier-1
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", ("float64", "float32"))
@pytest.mark.parametrize("name", sorted(ALL_SPECS))
def test_differential_ci_subset(name, dtype):
    run_differential_case(name, FULL_SEEDS[0], dtype)


# ----------------------------------------------------------------------
# full sweep: every kernel x dtype x seed (~200+ cases) — `-m slow`
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("seed", FULL_SEEDS[1:])
@pytest.mark.parametrize("dtype", ("float64", "float32"))
@pytest.mark.parametrize("name", sorted(ALL_SPECS))
def test_differential_full_sweep(name, dtype, seed):
    run_differential_case(name, seed, dtype)


# ----------------------------------------------------------------------
# pass-subset axis: every loop-optimization pipeline selection must
# preserve the cross-backend bit-identity contract (python == c@t1 ==
# c@t3, transitively c across pass sets).  REPRO_PASSES is part of the
# cache key, so each selection compiles its own artifact.
# ----------------------------------------------------------------------
PASS_SETS = ("none", "none,fission", "none,tile", "none,fuse,simd", "all")


@pytest.mark.parametrize("passes", PASS_SETS)
@pytest.mark.parametrize("name", ("ssymv", "ssyrk"))
def test_differential_pass_subsets(name, passes, monkeypatch):
    monkeypatch.setenv("REPRO_PASSES", passes)
    run_differential_case(name, FULL_SEEDS[1], "float64")


@pytest.mark.slow
@pytest.mark.parametrize("passes", PASS_SETS)
@pytest.mark.parametrize("dtype", ("float64", "float32"))
@pytest.mark.parametrize("name", sorted(ALL_SPECS))
def test_differential_pass_subsets_full(name, dtype, passes, monkeypatch):
    monkeypatch.setenv("REPRO_PASSES", passes)
    run_differential_case(name, FULL_SEEDS[2], dtype)


# ----------------------------------------------------------------------
# TACO-style baselines as an independent oracle (matrix kernels)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", FULL_SEEDS[:2])
def test_taco_baselines_agree_with_fuzzed_kernels(seed):
    rng = np.random.default_rng(31 + seed)
    n = 9
    A_arr = _symmetrize(rng.random((n, n)) * (rng.random((n, n)) < 0.4), [(0, 1)])
    A = Tensor.from_dense(A_arr, ((0, 1),))
    x = rng.random(n)
    spmv = KERNELS["ssymv"].compile()(A=A, x=x)
    np.testing.assert_allclose(spmv, taco_style_spmv(A, x), rtol=1e-10)
    syprd = KERNELS["syprd"].compile()(A=A, x=x)
    np.testing.assert_allclose(syprd, taco_style_syprd(A, x), rtol=1e-10)

    T_arr = _symmetrize(
        rng.random((5, 5, 5)) * (rng.random((5, 5, 5)) < 0.4), [(0, 1, 2)]
    )
    T = Tensor.from_dense(T_arr, ((0, 1, 2),))
    B = rng.random((5, 3))
    mttkrp = KERNELS["mttkrp3d"].compile()(A=T, B=B)
    np.testing.assert_allclose(mttkrp, taco_style_mttkrp3(T, B), rtol=1e-10)
