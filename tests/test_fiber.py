"""Unit tests for fibertree level formats (Section 2.2 of the paper)."""

import numpy as np
import pytest

from repro.tensor.coo import COO
from repro.tensor.fiber import FiberTensor


def roundtrip(arr, levels):
    coo = COO.from_dense(np.asarray(arr, dtype=float))
    fiber = FiberTensor(coo, levels)
    np.testing.assert_array_equal(fiber.to_coo().to_dense(), arr)
    return fiber


def test_csr_structure():
    """CSR == Dense(Sparse(Element(0))) per the paper."""
    arr = np.array([[0.0, 1.0, 0.0], [2.0, 0.0, 3.0], [0.0, 0.0, 0.0]])
    fiber = roundtrip(arr, ("dense", "sparse"))
    assert fiber.pos[1].tolist() == [0, 1, 3, 3]
    assert fiber.idx[1].tolist() == [1, 0, 2]
    assert fiber.vals.tolist() == [1.0, 2.0, 3.0]


def test_all_sparse_matrix():
    arr = np.array([[0.0, 1.0], [2.0, 0.0]])
    fiber = roundtrip(arr, ("sparse", "sparse"))
    assert fiber.idx[0].tolist() == [0, 1]  # distinct nonempty rows
    assert fiber.pos[0].tolist() == [0, 2]


def test_csf_3d():
    """3-D CSF == Dense(Sparse(Sparse(Element(0))))."""
    arr = np.zeros((2, 3, 4))
    arr[0, 1, 2] = 1.0
    arr[0, 1, 3] = 2.0
    arr[1, 0, 0] = 3.0
    fiber = roundtrip(arr, ("dense", "sparse", "sparse"))
    assert fiber.pos[1].tolist() == [0, 1, 2]
    assert fiber.idx[1].tolist() == [1, 0]
    assert fiber.idx[2].tolist() == [2, 3, 0]


def test_dense_prefix_two_levels(rng):
    arr = rng.random((3, 2, 4)) * (rng.random((3, 2, 4)) < 0.4)
    roundtrip(arr, ("dense", "dense", "sparse"))


def test_vector_formats(rng):
    v = rng.random(7) * (rng.random(7) < 0.5)
    roundtrip(v, ("sparse",))


def test_dense_after_sparse_rejected():
    coo = COO.empty((2, 2))
    with pytest.raises(ValueError):
        FiberTensor(coo, ("sparse", "dense"))


def test_unknown_level_kind_rejected():
    with pytest.raises(ValueError):
        FiberTensor(COO.empty((2,)), ("banded",))


def test_level_count_mismatch_rejected():
    with pytest.raises(ValueError):
        FiberTensor(COO.empty((2, 2)), ("dense",))


def test_empty_tensor_has_valid_structure():
    fiber = FiberTensor(COO.empty((3, 3)), ("dense", "sparse"))
    assert fiber.pos[1].tolist() == [0, 0, 0, 0]
    assert fiber.nnz == 0
    assert fiber.to_coo().nnz == 0


def test_arrays_naming():
    arr = np.eye(3)
    fiber = FiberTensor(COO.from_dense(arr), ("dense", "sparse"))
    names = set(fiber.arrays())
    assert names == {"pos1", "idx1", "vals"}


@pytest.mark.parametrize("levels", [
    ("dense", "sparse", "sparse"),
    ("dense", "dense", "sparse"),
    ("sparse", "sparse", "sparse"),
])
def test_3d_roundtrip_random(rng, levels):
    arr = rng.random((4, 5, 3)) * (rng.random((4, 5, 3)) < 0.3)
    roundtrip(arr, levels)


def test_4d_roundtrip_random(rng):
    shape = (3, 4, 2, 5)
    arr = rng.random(shape) * (rng.random(shape) < 0.2)
    roundtrip(arr, ("dense", "sparse", "sparse", "sparse"))
