"""Fault injection and the hardened failure paths it exists to exercise.

Every test here arms a deterministic fault plan (:func:`repro.faults
.injecting`) against the real production code — the spec parser, the cc
timeout/retry loop, the permanent-failure memo, the dlopen and store
injection points, and the backend degradation ladder — and asserts the
service keeps answering bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.codegen.backends import get_backend, health
from repro.codegen.backends import ctoolchain
from repro.core.compiler import compile_kernel
from repro.core.config import DEFAULT
from repro.faults.spec import FaultError, FaultSpecError, parse_spec
from repro.service import KernelService

HAVE_CC = get_backend("c").is_available()
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no working C toolchain")

EINSUM = "y[i] += A[i, j] * x[j]"
SPEC = dict(symmetric={"A": True}, loop_order=("j", "i"))
# threads pinned to 1: under an ambient REPRO_THREADS>1 (the CI
# c-backend-threads leg) a failed threaded call first retries serially
# on the "c" tier, which changes where on the ladder these tests land
C_OPTS = DEFAULT.but(backend="c", threads=1)


@pytest.fixture(autouse=True)
def _clean_ladder():
    """Health and the toolchain failure memo are process-global and
    sticky by design; tests must not leak degradation into each other."""
    health.reset()
    ctoolchain.reset_failure_memo()
    yield
    health.reset()
    ctoolchain.reset_failure_memo()


@pytest.fixture
def inputs():
    A = np.array([[2.0, 1.0, 0.0], [1.0, 3.0, 0.5], [0.0, 0.5, 4.0]])
    return {"A": A, "x": np.array([1.0, 2.0, 3.0])}


def _reference(inputs):
    return compile_kernel(EINSUM, **SPEC)(**inputs)


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
def test_parse_empty_is_no_plan():
    assert parse_spec(None) is None
    assert parse_spec("") is None
    assert parse_spec("  ,  ") is None


def test_parse_defaults_and_modifiers():
    plan = parse_spec("cc=timeout@2*1,dlopen")
    assert plan is not None
    # dlopen's default action is its first registered one
    assert plan.poll("dlopen").action == "fail"
    # skip=2: the first two cc polls pass through
    assert plan.poll("cc") is None
    assert plan.poll("cc") is None
    fault = plan.poll("cc")
    assert fault is not None and fault.action == "timeout"
    # times=1: exhausted afterwards
    assert plan.poll("cc") is None


def test_parse_arg_and_times():
    plan = parse_spec("service.compile=slow:0.25*2")
    first = plan.poll("service.compile")
    assert first.arg == "0.25" and first.arg_float(0.0) == 0.25
    assert plan.poll("service.compile") is not None
    assert plan.poll("service.compile") is None
    assert plan.fired() == {"service.compile": 2}


@pytest.mark.parametrize(
    "bad",
    ["nosuchpoint=fail", "cc=explode", "cc=timeout@x", "=fail", "cc*1@"],
)
def test_malformed_specs_fail_loudly(bad):
    with pytest.raises(FaultSpecError):
        parse_spec(bad)


def test_poll_is_none_without_plan():
    # injecting(None) suspends any ambient $REPRO_FAULTS plan (the CI
    # fault-injection leg arms one for the whole suite)
    with faults.injecting(None):
        assert not faults.enabled()
        assert faults.poll("cc") is None
        assert faults.fired() == {}


def test_injecting_restores_previous_plan():
    with faults.injecting(None):  # neutral baseline under ambient plans
        with faults.injecting("cc=fail*1"):
            assert faults.enabled()
            with faults.injecting(None):
                # inner block *suspends* the outer plan entirely
                assert not faults.enabled()
                assert faults.poll("cc") is None
            assert faults.enabled()
        assert not faults.enabled()


def test_fault_error_message_names_the_fault():
    plan = parse_spec("store.put=enospc")
    err = FaultError(plan.poll("store.put"))
    assert "store.put=enospc" in str(err)


# ----------------------------------------------------------------------
# toolchain: bounded compiles, retry, permanent-failure memo
# ----------------------------------------------------------------------
@needs_cc
def test_injected_cc_timeout_is_retried(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CC_BACKOFF", "0.01")
    src = "int repro_fault_retry(void) { return 1; }\n"
    with faults.injecting("cc=timeout*1") as plan:
        so = ctoolchain.compile_shared(src, stem="faultretry", force=True)
    assert plan.fired() == {"cc": 1}
    import os

    assert os.path.exists(so)


@needs_cc
def test_injected_cc_crash_is_retried(monkeypatch):
    monkeypatch.setenv("REPRO_CC_BACKOFF", "0.01")
    src = "int repro_fault_crash(void) { return 2; }\n"
    with faults.injecting("cc=crash*1"):
        so = ctoolchain.compile_shared(src, stem="faultcrash", force=True)
    import os

    assert os.path.exists(so)


@needs_cc
def test_transient_failures_exhaust_retries(monkeypatch):
    monkeypatch.setenv("REPRO_CC_BACKOFF", "0.01")
    monkeypatch.setenv("REPRO_CC_RETRIES", "1")
    src = "int repro_fault_exhaust(void) { return 3; }\n"
    with faults.injecting("cc=timeout"):  # unbounded: every attempt hangs
        with pytest.raises(ctoolchain.ToolchainTimeout):
            ctoolchain.compile_shared(src, stem="exhaust", force=True)
    # a timeout is transient: NOT memoized as a permanent failure
    so = ctoolchain.compile_shared(src, stem="exhaust", force=True)
    import os

    assert os.path.exists(so)


@needs_cc
def test_permanent_failure_memoized():
    bad = "int repro_broken( {\n"
    with pytest.raises(ctoolchain.ToolchainError):
        ctoolchain.compile_shared(bad, stem="permabad")
    with pytest.raises(ctoolchain.ToolchainError, match="previously failed"):
        ctoolchain.compile_shared(bad, stem="permabad")
    ctoolchain.reset_failure_memo()
    with pytest.raises(ctoolchain.ToolchainError) as excinfo:
        ctoolchain.compile_shared(bad, stem="permabad")
    assert "previously failed" not in str(excinfo.value)


@needs_cc
def test_cc_timeout_env_kills_hung_compiler(monkeypatch, tmp_path):
    """A genuinely hung cc (not injected) is killed by the subprocess
    timeout and surfaces as the transient ToolchainTimeout."""
    hung = tmp_path / "hungcc"
    hung.write_text("#!/bin/sh\nsleep 600\n")
    hung.chmod(0o755)
    with pytest.raises(ctoolchain.ToolchainTimeout, match="timed out"):
        ctoolchain._run_cc(str(hung), (), "x.c", "x.so", timeout=0.2)


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------
@needs_cc
def test_exec_failure_degrades_to_python_bit_identical(inputs):
    ref = _reference(inputs)
    with faults.injecting("exec.c=fail*1"):
        kernel = compile_kernel(EINSUM, **SPEC, options=C_OPTS)
        got = kernel(**inputs)
    assert got.tobytes() == ref.tobytes()
    assert kernel.backend == "python"
    assert health.degraded()
    assert "c" not in health.active_ladder()


@needs_cc
def test_omp_tier_failure_falls_back_to_serial_c(inputs):
    ref = _reference(inputs)
    with faults.injecting("exec.omp=fail*1"):
        kernel = compile_kernel(
            EINSUM, **SPEC, options=C_OPTS.but(threads=2)
        )
        prepared, shape = kernel.prepare(**inputs)
        out = kernel.run(prepared, shape, threads=2)
    got = kernel.finalize(out)
    assert got.tobytes() == ref.tobytes()
    # the serial C tier survived: kernel still compiled
    assert kernel.backend == "c"
    assert not health.ok("c@omp") and health.ok("c")
    # future thread resolutions collapse onto the serial tier
    assert kernel.bound.resolve_run_threads(4) == 1


@needs_cc
def test_alloc_failure_reserved_serially_bit_identical(inputs):
    """A kernel reporting allocation failure (nonzero status — a failed
    per-thread workspace or scatter-log malloc) must surface as
    BackendError and be re-served down the ladder, not abort the
    process."""
    ref = _reference(inputs)
    with faults.injecting("exec.alloc=fail*1"):
        kernel = compile_kernel(EINSUM, **SPEC, options=C_OPTS.but(threads=2))
        prepared, shape = kernel.prepare(**inputs)
        out = kernel.run(prepared, shape, threads=2)
    got = kernel.finalize(out)
    assert got.tobytes() == ref.tobytes()
    # the serial C tier survived the OOM: kernel still compiled, and the
    # threaded tier is marked down so future calls skip the failing path
    assert kernel.backend == "c"
    assert not health.ok("c@omp") and health.ok("c")


@needs_cc
def test_plan_degrades_and_stays_usable(inputs):
    ref = _reference(inputs)
    with faults.injecting("exec.c=fail*1"):
        kernel = compile_kernel(EINSUM, **SPEC, options=C_OPTS)
        plan = kernel.execution_plan(**inputs)
        first = kernel.finalize(np.copy(plan()))
    assert first.tobytes() == ref.tobytes()
    assert kernel.backend == "python"
    # the rebound plan keeps serving (now interpreted)
    second = kernel.finalize(np.copy(plan()))
    assert second.tobytes() == ref.tobytes()


@needs_cc
def test_degradation_is_sticky_for_new_kernels(inputs):
    with faults.injecting("exec.c=fail*1"):
        kernel = compile_kernel(EINSUM, **SPEC, options=C_OPTS)
        kernel(**inputs)
    assert kernel.backend == "python"
    # a *new* C-backend request in the same process goes straight to the
    # floor instead of re-paying the failure
    again = compile_kernel(EINSUM, **SPEC, options=C_OPTS)
    assert again.backend == "python"


@needs_cc
def test_no_degrade_env_propagates_failures(monkeypatch, inputs):
    monkeypatch.setenv("REPRO_NO_DEGRADE", "1")
    with faults.injecting("exec.c=fail*1"):
        kernel = compile_kernel(EINSUM, **SPEC, options=C_OPTS)
        with pytest.raises(FaultError):
            kernel(**inputs)


@needs_cc
def test_dlopen_failure_at_compile_time_degrades(inputs):
    ref = _reference(inputs)
    # both the initial load and the force-rebuild load fail
    with faults.injecting("dlopen=fail*2"):
        kernel = compile_kernel(EINSUM, **SPEC, options=C_OPTS)
    assert kernel.backend == "python"
    assert kernel(**inputs).tobytes() == ref.tobytes()


def test_health_snapshot_shape():
    snap = health.snapshot()
    assert snap["degraded"] is False
    assert snap["ladder"] == ["c@omp", "c", "python"]
    assert set(snap["tiers"]) == {"c@omp", "c", "python"}


def test_health_dependency_c_failure_kills_omp_tier():
    health.mark("c", RuntimeError("boom"))
    assert not health.ok("c@omp")  # rides on the same compiled object
    assert health.active_ladder() == ["python"]
    assert health.first_error("c") == "RuntimeError: boom"


def test_health_python_tier_cannot_be_marked():
    with pytest.raises(ValueError):
        health.mark("python", RuntimeError("no floor below the floor"))


# ----------------------------------------------------------------------
# service + store under injection
# ----------------------------------------------------------------------
@needs_cc
def test_corrupt_store_entry_recompiles_and_counts_error(tmp_path, inputs):
    svc = KernelService(store=tmp_path)
    ref_kernel = svc.get_or_compile(EINSUM, **SPEC, options=C_OPTS)
    ref = ref_kernel(**inputs)

    svc2 = KernelService(store=tmp_path)
    with faults.injecting("store.get=corrupt*1"):
        kernel = svc2.get_or_compile(EINSUM, **SPEC, options=C_OPTS)
    assert kernel(**inputs).tobytes() == ref.tobytes()
    stats = svc2.stats()
    assert stats.disk_errors == 1
    assert stats.disk_misses == 0  # an existing-but-bad entry is not a miss
    assert stats.compiles == 1


def test_store_put_enospc_keeps_the_kernel(tmp_path, inputs):
    svc = KernelService(store=tmp_path)
    with faults.injecting("store.put=enospc*1"):
        kernel = svc.get_or_compile(EINSUM, **SPEC)
    # the compile survived; only persistence was lost
    ref = _reference(inputs)
    assert kernel(**inputs).tobytes() == ref.tobytes()
    stats = svc.stats()
    assert stats.disk_errors == 1
    assert stats.disk_entries == 0
    # the next service pays a fresh compile (nothing was persisted)
    svc2 = KernelService(store=tmp_path)
    svc2.get_or_compile(EINSUM, **SPEC)
    assert svc2.stats().compiles == 1


def test_store_partial_write_reads_back_as_clean_error(tmp_path):
    svc = KernelService(store=tmp_path)
    with faults.injecting("store.put=partial*1"):
        svc.get_or_compile(EINSUM, **SPEC)
    # a torn entry was published; a fresh service must absorb it
    svc2 = KernelService(store=tmp_path)
    kernel = svc2.get_or_compile(EINSUM, **SPEC)
    assert kernel is not None
    stats = svc2.stats()
    assert stats.disk_errors == 1 and stats.compiles == 1


@needs_cc
def test_truncated_so_injection_rebuilds_artifact(tmp_path, inputs):
    svc = KernelService(store=tmp_path)
    ref = svc.get_or_compile(EINSUM, **SPEC, options=C_OPTS)(**inputs)
    svc2 = KernelService(store=tmp_path)
    with faults.injecting("store.get=truncate-so*1"):
        kernel = svc2.get_or_compile(EINSUM, **SPEC, options=C_OPTS)
    # served from the entry (rebuilt artifact), not a cold compile
    assert svc2.stats().compiles == 0
    assert kernel(**inputs).tobytes() == ref.tobytes()


def test_cache_miss_injection_recovers_via_store(tmp_path):
    svc = KernelService(store=tmp_path)
    svc.get_or_compile(EINSUM, **SPEC)
    with faults.injecting("cache.get=miss*1"):
        kernel = svc.get_or_compile(EINSUM, **SPEC)
    assert kernel is not None
    stats = svc.stats()
    assert stats.compiles == 1  # re-served from disk, not recompiled
    assert stats.disk_hits == 1


def test_service_compile_failure_propagates_and_next_call_recovers(tmp_path):
    svc = KernelService(store=tmp_path)
    with faults.injecting("service.compile=fail*1"):
        with pytest.raises(FaultError):
            svc.get_or_compile(EINSUM, **SPEC)
    kernel = svc.get_or_compile(EINSUM, **SPEC)
    assert kernel is not None


def test_stats_reflect_health_and_store_none():
    svc = KernelService()
    stats = svc.stats()
    assert stats.degraded is False
    assert stats.health["ladder"][-1] == "python"
    assert "health" in stats.to_dict()


def test_empty_store_counters_not_zeroed_by_len(tmp_path):
    """DiskStore defines __len__; stats must use `is not None`, not
    truthiness, or an empty store's counters all read zero."""
    svc = KernelService(store=tmp_path)
    with pytest.raises(Exception):
        with faults.injecting("service.compile=fail*1"):
            svc.get_or_compile(EINSUM, **SPEC)
    assert svc.stats().disk_misses == 1  # the store *was* consulted


# ----------------------------------------------------------------------
# the acceptance scenario: hung cc + corrupt entry + dlopen failure in
# one session, every request answered bit-identically
# ----------------------------------------------------------------------
@needs_cc
def test_combined_fault_storm_stays_bit_identical(tmp_path, monkeypatch, inputs):
    monkeypatch.setenv("REPRO_CC_BACKOFF", "0.01")
    ref = _reference(inputs)

    warm = KernelService(store=tmp_path)
    assert warm.get_or_compile(EINSUM, **SPEC, options=C_OPTS)(
        **inputs
    ).tobytes() == ref.tobytes()

    spec_text = (
        "store.get=corrupt*1,"  # first disk read is corrupt
        "cc=timeout*1,"  # first recompile cc run hangs (then retried)
        "dlopen=fail*1"  # first artifact load fails (then rebuilt/degraded)
    )
    svc = KernelService(store=tmp_path)
    with faults.injecting(spec_text) as plan:
        kernel = svc.get_or_compile(EINSUM, **SPEC, options=C_OPTS)
        got = kernel(**inputs)
        assert got.tobytes() == ref.tobytes()
        # every armed point actually fired
        assert plan.fired() == {"store.get": 1, "cc": 1, "dlopen": 1}
    stats = svc.stats()
    assert stats.disk_errors == 1
    assert stats.compiles == 1
    # and the counters survive a JSON round-trip (repro stats --json)
    import json

    doc = json.loads(json.dumps(stats.to_dict()))
    assert doc["disk"]["errors"] == 1

    # after the storm, a fresh request serves normally
    again = svc.get_or_compile(EINSUM, **SPEC, options=C_OPTS)
    assert again(**inputs).tobytes() == ref.tobytes()


# ----------------------------------------------------------------------
# doctor CLI
# ----------------------------------------------------------------------
def test_doctor_reports_healthy(capsys, tmp_path):
    from repro.cli import main

    rc = main(["doctor", "--dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert "ladder" in out
    if HAVE_CC:
        assert rc == 0
        assert "toolchain" in out


def test_doctor_json_reports_degraded(capsys, tmp_path):
    from repro.cli import main

    health.mark("c", RuntimeError("synthetic failure"))
    rc = main(["doctor", "--json"])
    assert rc == 1
    import json

    doc = json.loads(capsys.readouterr().out)
    assert doc["healthy"] is False
    assert doc["ladder"] == ["python"]
    assert doc["health"]["tiers"]["c"]["failures"] == 1
