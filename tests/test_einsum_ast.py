"""Unit tests for the assignment AST (substitution, normalization, merging)."""

import pytest

from repro.frontend.einsum import (
    Access,
    Assignment,
    Literal,
    merge_duplicates,
)
from repro.frontend.parser import parse_assignment


def rank_of(*names):
    return {n: i for i, n in enumerate(names)}


def test_substitute_renames_everywhere():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    b = a.substitute({"i": "j", "j": "i"})
    assert str(b) == "y[j] += A[j, i] * x[i]"


def test_substitute_partial_mapping():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    b = a.substitute({"j": "k"})
    assert str(b) == "y[i] += A[i, k] * x[k]"


def test_access_sort_modes_full_symmetry():
    acc = Access("A", ("l", "i", "k"))
    sorted_acc = acc.sort_modes([(0, 1, 2)], rank_of("i", "k", "l"))
    assert sorted_acc == Access("A", ("i", "k", "l"))


def test_access_sort_modes_partial_symmetry():
    acc = Access("A", ("k", "i", "j"))
    # only modes 0 and 2 are symmetric; mode 1 stays in place
    sorted_acc = acc.sort_modes([(0, 2)], rank_of("i", "j", "k"))
    assert sorted_acc == Access("A", ("j", "i", "k"))


def test_normalized_sorts_symmetric_access_and_operands():
    a = parse_assignment("y[j] += x[j] * A[j, i] * x[i]")
    norm = a.normalized({"A": ((0, 1),)}, rank_of("i", "j"))
    assert norm.operands == (
        Access("A", ("i", "j")),
        Access("x", ("i",)),
        Access("x", ("j",)),
    )


def test_normalized_puts_literals_first():
    a = parse_assignment("y[i] += x[i] * 3")
    norm = a.normalized({}, rank_of("i"))
    assert norm.operands[0] == Literal(3.0)


def test_free_and_reduction_indices():
    a = parse_assignment("C[i, j] += A[i, k, l] * B[k, j] * B[l, j]")
    assert a.free_indices == ("i", "j", "k", "l")
    assert a.reduction_indices == ("k", "l")
    assert a.output_indices == ("i", "j")


def test_tensors_output_first():
    a = parse_assignment("C[i, j] += A[i, k] * B[k, j]")
    assert a.tensors == ("C", "A", "B")


def test_index_dims_prefers_inputs():
    a = parse_assignment("C[i, j] += A[i, k] * B[k, j]")
    dims = a.index_dims()
    assert dims["i"] == ("A", 0)
    assert dims["k"] == ("A", 1)
    assert dims["j"] == ("B", 1)


def test_merge_duplicates_sums_counts():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    merged = merge_duplicates([a, a, a])
    assert len(merged) == 1
    assert merged[0].count == 3


def test_merge_duplicates_keeps_distinct():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    b = parse_assignment("y[j] += A[i, j] * x[i]")
    merged = merge_duplicates([a, b, a])
    assert [m.count for m in merged] == [2, 1]


def test_invalid_reduce_op_rejected():
    with pytest.raises(ValueError):
        Assignment(
            lhs=Access("y", ("i",)),
            reduce_op="xor",
            operands=(Access("x", ("i",)),),
        )


def test_invalid_count_rejected():
    with pytest.raises(ValueError):
        Assignment(
            lhs=Access("y", ("i",)),
            reduce_op="+",
            operands=(Access("x", ("i",)),),
            count=0,
        )


def test_count_renders_in_str():
    a = parse_assignment("y[] += x[i] * x[j]").with_count(2)
    assert str(a).startswith("2 x ")
