"""Tests for symmetry detection (automorphisms, visible/invisible output
symmetry — Example 3.1 of the paper)."""

import pytest

from repro.frontend.parser import parse_assignment
from repro.symmetry.detect import (
    assignment_automorphisms,
    detect_output_symmetry,
    input_symmetric_indices,
    permutable_indices,
)

FULL2 = {"A": ((0, 1),)}
FULL3 = {"A": ((0, 1, 2),)}


def test_input_symmetric_indices_ssymv():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    assert input_symmetric_indices(a, FULL2) == [("i", "j")]


def test_input_symmetric_indices_none():
    a = parse_assignment("C[i, j] += A[i, k] * B[k, j]")
    assert input_symmetric_indices(a, {}) == []


def test_ssymv_has_no_output_symmetry():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    sym = detect_output_symmetry(a, FULL2)
    assert not sym.has_visible
    assert not sym.has_invisible


def test_ssyrk_visible_output_symmetry():
    """Example 3.1: B[i,j] = A[i,k] * A[j,k] has visible {i,j} symmetry."""
    a = parse_assignment("B[i, j] += A[i, k] * A[j, k]")
    sym = detect_output_symmetry(a, {})
    assert sym.has_visible
    assert sym.visible.parts == ((0, 1),)
    assert not sym.has_invisible


def test_invisible_output_symmetry():
    """Example 3.1: B[i] = A[i,j] * A[i,k] has invisible {j,k} symmetry."""
    a = parse_assignment("B[i] += A[i, j] * A[i, k]")
    sym = detect_output_symmetry(a, {})
    assert not sym.has_visible
    assert sym.invisible.parts == (("j", "k"),)


def test_syprd_invisible_symmetry():
    a = parse_assignment("y[] += x[i] * A[i, j] * x[j]")
    sym = detect_output_symmetry(a, FULL2)
    assert sym.invisible.parts == (("i", "j"),)


def test_mttkrp_invisible_symmetry():
    a = parse_assignment("C[i, j] += A[i, k, l] * B[k, j] * B[l, j]")
    sym = detect_output_symmetry(a, FULL3)
    assert sym.invisible.nontrivial_parts == (("k", "l"),)


def test_ttm_visible_symmetry():
    a = parse_assignment("C[i, j, l] += A[k, j, l] * B[k, i]")
    sym = detect_output_symmetry(a, FULL3)
    assert sym.visible.nontrivial_parts == ((1, 2),)


def test_automorphisms_include_identity():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    autos = assignment_automorphisms(a, {})
    assert {"i": "i", "j": "j"} in autos


def test_automorphism_requires_symmetry_declaration():
    """x'Ax is only symmetric when A is declared symmetric."""
    a = parse_assignment("y[] += x[i] * A[i, j] * x[j]")
    assert len(assignment_automorphisms(a, {})) == 1
    assert len(assignment_automorphisms(a, FULL2)) == 2


def test_permutable_indices_ordering_is_innermost_first():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    assert permutable_indices(a, FULL2, ("j", "i")) == ("i", "j")
    assert permutable_indices(a, FULL2, ("i", "j")) == ("j", "i")


def test_permutable_indices_union_of_sources():
    """TTM: input symmetry gives {k,j,l}; the automorphism adds nothing new."""
    a = parse_assignment("C[i, j, l] += A[k, j, l] * B[k, i]")
    assert permutable_indices(a, FULL3, ("l", "k", "j", "i")) == ("j", "k", "l")


def test_permutable_indices_from_output_only():
    """SSYRK: no symmetric input; P comes from the RHS automorphism."""
    a = parse_assignment("C[i, j] += A[i, k] * A[j, k]")
    assert permutable_indices(a, {}, ("k", "j", "i")) == ("i", "j")


def test_permutable_missing_from_loop_order_rejected():
    a = parse_assignment("y[i] += A[i, j] * x[j]")
    with pytest.raises(ValueError):
        permutable_indices(a, FULL2, ("i",))


def test_partial_symmetry_indices():
    a = parse_assignment("y[i] += T[i, j, k] * x[j] * x[k]")
    parts = input_symmetric_indices(a, {"T": ((0,), (1, 2))})
    assert parts == [("j", "k")]
